#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every source of randomness in fastsched (the FAST local search, workload
/// generators, benchmark sweeps) flows through `Rng`, a xoshiro256**
/// generator seeded via SplitMix64. The implementation is self-contained so
/// results are bit-for-bit reproducible across standard libraries and
/// platforms, which `std::mt19937` + `std::uniform_int_distribution` does
/// not guarantee.

#include <cstdint>
#include <vector>

namespace fastsched {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded from a single 64-bit value through SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child stream by drawing from this generator:
  /// each call advances the parent, so consecutive calls yield distinct
  /// streams. Prefer `split(stream_id)` when the caller has a natural
  /// task or thread index — it does not mutate the parent.
  Rng split() noexcept;

  /// Derives the `stream_id`-th independent child stream as a pure
  /// function of (construction seed, stream_id): the result never depends
  /// on how many values have been drawn from this generator, so tasks
  /// executed in any order — or on any worker thread of a pool — see
  /// identical sequences. Both inputs are whitened through SplitMix64
  /// before being combined, so nearby stream ids (0, 1, 2, ...) land in
  /// unrelated regions of the seed space. This is the documented way to
  /// give each repetition of a benchmark sweep or each task of a
  /// `ThreadPool` its own reproducible randomness.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

  /// The seed this generator was constructed with (split(id) is a pure
  /// function of it).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Fisher–Yates shuffle of `items` using this stream.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace fastsched
