#pragma once

/// \file table.hpp
/// Fixed-width ASCII table rendering used by the benchmark harness to print
/// the paper's result tables (Figures 5–8) in a layout that mirrors the
/// original paper.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fastsched {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision. The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Appends a row of cells. All rows should have the same arity; shorter
  /// rows are padded with empty cells at render time.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);

  /// Convenience: formats an integer.
  static std::string num(long long value);

  /// Renders the table (title, header, separator, body) to `os`.
  void render(std::ostream& os) const;

  /// Renders to a string.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace fastsched
