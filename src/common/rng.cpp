#include "common/rng.hpp"

namespace fastsched {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(width));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::split() noexcept { return Rng(next() ^ 0xA3EC647659359ACDULL); }

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Whiten the seed and the stream id through independent SplitMix64
  // chains before combining: stream ids are typically tiny consecutive
  // integers, and xoring them in raw would produce correlated child seeds.
  std::uint64_t a = seed_;
  const std::uint64_t hashed_seed = splitmix64(a);
  std::uint64_t b = stream_id ^ 0xA3EC647659359ACDULL;
  const std::uint64_t hashed_stream = splitmix64(b);
  return Rng(hashed_seed ^ hashed_stream);
}

}  // namespace fastsched
