#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fastsched {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::num(long long value) { return std::to_string(value); }

void Table::render(std::ostream& os) const {
  std::size_t arity = 0;
  for (const auto& row : rows_) arity = std::max(arity, row.size());

  std::vector<std::size_t> widths(arity, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << title_ << '\n';

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < arity; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };

  for (std::size_t r = 0; r < rows_.size(); ++r) {
    emit(rows_[r]);
    if (r == 0 && rows_.size() > 1) {
      std::size_t total = 0;
      for (const auto w : widths) total += w + 2;
      os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
    }
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.render(os);
  return os;
}

}  // namespace fastsched
