#pragma once

/// \file timer.hpp
/// Wall-clock timing used to report scheduler running times (the paper's
/// Figures 5(c)–8(c)).

#include <chrono>

namespace fastsched {

/// Monotonic stopwatch. Started on construction; `seconds()` returns the
/// elapsed wall-clock time since construction or the last `reset()`.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fastsched
