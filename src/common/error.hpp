#pragma once

/// \file error.hpp
/// Error-handling primitives shared across the fastsched library.
///
/// The library throws `fastsched::Error` (a `std::runtime_error`) for
/// recoverable user-facing failures (malformed graphs, bad CLI input) and
/// uses `FASTSCHED_ASSERT` for internal invariants that indicate a bug.

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastsched {

/// Exception type for all user-facing library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "fastsched internal assertion failed: (" << expr << ") at " << file
     << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

/// Internal invariant check. Active in all build types: scheduling decisions
/// are cheap relative to the invariants they protect, and silent corruption
/// of a schedule is far more expensive than the branch.
#define FASTSCHED_ASSERT(expr)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fastsched::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define FASTSCHED_ASSERT_MSG(expr, msg)                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fastsched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)

/// Throw a `fastsched::Error` when a user-facing precondition fails.
#define FASTSCHED_REQUIRE(expr, msg)                    \
  do {                                                  \
    if (!(expr)) throw ::fastsched::Error((msg));       \
  } while (false)

}  // namespace fastsched
