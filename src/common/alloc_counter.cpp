#include "common/alloc_counter.hpp"

namespace fastsched::detail {

std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_heap_alloc_hook{false};

}  // namespace fastsched::detail
