#pragma once

/// \file arena.hpp
/// A monotonic bump allocator for request-scoped scratch.
///
/// The serving layer (src/serve) answers a stream of scheduling requests;
/// each request needs dynamic scratch (parse vectors, window indices)
/// whose size varies per request but whose lifetime is strictly bounded
/// by the window it arrives in. An `Arena` carves that scratch out of a
/// small list of geometrically-grown chunks with pointer-bump
/// allocation, and `reset()` rewinds to the start of the chunk list
/// *without releasing the chunks* — so after the first few windows warm
/// the arena up to its high-water mark, steady-state serving performs
/// zero heap allocation for scratch, no matter how requests vary.
///
/// `ArenaAllocator<T>` adapts an Arena to the std allocator interface so
/// ordinary containers (`std::vector<T, ArenaAllocator<T>>`) can live in
/// it. Deallocation is a no-op (memory is reclaimed wholesale by
/// `reset()`), which is exactly the right trade for request scratch and
/// exactly the wrong one for anything long-lived — long-lived state (the
/// result cache, retained response slots) stays on the heap.
///
/// A default-constructed (null-arena) `ArenaAllocator` falls back to
/// `operator new`/`delete`, giving the serving layer a one-flag
/// "arena off" mode that exercises identical code paths with a plain
/// heap allocation per growth — the baseline the BENCH_serve comparison
/// quantifies against.

#include <cstddef>
#include <cstdint>
#include <new>

namespace fastsched {

/// Monotonic bump allocator. Not thread-safe: each consumer owns its own
/// arena (the serve loop allocates only from the request thread).
class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; later chunks double.
  explicit Arena(std::size_t first_chunk_bytes = 64 * 1024);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Bump-allocates from the current chunk; moves to the next retained
  /// chunk or mallocs a new one (doubling) only when the current chunk
  /// is exhausted.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Rewinds to the first chunk, retaining every chunk for reuse. After
  /// the arena has grown to the high-water footprint of one window,
  /// reset + reallocate performs zero heap allocation.
  void reset() noexcept;

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Largest bytes_used() ever observed (across resets).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  /// Total bytes of chunk storage owned (retained across resets).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }
  /// Number of chunk mallocs performed over the arena's lifetime; stable
  /// across steady-state windows once warmed up.
  [[nodiscard]] std::size_t chunk_allocations() const noexcept {
    return chunk_allocs_;
  }

 private:
  struct Chunk {
    Chunk* next = nullptr;
    std::size_t size = 0;  ///< usable bytes following the header
  };

  /// Advances to a chunk with at least `bytes` free (reusing retained
  /// chunks, allocating a new one only at the tail).
  void grow(std::size_t bytes);

  Chunk* head_ = nullptr;     ///< first chunk (allocation restarts here)
  Chunk* current_ = nullptr;  ///< chunk being bumped
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::size_t first_chunk_bytes_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
  std::size_t chunk_allocs_ = 0;
};

/// std-compatible allocator over an Arena. With a null arena it forwards
/// to the global heap, so the same container type serves both the
/// arena-backed and the heap-baseline configurations.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor): allocator rebind requires converting construction
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) noexcept {
    // Arena memory is reclaimed wholesale by Arena::reset().
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }
  template <typename U>
  [[nodiscard]] bool operator!=(const ArenaAllocator<U>& o) const noexcept {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace fastsched
