#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace fastsched {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  FASTSCHED_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{default_value, default_value, help, false, false};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  FASTSCHED_REQUIRE(!options_.count(name), "duplicate flag: " + name);
  options_[name] = Option{"", "", help, true, false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    FASTSCHED_REQUIRE(it != options_.end(), "unknown option: --" + name);
    Option& opt = it->second;
    if (opt.is_flag) {
      FASTSCHED_REQUIRE(!has_value, "flag --" + name + " takes no value");
      opt.seen = true;
      continue;
    }
    if (!has_value) {
      FASTSCHED_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      value = argv[++i];
    }
    opt.value = std::move(value);
    opt.seen = true;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  FASTSCHED_REQUIRE(it != options_.end(), "unregistered option: " + name);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t result = std::stoll(v, &pos);
    FASTSCHED_REQUIRE(pos == v.size(), "trailing characters");
    return result;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("option --" + name + " expects an integer, got '" + v + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double result = std::stod(v, &pos);
    FASTSCHED_REQUIRE(pos == v.size(), "trailing characters");
    return result;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("option --" + name + " expects a number, got '" + v + "'");
  }
}

bool CliParser::get_flag(const std::string& name) const {
  const auto it = options_.find(name);
  FASTSCHED_REQUIRE(it != options_.end() && it->second.is_flag,
                    "unregistered flag: " + name);
  return it->second.seen;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value> (default: " << opt.default_value << ")";
    os << "\n      " << opt.help << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace fastsched
