#include "common/arena.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace fastsched {

namespace {

constexpr std::size_t kMinChunk = 1024;

std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes)
    : first_chunk_bytes_(first_chunk_bytes < kMinChunk ? kMinChunk
                                                       : first_chunk_bytes) {}

Arena::~Arena() {
  Chunk* c = head_;
  while (c != nullptr) {
    Chunk* next = c->next;
    ::operator delete(static_cast<void*>(c));
    c = next;
  }
}

void Arena::grow(std::size_t bytes) {
  // Reuse the next retained chunk when it is big enough; skip (but keep)
  // retained chunks that are too small for this request — they will serve
  // smaller allocations after the next reset.
  while (current_ != nullptr && current_->next != nullptr) {
    current_ = current_->next;
    if (current_->size >= bytes) {
      cursor_ = reinterpret_cast<std::byte*>(current_ + 1);
      limit_ = cursor_ + current_->size;
      return;
    }
  }
  std::size_t size = current_ == nullptr ? first_chunk_bytes_
                                         : current_->size * 2;
  if (size < bytes) size = bytes;
  auto* chunk = static_cast<Chunk*>(::operator new(sizeof(Chunk) + size));  // NOLINT-fastsched(hot-alloc): warmup-only — reset() retains chunks, so steady-state windows never reach this line
  chunk->next = nullptr;
  chunk->size = size;
  if (current_ == nullptr) {
    head_ = chunk;
  } else {
    current_->next = chunk;
  }
  current_ = chunk;
  cursor_ = reinterpret_cast<std::byte*>(chunk + 1);
  limit_ = cursor_ + size;
  reserved_ += size;
  ++chunk_allocs_;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  FASTSCHED_ASSERT_MSG(align != 0 && (align & (align - 1)) == 0,
                       "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  // fastsched: hot
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::size_t pad = align_up(addr, align) - addr;
  if (cursor_ == nullptr ||
      pad + bytes > static_cast<std::size_t>(limit_ - cursor_)) {
    grow(bytes + align);
    addr = reinterpret_cast<std::uintptr_t>(cursor_);
    cursor_ += align_up(addr, align) - addr;
  } else {
    cursor_ += pad;
  }
  void* out = cursor_;
  cursor_ += bytes;
  used_ += bytes;
  if (used_ > high_water_) high_water_ = used_;
  return out;
  // fastsched: end-hot
}

void Arena::reset() noexcept {
  current_ = head_;
  if (current_ != nullptr) {
    cursor_ = reinterpret_cast<std::byte*>(current_ + 1);
    limit_ = cursor_ + current_->size;
  }
  used_ = 0;
}

}  // namespace fastsched
