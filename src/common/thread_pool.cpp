#include "common/thread_pool.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace fastsched {

struct ThreadPool::Impl {
  struct Pending {
    std::size_t ticket = 0;
    std::function<void()> fn;
  };

  std::mutex mutex;
  std::condition_variable task_ready;   // workers: queue non-empty or stop
  std::condition_variable space_ready;  // submitters: queue below the bound
  std::condition_variable all_done;     // wait(): completed == submitted
  std::deque<Pending> queue;
  std::vector<std::thread> workers;
  std::size_t queue_bound = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  bool stopping = false;
  // Earliest-submitted failure only: deterministic regardless of which
  // task happened to fail first on the wall clock.
  std::exception_ptr error;
  std::size_t error_ticket = 0;

  void work() {
    for (;;) {
      Pending task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        task_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
        space_ready.notify_one();
      }
      std::exception_ptr failure;
      try {
        task.fn();
      } catch (...) {
        failure = std::current_exception();
      }
      // Destroy the callable (and everything it captured) before the
      // completion signal: once wait() returns, no worker may still hold
      // user state.
      task.fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        if (failure && (!error || task.ticket < error_ticket)) {
          std::swap(error, failure);
          error_ticket = task.ticket;
        }
        // Release the discarded reference (our failure if a later ticket,
        // the replaced error otherwise) while still holding the mutex, so
        // the final refcount drop is ordered against wait()'s rethrow.
        failure = nullptr;
        ++completed;
        if (completed == submitted) all_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_bound)
    : impl_(new Impl) {
  if (num_threads == 0) num_threads = default_jobs();
  impl_->queue_bound =
      queue_bound > 0 ? queue_bound : 4 * num_threads;
  impl_->workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    impl_->workers.emplace_back([this] { impl_->work(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->task_ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

std::size_t ThreadPool::num_threads() const noexcept {
  return impl_->workers.size();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    FASTSCHED_REQUIRE(!impl_->stopping,
                      "ThreadPool::submit on a stopping pool");
    impl_->space_ready.wait(
        lock, [&] { return impl_->queue.size() < impl_->queue_bound; });
    impl_->queue.push_back({impl_->submitted++, std::move(task)});
  }
  impl_->task_ready.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->all_done.wait(
        lock, [&] { return impl_->completed == impl_->submitted; });
    failure = std::exchange(impl_->error, nullptr);
    impl_->error_ticket = 0;
  }
  if (failure) std::rethrow_exception(failure);
}

std::size_t ThreadPool::env_jobs() noexcept {
  // Read-only and nothing in the library calls setenv; the worker count
  // is resolved before any pool threads exist.
  const char* env = std::getenv("FASTSCHED_JOBS");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0) return 0;
  return static_cast<std::size_t>(value);
}

std::size_t ThreadPool::default_jobs() {
  const std::size_t from_env = env_jobs();
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_index(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) jobs = ThreadPool::default_jobs();
  if (jobs <= 1 || n <= 1) {
    // Inline fast path. Identical results by the determinism contract,
    // and the earliest-index failure wins trivially.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs < n ? jobs : n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

std::size_t resolve_jobs(const std::string& cli_value, std::size_t fallback) {
  if (cli_value.empty()) {
    const std::size_t from_env = ThreadPool::env_jobs();
    if (from_env > 0) return from_env;
    return fallback > 0 ? fallback : ThreadPool::default_jobs();
  }
  std::size_t pos = 0;
  long long value = -1;
  try {
    value = std::stoll(cli_value, &pos);
  } catch (const std::exception&) {
    value = -1;
  }
  FASTSCHED_REQUIRE(pos == cli_value.size() && value >= 0,
                    "--jobs expects a non-negative integer, got '" +
                        cli_value + "'");
  return value == 0 ? ThreadPool::default_jobs()
                    : static_cast<std::size_t>(value);
}

}  // namespace fastsched
