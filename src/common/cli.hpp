#pragma once

/// \file cli.hpp
/// Minimal command-line option parsing shared by the examples, tools and
/// bench binaries. Supports `--name value`, `--name=value` and boolean
/// `--flag` options plus `--help` text generation.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fastsched {

/// Declarative option parser. Register options with defaults, then call
/// `parse`. Unknown options raise `fastsched::Error`.
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a string-valued option (also used for numeric options; typed
  /// getters convert on access).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Registers a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) when `--help` was
  /// requested; callers should then exit 0.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_flag = false;
    bool seen = false;
  };

  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace fastsched
