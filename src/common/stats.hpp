#pragma once

/// \file stats.hpp
/// Small statistics helpers for aggregating repeated measurements in the
/// benchmark harness (multiple random-DAG instances per table cell).

#include <cstddef>
#include <span>
#include <vector>

namespace fastsched {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics over `values`. An empty span yields a
/// zero-initialized Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Geometric mean; requires all values positive. Used for normalized-ratio
/// aggregation (ratios should be averaged geometrically).
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Median (averages the two middle elements for even sizes).
[[nodiscard]] double median(std::vector<double> values);

}  // namespace fastsched
