#pragma once

/// \file alloc_counter.hpp
/// A process-wide heap allocation counter for the zero-malloc serving
/// contract.
///
/// The serve loop promises that a steady-state cached request performs
/// zero heap allocation. That claim is only worth anything if it is
/// *measured*, so binaries that care (sched_server, the serve allocation
/// test) compile `FASTSCHED_DEFINE_COUNTING_NEW()` into exactly one
/// translation unit: it replaces the global `operator new`/`delete`
/// family with versions that bump a relaxed atomic counter around plain
/// malloc/free. The counter is always linked (it lives in
/// fastsched_common) but stays at zero unless a binary opted in —
/// `heap_alloc_counting_enabled()` tells report code which case it is
/// in, so stats can print "not measured" instead of a misleading 0.
///
/// The hook costs one relaxed atomic increment per allocation; it is
/// not compiled into the library or the ordinary tools, so nothing else
/// pays for it.

#include <atomic>
#include <cstdint>

namespace fastsched {

namespace detail {
extern std::atomic<std::uint64_t> g_heap_allocs;
extern std::atomic<bool> g_heap_alloc_hook;
}  // namespace detail

/// Number of heap allocations (operator new / malloc through the hook)
/// performed by this process so far; 0 when the binary did not compile
/// the counting hook in.
[[nodiscard]] inline std::uint64_t heap_alloc_count() noexcept {
  return detail::g_heap_allocs.load(std::memory_order_relaxed);
}

/// True when this binary replaced operator new with the counting hook.
[[nodiscard]] inline bool heap_alloc_counting_enabled() noexcept {
  return detail::g_heap_alloc_hook.load(std::memory_order_relaxed);
}

}  // namespace fastsched

// AddressSanitizer interposes the allocation functions itself and tags
// every block with how it was obtained (new vs malloc). Layering the
// malloc-backed counting replacements on top makes library-internal
// allocations cross those categories — ASan aborts with
// alloc-dealloc-mismatch — so under ASan the macro expands to nothing:
// heap_alloc_counting_enabled() stays false and callers report "not
// measured" (or skip) instead of fighting the sanitizer runtime.
#if defined(__SANITIZE_ADDRESS__)
#define FASTSCHED_ALLOC_COUNTING_SUPPORTED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FASTSCHED_ALLOC_COUNTING_SUPPORTED 0
#else
#define FASTSCHED_ALLOC_COUNTING_SUPPORTED 1
#endif
#else
#define FASTSCHED_ALLOC_COUNTING_SUPPORTED 1
#endif

#if !FASTSCHED_ALLOC_COUNTING_SUPPORTED

#define FASTSCHED_DEFINE_COUNTING_NEW() \
  namespace fastsched_alloc_hook_detail {}

#else

/// Expands to replacement definitions of the global allocation functions
/// that count through fastsched::heap_alloc_count(). Place in exactly one
/// .cpp of a binary (never a library): the replacements are
/// program-wide.
#define FASTSCHED_DEFINE_COUNTING_NEW()                                       \
  namespace fastsched_alloc_hook_detail {                                     \
  inline void* counted_alloc(std::size_t size) {                              \
    ::fastsched::detail::g_heap_allocs.fetch_add(1,                           \
                                                 std::memory_order_relaxed);  \
    void* p = std::malloc(size == 0 ? 1 : size);                              \
    if (p == nullptr) throw std::bad_alloc();                                 \
    return p;                                                                 \
  }                                                                           \
  inline void* counted_alloc(std::size_t size, std::align_val_t align_val) {  \
    ::fastsched::detail::g_heap_allocs.fetch_add(1,                           \
                                                 std::memory_order_relaxed);  \
    const auto align = static_cast<std::size_t>(align_val);                   \
    if (size == 0) size = align;                                              \
    size = (size + align - 1) / align * align; /* C11 aligned_alloc rule */   \
    void* p = std::aligned_alloc(align, size);                                \
    if (p == nullptr) throw std::bad_alloc();                                 \
    return p;                                                                 \
  }                                                                           \
  struct HookMarker {                                                         \
    HookMarker() noexcept {                                                   \
      ::fastsched::detail::g_heap_alloc_hook.store(                           \
          true, std::memory_order_relaxed);                                   \
    }                                                                         \
  };                                                                          \
  const HookMarker g_hook_marker;                                             \
  }                                                                           \
  void* operator new(std::size_t size) {                                      \
    return fastsched_alloc_hook_detail::counted_alloc(size);                  \
  }                                                                           \
  void* operator new[](std::size_t size) {                                    \
    return fastsched_alloc_hook_detail::counted_alloc(size);                  \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    return fastsched_alloc_hook_detail::counted_alloc(size, align);           \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    return fastsched_alloc_hook_detail::counted_alloc(size, align);           \
  }                                                                           \
  void operator delete(void* p) noexcept { std::free(p); }                    \
  void operator delete[](void* p) noexcept { std::free(p); }                  \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }       \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    std::free(p);                                                             \
  }

#endif  // FASTSCHED_ALLOC_COUNTING_SUPPORTED
