#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fastsched {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (const double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    FASTSCHED_REQUIRE(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace fastsched
