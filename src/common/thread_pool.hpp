#pragma once

/// \file thread_pool.hpp
/// A deterministic fixed-size task pool for the evaluation layer.
///
/// The pool is deliberately work-stealing-free: tasks are taken from one
/// bounded FIFO queue in submission order, every task writes only to its
/// own result slot, and any randomness a task needs is derived from
/// `Rng::split(task_index)` — a pure function of (seed, index). Together
/// these make every computation bit-identical regardless of the worker
/// count or the interleaving the OS picks, which is what lets
/// `sched_diff --jobs 8` promise byte-identical output to `--jobs 1`.
///
/// Exceptions thrown by tasks are captured and rethrown from `wait()`;
/// when several tasks fail, the one with the *lowest submission index*
/// wins, so even the error a run reports is deterministic.

#include <cstddef>
#include <functional>
#include <string>

namespace fastsched {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 = `default_jobs()`). The task queue
  /// holds at most `queue_bound` pending tasks (0 = 4x the worker count);
  /// `submit` blocks while it is full, bounding memory for huge sweeps.
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::size_t queue_bound = 0);

  /// Drains the queue and joins the workers. Exceptions never reported
  /// through `wait()` are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept;

  /// Enqueues a task; blocks while the bounded queue is full. Tasks must
  /// not submit to or wait on the same pool (they may own nested pools).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// exception of the earliest-submitted failed task, if any. The pool is
  /// reusable afterwards — the error state is cleared.
  void wait();

  /// Worker count used when a caller passes 0: the `FASTSCHED_JOBS`
  /// environment variable when set to a positive integer, otherwise the
  /// hardware concurrency (at least 1).
  [[nodiscard]] static std::size_t default_jobs();

  /// `FASTSCHED_JOBS` as a positive integer, or 0 when unset/invalid.
  [[nodiscard]] static std::size_t env_jobs() noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

/// Runs `fn(0) .. fn(n-1)` on `jobs` workers (0 = `default_jobs()`) and
/// returns when all are done, rethrowing the earliest-index failure.
/// `jobs <= 1` or `n <= 1` runs inline with no threads — by the pool's
/// determinism contract the results are identical either way. This is the
/// one entry point the evaluation layer (sched_diff, the bench harness,
/// sched_lint --bounds) fans out through.
void parallel_for_index(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)>& fn);

/// Resolves a `--jobs` CLI value: "" means `FASTSCHED_JOBS` when set, else
/// `fallback` (with `fallback == 0` meaning `default_jobs()`); "0" means
/// every hardware thread; any other value is the explicit worker count.
/// Throws `fastsched::Error` on non-numeric or negative input.
[[nodiscard]] std::size_t resolve_jobs(const std::string& cli_value,
                                       std::size_t fallback = 1);

}  // namespace fastsched
