#include "fast/initial_schedule.hpp"

#include "sched/timeline.hpp"

#include <algorithm>
#include <queue>

namespace fastsched::fast {

InitialScheduleResult initial_schedule(const TaskGraph& g,
                                       std::span<const NodeId> list,
                                       std::size_t num_procs) {
  FASTSCHED_REQUIRE(num_procs > 0, "need at least one processor");
  const std::size_t v = g.num_nodes();
  FASTSCHED_ASSERT(list.size() == v);

  std::vector<ProcId> assignment(v, sched::kUnassignedProc);
  std::vector<Cost> finish(v, 0.0);
  std::vector<Cost> ready(num_procs, 0.0);
  std::size_t procs_touched = 0;

  // Lazy min-heap over (ready_time, proc) for the rare fallback when a
  // parentless node arrives after the fresh-processor pool is exhausted.
  using HeapEntry = std::pair<Cost, ProcId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      ready_heap;

  // Scratch candidate set. Marks avoid duplicates when several parents
  // share a processor.
  std::vector<ProcId> candidates;
  std::vector<bool> candidate_mark(num_procs, false);

  Cost length = 0.0;
  for (const NodeId n : list) {
    candidates.clear();
    for (const graph::Adjacency& q : g.predecessors(n)) {
      const ProcId pp = assignment[q.node];
      FASTSCHED_ASSERT_MSG(pp != sched::kUnassignedProc,
                           "list is not topological");
      if (!candidate_mark[pp]) {
        candidate_mark[pp] = true;
        candidates.push_back(pp);
      }
    }
    if (procs_touched < num_procs) {
      // One fresh processor. Ready time is zero by construction.
      const auto fresh = static_cast<ProcId>(procs_touched);
      if (!candidate_mark[fresh]) {
        candidate_mark[fresh] = true;
        candidates.push_back(fresh);
      }
    }
    if (candidates.empty()) {
      // Parentless node with the pool exhausted: fall back to the globally
      // least-loaded processor.
      while (!ready_heap.empty() &&
             ready_heap.top().first != ready[ready_heap.top().second]) {
        ready_heap.pop();
      }
      const ProcId p = ready_heap.empty() ? ProcId{0} : ready_heap.top().second;
      candidate_mark[p] = true;
      candidates.push_back(p);
    }

    // Earliest start among candidates; ties keep the first-examined
    // candidate (a parent's processor rather than a fresh one).
    ProcId best_proc = candidates.front();
    Cost best_start = 0.0;
    bool have_best = false;
    for (const ProcId p : candidates) {
      Cost dat = 0.0;
      for (const graph::Adjacency& q : g.predecessors(n)) {
        const Cost arrival =
            finish[q.node] + (assignment[q.node] == p ? 0.0 : q.cost);
        dat = std::max(dat, arrival);
      }
      const Cost start = std::max(dat, ready[p]);
      if (!have_best || graph::definitely_less(start, best_start)) {
        have_best = true;
        best_start = start;
        best_proc = p;
      }
    }
    for (const ProcId p : candidates) candidate_mark[p] = false;

    if (best_proc == static_cast<ProcId>(procs_touched)) ++procs_touched;
    assignment[n] = best_proc;
    finish[n] = best_start + g.weight(n);
    ready[best_proc] = finish[n];
    ready_heap.emplace(finish[n], best_proc);
    length = std::max(length, finish[n]);
  }

  return InitialScheduleResult{std::move(assignment), length};
}

sched::Schedule initial_schedule_insertion(const TaskGraph& g,
                                           std::span<const NodeId> list,
                                           std::size_t num_procs) {
  FASTSCHED_REQUIRE(num_procs > 0, "need at least one processor");
  const std::size_t v = g.num_nodes();
  FASTSCHED_ASSERT(list.size() == v);

  sched::Schedule schedule(v, num_procs);
  std::vector<ProcId> assignment(v, sched::kUnassignedProc);
  std::vector<Cost> finish(v, 0.0);
  std::vector<sched::Timeline> timelines(num_procs);
  std::size_t procs_touched = 0;

  std::vector<ProcId> candidates;
  std::vector<bool> candidate_mark(num_procs, false);

  for (const NodeId n : list) {
    candidates.clear();
    for (const graph::Adjacency& q : g.predecessors(n)) {
      const ProcId pp = assignment[q.node];
      if (!candidate_mark[pp]) {
        candidate_mark[pp] = true;
        candidates.push_back(pp);
      }
    }
    if (procs_touched < num_procs) {
      const auto fresh = static_cast<ProcId>(procs_touched);
      if (!candidate_mark[fresh]) {
        candidate_mark[fresh] = true;
        candidates.push_back(fresh);
      }
    }
    if (candidates.empty()) {
      candidate_mark[0] = true;
      candidates.push_back(0);
    }

    const Cost w = g.weight(n);
    ProcId best_proc = candidates.front();
    Cost best_start = 0.0;
    bool have_best = false;
    for (const ProcId p : candidates) {
      Cost dat = 0.0;
      for (const graph::Adjacency& q : g.predecessors(n)) {
        dat = std::max(dat,
                       finish[q.node] + (assignment[q.node] == p ? 0.0 : q.cost));
      }
      const Cost start = timelines[p].earliest_fit(dat, w);
      if (!have_best || graph::definitely_less(start, best_start)) {
        have_best = true;
        best_start = start;
        best_proc = p;
      }
    }
    for (const ProcId p : candidates) candidate_mark[p] = false;

    if (best_proc == static_cast<ProcId>(procs_touched)) ++procs_touched;
    assignment[n] = best_proc;
    finish[n] = best_start + w;
    timelines[best_proc].insert(best_start, finish[n]);
    schedule.assign(n, best_proc, best_start, finish[n]);
  }
  return schedule;
}

}  // namespace fastsched::fast
