#include "fast/fast.hpp"

#include "analysis/bounds.hpp"
#include "fast/evaluator.hpp"

namespace fastsched::fast {

FastResult run_fast(const TaskGraph& g, const FastOptions& options) {
  FastResult result;
  if (g.num_nodes() == 0) return result;

  const std::size_t num_procs =
      options.num_procs > 0 ? options.num_procs : g.num_nodes();

  // Phase 0: node attributes and the static scheduling list.
  const graph::LevelInfo levels = graph::compute_levels(g);
  const std::vector<graph::NodeClass> classes =
      graph::classify_nodes(g, levels);
  result.list = build_list(g, levels, classes, options.list_policy);

  // Phase 1: initial schedule.
  InitialScheduleResult initial =
      initial_schedule(g, result.list, num_procs);
  result.initial_length = initial.length;
  result.assignment = std::move(initial.assignment);

  // Phase 2: local search over the blocking-node list (IBNs + OBNs).
  for (const NodeId n : result.list) {
    if (classes[n] != graph::NodeClass::kCpn) result.blocking_list.push_back(n);
  }

  IncrementalEvaluator evaluator(g, result.list, num_procs,
                                 IncrementalEvaluator::kAutoInterval,
                                 options.replay);
  if (options.reject_tails) {
    analysis::RejectionTails tails = analysis::make_rejection_tails(g, num_procs);
    evaluator.set_reject_tails(std::move(tails.tail), tails.floor);
  }
  Cost length = result.initial_length;
  Rng rng(options.seed);
  LocalSearchOptions search_options;
  search_options.max_steps = options.max_steps;
  search_options.policy = options.neighborhood;
  result.search = local_search(evaluator, result.blocking_list,
                               result.assignment, length, search_options, rng);
  result.final_length = length;
  FASTSCHED_ASSERT_MSG(
      !graph::definitely_less(result.initial_length, result.final_length),
      "local search must never worsen the schedule");
  return result;
}

Schedule to_schedule(const TaskGraph& g, const FastResult& r,
                     std::size_t num_procs) {
  AssignmentEvaluator evaluator(g, r.list, num_procs);
  return evaluator.materialize(r.assignment);
}

Schedule FastScheduler::run(const TaskGraph& g,
                            const sched::SchedulerOptions& o) const {
  FastOptions opts = options_;
  if (o.num_procs > 0) opts.num_procs = o.num_procs;
  opts.seed = o.seed;
  const std::size_t num_procs =
      opts.num_procs > 0 ? opts.num_procs : g.num_nodes();
  if (g.num_nodes() == 0) return Schedule(0, num_procs);
  const FastResult result = run_fast(g, opts);
  return to_schedule(g, result, num_procs);
}

}  // namespace fastsched::fast
