#pragma once

/// \file annealing.hpp
/// Simulated-annealing refinement — an extension addressing the paper's
/// closing concession that FAST's hill-climbing search "may get stuck in a
/// poor local minimum" (§6). The move set is identical to FAST's (transfer
/// one blocking node to another processor, evaluated by one suffix-restart
/// list replay), but worsening moves are accepted with probability
/// exp(−Δ/T) under a geometric cooling schedule, and the best assignment
/// ever visited is returned.

#include <cstdint>

#include "common/rng.hpp"
#include "fast/incremental_evaluator.hpp"
#include "sched/scheduler.hpp"

namespace fastsched::fast {

struct AnnealingOptions {
  /// Total moves attempted.
  int max_steps = 4096;
  /// Initial temperature as a fraction of the initial schedule length
  /// (scale-free). Tuned low: the transfer landscape rewards near-greedy
  /// walks with occasional small uphill hops, not hot wandering.
  double initial_temperature_fraction = 0.005;
  /// Geometric cooling applied every `steps_per_level` moves.
  double cooling = 0.95;
  int steps_per_level = 64;
  /// Candidate-replay engine. Annealing probes are unbounded (Metropolis
  /// needs the exact Δ even uphill), so early rejection never fires here
  /// and the event path's win is pure frontier-vs-suffix; results are
  /// bit-identical across policies.
  ReplayPolicy replay = ReplayPolicy::kAuto;
};

struct AnnealingStats {
  int steps = 0;
  int accepted = 0;        ///< moves kept (including uphill)
  int uphill_accepted = 0; ///< worsening moves kept
  Cost initial_length = 0;
  Cost best_length = 0;
};

/// Refines `assignment` in place and leaves it at the best solution
/// visited. `blocking` defines the movable node set (as in FAST);
/// `length` must match `assignment` on entry and is updated. The
/// evaluator is reset to `assignment` on entry; candidate moves replay
/// only the suffix after the moved node's list position.
AnnealingStats anneal(IncrementalEvaluator& evaluator,
                      std::span<const NodeId> blocking,
                      std::vector<ProcId>& assignment, Cost& length,
                      const AnnealingOptions& options, Rng& rng);

/// Scheduler adapter: FAST phases 0–1, then annealing instead of
/// hill-climbing.
class AnnealingFastScheduler final : public sched::Scheduler {
 public:
  explicit AnnealingFastScheduler(AnnealingOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "FAST-SA"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& o) const override;

 private:
  AnnealingOptions options_;
};

}  // namespace fastsched::fast
