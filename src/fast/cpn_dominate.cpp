#include "fast/cpn_dominate.hpp"

#include <algorithm>
#include <queue>

namespace fastsched::fast {
namespace {

using graph::Adjacency;
using graph::approx_equal;
using graph::Cost;

/// Priority used when choosing which unlisted ancestor to include first:
/// larger b-level wins, ties go to the smaller t-level (paper step (5)),
/// remaining ties to the smaller id for determinism.
struct AncestorPriority {
  const LevelInfo& levels;
  bool operator()(NodeId a, NodeId b) const {
    const Cost bla = levels.b_level[a];
    const Cost blb = levels.b_level[b];
    if (!approx_equal(bla, blb)) return bla > blb;
    const Cost tla = levels.t_level[a];
    const Cost tlb = levels.t_level[b];
    if (!approx_equal(tla, tlb)) return tla < tlb;
    return a < b;
  }
};

}  // namespace

std::vector<NodeId> build_cpn_dominate_list(
    const TaskGraph& g, const LevelInfo& levels,
    const std::vector<NodeClass>& classes) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_REQUIRE(levels.is_cpn.size() == v && classes.size() == v,
                    "levels/classes computed for a different graph");

  const AncestorPriority prio{levels};

  // Pre-sort each node's parents by inclusion priority once, so the
  // "largest b-level unlisted parent" query is a cursor advance. Flat
  // CSR storage: per-node vectors would pay one heap allocation per
  // node, which dominates list construction at v ~ 10^6.
  std::vector<std::size_t> parent_off(v + 1, 0);
  for (NodeId n = 0; n < v; ++n) {
    parent_off[n + 1] = parent_off[n] + g.in_degree(n);
  }
  std::vector<NodeId> sorted_parents(parent_off[v]);
  for (NodeId n = 0; n < v; ++n) {
    std::size_t o = parent_off[n];
    for (const Adjacency& a : g.predecessors(n)) sorted_parents[o++] = a.node;
    std::sort(sorted_parents.begin() + static_cast<std::ptrdiff_t>(parent_off[n]),
              sorted_parents.begin() + static_cast<std::ptrdiff_t>(o), prio);
  }
  std::vector<std::size_t> cursor(v, 0);

  std::vector<NodeId> list;
  list.reserve(v);
  std::vector<bool> in_list(v, false);

  const auto place = [&](NodeId n) {
    in_list[n] = true;
    list.push_back(n);
  };

  // Includes `target` after recursively including all of its unlisted
  // ancestors, highest b-level first (iterative to bound stack depth).
  std::vector<NodeId> stack;
  const auto include_with_ancestors = [&](NodeId target) {
    if (in_list[target]) return;
    stack.push_back(target);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      if (in_list[n]) {
        stack.pop_back();
        continue;
      }
      auto& cur = cursor[n];
      const std::size_t degree = parent_off[n + 1] - parent_off[n];
      const NodeId* ps = sorted_parents.data() + parent_off[n];
      while (cur < degree && in_list[ps[cur]]) ++cur;
      if (cur == degree) {
        place(n);
        stack.pop_back();
      } else {
        stack.push_back(ps[cur]);
      }
    }
  };

  // Steps (1)-(8): CPNs in path order, each preceded by its in-branch
  // ancestors.
  for (const NodeId cpn : levels.cpns_in_order) include_with_ancestors(cpn);

  // Step (9): append OBNs in decreasing b-level order. The b-level of a
  // parent always >= that of a child, so this is topologically safe; exact
  // ties (possible only with zero weights/costs) are broken by topological
  // rank.
  std::vector<std::size_t> topo_rank(v);
  {
    const auto topo = g.topological_order();
    for (std::size_t i = 0; i < topo.size(); ++i) topo_rank[topo[i]] = i;
  }
  std::vector<NodeId> obns;
  for (NodeId n = 0; n < v; ++n) {
    if (classes[n] == NodeClass::kObn) obns.push_back(n);
  }
  std::sort(obns.begin(), obns.end(), [&](NodeId a, NodeId b) {
    const Cost bla = levels.b_level[a];
    const Cost blb = levels.b_level[b];
    if (!approx_equal(bla, blb)) return bla > blb;
    return topo_rank[a] < topo_rank[b];
  });
  for (const NodeId n : obns) {
    FASTSCHED_ASSERT_MSG(!in_list[n], "OBN already placed by CPN pass");
    place(n);
  }

  FASTSCHED_ASSERT_MSG(list.size() == v, "CPN-Dominate list missed nodes");
  return list;
}

std::vector<NodeId> build_list(const TaskGraph& g, const LevelInfo& levels,
                               const std::vector<NodeClass>& classes,
                               ListPolicy policy) {
  if (policy == ListPolicy::kCpnDominate) {
    return build_cpn_dominate_list(g, levels, classes);
  }

  // Single-priority policies: Kahn's algorithm with a priority queue over
  // the ready set, which always yields a topological order.
  const std::size_t v = g.num_nodes();
  const auto priority = [&](NodeId n) -> Cost {
    switch (policy) {
      case ListPolicy::kBLevel:
        return levels.b_level[n];
      case ListPolicy::kTLevel:
        return -levels.t_level[n];
      case ListPolicy::kStaticLevel:
        return levels.static_level[n];
      case ListPolicy::kCpnDominate:
        break;
    }
    FASTSCHED_ASSERT(false);
    return 0;
  };

  using Entry = std::pair<Cost, NodeId>;  // (-priority, id) for min-heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  std::vector<std::size_t> pending(v);
  for (NodeId n = 0; n < v; ++n) {
    pending[n] = g.in_degree(n);
    if (pending[n] == 0) ready.emplace(-priority(n), n);
  }

  std::vector<NodeId> list;
  list.reserve(v);
  while (!ready.empty()) {
    const NodeId n = ready.top().second;
    ready.pop();
    list.push_back(n);
    for (const Adjacency& s : g.successors(n)) {
      if (--pending[s.node] == 0) ready.emplace(-priority(s.node), s.node);
    }
  }
  FASTSCHED_ASSERT(list.size() == v);
  return list;
}

bool is_topological_list(const TaskGraph& g, const std::vector<NodeId>& list) {
  if (list.size() != g.num_nodes()) return false;
  std::vector<std::size_t> pos(g.num_nodes(), 0);
  std::vector<bool> seen(g.num_nodes(), false);
  for (std::size_t i = 0; i < list.size(); ++i) {
    const NodeId n = list[i];
    if (n >= g.num_nodes() || seen[n]) return false;
    seen[n] = true;
    pos[n] = i;
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const graph::Adjacency& s : g.successors(n)) {
      if (pos[n] >= pos[s.node]) return false;
    }
  }
  return true;
}

}  // namespace fastsched::fast
