#include "fast/incremental_evaluator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>

#include "fast/cpn_dominate.hpp"

/// Best-effort cache-line prefetch hint; a no-op on compilers without
/// the builtin. Only ever a hint — correctness never depends on it.
#if defined(__GNUC__) || defined(__clang__)
#define FASTSCHED_PREFETCH(addr) __builtin_prefetch((addr))
#else
#define FASTSCHED_PREFETCH(addr) ((void)sizeof(addr))
#endif

namespace fastsched::fast {

namespace {

/// How many list positions ahead the hot scans prefetch the per-node
/// state they are about to read. Deep enough to cover DRAM latency at a
/// few nanoseconds per position of scan work, shallow enough that the
/// lines are still resident when the scan arrives.
constexpr std::size_t kPrefetchAhead = 8;

/// K = max(32, ceil(p / 8)): checkpoint construction then stores at most
/// ~8 doubles per list position, so reset() stays O(v + e) in spirit even
/// on an unbounded pool, while a restart rescans < K extra positions.
std::size_t auto_interval(std::size_t num_procs) {
  return std::max<std::size_t>(32, (num_procs + 7) / 8);
}

/// FASTSCHED_REPLAY overrides the constructor's replay policy for every
/// evaluator in the process — the lever the determinism diff and the CI
/// event-path shard use to force one engine without code changes.
ReplayPolicy resolve_policy(ReplayPolicy requested) {
  const char* env = std::getenv("FASTSCHED_REPLAY");
  if (env == nullptr || *env == '\0') return requested;
  const std::string_view value{env};
  if (value == "contiguous") return ReplayPolicy::kContiguous;
  if (value == "event") return ReplayPolicy::kEvent;
  if (value == "auto") return ReplayPolicy::kAuto;
  FASTSCHED_REQUIRE(false,
                    "FASTSCHED_REPLAY must be 'contiguous', 'event', or "
                    "'auto'");
  return requested;
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const TaskGraph& g,
                                           std::vector<NodeId> list,
                                           std::size_t num_procs,
                                           std::size_t checkpoint_interval,
                                           ReplayPolicy policy)
    : graph_(&g),
      list_(std::move(list)),
      num_procs_(num_procs),
      interval_(checkpoint_interval == kAutoInterval
                    ? auto_interval(num_procs)
                    : checkpoint_interval),
      assignment_(g.num_nodes(), sched::kUnassignedProc),
      finish_(g.num_nodes(), 0.0),
      pos_(g.num_nodes(), 0),
      max_succ_pos_(g.num_nodes(), 0),
      scratch_finish_(g.num_nodes(), 0.0),
      scratch_ready_(num_procs, 0.0),
      ready_stamp_(num_procs, 0),
      touched_stamp_(num_procs, 0) {
  FASTSCHED_REQUIRE(num_procs_ > 0, "need at least one processor");
  FASTSCHED_REQUIRE(is_topological_list(g, list_),
                    "evaluator list must be a topological order of the graph");
  const std::size_t v = list_.size();
  num_checkpoints_ = v == 0 ? 0 : (v - 1) / interval_ + 1;
  cp_ready_.assign(num_checkpoints_ * num_procs_, 0.0);
  cp_prefix_len_.assign(num_checkpoints_, 0.0);
  chunk_max_.assign(num_checkpoints_, 0.0);
  suffix_max_.assign(num_checkpoints_ + 1, 0.0);
  scan_touched_.reserve(num_procs_);
  touched_.reserve(num_procs_);
  for (std::size_t i = 0; i < v; ++i) {
    pos_[list_[i]] = static_cast<std::uint32_t>(i);
  }
  for (NodeId n = 0; n < v; ++n) {
    for (const graph::Adjacency& s : g.successors(n)) {
      max_succ_pos_[n] = std::max(max_succ_pos_[n], pos_[s.node]);
    }
  }
  // Exact successor-cone cardinalities by a blocked bitset sweep: each
  // pass covers 64 consecutive list positions and walks the list in
  // reverse topological order, so every node's block mask is the union
  // of its successors' masks plus their own bits — one OR per edge and
  // one popcount per node per pass, O((v + e) * v / 64) total. The mask
  // array is rewritten before it is read within every pass (successors
  // sit at later positions, visited first), so no per-pass clearing.
  if (v <= kConeExactNodes && v > 0) {
    cone_size_.assign(g.num_nodes(), 0);
    std::vector<std::uint64_t> block_mask(g.num_nodes(), 0);
    for (std::size_t lo = 0; lo < v; lo += 64) {
      const std::size_t hi = std::min(v, lo + 64);
      for (std::size_t i = v; i-- > 0;) {
        const NodeId n = list_[i];
        std::uint64_t mask = 0;
        for (const graph::Adjacency& s : g.successors(n)) {
          mask |= block_mask[s.node];
          const std::size_t sp = pos_[s.node];
          if (sp >= lo && sp < hi) mask |= std::uint64_t{1} << (sp - lo);
        }
        block_mask[n] = mask;
        cone_size_[n] += static_cast<std::uint32_t>(std::popcount(mask));
      }
    }
  }
  // Position-indexed predecessor stream (doc at the member): one pass,
  // O(v + e), copying each node's predecessors in predecessor order.
  epos_off_.resize(v + 1);
  epos_off_[0] = 0;
  epos_node_.reserve(g.num_edges());
  epos_cost_.reserve(g.num_edges());
  for (std::size_t i = 0; i < v; ++i) {
    for (const graph::Adjacency& q : g.predecessors(list_[i])) {
      epos_node_.push_back(q.node);
      epos_cost_.push_back(q.cost);
    }
    epos_off_[i + 1] = epos_node_.size();
  }
  policy_ = resolve_policy(policy);
  event_.attach(graph_, list_, pos_, num_procs_, interval_);
  sparse_dirty_.reserve(64);
}

void IncrementalEvaluator::set_reject_tails(std::vector<Cost> tails,
                                            Cost static_floor) {
  FASTSCHED_REQUIRE(tails.empty() || tails.size() == graph_->num_nodes(),
                    "reject tails must be empty or one entry per node");
  reject_tails_ = std::move(tails);
  static_floor_ = static_floor;
}

Cost IncrementalEvaluator::reset(std::span<const ProcId> assignment) {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  assignment_.assign(assignment.begin(), assignment.end());
  pending_ = Pending::kNone;
  sparse_dirty_.clear();  // every finish is rewritten below
  event_.invalidate();  // chains rebuilt lazily by the next event probe

  // Full scan, pausing at each checkpoint boundary to snapshot the ready
  // vector and the running length (state strictly *before* the boundary
  // position).
  const std::size_t v = list_.size();
  std::fill(scratch_ready_.begin(), scratch_ready_.end(), 0.0);
  ++scan_epoch_;  // invalidate stamps: scratch_ready_ is reused raw here
  Cost running = 0.0;
  for (std::size_t cp = 0; cp < num_checkpoints_; ++cp) {
    const std::size_t begin = cp * interval_;
    std::copy(scratch_ready_.begin(), scratch_ready_.end(),
              cp_ready_.begin() + static_cast<std::ptrdiff_t>(cp * num_procs_));
    cp_prefix_len_[cp] = running;
    Cost chunk_running = 0.0;
    const auto out = detail::replay_list(
        *graph_, list_, begin, std::min(begin + interval_, v), running,
        detail::kNoBound, [&](NodeId m) { return assignment_[m]; },
        [&](NodeId m) { return finish_[m]; },
        [&](ProcId p) -> Cost& { return scratch_ready_[p]; },
        [&](std::size_t, NodeId m, ProcId, Cost, Cost fin) {
          finish_[m] = fin;
          chunk_running = std::max(chunk_running, fin);
        });
    chunk_max_[cp] = chunk_running;
    running = out.length;
  }
  suffix_max_[num_checkpoints_] = 0.0;
  for (std::size_t cp = num_checkpoints_; cp-- > 0;) {
    suffix_max_[cp] = std::max(suffix_max_[cp + 1], chunk_max_[cp]);
  }
  length_ = running;
  valid_ = true;
  return length_;
}

void IncrementalEvaluator::restore_pending() noexcept {
  // Both replay paths log only the nodes whose finish they changed, so
  // a revert costs O(changed) — not O(scanned).
  for (const NodeId m : sparse_dirty_) finish_[m] = scratch_finish_[m];
  sparse_dirty_.clear();
}

bool IncrementalEvaluator::ready_matches(std::size_t cp_restart,
                                         std::size_t cp_b,
                                         std::span<const ProcId> extra) const {
  // Procs outside scan_touched_ and `extra` host no node in [restart, b)
  // under either assignment, so their ready time equals the committed
  // row at b by construction. Comparisons are bitwise: equality here
  // certifies the downstream replay is the committed one to the bit.
  const Cost* seed = checkpoint_ready(cp_restart);
  const Cost* row = checkpoint_ready(cp_b);
  for (const ProcId p : scan_touched_) {
    if (scratch_ready_[p] != row[p]) return false;
  }
  for (const ProcId p : extra) {
    const Cost cur =
        ready_stamp_[p] == scan_epoch_ ? scratch_ready_[p] : seed[p];
    if (cur != row[p]) return false;
  }
  return true;
}

detail::ReplayOutcome IncrementalEvaluator::scan_suffix(
    std::size_t restart, Cost bound, std::size_t converge_after,
    std::span<const ProcId> lost_procs) {
  FASTSCHED_ASSERT(sparse_dirty_.empty());
  const std::size_t v = list_.size();
  const std::size_t cp_restart = checkpoint_of(restart);
  const Cost* seed_ready = checkpoint_ready(cp_restart);
  ++scan_epoch_;
  scan_touched_.clear();
  scan_changed_ = 0;
  // Max successor position over nodes whose finish changed; once the
  // boundary passes it, no changed value can reach the unscanned suffix.
  std::size_t horizon = 0;
  // fastsched: hot — per-probe suffix replay; these lambdas run once per
  // edge and per node for every evaluate_move probe.
  //
  // Edge metadata comes from the position-indexed stream (epos_), so the
  // scan's sequential walk reads it sequentially; the remaining random
  // reads — each predecessor's finish and assignment — are prefetched
  // kPrefetchAhead positions early through the same stream. A parent
  // whose finish is rewritten between hint and use just turns the hint
  // into a no-op (the line is resident either way); values and order
  // are untouched, so the replay stays bit-identical to the oracle.
  const auto preds_of = [&](std::size_t idx, NodeId) {
    const std::size_t pf = idx + kPrefetchAhead;
    if (pf < v) {
      for (std::size_t k = epos_off_[pf]; k < epos_off_[pf + 1]; ++k) {
        FASTSCHED_PREFETCH(&finish_[epos_node_[k]]);
        FASTSCHED_PREFETCH(&assignment_[epos_node_[k]]);
      }
    }
    const std::size_t lo = epos_off_[idx];
    return detail::EdgeStream{epos_node_.data() + lo, epos_cost_.data() + lo,
                              epos_off_[idx + 1] - lo};
  };
  const auto proc_of = [&](NodeId m) { return assignment_[m]; };
  // Positions >= restart are rewritten in place by this scan before any
  // successor reads them (the list is topological); earlier positions
  // still hold the committed prefix. One array, no committed-vs-in-scan
  // branch in the per-edge hot path.
  const auto finish_of = [&](NodeId m) { return finish_[m]; };
  const auto ready_ref = [&](ProcId p) -> Cost& {
    // Lazily seed from the checkpoint on first touch; the epoch stamp
    // replaces an O(p) copy per scan.
    if (ready_stamp_[p] != scan_epoch_) {
      ready_stamp_[p] = scan_epoch_;
      scratch_ready_[p] = seed_ready[p];
      scan_touched_.push_back(p);
    }
    return scratch_ready_[p];
  };
  const auto emit = [&](std::size_t, NodeId m, ProcId, Cost start, Cost fin) {
    const Cost old = finish_[m];
    if (fin != old) {
      scratch_finish_[m] = old;  // sparse undo log: changed nodes only
      // NOLINT-fastsched(hot-alloc): sparse_dirty_ is reserved and keeps its capacity across probes
      sparse_dirty_.push_back(m);
      finish_[m] = fin;
      ++scan_changed_;
      horizon = std::max<std::size_t>(horizon, max_succ_pos_[m]);
    }
    if (m == pending_node_) pending_start_ = start;
  };

  // Backward bounds (set_reject_tails) sharpen the per-position abort
  // floor; they cannot change the accept/reject decision (doc in
  // replay_core.hpp), only make rejected probes abort earlier.
  const Cost* tails = reject_tails_.empty() ? nullptr : reject_tails_.data();
  const auto tail_of = [&](NodeId m) {
    return tails != nullptr ? tails[m] : Cost{0};
  };

  Cost running = cp_prefix_len_[cp_restart];
  std::size_t i = restart;
  while (i < v) {
    const std::size_t chunk_end =
        std::min(v, (checkpoint_of(i) + 1) * interval_);
    const auto out = detail::replay_list_edges(*graph_, list_, i, chunk_end,
                                               running, bound, preds_of,
                                               proc_of, finish_of, ready_ref,
                                               emit, tail_of);
    running = out.length;
    if (out.aborted) {
      counters_.positions_scanned += out.stopped_at - restart;
      return out;
    }
    i = chunk_end;
    if (i >= v) break;
    // Convergence early-exit: past the last changed assignment, if every
    // changed finish has all successors before this boundary and the
    // candidate ready times bitwise-match the committed checkpoint row,
    // the replay of [i, v) is the committed one — fold in its maximum.
    if (i > converge_after && horizon < i &&
        ready_matches(cp_restart, checkpoint_of(i), lost_procs)) {
      const Cost final_length = std::max(running, suffix_max_[checkpoint_of(i)]);
      counters_.positions_scanned += i - restart;
      ++counters_.converged;
      const bool rejected =
          bound != detail::kNoBound && !graph::definitely_less(final_length, bound);
      return {final_length, i, rejected};
    }
  }
  counters_.positions_scanned += v - restart;
  return {running, v, false};
  // fastsched: end-hot
}

bool IncrementalEvaluator::prefer_event(std::size_t suffix, NodeId n) const {
  if (policy_ == ReplayPolicy::kContiguous) return false;
  if (policy_ == ReplayPolicy::kEvent) return true;
  // Auto: the contiguous restart already amortizes short suffixes well
  // (and its convergence exit fires within a couple of chunks), so the
  // worklist — with its heap and chain bookkeeping per processed node —
  // only wins when the suffix dwarfs the expected frontier. The frontier
  // estimate is the EWMA of affected-node counts observed on past probes
  // (either engine); before any observation it is seeded from the moved
  // node's precomputed successor-cone cardinality — an upper bound on
  // the nodes a transfer can perturb through precedence alone, which
  // routes wide-cone first probes to the contiguous scan instead of
  // betting on a frontier the out-degree cannot see. Out-degree remains
  // the fallback above the cone-exactness cap.
  if (suffix < 2 * interval_) return false;
  const double cone =
      n < cone_size_.size()
          ? static_cast<double>(cone_size_[n])
          : static_cast<double>(graph_->successors(n).size());
  const double expected = ewma_affected_ > 0.0 ? ewma_affected_ : 8.0 + cone;
  return static_cast<double>(suffix) >
         4.0 * (expected + static_cast<double>(interval_));
}

std::optional<Cost> IncrementalEvaluator::evaluate_move(NodeId n, ProcId target,
                                                        Cost bound) {
  FASTSCHED_ASSERT(valid_);
  FASTSCHED_ASSERT(n < assignment_.size() && target < num_procs_);
  ++counters_.moves;
  restore_pending();  // a new probe replaces any un-reverted predecessor
  pending_node_ = n;
  const ProcId original = assignment_[n];

  if (bound != detail::kNoBound &&
      !graph::definitely_less(static_floor_, bound)) {
    // The binding static certificate already rules out any strict
    // improvement on `bound`: O(1) rejection, no replay at all. Sound
    // because every candidate length is >= the static lower bound, and
    // decision-identical to running either replay to completion.
    ++counters_.early_rejected;
    pending_ = Pending::kNone;
    return std::nullopt;
  }

  const std::size_t pos = pos_[n];
  const std::size_t restart = checkpoint_of(pos) * interval_;
  if (prefer_event(list_.size() - restart, n)) {
    return evaluate_move_event(n, target, original, bound);
  }

  const ProcId lost[] = {original};
  assignment_[n] = target;  // visible to the scan only
  const auto out = scan_suffix(restart, bound, pos, lost);
  assignment_[n] = original;  // committed view restored before returning

  // Contiguous probes teach the auto frontier estimate too: the number
  // of finish times the scan actually changed is (to within replay-order
  // boundary effects) the frontier the worklist would have popped.
  // Without this feed, a cone-seeded contiguous start would starve the
  // EWMA forever and kAuto could never discover that a wide static cone
  // collapses to a narrow dynamic frontier. Clamped to 1 so a no-op
  // probe still counts as an observation rather than re-arming the
  // unset-sentinel (0.0) seed.
  const double affected =
      static_cast<double>(std::max<std::uint64_t>(scan_changed_, 1));
  ewma_affected_ = ewma_affected_ == 0.0
                       ? affected
                       : 0.875 * ewma_affected_ + 0.125 * affected;

  if (out.aborted) {
    restore_pending();  // short by construction: the bound cut the scan
    ++counters_.early_rejected;
    pending_ = Pending::kNone;
    return std::nullopt;
  }
  pending_ = Pending::kMove;
  pending_target_ = target;
  pending_original_ = original;
  pending_restart_ = restart;
  pending_stop_ = out.stopped_at;
  pending_length_ = out.length;
  return out.length;
}

std::optional<Cost> IncrementalEvaluator::evaluate_move_event(NodeId n,
                                                              ProcId target,
                                                              ProcId original,
                                                              Cost bound) {
  if (!event_.ready()) event_.rebuild(assignment_);
  ++counters_.event_moves;

  EventReplay::Probe probe;
  probe.node = n;
  probe.from = original;
  probe.to = target;
  probe.bound = bound;
  // The committed prefix before the restart checkpoint is untouched by
  // the move, so its running max — the same seed the contiguous scan
  // folds in — is an a-priori floor on the candidate length.
  const std::size_t cp_restart = checkpoint_of(pos_[n]);
  probe.floor = std::max(static_floor_, cp_prefix_len_[cp_restart]);
  probe.reject_tail = reject_tails_;

  assignment_[n] = target;  // visible to the replay only
  const auto out = event_.replay(
      probe, assignment_, finish_, scratch_finish_, sparse_dirty_,
      {cp_prefix_len_, chunk_max_, suffix_max_}, length_);
  assignment_[n] = original;  // committed view restored before returning
  counters_.event_processed += out.processed;

  // Frontier-size estimate for the auto heuristic: deterministic EWMA
  // over every event probe, aborted or not. An aborted probe's pop count
  // under-reports the full frontier, but it is exactly the work this
  // probe paid — and feeding it in is what lets kAuto learn to abandon
  // the event path on wide-cone graphs where bounded probes keep
  // aborting *late* (otherwise the estimate never updates and every
  // probe repays the expensive worklist).
  ewma_affected_ = ewma_affected_ == 0.0
                       ? static_cast<double>(out.processed)
                       : 0.875 * ewma_affected_ +
                             0.125 * static_cast<double>(out.processed);
  if (out.aborted) {
    restore_pending();  // sparse by construction
    ++counters_.early_rejected;
    pending_ = Pending::kNone;
    return std::nullopt;
  }
  pending_ = Pending::kEventMove;
  pending_target_ = target;
  pending_original_ = original;
  pending_restart_ = cp_restart * interval_;
  // Fallback commit-walk horizon; commit() tightens it to the chain-gap
  // bound past the changed nodes when the committed chains are live.
  pending_stop_ = list_.size();
  pending_length_ = out.length;
  pending_start_ = out.moved_start;
  return out.length;
}

Cost IncrementalEvaluator::pending_start() const {
  FASTSCHED_ASSERT(pending_ != Pending::kNone);
  return pending_start_;
}

void IncrementalEvaluator::revert() noexcept {
  restore_pending();
  pending_ = Pending::kNone;
}

Cost IncrementalEvaluator::commit() {
  FASTSCHED_ASSERT(pending_ != Pending::kNone);
  assignment_[pending_node_] = pending_target_;
  const ProcId lost[] = {pending_original_};
  std::size_t stop = pending_stop_;
  // The next node on the losing chain, read before the splice: rows for
  // the losing processor are stale up to there.
  const NodeId from_next = event_.ready()
                               ? event_.next_on_proc(pending_node_)
                               : graph::kInvalidNode;
  // Keep the event engine's slot chains in sync with the committed
  // assignment (O(gap) splice; no-op when stale or on-processor).
  event_.apply_transfer(pending_node_, pending_original_, pending_target_,
                        assignment_);
  if (pending_ == Pending::kEventMove && event_.ready()) {
    // Bounded commit walk: a checkpoint ready row is stale only for a
    // processor whose ready *progression* changed before it, and a
    // transfer perturbs a processor's progression only between a changed
    // node (or a splice point) and the next node on the same chain —
    // that node's unchanged finish re-anchors every later row. Fold that
    // horizon over the losing chain, the moved node's new chain, and
    // every changed node, then round up to a checkpoint boundary so the
    // walked chunk maxima stay whole-chunk. Chunks at or past the stop
    // hold no changed finish (every change is at most at a changed
    // node's own position, strictly below its chain bound), so the walk
    // — formerly O(v) per accepted event move — ends at the horizon.
    const std::size_t v = list_.size();
    std::size_t req = static_cast<std::size_t>(pos_[pending_node_]) + 1;
    const auto fold_next = [&](NodeId nx) {
      req = std::max(req, nx == graph::kInvalidNode
                              ? v
                              : static_cast<std::size_t>(pos_[nx]) + 1);
    };
    fold_next(from_next);
    fold_next(event_.next_on_proc(pending_node_));
    for (const NodeId m : sparse_dirty_) fold_next(event_.next_on_proc(m));
    stop = std::min(v, ((req + interval_ - 1) / interval_) * interval_);
  }
  // Adopt the in-place candidate values: drop the undo log.
  sparse_dirty_.clear();
  commit_scan(pending_restart_, stop, lost, pending_length_);
  pending_ = Pending::kNone;
  ++counters_.commits;
  return length_;
}

void IncrementalEvaluator::commit_scan(std::size_t restart, std::size_t stop,
                                       std::span<const ProcId> lost_procs,
                                       Cost candidate_length) {
  // Fold the scan's in-place suffix into committed state. No timing
  // recurrence runs here: finish times were already computed by the
  // scan, so the walk only replays their per-processor ready progression
  // to refresh the checkpoints in (restart, stop). Finish times, ready
  // rows, and chunk maxima at and beyond `stop` are provably unchanged
  // (a converged scan certified it; stop == v otherwise), so the walk
  // ends there and only the O(v / K) prefix-length and suffix-max
  // tables are rebuilt from the per-chunk maxima.
  //
  // A checkpoint's ready entry is stale only for processors hosting a
  // replayed node before that boundary — or for `lost_procs`, which a
  // committed transfer removed nodes from; both are seeded/overwritten
  // in scratch_ready_ under the touch epoch, and untouched processors
  // keep their (still valid) committed checkpoint entries.
  const std::size_t cp_restart = checkpoint_of(restart);
  const Cost* restart_ready = checkpoint_ready(cp_restart);
  // fastsched: hot — commit walk over the accepted suffix, one pass per
  // accepted move.
  ++touch_epoch_;
  touched_.clear();
  for (const ProcId p : lost_procs) {
    if (touched_stamp_[p] != touch_epoch_) {
      touched_stamp_[p] = touch_epoch_;
      touched_.push_back(p);
      scratch_ready_[p] = restart_ready[p];
    }
  }
  Cost running = cp_prefix_len_[cp_restart];
  Cost chunk_running = 0.0;
  for (std::size_t i = restart; i < stop; ++i) {
    // The walk reads two node-indexed arrays through a list-ordered
    // stream; hint the lines a few positions ahead (pure prefetch —
    // never affects the folded values).
    if (i + kPrefetchAhead < stop) {
      const NodeId ahead = list_[i + kPrefetchAhead];
      FASTSCHED_PREFETCH(&assignment_[ahead]);
      FASTSCHED_PREFETCH(&finish_[ahead]);
    }
    if (i != restart && i % interval_ == 0) {
      const std::size_t cp = i / interval_;
      chunk_max_[cp - 1] = chunk_running;
      chunk_running = 0.0;
      Cost* row = cp_ready_.data() + cp * num_procs_;
      for (const ProcId p : touched_) row[p] = scratch_ready_[p];
    }
    const NodeId m = list_[i];
    const ProcId p = assignment_[m];
    if (touched_stamp_[p] != touch_epoch_) {
      touched_stamp_[p] = touch_epoch_;
      touched_.push_back(p);
    }
    const Cost fin = finish_[m];  // the scan already wrote it in place
    scratch_ready_[p] = fin;
    chunk_running = std::max(chunk_running, fin);
    running = std::max(running, fin);
  }
  const std::size_t last_walked = checkpoint_of(stop - 1);
  chunk_max_[last_walked] = chunk_running;
  // Prefix lengths follow from the chunk maxima (std::max folds are
  // exact, so this matches a position-by-position walk to the bit).
  // Chunk maxima past the walk are untouched, so once a recomputed
  // entry reproduces its stored value every later entry would too —
  // the rebuild stops there instead of running O(v / K) to the end.
  for (std::size_t cp = cp_restart + 1; cp < num_checkpoints_; ++cp) {
    const Cost value = std::max(cp_prefix_len_[cp - 1], chunk_max_[cp - 1]);
    if (cp > last_walked + 1 && value == cp_prefix_len_[cp]) break;
    cp_prefix_len_[cp] = value;
  }
  // Same for the suffix maxima, downward: entries past the last walked
  // chunk cover only unchanged chunks, and below the restart the fold
  // stabilizes the first time a value reproduces.
  for (std::size_t cp = last_walked + 1; cp-- > 0;) {
    const Cost value = std::max(suffix_max_[cp + 1], chunk_max_[cp]);
    if (cp < cp_restart && value == suffix_max_[cp]) break;
    suffix_max_[cp] = value;
  }
  // fastsched: end-hot
  // The walk folds the same values in the same order as the candidate
  // scan (plus the untouched committed suffix), so the lengths must
  // agree to the bit.
  const std::size_t idx =
      stop >= list_.size() ? num_checkpoints_ : checkpoint_of(stop);
  FASTSCHED_ASSERT(std::max(running, suffix_max_[idx]) == candidate_length);
  length_ = candidate_length;
}

Cost IncrementalEvaluator::rescore(std::span<const ProcId> assignment) {
  FASTSCHED_ASSERT(valid_);
  FASTSCHED_ASSERT(assignment.size() == assignment_.size());
  ++counters_.rescores;
  restore_pending();  // drop any un-reverted probe first
  pending_ = Pending::kNone;
  // Per-phase outcome tallies restart with each re-scored schedule so
  // policy-selection telemetry stays attributable; they are zeroed on
  // every exit below, *after* the internal scan (whose own convergence
  // must not leak into the new phase). Lifetime counters (moves,
  // positions_scanned, commits, event_*) keep accumulating —
  // sched_lint --bounds reads positions_scanned as before/after deltas.
  const auto begin_phase = [this] {
    counters_.early_rejected = 0;
    counters_.converged = 0;
  };

  // First/last list positions whose processor changed; everything before
  // `first` is reusable prefix, and convergence may only be declared
  // past `last` (the scan must at least re-place every changed node).
  const std::size_t v = list_.size();
  std::size_t first = v;
  std::size_t last = 0;
  // Procs that lose nodes (stale checkpoints); member scratch so
  // rescore-heavy callers (sched_diff sweeps) never re-allocate.
  rescore_lost_.clear();
  for (NodeId m = 0; m < assignment.size(); ++m) {
    if (assignment[m] != assignment_[m]) {
      first = std::min<std::size_t>(first, pos_[m]);
      last = std::max<std::size_t>(last, pos_[m]);
      rescore_lost_.push_back(assignment_[m]);
    }
  }
  if (first == v) {
    begin_phase();
    return length_;
  }

  const std::size_t restart = checkpoint_of(first) * interval_;
  assignment_.assign(assignment.begin(), assignment.end());
  event_.invalidate();  // bulk placement change; rebuilt lazily
  pending_node_ = graph::kInvalidNode;  // no single moved node to track
  const auto out = scan_suffix(restart, kUnbounded, last, rescore_lost_);
  FASTSCHED_ASSERT(!out.aborted);
  sparse_dirty_.clear();  // adopt the in-place values
  commit_scan(restart, out.stopped_at, rescore_lost_, out.length);
  begin_phase();
  return length_;
}

Schedule IncrementalEvaluator::materialize(
    std::span<const ProcId> assignment) const {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  return detail::replay_to_schedule(*graph_, list_, num_procs_, assignment);
}

}  // namespace fastsched::fast
