#pragma once

/// \file evaluator.hpp
/// The O(v + e) schedule-length evaluator at the heart of FAST's local
/// search (paper §4.4): a schedule is represented as (static topological
/// list, processor assignment) and its length is obtained by replaying the
/// list against per-processor ready times. One replay visits every edge
/// once — exactly the cost the paper charges per search move.
///
/// This full-scan evaluator shares its timing recurrence with the
/// suffix-restart `IncrementalEvaluator` (see replay_core.hpp /
/// incremental_evaluator.hpp, which the search loops use per move) and
/// doubles as the differential oracle the incremental path is fuzzed
/// against.

#include <span>
#include <vector>

#include "sched/schedule.hpp"

namespace fastsched::fast {

using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

/// Replays (list, assignment) pairs. Owns scratch buffers so repeated
/// `evaluate` calls in the search loop do not allocate.
class AssignmentEvaluator {
 public:
  /// `list` must be a topological order of all nodes of `g` (checked).
  /// `num_procs` must be positive. The evaluator keeps a reference to `g`;
  /// the graph must outlive it.
  AssignmentEvaluator(const TaskGraph& g, std::vector<NodeId> list,
                      std::size_t num_procs);

  /// Schedule length of `assignment` (one ProcId per node, each
  /// < num_procs). O(v + e), no allocation.
  [[nodiscard]] Cost evaluate(std::span<const ProcId> assignment);

  /// Builds the full Schedule (start/finish times per node) for
  /// `assignment`.
  [[nodiscard]] Schedule materialize(std::span<const ProcId> assignment) const;

  [[nodiscard]] std::span<const NodeId> list() const noexcept { return list_; }
  [[nodiscard]] std::size_t num_procs() const noexcept { return num_procs_; }
  [[nodiscard]] const TaskGraph& graph() const noexcept { return *graph_; }

 private:
  const TaskGraph* graph_;
  std::vector<NodeId> list_;
  std::size_t num_procs_;
  std::vector<Cost> finish_;  // scratch: finish time per node
  std::vector<Cost> ready_;   // scratch: ready time per processor
};

}  // namespace fastsched::fast
