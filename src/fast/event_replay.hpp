#pragma once

/// \file event_replay.hpp
/// Worklist-based O(affected) candidate-move replay.
///
/// The contiguous suffix restart of `IncrementalEvaluator` still walks
/// every list position between a changed finish time and its farthest
/// successor, even when nothing in between is affected. `EventReplay`
/// removes that dead scanning: it keeps the committed schedule's
/// per-processor slot chains (each processor's nodes linked in list
/// order), seeds a position-ordered worklist with only the moved node and
/// the slots it vacates / occupies, and recomputes start/finish times
/// strictly along DAG successor edges and same-processor slot adjacency —
/// a node is processed only when one of its inputs (a parent finish or
/// its processor predecessor's finish) actually changed. The replay
/// terminates the instant the frontier is empty; the candidate length is
/// then folded from the committed prefix/chunk/suffix maxima with only
/// the chunks that changed recomputed.
///
/// Bit-identity with the contiguous scan and the full-scan oracle: every
/// recomputed start/finish uses the same expressions as `replay_list`
/// over the same operand values (unchanged inputs keep their committed
/// values, which *are* the candidate values), and the final length is a
/// max over the same multiset of finish times — `std::max` over doubles
/// is exact, so the fold order cannot change the value. Accept/reject
/// under a bound is a pure function of the final length plus sound
/// intermediate floors, so decisions agree as well. The differential
/// fuzz suite pins all of this.
///
/// Instances are single-threaded and owned by one `IncrementalEvaluator`.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fast/replay_core.hpp"
#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace fastsched::fast {

class EventReplay {
 public:
  using Cost = graph::Cost;
  using NodeId = graph::NodeId;
  using ProcId = sched::ProcId;

  EventReplay() = default;

  /// Binds the engine to its evaluator's immutable artifacts. The spans
  /// must outlive the engine (the evaluator owns both; vector moves keep
  /// the underlying buffers valid).
  void attach(const graph::TaskGraph* g, std::span<const NodeId> list,
              std::span<const std::uint32_t> pos, std::size_t num_procs,
              std::size_t interval);

  /// True when the committed per-processor chains mirror the evaluator's
  /// committed assignment.
  [[nodiscard]] bool ready() const noexcept { return chains_valid_; }

  /// Marks the chains stale (after reset()/rescore(), which change many
  /// placements at once); the next event probe rebuilds them in O(v).
  void invalidate() noexcept { chains_valid_ = false; }

  /// Rebuilds the committed chains from scratch for `assignment`.
  void rebuild(std::span<const ProcId> assignment);

  /// O(gap) chain splice for a committed transfer of `n` from `from` to
  /// `to`. Call with the *post-move* assignment (n already on `to`);
  /// no-op when the chains are stale or the move stayed on-processor.
  void apply_transfer(NodeId n, ProcId from, ProcId to,
                      std::span<const ProcId> assignment);

  /// The node after `n` on its processor's committed chain
  /// (kInvalidNode at the tail). Only meaningful while ready(); the
  /// evaluator's bounded commit walk reads it to find how far checkpoint
  /// staleness can reach.
  [[nodiscard]] NodeId next_on_proc(NodeId n) const { return proc_next_[n]; }

  /// Committed fold tables borrowed from the evaluator (chunk granularity
  /// `interval`): prefix running max before each checkpoint, max finish
  /// within each chunk, and max finish at or beyond each checkpoint.
  struct Tables {
    std::span<const Cost> cp_prefix_len;
    std::span<const Cost> chunk_max;
    std::span<const Cost> suffix_max;
  };

  struct Probe {
    NodeId node = 0;
    ProcId from = 0;
    ProcId to = 0;
    /// Early-rejection bound (`detail::kNoBound` = exact length wanted).
    Cost bound = detail::kNoBound;
    /// A-priori lower bound on the candidate length (committed prefix
    /// max before the moved node, static graph bound): sharpens
    /// rejection without affecting decisions.
    Cost floor = 0;
    /// Optional per-node backward bounds (`analysis::comm_aware_tail`):
    /// empty, or one entry per node.
    std::span<const Cost> reject_tail;
  };

  struct Outcome {
    Cost length = 0;       ///< exact candidate length (valid unless aborted)
    Cost moved_start = 0;  ///< start time of the moved node
    bool aborted = false;  ///< bound-certain rejection
    std::size_t processed = 0;  ///< worklist pops (the "affected" count)
  };

  /// Replays `probe` against the committed state. `assignment` must
  /// already carry the move (node on `to`); `finish` holds committed
  /// values on entry and candidate values for changed nodes on return,
  /// with prior values logged to `undo[n]` and the changed node ids
  /// appended to `touched_out` (the evaluator's sparse undo log — also
  /// the nodes to restore after an abort). Committed chains must be
  /// `ready()`; they are not modified (commit via `apply_transfer`).
  Outcome replay(const Probe& probe, std::span<const ProcId> assignment,
                 std::span<Cost> finish, std::span<Cost> undo,
                 std::vector<NodeId>& touched_out, const Tables& tables,
                 Cost committed_length);

 private:
  /// Committed chain neighbours node `n` would get on processor `to`
  /// (scans outward from pos(n); skips n itself), as {prev, next}.
  [[nodiscard]] std::pair<NodeId, NodeId> locate(
      NodeId n, ProcId to, std::span<const ProcId> assignment) const;

  void push(std::uint32_t position);

  const graph::TaskGraph* graph_ = nullptr;
  std::span<const NodeId> list_;
  std::span<const std::uint32_t> pos_;
  std::size_t num_procs_ = 0;
  std::size_t interval_ = 1;

  // Committed slot chains: for each node, the previous/next node on its
  // processor in list order (kInvalidNode at the ends), plus how many
  // nodes each processor hosts (empty processors skip neighbour scans).
  std::vector<NodeId> proc_prev_;
  std::vector<NodeId> proc_next_;
  std::vector<std::uint32_t> proc_count_;
  bool chains_valid_ = false;

  // Position-ordered worklist (min-heap) with epoch-stamped dedupe.
  std::vector<std::uint32_t> heap_;
  std::vector<std::uint64_t> queued_stamp_;  ///< by list position
  std::uint64_t queue_epoch_ = 0;

  // Chunks whose max finish changed in the live probe (for the fold).
  std::vector<std::uint64_t> chunk_stamp_;
  std::uint64_t chunk_epoch_ = 0;

  // Scratch for rebuild().
  std::vector<NodeId> last_on_proc_;
};

}  // namespace fastsched::fast
