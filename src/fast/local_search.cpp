#include "fast/local_search.hpp"

namespace fastsched::fast {

using fastsched::Rng;

LocalSearchStats local_search(AssignmentEvaluator& evaluator,
                              std::span<const NodeId> blocking,
                              std::vector<ProcId>& assignment, Cost& length,
                              const LocalSearchOptions& options, Rng& rng) {
  LocalSearchStats stats;
  stats.initial_length = length;
  stats.final_length = length;

  const std::size_t num_procs = evaluator.num_procs();
  const std::size_t v = assignment.size();
  const bool any_node =
      options.policy == NeighborhoodPolicy::kRandomNodeRandomProc;
  const std::size_t pool_size = any_node ? v : blocking.size();
  if (pool_size == 0 || num_procs <= 1) {
    return stats;  // no move can change anything
  }

  // Transfer targets: the processors the schedule currently uses plus one
  // fresh processor. Drawing from the full pool would dilute the search
  // with indistinguishable empty processors when the budget is generous
  // ("more than enough processors", §5) — any single fresh target stands
  // for all of them. Rebuilt after each accepted move.
  std::vector<ProcId> targets;
  const auto rebuild_targets = [&] {
    targets.clear();
    std::vector<bool> used(num_procs, false);
    for (const ProcId p : assignment) used[p] = true;
    ProcId fresh = sched::kUnassignedProc;
    for (ProcId p = 0; p < num_procs; ++p) {
      if (used[p]) {
        targets.push_back(p);
      } else if (fresh == sched::kUnassignedProc) {
        fresh = p;
      }
    }
    if (fresh != sched::kUnassignedProc) targets.push_back(fresh);
  };
  rebuild_targets();

  for (int step = 0; step < options.max_steps; ++step) {
    ++stats.steps;
    const std::size_t pick = static_cast<std::size_t>(rng.uniform(pool_size));
    const NodeId n = any_node ? static_cast<NodeId>(pick) : blocking[pick];
    const ProcId original = assignment[n];

    if (options.policy == NeighborhoodPolicy::kBestProcForRandomBlocking) {
      // Ablation variant: steepest descent over the processor dimension.
      ProcId best_proc = original;
      Cost best_len = length;
      for (ProcId p = 0; p < num_procs; ++p) {
        if (p == original) continue;
        assignment[n] = p;
        const Cost candidate = evaluator.evaluate(assignment);
        if (graph::definitely_less(candidate, best_len)) {
          best_len = candidate;
          best_proc = p;
        }
      }
      assignment[n] = best_proc;
      if (best_proc != original) {
        ++stats.improvements;
        length = best_len;
      }
      continue;
    }

    // Paper's move: transfer n to a random processor; revert unless the
    // schedule length strictly improves.
    const ProcId target = targets[rng.uniform(targets.size())];
    if (target == original) continue;
    assignment[n] = target;
    const Cost candidate = evaluator.evaluate(assignment);
    if (graph::definitely_less(candidate, length)) {
      ++stats.improvements;
      length = candidate;
      rebuild_targets();
    } else {
      assignment[n] = original;
    }
  }

  stats.final_length = length;
  return stats;
}

}  // namespace fastsched::fast
