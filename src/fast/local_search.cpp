#include "fast/local_search.hpp"

#include "fast/target_pool.hpp"

namespace fastsched::fast {

using fastsched::Rng;

LocalSearchStats local_search(IncrementalEvaluator& evaluator,
                              std::span<const NodeId> blocking,
                              std::vector<ProcId>& assignment, Cost& length,
                              const LocalSearchOptions& options, Rng& rng) {
  LocalSearchStats stats;
  stats.initial_length = length;
  stats.final_length = length;

  const std::size_t num_procs = evaluator.num_procs();
  const std::size_t v = assignment.size();
  const bool any_node =
      options.policy == NeighborhoodPolicy::kRandomNodeRandomProc;
  const std::size_t pool_size = any_node ? v : blocking.size();
  if (pool_size == 0 || num_procs <= 1) {
    return stats;  // no move can change anything
  }

  // One full scan establishes the committed prefix every candidate move
  // restarts from; `length` stays the incumbent the moves must beat.
  // Whether a probe then replays the contiguous suffix or the event
  // worklist is the evaluator's ReplayPolicy — invisible here: lengths,
  // accept/reject decisions and the committed state are bit-identical.
  evaluator.reset(assignment);

  TransferTargets targets(num_procs);
  targets.rebuild(assignment);

  for (int step = 0; step < options.max_steps; ++step) {
    ++stats.steps;
    const std::size_t pick = static_cast<std::size_t>(rng.uniform(pool_size));
    const NodeId n = any_node ? static_cast<NodeId>(pick) : blocking[pick];
    const ProcId original = assignment[n];

    if (options.policy == NeighborhoodPolicy::kBestProcForRandomBlocking) {
      // Ablation variant: steepest descent over the processor dimension.
      // Each probe is bounded by the best length seen so far, so
      // non-improving processors reject as soon as the running length
      // catches the incumbent.
      ProcId best_proc = original;
      Cost best_len = length;
      for (ProcId p = 0; p < num_procs; ++p) {
        if (p == original) continue;
        if (const auto candidate = evaluator.evaluate_move(n, p, best_len)) {
          best_len = *candidate;
          best_proc = p;
        }
      }
      evaluator.revert();
      if (best_proc != original) {
        // Re-evaluate the winner (the pending candidate is the last
        // probe, not necessarily the best) and adopt it.
        (void)evaluator.evaluate_move(n, best_proc);
        length = evaluator.commit();
        assignment[n] = best_proc;
        ++stats.improvements;
      }
      continue;
    }

    // Paper's move: transfer n to a random processor; keep it only when
    // the schedule length strictly improves. The incumbent doubles as
    // the early-rejection bound: a non-null candidate *is* strictly
    // better, so no separate comparison is needed.
    const ProcId target = targets[rng.uniform(targets.size())];
    if (target == original) continue;
    if (evaluator.evaluate_move(n, target, length)) {
      length = evaluator.commit();
      assignment[n] = target;
      ++stats.improvements;
      targets.apply_transfer(original, target);
    } else {
      evaluator.revert();
    }
  }

  stats.final_length = length;
  return stats;
}

}  // namespace fastsched::fast
