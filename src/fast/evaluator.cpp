#include "fast/evaluator.hpp"

#include <algorithm>

#include "fast/cpn_dominate.hpp"
#include "fast/replay_core.hpp"

namespace fastsched::fast {

AssignmentEvaluator::AssignmentEvaluator(const TaskGraph& g,
                                         std::vector<NodeId> list,
                                         std::size_t num_procs)
    : graph_(&g),
      list_(std::move(list)),
      num_procs_(num_procs),
      finish_(g.num_nodes(), 0.0),
      ready_(num_procs, 0.0) {
  FASTSCHED_REQUIRE(num_procs_ > 0, "need at least one processor");
  FASTSCHED_REQUIRE(is_topological_list(g, list_),
                    "evaluator list must be a topological order of the graph");
}

Cost AssignmentEvaluator::evaluate(std::span<const ProcId> assignment) {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  std::fill(ready_.begin(), ready_.end(), 0.0);
  const auto out = detail::replay_list(
      *graph_, list_, 0, list_.size(), 0.0, detail::kNoBound,
      [&](NodeId n) { return assignment[n]; },
      [&](NodeId n) { return finish_[n]; },
      [&](ProcId p) -> Cost& { return ready_[p]; },
      [&](std::size_t, NodeId n, ProcId, Cost, Cost fin) { finish_[n] = fin; });
  return out.length;
}

Schedule AssignmentEvaluator::materialize(
    std::span<const ProcId> assignment) const {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  return detail::replay_to_schedule(*graph_, list_, num_procs_, assignment);
}

}  // namespace fastsched::fast
