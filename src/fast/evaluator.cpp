#include "fast/evaluator.hpp"

#include <algorithm>

#include "fast/cpn_dominate.hpp"

namespace fastsched::fast {

AssignmentEvaluator::AssignmentEvaluator(const TaskGraph& g,
                                         std::vector<NodeId> list,
                                         std::size_t num_procs)
    : graph_(&g),
      list_(std::move(list)),
      num_procs_(num_procs),
      finish_(g.num_nodes(), 0.0),
      ready_(num_procs, 0.0) {
  FASTSCHED_REQUIRE(num_procs_ > 0, "need at least one processor");
  FASTSCHED_REQUIRE(is_topological_list(g, list_),
                    "evaluator list must be a topological order of the graph");
}

Cost AssignmentEvaluator::evaluate(std::span<const ProcId> assignment) {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  std::fill(ready_.begin(), ready_.end(), 0.0);

  Cost length = 0.0;
  for (const NodeId n : list_) {
    const ProcId p = assignment[n];
    Cost dat = 0.0;
    for (const graph::Adjacency& q : graph_->predecessors(n)) {
      const Cost arrival =
          finish_[q.node] + (assignment[q.node] == p ? 0.0 : q.cost);
      dat = std::max(dat, arrival);
    }
    const Cost start = std::max(dat, ready_[p]);
    const Cost fin = start + graph_->weight(n);
    finish_[n] = fin;
    ready_[p] = fin;
    length = std::max(length, fin);
  }
  return length;
}

Schedule AssignmentEvaluator::materialize(
    std::span<const ProcId> assignment) const {
  FASTSCHED_ASSERT(assignment.size() == graph_->num_nodes());
  std::vector<Cost> finish(graph_->num_nodes(), 0.0);
  std::vector<Cost> ready(num_procs_, 0.0);

  Schedule s(graph_->num_nodes(), num_procs_);
  for (const NodeId n : list_) {
    const ProcId p = assignment[n];
    Cost dat = 0.0;
    for (const graph::Adjacency& q : graph_->predecessors(n)) {
      const Cost arrival =
          finish[q.node] + (assignment[q.node] == p ? 0.0 : q.cost);
      dat = std::max(dat, arrival);
    }
    const Cost start = std::max(dat, ready[p]);
    const Cost fin = start + graph_->weight(n);
    finish[n] = fin;
    ready[p] = fin;
    s.assign(n, p, start, fin);
  }
  return s;
}

}  // namespace fastsched::fast
