#pragma once

/// \file fast.hpp
/// The FAST algorithm (paper §4): CPN-Dominate list → InitialSchedule →
/// random local search. `run_fast` exposes every intermediate artifact for
/// tests, examples and ablations; `FastScheduler` adapts it to the common
/// `sched::Scheduler` interface.

#include <cstdint>
#include <vector>

#include "fast/cpn_dominate.hpp"
#include "fast/initial_schedule.hpp"
#include "fast/local_search.hpp"
#include "sched/scheduler.hpp"

namespace fastsched::fast {

struct FastOptions {
  /// Processor budget; 0 = one processor per node.
  std::size_t num_procs = 0;
  /// Local-search step budget (MAXSTEP; the paper fixes 64).
  int max_steps = 64;
  /// RNG seed for the search.
  std::uint64_t seed = 1;
  /// Scheduling-list policy (kCpnDominate = the paper's).
  ListPolicy list_policy = ListPolicy::kCpnDominate;
  /// Move-generation policy (kRandomBlockingRandomProc = the paper's).
  NeighborhoodPolicy neighborhood =
      NeighborhoodPolicy::kRandomBlockingRandomProc;
  /// Candidate-replay engine for move probes (contiguous suffix restart,
  /// event-driven worklist, or per-probe auto selection). Search results
  /// are bit-identical across policies; this only changes probe cost.
  ReplayPolicy replay = ReplayPolicy::kAuto;
  /// Sharpen bound-based early rejection with backward communication-aware
  /// tails (analysis::make_rejection_tails; one O(v + e) pass per run).
  /// Decisions are unchanged — rejected probes just abort earlier.
  bool reject_tails = true;
};

/// Everything FAST computes, for inspection.
struct FastResult {
  std::vector<NodeId> list;           ///< the static scheduling list
  std::vector<NodeId> blocking_list;  ///< IBNs + OBNs (paper step (2))
  std::vector<ProcId> assignment;     ///< final processor per node
  Cost initial_length = 0;            ///< after phase 1
  Cost final_length = 0;              ///< after phase 2
  LocalSearchStats search;            ///< search statistics
};

/// Runs both phases and returns all artifacts. O(e) for the paper's
/// parameters (constant MAXSTEP, candidate processors limited to parents +
/// one fresh).
[[nodiscard]] FastResult run_fast(const TaskGraph& g,
                                  const FastOptions& options = {});

/// Materializes the final `FastResult` assignment into a Schedule.
[[nodiscard]] Schedule to_schedule(const TaskGraph& g, const FastResult& r,
                                   std::size_t num_procs);

/// `sched::Scheduler` adapter.
class FastScheduler final : public sched::Scheduler {
 public:
  explicit FastScheduler(FastOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "FAST"; }

  [[nodiscard]] Schedule run(const TaskGraph& g,
                             const sched::SchedulerOptions& o) const override;

 private:
  FastOptions options_;
};

}  // namespace fastsched::fast
