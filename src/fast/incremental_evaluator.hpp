#pragma once

/// \file incremental_evaluator.hpp
/// Suffix-restart schedule-length evaluation for FAST's local search.
///
/// The full-scan `AssignmentEvaluator` charges O(v + e) per candidate
/// move even though transferring one node n can only perturb the replay
/// *downstream* of n's fixed list position — everything before pos(n)
/// replays to bit-identical state. `IncrementalEvaluator` exploits that:
///
///  * the per-node finish times of the last committed assignment are the
///    valid prefix for any candidate move;
///  * the per-processor ready vector (plus the running schedule-length
///    prefix max) is checkpointed every K list positions, so a candidate
///    scan restarts from the nearest checkpoint at or below pos(n)
///    instead of rescanning the prefix — O((p + 1) · v / K) memory;
///  * the schedule length is a running max, so the moment the running
///    length of a candidate scan meets the incumbent (in the
///    `definitely_less` tolerance), the move cannot strictly improve and
///    the scan aborts (early rejection);
///  * a transfer's influence usually dies out: at a checkpoint boundary
///    past the moved node, if no replayed finish that *changed* has a
///    successor at or beyond the boundary and the candidate's ready
///    times bitwise-match the committed checkpoint row, the rest of the
///    replay is provably identical to the committed one, so the scan
///    stops and folds in the committed suffix maximum (convergence
///    early-exit) — making the typical probe O(perturbation), not O(v).
///
/// Candidate scans update the finish array *in place*, logging the
/// prior value of every node whose finish actually *changed* (a sparse
/// log shared with the event path): the hot recurrence then reads a
/// single array with no committed-vs-in-scan branch (a per-edge branch
/// on the restart position is unpredictable and measurably dominates
/// the scan), and unchanged positions — the vast majority of a
/// converging scan — cost neither an undo store nor a restore.
/// `revert()` replays the log — O(changed), not O(scanned) — and
/// `commit()` adopts the in-place values without re-simulation.
/// Processor ready times go through epoch-stamped scratch. All replayed values are produced by the same `replay_list`
/// core as the full scan, in the same order, so committed finish times,
/// schedule lengths, and accept/reject decisions are bit-identical to
/// the full-scan oracle — the differential fuzz suite and the
/// golden-file layer pin this.
///
/// On top of the contiguous restart sits the event-driven path
/// (`EventReplay`): a worklist replay that processes only the nodes a
/// move actually affects instead of the whole suffix, selected per probe
/// by `ReplayPolicy` (an auto heuristic weighs the suffix length against
/// a frontier estimate — seeded per move from the node's precomputed
/// successor-cone cardinality, then refined online by an EWMA of the
/// frontiers both engines actually observe;
/// `FASTSCHED_REPLAY=contiguous|event|auto`
/// overrides the constructor's choice). Both paths share the undo log,
/// the bound-based early rejection (optionally sharpened by
/// `set_reject_tails` backward bounds) and the committed fold tables,
/// and return bit-identical lengths and decisions.
///
/// Instances are single-threaded; PFAST gives each worker its own.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "fast/event_replay.hpp"
#include "fast/replay_core.hpp"
#include "sched/schedule.hpp"

namespace fastsched::fast {

using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

/// How evaluate_move replays a candidate: the contiguous suffix restart,
/// the event-driven worklist, or a per-probe choice between them.
enum class ReplayPolicy : std::uint8_t { kContiguous, kEvent, kAuto };

class IncrementalEvaluator {
 public:
  /// `checkpoint_interval = kAutoInterval` picks K = max(32, p / 8):
  /// large enough that building all checkpoints costs at most ~8 stored
  /// doubles per list position even on the paper's "more than enough
  /// processors" pool (p = v), small enough that a restart rescans at
  /// most K extra positions.
  static constexpr std::size_t kAutoInterval = 0;

  /// `list` must be a topological order of all nodes of `g` (checked).
  /// The evaluator keeps a reference to `g`; the graph must outlive it.
  /// `policy` selects the candidate-replay engine; the `FASTSCHED_REPLAY`
  /// environment variable (contiguous | event | auto) overrides it for
  /// every evaluator in the process (a later set_policy overrides both).
  IncrementalEvaluator(const TaskGraph& g, std::vector<NodeId> list,
                       std::size_t num_procs,
                       std::size_t checkpoint_interval = kAutoInterval,
                       ReplayPolicy policy = ReplayPolicy::kAuto);

  /// Replay-policy override (takes precedence over the constructor value
  /// and the FASTSCHED_REPLAY environment override).
  void set_policy(ReplayPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] ReplayPolicy policy() const noexcept { return policy_; }

  /// Installs per-node backward bounds for early rejection: `tails[n]` is
  /// a lower bound on the schedule that must follow n's finish in any
  /// valid schedule (`analysis::comm_aware_tail`), and `static_floor` a
  /// graph-level lower bound on any candidate length (the binding static
  /// certificate). Both only make bounded probes abort *earlier*; accept/
  /// reject decisions and returned lengths are unchanged. `tails` must be
  /// empty or hold one entry per node.
  void set_reject_tails(std::vector<Cost> tails, Cost static_floor = 0);

  /// Full O(v + e) scan of `assignment`: establishes the committed
  /// state (finish times, checkpoints, length) every later move is
  /// evaluated against. Must be called before the first evaluate_move.
  Cost reset(std::span<const ProcId> assignment);

  /// Schedule length of the committed assignment with node `n`
  /// transferred to `target`, replayed from the nearest prefix
  /// checkpoint. When `bound` is given, returns nullopt as soon as the
  /// candidate provably cannot be `definitely_less(candidate, bound)`;
  /// a non-null result with a bound therefore *is* a strict
  /// improvement on the bound. Committed state is unchanged either way;
  /// the candidate stays pending until `commit()` or `revert()`.
  [[nodiscard]] std::optional<Cost> evaluate_move(
      NodeId n, ProcId target, Cost bound = kUnbounded);

  /// Start time of the moved node under the pending candidate (valid
  /// after a non-aborted evaluate_move; used by tie-breaking searches
  /// like BSA's bubble condition without materializing a schedule).
  [[nodiscard]] Cost pending_start() const;

  /// Adopts the pending candidate: updates the committed assignment,
  /// suffix finish times, downstream checkpoints, and length, all in
  /// O(suffix) — no re-simulation. Returns the new committed length.
  Cost commit();

  /// Discards the pending candidate by restoring the logged finish
  /// times. Cost is bounded by the scan that produced the candidate.
  void revert() noexcept;

  /// Re-scores an arbitrary candidate assignment against the committed
  /// state, restarting from the checkpoint covering the first list
  /// position whose processor changed, and commits it. Equivalent to
  /// (but cheaper than) reset() when the two assignments share a long
  /// list prefix — the multi-candidate analogue of evaluate_move used
  /// when checking several schedules of one graph.
  Cost rescore(std::span<const ProcId> assignment);

  /// Committed schedule length.
  [[nodiscard]] Cost length() const noexcept { return length_; }

  /// Committed assignment (valid after reset()).
  [[nodiscard]] std::span<const ProcId> assignment() const noexcept {
    return assignment_;
  }

  /// Builds the full Schedule for `assignment` by one fresh replay of
  /// the shared core (does not disturb committed or pending state).
  [[nodiscard]] Schedule materialize(std::span<const ProcId> assignment) const;

  [[nodiscard]] std::span<const NodeId> list() const noexcept { return list_; }

  /// Per-node successor-cone cardinality (|proper descendants|), the
  /// static frontier seed for the auto replay policy. Empty when the
  /// graph exceeds kConeExactNodes (the seed then falls back to the
  /// out-degree). Exposed for tests and telemetry.
  [[nodiscard]] std::span<const std::uint32_t> cone_sizes() const noexcept {
    return cone_size_;
  }

  [[nodiscard]] std::size_t num_procs() const noexcept { return num_procs_; }
  [[nodiscard]] const TaskGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t checkpoint_interval() const noexcept {
    return interval_;
  }

  /// Work counters for benchmarks and EXPERIMENTS.md: how much scanning
  /// the suffix restart + early rejection actually saved.
  /// Lifetime counters (`moves`, `positions_scanned`, `commits`,
  /// `rescores`, `event_*`) accumulate across rescore(); the per-phase
  /// outcome tallies (`early_rejected`, `converged`) are zeroed by
  /// rescore() so policy-selection telemetry reflects the schedule under
  /// evaluation, not a mix of unrelated phases.
  struct Counters {
    std::uint64_t moves = 0;            ///< evaluate_move calls
    std::uint64_t early_rejected = 0;   ///< scans cut short by the bound
    std::uint64_t converged = 0;        ///< scans cut short by convergence
    std::uint64_t positions_scanned = 0;///< list positions replayed
    std::uint64_t commits = 0;
    std::uint64_t rescores = 0;
    std::uint64_t event_moves = 0;      ///< probes taken by the event path
    std::uint64_t event_processed = 0;  ///< worklist pops across them
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  static constexpr Cost kUnbounded =
      std::numeric_limits<Cost>::infinity();

  /// Largest graph for which the constructor computes exact per-node
  /// successor-cone cardinalities. The 64-position-block bitset sweep is
  /// O((v + e) * v / 64); at this cap that is a few million word ops,
  /// negligible next to the O(v + e) reset the evaluator already pays.
  static constexpr std::size_t kConeExactNodes = 16384;

  /// Checkpoint index covering list position `pos`.
  [[nodiscard]] std::size_t checkpoint_of(std::size_t pos) const noexcept {
    return pos / interval_;
  }
  [[nodiscard]] const Cost* checkpoint_ready(std::size_t cp) const noexcept {
    return cp_ready_.data() + cp * num_procs_;
  }

  /// Candidate scan over [restart, v) under the *current* contents of
  /// `assignment_` (the caller flips/copies it first). Writes finish_
  /// in place for the scanned positions, logging prior values.
  /// Convergence may only be declared at boundaries strictly past
  /// `converge_after` (the last list position whose assignment
  /// changed); `lost_procs` are additionally included in the ready
  /// comparison (they may differ from the committed row without
  /// hosting any node in the scanned range).
  detail::ReplayOutcome scan_suffix(std::size_t restart, Cost bound,
                                    std::size_t converge_after,
                                    std::span<const ProcId> lost_procs);

  /// Bitwise comparison of the candidate's ready times at a checkpoint
  /// boundary against the committed row (procs outside the union of
  /// scan-touched and `extra` cannot differ).
  [[nodiscard]] bool ready_matches(std::size_t cp_restart, std::size_t cp_b,
                                   std::span<const ProcId> extra) const;

  /// Restores finish_ from the sparse undo log (no-op when clean). Both
  /// replay paths log the same way: node ids in sparse_dirty_, prior
  /// values in scratch_finish_.
  void restore_pending() noexcept;

  /// Event-path evaluate_move body: worklist replay instead of the
  /// contiguous suffix scan. `assignment_` already carries the move.
  [[nodiscard]] std::optional<Cost> evaluate_move_event(
      NodeId n, ProcId target, ProcId original, Cost bound);

  /// True when the auto heuristic routes this probe to the event path:
  /// the contiguous scan would walk `suffix` positions while the event
  /// frontier is expected to stay near the observed per-probe average
  /// (or, before any observation, near n's successor-cone cardinality).
  [[nodiscard]] bool prefer_event(std::size_t suffix, NodeId n) const;

  /// Folds a completed candidate scan into committed state: suffix
  /// finish times, checkpoints >= restart, assignment-derived ready
  /// values. `lost_procs` are processors that *lost* nodes in the
  /// suffix (their checkpointed ready times may be stale even though no
  /// replayed node lands on them).
  /// `stop` is where the candidate scan ended (a checkpoint boundary on
  /// convergence, v otherwise); state beyond it is provably unchanged.
  void commit_scan(std::size_t restart, std::size_t stop,
                   std::span<const ProcId> lost_procs, Cost candidate_length);

  const TaskGraph* graph_;
  std::vector<NodeId> list_;
  std::size_t num_procs_;
  std::size_t interval_ = 1;       ///< K
  std::size_t num_checkpoints_ = 0;

  // Committed state.
  std::vector<ProcId> assignment_;
  std::vector<Cost> finish_;       ///< per node, last committed scan
  std::vector<Cost> cp_ready_;     ///< num_checkpoints_ x num_procs_
  std::vector<Cost> cp_prefix_len_;///< running length before checkpoint
  std::vector<Cost> chunk_max_;    ///< max finish within each chunk
  std::vector<Cost> suffix_max_;   ///< max finish over positions >= cp*K
                                   ///< (num_checkpoints_ + 1 entries)
  Cost length_ = 0;
  bool valid_ = false;

  // Node -> list position, and max successor position per node (0 when
  // the node has no successors; position 0 cannot be a successor). Fixed.
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> max_succ_pos_;
  // Position-indexed predecessor stream: the predecessors of list_[i]
  // copied to [epos_off_[i], epos_off_[i+1]) in predecessor order, so
  // the contiguous suffix scan — which walks positions in list order —
  // reads its edge metadata sequentially instead of chasing the graph
  // CSR through node-id space. Split into parallel node/cost arrays
  // (12 B per edge versus 24 for an Adjacency copy with its unused edge
  // id and padding: the scan is bandwidth-bound, so stream bytes are
  // cost). The only random reads left in the scan (finish_ and
  // assignment_ of each predecessor) are prefetched a few positions
  // ahead through the same stream. Values are bytewise copies of
  // g.predecessors(list_[i]) in the same order, so the replay stays
  // bit-identical to the graph-CSR path. Fixed (list and graph are).
  std::vector<std::size_t> epos_off_;
  std::vector<NodeId> epos_node_;
  std::vector<Cost> epos_cost_;
  // Successor-cone cardinality per node (empty above kConeExactNodes):
  // the static per-move seed for the auto frontier estimate. Fixed.
  std::vector<std::uint32_t> cone_size_;

  // Candidate scans write finish_ in place; scratch_finish_ holds the
  // prior value of every *changed* node, keyed by the ids in
  // sparse_dirty_ (the shared undo log). Ready times use epoch-stamped
  // scratch to avoid O(p) clears per scan.
  std::vector<Cost> scratch_finish_;
  std::vector<Cost> scratch_ready_;
  std::vector<std::uint64_t> ready_stamp_;
  std::vector<ProcId> scan_touched_;  ///< procs seeded by the live scan
  std::uint64_t scan_epoch_ = 0;

  // Scratch for commit walks.
  std::vector<std::uint64_t> touched_stamp_;
  std::vector<ProcId> touched_;
  std::uint64_t touch_epoch_ = 0;

  // Event-driven replay engine: per-processor slot chains +
  // position-ordered worklist. Chains go stale on reset()/rescore() and
  // are rebuilt lazily by the next event probe. sparse_dirty_ is the
  // undo log both replay paths append to (node ids whose finish_ they
  // overwrote, with prior values in scratch_finish_).
  EventReplay event_;
  std::vector<NodeId> sparse_dirty_;
  std::vector<ProcId> rescore_lost_;  ///< rescore() scratch (no per-call alloc)
  ReplayPolicy policy_ = ReplayPolicy::kAuto;
  // Online frontier estimate for the auto policy: EWMA of the per-probe
  // affected-node counts observed by *both* engines — worklist pops on
  // the event path, changed finish times on the contiguous path. 0.0
  // means "no observation yet"; prefer_event then seeds from cone_size_.
  double ewma_affected_ = 0.0;
  std::uint64_t scan_changed_ = 0;  ///< finish values the last scan changed

  // Backward-bound sharpening for early rejection (set_reject_tails).
  std::vector<Cost> reject_tails_;
  Cost static_floor_ = 0;

  // Pending candidate. Both kinds restore via the sparse undo log; the
  // distinction feeds the commit walk (an event move's walk horizon is
  // bounded by the chain gaps past its changed nodes).
  enum class Pending : std::uint8_t { kNone, kMove, kEventMove };
  Pending pending_ = Pending::kNone;
  NodeId pending_node_ = 0;
  ProcId pending_target_ = 0;
  ProcId pending_original_ = 0;
  std::size_t pending_restart_ = 0;
  std::size_t pending_stop_ = 0;
  Cost pending_length_ = 0;
  Cost pending_start_ = 0;

  Counters counters_;
};

}  // namespace fastsched::fast
