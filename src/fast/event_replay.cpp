#include "fast/event_replay.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"

namespace fastsched::fast {

using graph::kInvalidNode;

void EventReplay::attach(const graph::TaskGraph* g,
                         std::span<const NodeId> list,
                         std::span<const std::uint32_t> pos,
                         std::size_t num_procs, std::size_t interval) {
  graph_ = g;
  list_ = list;
  pos_ = pos;
  num_procs_ = num_procs;
  interval_ = interval;
  const std::size_t v = list_.size();
  proc_prev_.assign(v, kInvalidNode);
  proc_next_.assign(v, kInvalidNode);
  proc_count_.assign(num_procs_, 0);
  queued_stamp_.assign(v, 0);
  chunk_stamp_.assign(v == 0 ? 0 : (v - 1) / interval_ + 1, 0);
  last_on_proc_.assign(num_procs_, kInvalidNode);
  heap_.reserve(64);
  chains_valid_ = false;
}

void EventReplay::rebuild(std::span<const ProcId> assignment) {
  std::fill(proc_count_.begin(), proc_count_.end(), 0);
  std::fill(last_on_proc_.begin(), last_on_proc_.end(), kInvalidNode);
  for (const NodeId n : list_) {
    const ProcId p = assignment[n];
    const NodeId prev = last_on_proc_[p];
    proc_prev_[n] = prev;
    proc_next_[n] = kInvalidNode;
    if (prev != kInvalidNode) proc_next_[prev] = n;
    last_on_proc_[p] = n;
    ++proc_count_[p];
  }
  chains_valid_ = true;
}

std::pair<EventReplay::NodeId, EventReplay::NodeId> EventReplay::locate(
    NodeId n, ProcId to, std::span<const ProcId> assignment) const {
  NodeId prev = kInvalidNode;
  NodeId next = kInvalidNode;
  if (proc_count_[to] == 0) return {prev, next};
  const std::size_t p = pos_[n];
  for (std::size_t i = p; i-- > 0;) {
    const NodeId m = list_[i];
    if (m != n && assignment[m] == to) {
      prev = m;
      break;
    }
  }
  for (std::size_t i = p + 1; i < list_.size(); ++i) {
    const NodeId m = list_[i];
    if (m != n && assignment[m] == to) {
      next = m;
      break;
    }
  }
  return {prev, next};
}

void EventReplay::apply_transfer(NodeId n, ProcId from, ProcId to,
                                 std::span<const ProcId> assignment) {
  if (!chains_valid_ || from == to) return;
  const NodeId old_prev = proc_prev_[n];
  const NodeId old_next = proc_next_[n];
  if (old_prev != kInvalidNode) proc_next_[old_prev] = old_next;
  if (old_next != kInvalidNode) proc_prev_[old_next] = old_prev;
  --proc_count_[from];
  const auto [new_prev, new_next] = locate(n, to, assignment);
  proc_prev_[n] = new_prev;
  proc_next_[n] = new_next;
  if (new_prev != kInvalidNode) proc_next_[new_prev] = n;
  if (new_next != kInvalidNode) proc_prev_[new_next] = n;
  ++proc_count_[to];
}

// fastsched: hot — worklist push, called once per affected edge per probe.
void EventReplay::push(std::uint32_t position) {
  if (queued_stamp_[position] == queue_epoch_) return;
  queued_stamp_[position] = queue_epoch_;
  heap_.push_back(position);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}
// fastsched: end-hot

EventReplay::Outcome EventReplay::replay(
    const Probe& probe, std::span<const ProcId> assignment,
    std::span<Cost> finish, std::span<Cost> undo,
    std::vector<NodeId>& touched_out, const Tables& tables,
    Cost committed_length) {
  FASTSCHED_ASSERT(chains_valid_);
  Outcome out;
  const std::size_t v = list_.size();
  const NodeId n = probe.node;
  const bool relocated = probe.from != probe.to;
  const bool bounded = probe.bound != detail::kNoBound;
  const Cost* tails =
      probe.reject_tail.empty() ? nullptr : probe.reject_tail.data();

  Cost floor = probe.floor;
  if (bounded && !graph::definitely_less(floor, probe.bound)) {
    out.aborted = true;
    return out;
  }

  // Candidate chains = committed chains with n spliced out of `from` and
  // into `to` at its list position. Only the four links around the two
  // splice points differ, so the candidate neighbours are resolved by
  // O(1) case analysis on top of the committed arrays (the moved node is
  // the only placement change, and `from != to` keeps the special cases
  // disjoint).
  const NodeId old_next = proc_next_[n];
  NodeId new_prev = proc_prev_[n];
  NodeId new_next = old_next;
  if (relocated) {
    const auto located = locate(n, probe.to, assignment);
    new_prev = located.first;
    new_next = located.second;
  }
  const auto cand_next = [&](NodeId m) -> NodeId {
    if (!relocated) return proc_next_[m];
    if (m == n) return new_next;
    if (proc_next_[m] == n) return old_next;  // m is n's old predecessor
    if (m == new_prev) return n;
    return proc_next_[m];
  };
  const auto cand_prev = [&](NodeId m) -> NodeId {
    if (!relocated) return proc_prev_[m];
    if (m == n) return new_prev;
    if (proc_prev_[m] == n) return proc_prev_[n];  // m == old_next
    if (m == new_next) return n;
    return proc_prev_[m];
  };

  // Seed the frontier with every node whose *input* the move changed:
  // the moved node itself (new processor, new slot), the slot it vacated
  // (old_next's processor predecessor changed) and the slot it occupies
  // (new_next's did too), and n's DAG successors (their communication
  // term from n toggles with n's placement even when n's finish does
  // not). Everything else is reached by propagation.
  // fastsched: hot — event-driven probe: frontier seed, worklist drain,
  // and the chunked length fold; O(affected) work per evaluate_move.
  ++queue_epoch_;
  heap_.clear();
  push(pos_[n]);
  if (relocated) {
    if (old_next != kInvalidNode) push(pos_[old_next]);
    if (new_next != kInvalidNode) push(pos_[new_next]);
    for (const graph::Adjacency& s : graph_->successors(n)) push(pos_[s.node]);
  }

  // Worklist pops are strictly position-increasing (every push from a
  // processed node targets a strictly later position), so when a node
  // pops, all of its inputs hold their final candidate values — each
  // node is processed at most once, by the exact `replay_list`
  // recurrence over the exact candidate operands.
  ++chunk_epoch_;
  std::size_t min_changed = v;
  std::size_t max_changed = 0;
  bool any_change = false;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const std::uint32_t i = heap_.back();
    heap_.pop_back();
    const NodeId m = list_[i];
    const ProcId p = assignment[m];
    Cost dat = 0.0;
    for (const graph::Adjacency& q : graph_->predecessors(m)) {
      const Cost arrival =
          finish[q.node] + (assignment[q.node] == p ? 0.0 : q.cost);
      dat = std::max(dat, arrival);
    }
    const NodeId chain_prev = cand_prev(m);
    const Cost ready = chain_prev == kInvalidNode ? 0.0 : finish[chain_prev];
    const Cost start = std::max(dat, ready);
    const Cost fin = start + graph_->weight(m);
    if (m == n) out.moved_start = start;
    ++out.processed;
    if (fin != finish[m]) {
      // First and only write to m this probe: log the prior value.
      undo[m] = finish[m];
      // NOLINT-fastsched(hot-alloc): this is sparse_dirty_, reserved by caller
      touched_out.push_back(m);
      finish[m] = fin;
      any_change = true;
      min_changed = std::min<std::size_t>(min_changed, i);
      max_changed = std::max<std::size_t>(max_changed, i);
      chunk_stamp_[i / interval_] = chunk_epoch_;
      const NodeId chain_next = cand_next(m);
      if (chain_next != kInvalidNode) push(pos_[chain_next]);
      for (const graph::Adjacency& s : graph_->successors(m)) {
        push(pos_[s.node]);
      }
    }
    if (bounded) {
      // fin (a finish in the candidate) and fin + tail are both lower
      // bounds on the candidate length; rejection here cannot disagree
      // with the exact final comparison (definitely_less is monotone).
      floor = std::max(floor, tails != nullptr ? fin + tails[m] : fin);
      if (!graph::definitely_less(floor, probe.bound)) {
        out.aborted = true;
        return out;
      }
    }
  }

  // Fold the candidate length: committed prefix max before the first
  // changed chunk, per-chunk maxima across the changed span (recomputing
  // only chunks a change landed in), committed suffix max after the last
  // changed chunk. Each term is a max over the same finish values a
  // full-list fold would visit, so the result is bit-identical to the
  // contiguous scan and the full-scan oracle.
  if (!any_change) {
    out.length = committed_length;
  } else {
    const std::size_t first_cp = min_changed / interval_;
    const std::size_t last_cp = max_changed / interval_;
    Cost mid = 0.0;
    for (std::size_t cp = first_cp; cp <= last_cp; ++cp) {
      if (chunk_stamp_[cp] == chunk_epoch_) {
        const std::size_t end = std::min(v, (cp + 1) * interval_);
        Cost chunk = 0.0;
        for (std::size_t i = cp * interval_; i < end; ++i) {
          chunk = std::max(chunk, finish[list_[i]]);
        }
        mid = std::max(mid, chunk);
      } else {
        mid = std::max(mid, tables.chunk_max[cp]);
      }
    }
    out.length = std::max(std::max(tables.cp_prefix_len[first_cp], mid),
                          tables.suffix_max[last_cp + 1]);
  }
  if (bounded && !graph::definitely_less(out.length, probe.bound)) {
    out.aborted = true;
  }
  return out;
  // fastsched: end-hot
}

}  // namespace fastsched::fast
