#include "fast/parallel_fast.hpp"

#include <thread>

#include "analysis/bounds.hpp"
#include "fast/evaluator.hpp"

namespace fastsched::fast {

ParallelFastResult run_parallel_fast(const TaskGraph& g,
                                     const ParallelFastOptions& options) {
  ParallelFastResult result;
  if (g.num_nodes() == 0) return result;

  const std::size_t num_procs =
      options.num_procs > 0 ? options.num_procs : g.num_nodes();
  const std::size_t num_threads = std::max<std::size_t>(1, options.num_threads);

  // Shared phase: attributes, list, initial schedule.
  const graph::LevelInfo levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  result.list = build_list(g, levels, classes, options.list_policy);
  const InitialScheduleResult initial =
      initial_schedule(g, result.list, num_procs);
  result.initial_length = initial.length;

  std::vector<NodeId> blocking;
  for (const NodeId n : result.list) {
    if (classes[n] != graph::NodeClass::kCpn) blocking.push_back(n);
  }

  // Thread t's stream is a pure function of (seed, t): independent of the
  // spawn order, and the first T' streams are identical for every
  // T >= T', which is what makes more threads never worse.
  const Rng master(options.seed);
  std::vector<Rng> streams;
  streams.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    streams.push_back(master.split(t));
  }

  struct ThreadOutcome {
    std::vector<ProcId> assignment;
    Cost length = 0;
  };
  std::vector<ThreadOutcome> outcomes(num_threads);

  LocalSearchOptions search_options;
  search_options.max_steps = options.max_steps_per_thread;
  search_options.policy = options.neighborhood;

  // Rejection tails are computed once in the shared phase; each worker
  // takes its own copy (the tables are read-only during search, but
  // per-worker ownership keeps the evaluator self-contained).
  analysis::RejectionTails tails;
  if (options.reject_tails) {
    tails = analysis::make_rejection_tails(g, num_procs);
  }

  const auto worker = [&](std::size_t t) {
    // Each thread owns its evaluator (committed prefix state, scratch
    // buffers, checkpoints, event chains and frontier statistics are all
    // per-worker, never shared).
    IncrementalEvaluator evaluator(g, result.list, num_procs,
                                   IncrementalEvaluator::kAutoInterval,
                                   options.replay);
    if (options.reject_tails) {
      evaluator.set_reject_tails(tails.tail, tails.floor);
    }
    ThreadOutcome& out = outcomes[t];
    out.assignment = initial.assignment;
    out.length = initial.length;
    local_search(evaluator, blocking, out.assignment, out.length,
                 search_options, streams[t]);
  };

  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (auto& th : threads) th.join();
  }

  // Deterministic reduction: shortest length, ties to the lowest thread.
  std::size_t best = 0;
  for (std::size_t t = 1; t < num_threads; ++t) {
    if (graph::definitely_less(outcomes[t].length, outcomes[best].length)) {
      best = t;
    }
  }
  result.assignment = std::move(outcomes[best].assignment);
  result.final_length = outcomes[best].length;
  result.winning_thread = best;
  return result;
}

Schedule ParallelFastScheduler::run(const TaskGraph& g,
                                    const sched::SchedulerOptions& o) const {
  ParallelFastOptions opts = options_;
  if (o.num_procs > 0) opts.num_procs = o.num_procs;
  opts.seed = o.seed;
  const std::size_t num_procs =
      opts.num_procs > 0 ? opts.num_procs : g.num_nodes();
  if (g.num_nodes() == 0) return Schedule(0, num_procs);
  const ParallelFastResult result = run_parallel_fast(g, opts);
  AssignmentEvaluator evaluator(g, result.list, num_procs);
  return evaluator.materialize(result.assignment);
}

}  // namespace fastsched::fast
