#pragma once

/// \file replay_core.hpp
/// The single definition of FAST's list-replay timing recurrence
/// (paper §4.4): given a fixed topological list and a processor
/// assignment, each node starts at
///
///   start(n) = max(ready[proc(n)], max over preds q of
///              finish(q) + (proc(q) == proc(n) ? 0 : c(q, n)))
///
/// and the schedule length is the running max of finish times. Every
/// consumer — the full-scan `AssignmentEvaluator`, the suffix-restart
/// `IncrementalEvaluator`, and schedule materialization — instantiates
/// this one core with different state accessors, so the recurrence
/// exists exactly once and the full scan stays a usable differential
/// oracle for the incremental path.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace fastsched::fast::detail {

/// Sentinel for "no early-rejection bound". Must not be fed to
/// `definitely_less` (the tolerance is relative, so every finite value
/// compares approx-equal to infinity); `replay_list` branches on it
/// explicitly.
inline constexpr graph::Cost kNoBound =
    std::numeric_limits<graph::Cost>::infinity();

struct ReplayOutcome {
  /// Running max of finish times over the seed and all replayed
  /// positions (the candidate schedule length when the replay covered
  /// the whole list).
  graph::Cost length = 0;
  /// One past the last list position processed.
  std::size_t stopped_at = 0;
  /// True when the bound cut the replay short: the running length can
  /// no longer become `definitely_less` than `bound`, so neither can
  /// the final length (the running max is monotone and
  /// `definitely_less` is monotone in its first argument).
  bool aborted = false;
};

/// Predecessor range over parallel node/cost arrays — the shape a
/// caller's own edge copy takes when it streams metadata to
/// `replay_list_edges` (12 bytes per edge versus 24 for Adjacency
/// copies; the hot scans are bandwidth-bound, so stream bytes are
/// cost). Iteration yields values with `.node` and `.cost`, mirroring
/// the graph::Adjacency fields the recurrence reads.
struct EdgeStream {
  struct Entry {
    graph::NodeId node;
    graph::Cost cost;
  };
  struct Iterator {
    const graph::NodeId* node;
    const graph::Cost* cost;
    Entry operator*() const { return {*node, *cost}; }
    Iterator& operator++() {
      ++node;
      ++cost;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return node != other.node;
    }
  };
  const graph::NodeId* node;
  const graph::Cost* cost;
  std::size_t count;
  [[nodiscard]] Iterator begin() const { return {node, cost}; }
  [[nodiscard]] Iterator end() const { return {node + count, cost + count}; }
};

/// Replays list positions [begin, end) of `list`. This edge-source
/// overload is the one instantiation of the recurrence; `replay_list`
/// below forwards to it with the graph's own predecessor CSR.
///
///  * `preds_of(i, n)` -> range of predecessor entries of node `n` (each
///                       with `.node` and `.cost` members, in the same
///                       order `g.predecessors(n)` yields them). The
///                       position `i` lets a caller substitute a
///                       list-position-indexed copy of the edge metadata
///                       — the `IncrementalEvaluator` streams one so its
///                       per-probe suffix scan reads edges sequentially
///                       instead of chasing the graph CSR through
///                       node-id space — and software-prefetch the state
///                       a few positions ahead. The entries must be
///                       value-identical to `g.predecessors(n)`, in the
///                       same order, or bit-identity across consumers is
///                       lost.
///  * `proc_of(n)`    -> ProcId of node `n` under the candidate assignment.
///  * `finish_of(n)`  -> finish time of predecessor `n` (the caller decides
///                       whether that reads committed or in-scan state).
///  * `ready_ref(p)`  -> mutable reference to processor `p`'s ready time;
///                       the core writes the node's finish back through it.
///  * `emit(i, n, p, start, fin)` -> invoked once per processed position,
///                       in list order; the caller records finish times,
///                       schedule placements, or checkpoints.
///
/// `seed_length` folds the (unreplayed) prefix into the running max.
/// When `bound != kNoBound` the replay aborts as soon as the candidate
/// provably cannot be `definitely_less(candidate, bound)` — at that point
/// the candidate cannot strictly improve on `bound`, and `emit` has been
/// called for a prefix of positions only.
///
/// `reject_tail_of(n)` is a per-node lower bound on how much schedule must
/// follow n's finish in *any* valid schedule (`analysis::comm_aware_tail`;
/// return 0 for no tail knowledge). The abort test then uses
/// max(running, fin + tail) instead of the running max alone: both are
/// lower bounds on the final length, and `definitely_less` is monotone in
/// its first argument, so tails can only reject *earlier*, never change
/// the accept/reject decision.
template <class PredsOf, class ProcOf, class FinishOf, class ReadyRef,
          class Emit, class TailOf>
inline ReplayOutcome replay_list_edges(const graph::TaskGraph& g,
                                       std::span<const graph::NodeId> list,
                                       std::size_t begin, std::size_t end,
                                       graph::Cost seed_length,
                                       graph::Cost bound, PredsOf&& preds_of,
                                       ProcOf&& proc_of, FinishOf&& finish_of,
                                       ReadyRef&& ready_ref, Emit&& emit,
                                       TailOf&& reject_tail_of) {
  // fastsched: hot — the innermost timing recurrence; every probe of
  // every consumer runs through this loop.
  graph::Cost running = seed_length;
  if (bound != kNoBound && !graph::definitely_less(running, bound)) {
    return {running, begin, true};
  }
  for (std::size_t i = begin; i < end; ++i) {
    const graph::NodeId n = list[i];
    const sched::ProcId p = proc_of(n);
    graph::Cost dat = 0.0;
    for (const auto& q : preds_of(i, n)) {
      const graph::Cost arrival =
          finish_of(q.node) + (proc_of(q.node) == p ? 0.0 : q.cost);
      dat = std::max(dat, arrival);
    }
    graph::Cost& ready = ready_ref(p);
    const graph::Cost start = std::max(dat, ready);
    const graph::Cost fin = start + g.weight(n);
    ready = fin;
    running = std::max(running, fin);
    emit(i, n, p, start, fin);
    if (bound != kNoBound) {
      const graph::Cost floor = std::max(running, fin + reject_tail_of(n));
      if (!graph::definitely_less(floor, bound)) {
        return {running, i + 1, true};
      }
    }
  }
  return {running, end, false};
  // fastsched: end-hot
}

/// Graph-CSR adapter: the canonical entry point for every consumer that
/// does not maintain its own edge copy. Same recurrence, same order —
/// `replay_list_edges` with `preds_of` reading `g.predecessors(n)`.
template <class ProcOf, class FinishOf, class ReadyRef, class Emit,
          class TailOf>
inline ReplayOutcome replay_list(const graph::TaskGraph& g,
                                 std::span<const graph::NodeId> list,
                                 std::size_t begin, std::size_t end,
                                 graph::Cost seed_length, graph::Cost bound,
                                 ProcOf&& proc_of, FinishOf&& finish_of,
                                 ReadyRef&& ready_ref, Emit&& emit,
                                 TailOf&& reject_tail_of) {
  return replay_list_edges(
      g, list, begin, end, seed_length, bound,
      [&g](std::size_t, graph::NodeId n) { return g.predecessors(n); },
      proc_of, finish_of, ready_ref, emit, reject_tail_of);
}

/// Tail-less overload: the abort test degenerates to the running max
/// (max(running, fin + 0) == running, since running already folded fin).
template <class ProcOf, class FinishOf, class ReadyRef, class Emit>
inline ReplayOutcome replay_list(const graph::TaskGraph& g,
                                 std::span<const graph::NodeId> list,
                                 std::size_t begin, std::size_t end,
                                 graph::Cost seed_length, graph::Cost bound,
                                 ProcOf&& proc_of, FinishOf&& finish_of,
                                 ReadyRef&& ready_ref, Emit&& emit) {
  return replay_list(g, list, begin, end, seed_length, bound, proc_of,
                     finish_of, ready_ref, emit,
                     [](graph::NodeId) { return graph::Cost{0}; });
}

/// Builds the full Schedule (start/finish per node) for one (list,
/// assignment) pair by a fresh replay. Shared by both evaluators so
/// materialization and length evaluation cannot drift apart.
inline sched::Schedule replay_to_schedule(
    const graph::TaskGraph& g, std::span<const graph::NodeId> list,
    std::size_t num_procs, std::span<const sched::ProcId> assignment) {
  std::vector<graph::Cost> finish(g.num_nodes(), 0.0);
  std::vector<graph::Cost> ready(num_procs, 0.0);
  sched::Schedule s(g.num_nodes(), num_procs);
  replay_list(
      g, list, 0, list.size(), 0.0, kNoBound,
      [&](graph::NodeId m) { return assignment[m]; },
      [&](graph::NodeId m) { return finish[m]; },
      [&](sched::ProcId p) -> graph::Cost& { return ready[p]; },
      [&](std::size_t, graph::NodeId m, sched::ProcId p, graph::Cost start,
          graph::Cost fin) {
        finish[m] = fin;
        s.assign(m, p, start, fin);
      });
  return s;
}

}  // namespace fastsched::fast::detail
