#pragma once

/// \file local_search.hpp
/// Phase 2 of FAST (paper §§4.3–4.4): random local neighbourhood search
/// over node-to-processor transfers. The neighbourhood is defined by the
/// static *blocking-node list* (all IBNs and OBNs — the nodes that may
/// block a CPN on its processor). Each step transfers one random blocking
/// node to one random processor and keeps the move only if the schedule
/// length strictly improves. MAXSTEP = 64 in the paper.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "fast/incremental_evaluator.hpp"

namespace fastsched::fast {

/// Move-generation policies. `kRandomBlockingRandomProc` is the paper's;
/// the others exist for the neighbourhood ablation.
enum class NeighborhoodPolicy {
  kRandomBlockingRandomProc,  ///< paper §4.4: random node, random processor
  kRandomNodeRandomProc,      ///< any node (incl. CPNs) may move
  kBestProcForRandomBlocking, ///< random blocking node, best of all processors
};

struct LocalSearchOptions {
  /// Number of search steps (the paper's MAXSTEP, fixed at 64 there).
  int max_steps = 64;
  NeighborhoodPolicy policy = NeighborhoodPolicy::kRandomBlockingRandomProc;
};

/// Outcome statistics for reporting and ablation benches.
struct LocalSearchStats {
  int steps = 0;         ///< moves attempted
  int improvements = 0;  ///< moves kept
  Cost initial_length = 0;
  Cost final_length = 0;
};

/// Refines `assignment` in place. `blocking` is the neighbourhood node set
/// (IBNs + OBNs for the paper's policy; ignored by kRandomNodeRandomProc).
/// `length` must be the current length of `assignment` and is updated.
/// Randomness is drawn from `rng`; the result is deterministic per seed.
/// The evaluator is reset to `assignment` on entry; each candidate move
/// then costs O(affected suffix) instead of O(v + e), with accept/reject
/// decisions bit-identical to the full-scan evaluator's.
LocalSearchStats local_search(IncrementalEvaluator& evaluator,
                              std::span<const NodeId> blocking,
                              std::vector<ProcId>& assignment, Cost& length,
                              const LocalSearchOptions& options, Rng& rng);

}  // namespace fastsched::fast
