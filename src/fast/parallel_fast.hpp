#pragma once

/// \file parallel_fast.hpp
/// Parallel multi-start FAST — the extension the authors later published as
/// PFAST: the O(e) initial schedule is computed once, then several search
/// threads explore independent random neighbourhood walks from it; the best
/// refined assignment wins. Threads use split RNG streams and the reduction
/// is deterministic (shortest length, ties to the lowest thread index), so
/// results are reproducible for a fixed (seed, thread-count) pair.

#include <cstdint>

#include "fast/fast.hpp"

namespace fastsched::fast {

struct ParallelFastOptions {
  std::size_t num_procs = 0;  ///< 0 = one processor per node
  /// Steps per thread. Paper-equivalent total effort splits MAXSTEP across
  /// threads; the default keeps 64 per thread for a strictly stronger
  /// search at the same wall-clock as serial FAST.
  int max_steps_per_thread = 64;
  std::size_t num_threads = 4;
  std::uint64_t seed = 1;
  ListPolicy list_policy = ListPolicy::kCpnDominate;
  NeighborhoodPolicy neighborhood =
      NeighborhoodPolicy::kRandomBlockingRandomProc;
  /// Per-worker candidate-replay engine (each thread's evaluator gets its
  /// own chains, worklist and frontier statistics). Bit-identical results
  /// across policies.
  ReplayPolicy replay = ReplayPolicy::kAuto;
  /// Backward-tail sharpening of early rejection (shared read-only tables,
  /// computed once; see FastOptions::reject_tails).
  bool reject_tails = true;
};

struct ParallelFastResult {
  std::vector<NodeId> list;
  std::vector<ProcId> assignment;  ///< best assignment found
  Cost initial_length = 0;
  Cost final_length = 0;
  std::size_t winning_thread = 0;  ///< thread that produced the winner
};

/// Runs multi-start FAST with real threads (std::thread).
[[nodiscard]] ParallelFastResult run_parallel_fast(
    const TaskGraph& g, const ParallelFastOptions& options = {});

/// `sched::Scheduler` adapter.
class ParallelFastScheduler final : public sched::Scheduler {
 public:
  explicit ParallelFastScheduler(ParallelFastOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override { return "PFAST"; }

  [[nodiscard]] Schedule run(const TaskGraph& g,
                             const sched::SchedulerOptions& o) const override;

 private:
  ParallelFastOptions options_;
};

}  // namespace fastsched::fast
