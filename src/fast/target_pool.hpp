#pragma once

/// \file target_pool.hpp
/// The transfer-target pool shared by FAST's hill-climbing search and the
/// annealing refinement: the processors the current assignment uses plus
/// one fresh processor. Drawing from the full pool would dilute the
/// search with indistinguishable empty processors when the budget is
/// generous ("more than enough processors", paper §5) — any single fresh
/// target stands for all of them.
///
/// Maintenance is incremental: an accepted transfer updates per-processor
/// counts in O(1), and the pool itself only changes when a processor
/// empties or the fresh processor gains its first node — then a single
/// sorted insert/erase plus a fresh-pointer advance, never the former
/// O(v) assignment walk per accepted move (which dominated the accept
/// path at v >= 10^5). The pool contents are a pure function of the
/// used-processor set, so the incremental path is value-identical to
/// rebuild() — a unit test pins this over random move sequences.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/schedule.hpp"

namespace fastsched::fast {

class TransferTargets {
 public:
  explicit TransferTargets(std::size_t num_procs) : count_(num_procs, 0) {
    targets_.reserve(num_procs);
  }

  /// Recomputes the pool for `assignment`: used processors in ascending
  /// order, then the lowest-numbered unused one (if any).
  void rebuild(std::span<const sched::ProcId> assignment) {
    std::fill(count_.begin(), count_.end(), std::uint32_t{0});
    for (const sched::ProcId p : assignment) ++count_[p];
    targets_.clear();
    const auto num_procs = static_cast<sched::ProcId>(count_.size());
    fresh_ = sched::kUnassignedProc;
    for (sched::ProcId p = 0; p < num_procs; ++p) {
      if (count_[p] != 0) {
        targets_.push_back(p);
      } else if (fresh_ == sched::kUnassignedProc) {
        fresh_ = p;
      }
    }
    if (fresh_ != sched::kUnassignedProc) targets_.push_back(fresh_);
  }

  /// Folds one committed transfer (`from` loses a node, `to` gains one)
  /// into the pool. O(1) unless the used set itself changed.
  void apply_transfer(sched::ProcId from, sched::ProcId to) {
    if (from == to) return;
    FASTSCHED_ASSERT(count_[from] > 0);
    --count_[from];
    ++count_[to];
    if (count_[to] == 1) activate(to);
    if (count_[from] == 0) deactivate(from);
  }

  [[nodiscard]] std::span<const sched::ProcId> procs() const noexcept {
    return targets_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] sched::ProcId operator[](std::size_t i) const {
    return targets_[i];
  }

 private:
  // Invariant: targets_ holds the used processors in ascending order,
  // followed by fresh_ (the lowest-numbered unused processor) when one
  // exists.

  void activate(sched::ProcId p) {
    const bool was_fresh = p == fresh_;
    if (fresh_ != sched::kUnassignedProc) targets_.pop_back();
    if (was_fresh) {
      // Every id below the old fresh pointer is used, so the new lowest
      // unused id is strictly above it; advance (amortized O(p) across a
      // whole search, typically a couple of steps).
      const auto num_procs = static_cast<sched::ProcId>(count_.size());
      sched::ProcId f = p;
      while (++f < num_procs && count_[f] != 0) {}
      fresh_ = f < num_procs ? f : sched::kUnassignedProc;
    }
    targets_.insert(std::lower_bound(targets_.begin(), targets_.end(), p), p);
    if (fresh_ != sched::kUnassignedProc) targets_.push_back(fresh_);
  }

  void deactivate(sched::ProcId p) {
    if (fresh_ != sched::kUnassignedProc) targets_.pop_back();
    targets_.erase(std::lower_bound(targets_.begin(), targets_.end(), p));
    if (fresh_ == sched::kUnassignedProc || p < fresh_) fresh_ = p;
    targets_.push_back(fresh_);
  }

  std::vector<sched::ProcId> targets_;
  std::vector<std::uint32_t> count_;  ///< nodes per processor
  sched::ProcId fresh_ = sched::kUnassignedProc;
};

}  // namespace fastsched::fast
