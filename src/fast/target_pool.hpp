#pragma once

/// \file target_pool.hpp
/// The transfer-target pool shared by FAST's hill-climbing search and the
/// annealing refinement: the processors the current assignment uses plus
/// one fresh processor. Drawing from the full pool would dilute the
/// search with indistinguishable empty processors when the budget is
/// generous ("more than enough processors", paper §5) — any single fresh
/// target stands for all of them. Rebuilt after each accepted move; the
/// scratch buffer is owned by the pool so rebuilds never allocate.

#include <algorithm>
#include <span>
#include <vector>

#include "sched/schedule.hpp"

namespace fastsched::fast {

class TransferTargets {
 public:
  explicit TransferTargets(std::size_t num_procs) : used_(num_procs, 0) {
    targets_.reserve(num_procs);
  }

  /// Recomputes the pool for `assignment`: used processors in ascending
  /// order, then the lowest-numbered unused one (if any).
  void rebuild(std::span<const sched::ProcId> assignment) {
    targets_.clear();
    std::fill(used_.begin(), used_.end(), char{0});
    for (const sched::ProcId p : assignment) used_[p] = 1;
    const auto num_procs = static_cast<sched::ProcId>(used_.size());
    sched::ProcId fresh = sched::kUnassignedProc;
    for (sched::ProcId p = 0; p < num_procs; ++p) {
      if (used_[p] != 0) {
        targets_.push_back(p);
      } else if (fresh == sched::kUnassignedProc) {
        fresh = p;
      }
    }
    if (fresh != sched::kUnassignedProc) targets_.push_back(fresh);
  }

  [[nodiscard]] std::span<const sched::ProcId> procs() const noexcept {
    return targets_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] sched::ProcId operator[](std::size_t i) const {
    return targets_[i];
  }

 private:
  std::vector<sched::ProcId> targets_;
  std::vector<char> used_;  // scratch: avoids re-allocating per rebuild
};

}  // namespace fastsched::fast
