#include "fast/annealing.hpp"

#include <cmath>

#include "fast/cpn_dominate.hpp"
#include "fast/initial_schedule.hpp"
#include "fast/target_pool.hpp"
#include "graph/classification.hpp"

namespace fastsched::fast {

AnnealingStats anneal(IncrementalEvaluator& evaluator,
                      std::span<const NodeId> blocking,
                      std::vector<ProcId>& assignment, Cost& length,
                      const AnnealingOptions& options, Rng& rng) {
  AnnealingStats stats;
  stats.initial_length = length;
  stats.best_length = length;

  const std::size_t num_procs = evaluator.num_procs();
  if (blocking.empty() || num_procs <= 1 || options.max_steps <= 0) {
    return stats;
  }

  evaluator.reset(assignment);

  // Target pool: used processors + one fresh (same rationale as the
  // hill-climbing search: empty processors are interchangeable).
  TransferTargets targets(num_procs);
  targets.rebuild(assignment);

  std::vector<ProcId> best = assignment;
  double temperature = options.initial_temperature_fraction * length;

  for (int step = 0; step < options.max_steps; ++step) {
    ++stats.steps;
    if (step > 0 && step % options.steps_per_level == 0) {
      temperature *= options.cooling;
    }

    const NodeId n = blocking[rng.uniform(blocking.size())];
    const ProcId original = assignment[n];
    const ProcId target = targets[rng.uniform(targets.size())];
    if (target == original) continue;

    // Metropolis acceptance needs the exact Δ even for uphill moves, so
    // the candidate is scanned unbounded — the suffix restart is the
    // whole saving here.
    const Cost candidate = *evaluator.evaluate_move(n, target);
    const Cost delta = candidate - length;
    const bool downhill = graph::definitely_less(candidate, length);
    const bool accept =
        downhill ||
        (temperature > 0 && rng.uniform01() < std::exp(-delta / temperature));
    if (accept) {
      ++stats.accepted;
      if (!downhill && delta > 0) ++stats.uphill_accepted;
      length = evaluator.commit();
      assignment[n] = target;
      targets.apply_transfer(original, target);
      if (graph::definitely_less(length, stats.best_length)) {
        stats.best_length = length;
        best = assignment;
      }
    } else {
      evaluator.revert();
    }
  }

  // Return the best solution visited, not the last accepted one.
  if (graph::definitely_less(stats.best_length, length)) {
    assignment = std::move(best);
    length = stats.best_length;
  }
  stats.best_length = length;
  return stats;
}

sched::Schedule AnnealingFastScheduler::run(
    const graph::TaskGraph& g, const sched::SchedulerOptions& o) const {
  const std::size_t num_procs =
      o.num_procs > 0 ? o.num_procs : std::max<std::size_t>(1, g.num_nodes());
  if (g.num_nodes() == 0) return sched::Schedule(0, num_procs);

  const graph::LevelInfo levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  auto list = build_cpn_dominate_list(g, levels, classes);
  std::vector<NodeId> blocking;
  for (const NodeId n : list) {
    if (classes[n] != graph::NodeClass::kCpn) blocking.push_back(n);
  }

  auto initial = initial_schedule(g, list, num_procs);
  IncrementalEvaluator evaluator(g, std::move(list), num_procs,
                                 IncrementalEvaluator::kAutoInterval,
                                 options_.replay);
  Cost length = initial.length;
  Rng rng(o.seed);
  (void)anneal(evaluator, blocking, initial.assignment, length, options_,
               rng);
  return evaluator.materialize(initial.assignment);
}

}  // namespace fastsched::fast
