#pragma once

/// \file initial_schedule.hpp
/// Phase 1 of FAST (paper §4.2): list-schedule the CPN-Dominate list onto
/// processor ready times. For each node only the processors hosting its
/// parents plus one fresh processor are examined, which keeps the whole
/// phase O(e).

#include <span>
#include <vector>

#include "fast/evaluator.hpp"

namespace fastsched::fast {

/// Output of the initial scheduling phase.
struct InitialScheduleResult {
  std::vector<ProcId> assignment;  ///< processor per node
  Cost length = 0;                 ///< schedule length of the assignment
};

/// Runs InitialSchedule() over `list` (a topological order) with
/// `num_procs` available processors.
///
/// Candidate processors per node, examined in this order: the processors of
/// its parents (first occurrence order), then one fresh (so-far-unused)
/// processor if the pool still has one. The earliest start time wins; ties
/// keep the earliest-examined candidate. If a node has no parents and the
/// pool is exhausted, the processor with the smallest ready time is used as
/// a fallback (cannot occur when num_procs >= number of entry nodes).
[[nodiscard]] InitialScheduleResult initial_schedule(const TaskGraph& g,
                                                     std::span<const NodeId> list,
                                                     std::size_t num_procs);

/// Insertion variant for the ablation study: identical candidate set
/// (parents' processors + one fresh), but each node goes into the earliest
/// idle *slot* on the winning processor rather than after its ready time.
/// This is exactly the option paper §4.2 rejects to stay O(e) — the slot
/// search costs O(v) per node in the worst case. Returns the materialized
/// schedule because an insertion result is no longer representable as a
/// (list, assignment) pair for the O(v+e) replay evaluator.
[[nodiscard]] sched::Schedule initial_schedule_insertion(
    const TaskGraph& g, std::span<const NodeId> list, std::size_t num_procs);

}  // namespace fastsched::fast
