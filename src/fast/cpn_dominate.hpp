#pragma once

/// \file cpn_dominate.hpp
/// Construction of the CPN-Dominate scheduling list (paper §4.1): a static
/// node order in which critical-path nodes appear as early as their
/// in-branch ancestors allow, in-branch nodes are inserted before the CPN
/// they feed in decreasing b-level order (ties broken by smaller t-level),
/// and out-branch nodes are appended last in decreasing b-level order.
///
/// The list is always a topological order of the DAG, which is what makes
/// the O(v + e) list-replay evaluator in evaluator.hpp correct.

#include <vector>

#include "graph/classification.hpp"
#include "graph/levels.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::fast {

using graph::LevelInfo;
using graph::NodeClass;
using graph::NodeId;
using graph::TaskGraph;

/// Alternative static list orders. `kCpnDominate` is the paper's; the
/// others exist for the list-policy ablation study (they order the whole
/// node set by a single priority, restricted to valid topological orders).
enum class ListPolicy {
  kCpnDominate,  ///< paper §4.1
  kBLevel,       ///< decreasing b-level
  kTLevel,       ///< increasing t-level
  kStaticLevel,  ///< decreasing static level
};

/// Builds the CPN-Dominate list in O(e log d) (d = max in-degree; the log
/// comes from pre-sorting each node's parent list by priority once).
[[nodiscard]] std::vector<NodeId> build_cpn_dominate_list(
    const TaskGraph& g, const LevelInfo& levels,
    const std::vector<NodeClass>& classes);

/// Builds a static scheduling list under `policy`. All policies produce a
/// topological order.
[[nodiscard]] std::vector<NodeId> build_list(
    const TaskGraph& g, const LevelInfo& levels,
    const std::vector<NodeClass>& classes, ListPolicy policy);

/// True iff `list` is a permutation of all nodes in topological order.
[[nodiscard]] bool is_topological_list(const TaskGraph& g,
                                       const std::vector<NodeId>& list);

}  // namespace fastsched::fast
