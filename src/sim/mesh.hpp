#pragma once

/// \file mesh.hpp
/// 2D-mesh network model — the Intel Paragon's actual topology. Processors
/// are laid out row-major on a W×H mesh; messages follow dimension-ordered
/// XY routing (all X hops, then all Y hops), and every directed link can
/// carry one message at a time (wormhole-style link occupancy, modeled at
/// whole-message granularity). Distance adds per-hop latency; contention
/// adds queueing at busy links.
///
/// This refines `MachineModel`'s contention-free view: schedules whose
/// traffic concentrates on few mesh links (e.g. everything fanning out of
/// one hot node) degrade further than uniformly-spread traffic, an effect
/// no scheduler in this library models — exactly the kind of gap between
/// Gantt chart and machine the paper measured.

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "sim/machine_model.hpp"

namespace fastsched::sim {

struct MeshConfig {
  /// Mesh dimensions; processor p sits at (p % width, p / width).
  int width = 8;
  int height = 8;
  /// Per-hop latency (µs).
  double hop_latency = 1.0;
  /// Link occupancy per message: the wire time each traversed link is
  /// busy. Modeled as edge_cost × this factor spread over the route.
  double link_occupancy_factor = 1.0;
  /// Sender NIC injection serialization (as in MachineModel).
  double nic_overhead = 15.0;

  [[nodiscard]] int procs() const { return width * height; }

  /// Paragon-like 8×8 partition.
  [[nodiscard]] static MeshConfig paragon64() { return MeshConfig{}; }
};

struct MeshSimResult {
  double makespan = 0.0;
  std::vector<double> start;
  std::vector<double> finish;
  std::size_t messages = 0;
  double total_hops = 0;          ///< sum of route lengths
  double max_link_busy = 0.0;     ///< busiest link's total occupancy
  double total_link_wait = 0.0;   ///< time messages spent queueing at links
};

/// Executes `schedule` on the mesh. Requires schedule.num_procs() <=
/// config.procs(). Deterministic; same local-order semantics as
/// `sim::simulate`.
[[nodiscard]] MeshSimResult simulate_mesh(const graph::TaskGraph& g,
                                          const sched::Schedule& schedule,
                                          const MeshConfig& config);

/// Number of XY-routing hops between processors a and b.
[[nodiscard]] int mesh_hops(const MeshConfig& config, sched::ProcId a,
                            sched::ProcId b);

}  // namespace fastsched::sim
