// machine_model.hpp is header-only; see event_sim.cpp for the simulator.
#include "sim/machine_model.hpp"
