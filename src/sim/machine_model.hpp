#pragma once

/// \file machine_model.hpp
/// Cost model of the message-passing multiprocessor that *executes* a
/// scheduled program. This is the substitute for the paper's Intel Paragon
/// runs: the scheduling algorithms see only the DAG's edge costs, but the
/// machine additionally charges per-message sender/receiver overheads and
/// network latency, and serializes a processor's outgoing sends — the
/// effects that made measured execution times on the Paragon diverge from
/// Gantt-chart schedule lengths.

#include <cstddef>

namespace fastsched::sim {

struct MachineModel {
  /// CPU time the sender spends handing one message to the network (blocks
  /// the sender's next task; consecutive sends serialize on the CPU).
  /// Zero models a dedicated message co-processor (the Paragon had one).
  double send_overhead = 0.0;
  /// Injection serialization at the sender's network interface: the i-th
  /// outgoing message of a task leaves i·nic_overhead after the task
  /// finishes. Delays arrivals (fan-out costs the receivers), but not the
  /// sender's own compute.
  double nic_overhead = 0.0;
  /// Additional time charged on the receiving side per message.
  double recv_overhead = 0.0;
  /// Network latency added to every cross-processor message.
  double latency = 0.0;
  /// Multiplier applied to the DAG edge cost (the wire time the scheduler
  /// believed in). 1.0 = the scheduler's estimate was exact.
  double wire_factor = 1.0;

  /// An ideal machine: execution time equals the schedule's own model, so
  /// simulated makespan == schedule length for ready-time schedules.
  [[nodiscard]] static MachineModel ideal() { return MachineModel{}; }

  /// Paragon-flavoured calibration. The timing database's edge costs are
  /// "benchmarked" end-to-end (CASCH measured single messages on the real
  /// machine), so wire_factor stays 1 and latency/recv are zero. The
  /// Paragon's per-node message co-processor means sends do not block
  /// compute (send_overhead 0), but a node's outgoing messages still
  /// serialize at its network interface (~15 µs each). Schedules that fan
  /// many messages out of one producer — DSC's cluster spraying, broadcast
  /// producers placed so every consumer is remote — pay for it in the
  /// receivers' start times, which is exactly how measured Paragon times
  /// diverged from Gantt-chart lengths.
  [[nodiscard]] static MachineModel paragon() {
    return MachineModel{/*send_overhead=*/0.0, /*nic_overhead=*/15.0,
                        /*recv_overhead=*/0.0, /*latency=*/0.0,
                        /*wire_factor=*/1.0};
  }
};

}  // namespace fastsched::sim
