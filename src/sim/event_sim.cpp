#include "sim/event_sim.hpp"

#include <algorithm>
#include <deque>

namespace fastsched::sim {

using graph::Adjacency;
using graph::NodeId;
using sched::ProcId;

SimResult simulate(const graph::TaskGraph& g, const sched::Schedule& schedule,
                   const MachineModel& machine) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_REQUIRE(schedule.num_nodes() == v && schedule.is_complete(),
                    "simulate() needs a complete schedule for this graph");

  SimResult result;
  result.start.assign(v, 0.0);
  result.finish.assign(v, 0.0);
  if (v == 0) return result;

  // Local execution order per processor: the schedule's start-time order.
  std::vector<std::vector<NodeId>> order(schedule.num_procs());
  for (ProcId p = 0; p < schedule.num_procs(); ++p) {
    const auto tasks = schedule.tasks_on(p);
    auto& seq = order[p];
    seq.assign(tasks.begin(), tasks.end());
    std::stable_sort(seq.begin(), seq.end(), [&](NodeId a, NodeId b) {
      return schedule.start(a) < schedule.start(b);
    });
  }

  std::vector<std::size_t> next_index(schedule.num_procs(), 0);
  std::vector<double> proc_avail(schedule.num_procs(), 0.0);
  std::vector<double> nic_avail(schedule.num_procs(), 0.0);
  std::vector<std::size_t> pending_parents(v);
  std::vector<double> arrival(v, 0.0);  // max over incoming messages
  for (NodeId n = 0; n < v; ++n) pending_parents[n] = g.in_degree(n);

  // Worklist of processors that may be able to make progress.
  std::deque<ProcId> work;
  std::vector<bool> queued(schedule.num_procs(), false);
  const auto enqueue = [&](ProcId p) {
    if (!queued[p]) {
      queued[p] = true;
      work.push_back(p);
    }
  };
  for (ProcId p = 0; p < schedule.num_procs(); ++p) {
    if (!order[p].empty()) enqueue(p);
  }

  std::size_t executed = 0;
  while (!work.empty()) {
    const ProcId p = work.front();
    work.pop_front();
    queued[p] = false;

    while (next_index[p] < order[p].size()) {
      const NodeId n = order[p][next_index[p]];
      if (pending_parents[n] != 0) break;  // wait for remote data

      const double start = std::max(proc_avail[p], arrival[n]);
      const double fin = start + g.weight(n);
      result.start[n] = start;
      result.finish[n] = fin;
      result.makespan = std::max(result.makespan, fin);
      ++next_index[p];
      ++executed;

      // Deliver messages. Cross-processor sends serialize twice: on the
      // sender's CPU (send_overhead, delays its next task) and at its
      // network interface (nic_overhead, delays arrivals only).
      double cpu_clock = fin;
      for (const Adjacency& s : g.successors(n)) {
        const NodeId c = s.node;
        if (schedule.proc(c) == p) {
          arrival[c] = std::max(arrival[c], fin);
        } else {
          cpu_clock += machine.send_overhead;
          nic_avail[p] =
              std::max(nic_avail[p], cpu_clock) + machine.nic_overhead;
          const double nic_clock = nic_avail[p];
          const double wire = machine.wire_factor * s.cost;
          const double arrive =
              nic_clock + machine.latency + wire + machine.recv_overhead;
          arrival[c] = std::max(arrival[c], arrive);
          ++result.messages;
          result.comm_wire_time += wire;
        }
        if (--pending_parents[c] == 0) enqueue(schedule.proc(c));
      }
      proc_avail[p] = cpu_clock;
      result.makespan = std::max(result.makespan, cpu_clock);
    }
  }

  FASTSCHED_ASSERT_MSG(executed == v,
                       "simulation deadlocked on an inconsistent schedule");
  return result;
}

}  // namespace fastsched::sim
