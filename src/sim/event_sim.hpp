#pragma once

/// \file event_sim.hpp
/// Discrete-event execution of a scheduled program on a `MachineModel`.
///
/// Semantics: each processor executes its tasks in the schedule's
/// start-time order (the order the generated code would run in). A task
/// begins once (a) the processor has retired every earlier local task and
/// its outgoing sends, and (b) every message from a remote parent has
/// arrived. After a task finishes, its cross-processor messages are
/// injected one at a time (each occupying the sender for `send_overhead`);
/// a message arrives `latency + wire_factor·edge_cost + recv_overhead`
/// after injection. Intra-processor edges are free, as in the paper's
/// model.
///
/// The simulation is deterministic and O(v + e + v log v) (the log from
/// the per-processor start-order sort). A valid schedule can never
/// deadlock: local orders are start-time-consistent with the DAG.

#include <vector>

#include "sched/schedule.hpp"
#include "sim/machine_model.hpp"

namespace fastsched::sim {

struct SimResult {
  double makespan = 0.0;
  std::vector<double> start;   ///< actual start per node
  std::vector<double> finish;  ///< actual finish per node
  std::size_t messages = 0;    ///< cross-processor messages delivered
  double comm_wire_time = 0.0; ///< total wire time of those messages
};

/// Executes `schedule` (which must be complete and valid for `g`) on
/// `machine`. Throws `fastsched::Error` on incomplete schedules.
[[nodiscard]] SimResult simulate(const graph::TaskGraph& g,
                                 const sched::Schedule& schedule,
                                 const MachineModel& machine);

}  // namespace fastsched::sim
