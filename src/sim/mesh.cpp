#include "sim/mesh.hpp"

#include <algorithm>
#include <deque>

namespace fastsched::sim {

using graph::Adjacency;
using graph::NodeId;
using sched::ProcId;

int mesh_hops(const MeshConfig& config, ProcId a, ProcId b) {
  const int ax = static_cast<int>(a) % config.width;
  const int ay = static_cast<int>(a) / config.width;
  const int bx = static_cast<int>(b) % config.width;
  const int by = static_cast<int>(b) / config.width;
  return std::abs(ax - bx) + std::abs(ay - by);
}

namespace {

// Directed link id between two adjacent mesh nodes.
std::uint32_t link_id(const MeshConfig& config, int from, int to) {
  // 4 outgoing directions per node: 0=+x, 1=-x, 2=+y, 3=-y.
  const int diff = to - from;
  int dir = 0;
  if (diff == 1) {
    dir = 0;
  } else if (diff == -1) {
    dir = 1;
  } else if (diff == config.width) {
    dir = 2;
  } else {
    FASTSCHED_ASSERT(diff == -config.width);
    dir = 3;
  }
  return static_cast<std::uint32_t>(from * 4 + dir);
}

// XY route from processor a to b as a sequence of directed link ids.
void xy_route(const MeshConfig& config, ProcId a, ProcId b,
              std::vector<std::uint32_t>& out) {
  out.clear();
  int cur = static_cast<int>(a);
  const int bx = static_cast<int>(b) % config.width;
  const int by = static_cast<int>(b) / config.width;
  while (cur % config.width != bx) {
    const int next = cur + (cur % config.width < bx ? 1 : -1);
    out.push_back(link_id(config, cur, next));
    cur = next;
  }
  while (cur / config.width != by) {
    const int next = cur + (cur / config.width < by ? config.width : -config.width);
    out.push_back(link_id(config, cur, next));
    cur = next;
  }
}

}  // namespace

MeshSimResult simulate_mesh(const graph::TaskGraph& g,
                            const sched::Schedule& schedule,
                            const MeshConfig& config) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_REQUIRE(schedule.num_nodes() == v && schedule.is_complete(),
                    "simulate_mesh() needs a complete schedule");

  // Map processors onto mesh nodes: identity when the schedule's pool
  // already fits the mesh (placements keep their intended coordinates),
  // dense remap of the *used* processors otherwise (so unbounded
  // schedulers fit as long as they use few enough). A flat vector keyed
  // by the original ProcId — no hashed container, so there is no
  // iteration-order hazard to begin with and lookups are O(1) loads.
  std::vector<ProcId> remap(schedule.num_procs(), sched::kUnassignedProc);
  std::size_t used = 0;
  const bool identity =
      schedule.num_procs() <= static_cast<std::size_t>(config.procs());
  for (ProcId p = 0; p < schedule.num_procs(); ++p) {
    if (schedule.tasks_on(p).empty()) continue;
    remap[p] = identity ? p : static_cast<ProcId>(used);
    ++used;
  }
  FASTSCHED_REQUIRE(
      used <= static_cast<std::size_t>(config.procs()),
      "schedule uses more processors than the mesh has (" +
          std::to_string(used) + " > " +
          std::to_string(config.procs()) + ")");
  const auto mesh_proc = [&](NodeId n) { return remap[schedule.proc(n)]; };

  MeshSimResult result;
  result.start.assign(v, 0.0);
  result.finish.assign(v, 0.0);
  if (v == 0) return result;

  // Local orders per mesh processor (sized by the mesh, since identity
  // mapping can leave holes).
  std::vector<std::vector<NodeId>> order(
      static_cast<std::size_t>(config.procs()));
  for (ProcId p = 0; p < schedule.num_procs(); ++p) {
    const auto tasks = schedule.tasks_on(p);
    if (tasks.empty()) continue;
    auto& seq = order[remap[p]];
    seq.assign(tasks.begin(), tasks.end());
    std::stable_sort(seq.begin(), seq.end(), [&](NodeId a, NodeId b) {
      return schedule.start(a) < schedule.start(b);
    });
  }

  std::vector<std::size_t> next_index(order.size(), 0);
  std::vector<double> proc_avail(order.size(), 0.0);
  std::vector<double> nic_avail(order.size(), 0.0);
  std::vector<double> link_free(static_cast<std::size_t>(config.procs()) * 4,
                                0.0);
  std::vector<double> link_busy_total(link_free.size(), 0.0);
  std::vector<std::size_t> pending(v);
  std::vector<double> arrival(v, 0.0);
  for (NodeId n = 0; n < v; ++n) pending[n] = g.in_degree(n);

  std::deque<ProcId> work;
  std::vector<bool> queued(order.size(), false);
  const auto enqueue = [&](ProcId p) {
    if (!queued[p]) {
      queued[p] = true;
      work.push_back(p);
    }
  };
  for (ProcId p = 0; p < order.size(); ++p) {
    if (!order[p].empty()) enqueue(p);
  }

  std::vector<std::uint32_t> route;
  std::size_t executed = 0;
  while (!work.empty()) {
    const ProcId p = work.front();
    work.pop_front();
    queued[p] = false;

    while (next_index[p] < order[p].size()) {
      const NodeId n = order[p][next_index[p]];
      if (pending[n] != 0) break;

      const double start = std::max(proc_avail[p], arrival[n]);
      const double fin = start + g.weight(n);
      result.start[n] = start;
      result.finish[n] = fin;
      result.makespan = std::max(result.makespan, fin);
      ++next_index[p];
      ++executed;

      for (const Adjacency& s : g.successors(n)) {
        const NodeId c = s.node;
        const ProcId dst = mesh_proc(c);
        if (dst == p) {
          arrival[c] = std::max(arrival[c], fin);
        } else {
          // Inject after NIC serialization, then reserve the XY route
          // link by link; each link is busy for the message's wire time.
          nic_avail[p] = std::max(nic_avail[p], fin) + config.nic_overhead;
          double t = nic_avail[p];
          xy_route(config, p, dst, route);
          const double occupancy = config.link_occupancy_factor * s.cost /
                                   std::max<std::size_t>(route.size(), 1);
          for (const std::uint32_t l : route) {
            const double enter = std::max(t + config.hop_latency, link_free[l]);
            result.total_link_wait += enter - (t + config.hop_latency);
            link_free[l] = enter + occupancy;
            link_busy_total[l] += occupancy;
            result.max_link_busy =
                std::max(result.max_link_busy, link_busy_total[l]);
            t = enter + occupancy;
          }
          arrival[c] = std::max(arrival[c], t);
          ++result.messages;
          result.total_hops += static_cast<double>(route.size());
        }
        if (--pending[c] == 0) enqueue(mesh_proc(c));
      }
      proc_avail[p] = fin;
    }
  }

  FASTSCHED_ASSERT_MSG(executed == v, "mesh simulation deadlocked");
  return result;
}

}  // namespace fastsched::sim
