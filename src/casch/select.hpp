#pragma once

/// \file select.hpp
/// Algorithm auto-selection — CASCH's interactive mode let users run and
/// compare several schedulers on one application; this is the programmatic
/// equivalent: run a set of algorithms, validate each schedule, rank by
/// simulated execution time on the machine model (falling back to schedule
/// length when two are within tolerance), and return the winner with the
/// full ranking.

#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/machine_model.hpp"

namespace fastsched::casch {

struct SelectionEntry {
  std::string algorithm;
  double schedule_length = 0;
  double execution_time = 0;  ///< simulated on the machine model
  std::size_t procs_used = 0;
  double scheduling_seconds = 0;
};

struct SelectionResult {
  /// Ranking, best first (by execution time, ties by schedule length,
  /// then by scheduling time).
  std::vector<SelectionEntry> ranking;
  /// The winner's schedule.
  sched::Schedule schedule{0, 1};

  [[nodiscard]] const SelectionEntry& best() const { return ranking.front(); }
};

/// Runs every algorithm in `algorithms` (registry names) on `g` and ranks
/// the results. Throws if `algorithms` is empty or any name is unknown.
[[nodiscard]] SelectionResult select_best(
    const graph::TaskGraph& g, const std::vector<std::string>& algorithms,
    const sched::SchedulerOptions& options = {},
    const sim::MachineModel& machine = sim::MachineModel::paragon());

/// The default candidate set for auto-selection: the fast algorithms first
/// (FAST, DSC), then the quality-oriented ones (DCP, MCP, DLS).
[[nodiscard]] std::vector<std::string> default_candidates();

}  // namespace fastsched::casch
