#include "casch/select.hpp"

#include <algorithm>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "sched/validation.hpp"
#include "sim/event_sim.hpp"

namespace fastsched::casch {

std::vector<std::string> default_candidates() {
  return {"FAST", "DSC", "DCP", "MCP", "DLS"};
}

SelectionResult select_best(const graph::TaskGraph& g,
                            const std::vector<std::string>& algorithms,
                            const sched::SchedulerOptions& options,
                            const sim::MachineModel& machine) {
  FASTSCHED_REQUIRE(!algorithms.empty(), "no candidate algorithms given");

  struct Candidate {
    SelectionEntry entry;
    sched::Schedule schedule{0, 1};
  };
  std::vector<Candidate> candidates;
  candidates.reserve(algorithms.size());

  for (const auto& name : algorithms) {
    const auto scheduler = baselines::make_scheduler(name);
    Timer timer;
    sched::Schedule s = scheduler->run(g, options);
    Candidate c;
    c.entry.algorithm = name;
    c.entry.scheduling_seconds = timer.seconds();
    sched::require_valid(g, s);
    c.entry.schedule_length = s.length();
    c.entry.procs_used = s.procs_used();
    c.entry.execution_time = sim::simulate(g, s, machine).makespan;
    c.schedule = std::move(s);
    candidates.push_back(std::move(c));
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (!graph::approx_equal(a.entry.execution_time,
                                              b.entry.execution_time)) {
                       return a.entry.execution_time < b.entry.execution_time;
                     }
                     if (!graph::approx_equal(a.entry.schedule_length,
                                              b.entry.schedule_length)) {
                       return a.entry.schedule_length < b.entry.schedule_length;
                     }
                     return a.entry.scheduling_seconds <
                            b.entry.scheduling_seconds;
                   });

  SelectionResult result;
  result.schedule = std::move(candidates.front().schedule);
  for (auto& c : candidates) result.ranking.push_back(std::move(c.entry));
  return result;
}

}  // namespace fastsched::casch
