#include "casch/pipeline.hpp"

#include <sstream>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "sched/validation.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"

namespace fastsched::casch {

Application parse_application(const std::string& name) {
  if (name == "gauss" || name == "gaussian") return Application::kGaussian;
  if (name == "laplace") return Application::kLaplace;
  if (name == "fft") return Application::kFft;
  throw Error("unknown application: " + name +
              " (expected gauss, laplace or fft)");
}

std::string application_name(Application app) {
  switch (app) {
    case Application::kGaussian:
      return "gaussian";
    case Application::kLaplace:
      return "laplace";
    case Application::kFft:
      return "fft";
  }
  // Not an assertion: a corrupted enum (e.g. from a miscast config) must
  // surface as a recoverable error in every build type, not fall through
  // an unreachable path.
  throw Error("application_name: unknown Application value " +
              std::to_string(static_cast<int>(app)));
}

graph::TaskGraph build_application_dag(Application app, int size,
                                       const workloads::TimingDatabase& db) {
  switch (app) {
    case Application::kGaussian:
      return workloads::gaussian_elimination_dag(size, db);
    case Application::kLaplace:
      return workloads::laplace_dag(size, db);
    case Application::kFft:
      return workloads::fft_dag(size, db);
  }
  throw Error("build_application_dag: unknown Application value " +
              std::to_string(static_cast<int>(app)));
}

PipelineReport run_pipeline(const PipelineConfig& config) {
  PipelineReport report;
  report.algorithm = config.algorithm;
  report.application = application_name(config.app);
  report.size = config.size;

  const graph::TaskGraph g =
      build_application_dag(config.app, config.size, config.timing);
  report.num_tasks = g.num_nodes();
  report.num_edges = g.num_edges();

  const sched::SchedulerPtr scheduler =
      baselines::make_scheduler(config.algorithm);
  sched::SchedulerOptions options;
  options.num_procs = config.num_procs;
  options.seed = config.seed;

  Timer timer;
  const sched::Schedule schedule = scheduler->run(g, options);
  report.scheduling_seconds = timer.seconds();

  sched::require_valid(g, schedule);
  report.schedule_length = schedule.length();
  report.procs_used = schedule.procs_used();
  report.metrics = sched::compute_metrics(g, schedule);

  const sim::SimResult sim = sim::simulate(g, schedule, config.machine);
  report.execution_time = sim.makespan;
  report.messages = sim.messages;
  return report;
}

std::string format_report(const PipelineReport& report) {
  std::ostringstream os;
  os << report.application << "(" << report.size << ") scheduled by "
     << report.algorithm << ": " << report.num_tasks << " tasks, "
     << report.num_edges << " edges\n"
     << "  scheduling time : " << report.scheduling_seconds * 1e3 << " ms\n"
     << "  schedule length : " << report.schedule_length << "\n"
     << "  executed time   : " << report.execution_time << " (simulated, "
     << report.messages << " messages)\n"
     << "  processors used : " << report.procs_used << "\n"
     << "  speedup " << report.metrics.speedup << ", efficiency "
     << report.metrics.efficiency << ", SLR " << report.metrics.slr << "\n";
  return os.str();
}

}  // namespace fastsched::casch
