#include "casch/codegen.hpp"

#include <algorithm>
#include <sstream>

#include "sched/validation.hpp"

namespace fastsched::casch {

std::size_t Program::message_count() const {
  std::size_t sends = 0;
  for (const auto& prog : per_proc) {
    for (const Instruction& ins : prog) {
      if (ins.op == Instruction::Op::kSend) ++sends;
    }
  }
  return sends;
}

Program generate_program(const graph::TaskGraph& g, const sched::Schedule& s) {
  sched::require_valid(g, s);
  FASTSCHED_REQUIRE(s.is_complete(), "cannot generate code for a partial schedule");

  Program program;
  program.per_proc.resize(s.num_procs());

  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    // Tasks in execution (start-time) order.
    const auto tasks = s.tasks_on(p);
    std::vector<graph::NodeId> order(tasks.begin(), tasks.end());
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return s.start(a) < s.start(b);
                     });
    auto& prog = program.per_proc[p];
    for (const graph::NodeId n : order) {
      // Receive every remote input first, in producer-id order.
      for (const graph::Adjacency& q : g.predecessors(n)) {
        if (s.proc(q.node) == p) continue;
        prog.push_back(Instruction{Instruction::Op::kRecv, n, q.node,
                                   s.proc(q.node), q.cost});
      }
      prog.push_back(Instruction{Instruction::Op::kExec, n, n, p, 0.0});
      // Send to every remote consumer.
      for (const graph::Adjacency& c : g.successors(n)) {
        if (s.proc(c.node) == p) continue;
        prog.push_back(Instruction{Instruction::Op::kSend, n, c.node,
                                   s.proc(c.node), c.cost});
      }
    }
  }
  return program;
}

std::string render_program(const graph::TaskGraph& g, const Program& program) {
  std::ostringstream os;
  for (sched::ProcId p = 0; p < program.per_proc.size(); ++p) {
    const auto& prog = program.per_proc[p];
    if (prog.empty()) continue;
    os << "processor P" << p << ":\n";
    for (const Instruction& ins : prog) {
      switch (ins.op) {
        case Instruction::Op::kExec:
          os << "  exec " << g.name(ins.task) << "  // w=" << g.weight(ins.task)
             << '\n';
          break;
        case Instruction::Op::kSend:
          os << "  send " << g.name(ins.task) << " -> " << g.name(ins.peer_task)
             << " @P" << ins.peer_proc << "  // c=" << ins.payload << '\n';
          break;
        case Instruction::Op::kRecv:
          os << "  recv " << g.name(ins.peer_task) << " -> "
             << g.name(ins.task) << " from P" << ins.peer_proc
             << "  // c=" << ins.payload << '\n';
          break;
      }
    }
  }
  return os.str();
}

}  // namespace fastsched::casch
