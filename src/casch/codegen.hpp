#pragma once

/// \file codegen.hpp
/// Scheduled-code generation — the final stage of the CASCH tool the paper
/// used ("generates the parallel code in a scheduled form for the Intel
/// Paragon", §5). Given a task graph and a schedule, emits one program per
/// processor as an SPMD instruction listing: EXEC for tasks (in schedule
/// order), SEND immediately after a producer for every remote consumer,
/// and RECV immediately before a consumer for every remote producer.
/// The listing is exactly what `sim::simulate` executes; it exists so the
/// pipeline's output is inspectable and so message-matching invariants
/// (every SEND has exactly one matching RECV) can be tested.

#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace fastsched::casch {

/// One instruction of the generated program.
struct Instruction {
  enum class Op : std::uint8_t { kExec, kSend, kRecv };
  Op op;
  graph::NodeId task;           ///< kExec: the task to run
  graph::NodeId peer_task;      ///< kSend: consumer; kRecv: producer
  sched::ProcId peer_proc;      ///< the remote processor involved
  graph::Cost payload;          ///< message cost (kSend/kRecv), 0 for kExec
};

/// The per-processor programs for one scheduled application.
struct Program {
  std::vector<std::vector<Instruction>> per_proc;  ///< indexed by processor

  /// Total SEND (== RECV) instruction count across processors.
  [[nodiscard]] std::size_t message_count() const;
};

/// Generates the program. The schedule must be complete and valid.
[[nodiscard]] Program generate_program(const graph::TaskGraph& g,
                                       const sched::Schedule& s);

/// Pretty-prints the program as pseudo-SPMD source text.
[[nodiscard]] std::string render_program(const graph::TaskGraph& g,
                                         const Program& program);

}  // namespace fastsched::casch
