#pragma once

/// \file pipeline.hpp
/// The CASCH-substitute pipeline (paper §5): application kernel → task
/// graph with timing-database weights → scheduling algorithm → simulated
/// execution on the machine model → report. This mirrors what the authors'
/// CASCH tool did with real code on the Intel Paragon: the quantity
/// compared across algorithms is the *executed* (here: simulated) running
/// time, not just the Gantt-chart schedule length.

#include <string>

#include "sched/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_sim.hpp"
#include "workloads/timing_db.hpp"

namespace fastsched::casch {

/// The three real applications of paper §5.1.
enum class Application { kGaussian, kLaplace, kFft };

/// Parses "gauss"/"gaussian", "laplace", "fft" (case-sensitive).
[[nodiscard]] Application parse_application(const std::string& name);

[[nodiscard]] std::string application_name(Application app);

/// Builds the task graph of `app` at problem size `size` (matrix dimension
/// for Gaussian/Laplace, number of points for FFT) with weights from `db`.
[[nodiscard]] graph::TaskGraph build_application_dag(
    Application app, int size, const workloads::TimingDatabase& db);

struct PipelineConfig {
  Application app = Application::kGaussian;
  int size = 8;
  std::string algorithm = "FAST";  ///< registry name
  std::size_t num_procs = 0;       ///< 0 = one per task
  std::uint64_t seed = 1;
  workloads::TimingDatabase timing = workloads::TimingDatabase::paragon();
  sim::MachineModel machine = sim::MachineModel::paragon();
};

struct PipelineReport {
  std::string algorithm;
  std::string application;
  int size = 0;
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  double scheduling_seconds = 0.0;  ///< scheduler wall-clock
  double schedule_length = 0.0;     ///< Gantt-chart length
  double execution_time = 0.0;      ///< simulated run on the machine model
  std::size_t procs_used = 0;
  std::size_t messages = 0;
  sched::ScheduleMetrics metrics;
};

/// Runs the full pipeline once. The produced schedule is validated before
/// simulation; an invalid schedule throws.
[[nodiscard]] PipelineReport run_pipeline(const PipelineConfig& config);

/// One-paragraph human-readable rendering.
[[nodiscard]] std::string format_report(const PipelineReport& report);

}  // namespace fastsched::casch
