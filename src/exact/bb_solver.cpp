#include "exact/bb_solver.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bounds.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fast/fast.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::exact {
namespace {

using graph::TaskGraph;
using sched::kUnassignedProc;

constexpr std::uint64_t kUnlimited = std::numeric_limits<std::uint64_t>::max();
constexpr Cost kInfinity = std::numeric_limits<Cost>::infinity();

/// Running aggregates of one partial schedule, copied down the DFS path
/// (four scalars) so backtracking never recomputes them.
struct Agg {
  Cost path_lb = 0;    ///< max certificate floor seen along this path
  Cost work_rem = 0;   ///< computation not yet placed
  Cost ready_sum = 0;  ///< Σ_p ready[p] (committed idle-or-busy horizon)
  Cost cur_len = 0;    ///< makespan of the placed prefix
};

/// One raised earliest-start floor, undone on backtrack.
struct LbUndo {
  NodeId node = 0;
  Cost old_value = 0;
};

/// Everything `apply_move` changed that `undo_move` cannot rederive.
struct Applied {
  Cost fin = 0;
  Cost old_ready = 0;
  std::size_t lb_mark = 0;
};

/// Mutable search context: one per subtree task, so parallel subtrees
/// share nothing. All vectors are sized (and the undo log reserved) at
/// construction; the search itself never allocates.
struct Ctx {
  const TaskGraph* g = nullptr;
  const std::vector<Cost>* tail = nullptr;
  std::size_t procs = 1;

  std::vector<ProcId> assign;          ///< kUnassignedProc = unscheduled
  std::vector<Cost> finish;            ///< valid where assigned
  std::vector<std::uint32_t> pending;  ///< unscheduled predecessor count
  std::vector<Cost> lb_start;          ///< earliest-start floor per node
  std::vector<Cost> ready;             ///< per-processor ready time
  std::vector<std::uint32_t> load;     ///< tasks per processor
  std::vector<LbUndo> lb_undo;

  std::vector<NodeId> order;      ///< order[0..depth): the DFS path
  std::vector<ProcId> path_proc;  ///< processor per path position

  // Incumbent local to this (sub)search; seeded from the wave snapshot.
  Cost best_len = 0;
  bool improved = false;
  std::vector<NodeId> best_order;
  std::vector<ProcId> best_assign;

  std::uint64_t budget = kUnlimited;  ///< expansions left
  bool capped = false;
  BBCounters counters;
};

Ctx make_ctx(const TaskGraph& g, std::size_t procs,
             const std::vector<Cost>& tail, const std::vector<Cost>& est) {
  const std::size_t v = g.num_nodes();
  Ctx c;
  c.g = &g;
  c.tail = &tail;
  c.procs = procs;
  c.assign.assign(v, kUnassignedProc);
  c.finish.assign(v, 0);
  c.pending.assign(v, 0);
  for (NodeId n = 0; n < v; ++n) {
    c.pending[n] = static_cast<std::uint32_t>(g.in_degree(n));
  }
  c.lb_start = est;
  c.ready.assign(procs, 0);
  c.load.assign(procs, 0);
  // One entry per edge out of a scheduled node, at most, along any path.
  c.lb_undo.reserve(g.num_edges() + 1);
  c.order.assign(v, 0);
  c.path_proc.assign(v, 0);
  c.best_order.assign(v, 0);
  c.best_assign.assign(v, kUnassignedProc);
  return c;
}

/// Start time of `n` on `q` under the ready-time recurrence. Every
/// predecessor is scheduled (pending[n] == 0).
Cost compute_start(const Ctx& c, NodeId n, ProcId q) {
  Cost start = c.ready[q];
  for (const graph::Adjacency& pred : c.g->predecessors(n)) {
    const Cost arrival =
        c.finish[pred.node] +
        (c.assign[pred.node] == q ? Cost(0) : pred.cost);
    start = std::max(start, arrival);
  }
  return start;
}

/// Places `n` on `q` finishing at `fin`, updating state and aggregates.
/// Raised successor floors also raise the path bound: start(s) >= fin in
/// every completion (co-located or paying the message, either way not
/// before n finishes), so fin + w(s) + tail(s) is a certified floor.
Applied apply_move(Ctx& c, NodeId n, ProcId q, Cost fin, Agg& a) {
  const TaskGraph& g = *c.g;
  Applied ap;
  ap.fin = fin;
  ap.old_ready = c.ready[q];
  ap.lb_mark = c.lb_undo.size();
  c.assign[n] = q;
  c.finish[n] = fin;
  c.ready[q] = fin;
  ++c.load[q];
  a.cur_len = std::max(a.cur_len, fin);
  a.work_rem -= g.weight(n);
  a.ready_sum = a.ready_sum + (fin - ap.old_ready);
  a.path_lb = std::max(a.path_lb, fin + (*c.tail)[n]);
  for (const graph::Adjacency& succ : g.successors(n)) {
    --c.pending[succ.node];
    if (fin > c.lb_start[succ.node]) {
      c.lb_undo.push_back({succ.node, c.lb_start[succ.node]});
      c.lb_start[succ.node] = fin;
      a.path_lb = std::max(
          a.path_lb, fin + g.weight(succ.node) + (*c.tail)[succ.node]);
    }
  }
  return ap;
}

void undo_move(Ctx& c, NodeId n, ProcId q, const Applied& ap) {
  while (c.lb_undo.size() > ap.lb_mark) {
    const LbUndo u = c.lb_undo.back();
    c.lb_undo.pop_back();
    c.lb_start[u.node] = u.old_value;
  }
  for (const graph::Adjacency& succ : c.g->successors(n)) {
    ++c.pending[succ.node];
  }
  --c.load[q];
  c.ready[q] = ap.old_ready;
  c.finish[n] = 0;
  c.assign[n] = kUnassignedProc;
}

/// Machine capacity floor: processor p can run remaining work only after
/// ready[p], so any completion is at least (W_rem + Σ ready) / p long.
Cost machine_bound(const Ctx& c, const Agg& a) {
  return (a.work_rem + a.ready_sum) / static_cast<Cost>(c.procs);
}

void record_incumbent(Ctx& c, Cost len) {
  c.best_len = len;
  c.improved = true;
  ++c.counters.incumbent_updates;
  c.best_order = c.order;
  c.best_assign = c.assign;
}

/// Depth-first search below the current path. Children are enumerated in
/// canonical (node ascending, processor ascending) order; the loop body
/// is the per-node inner kernel of the whole solver.
void dfs(Ctx& c, std::size_t depth, const Agg& agg) {
  const TaskGraph& g = *c.g;
  const std::size_t v = g.num_nodes();
  if (depth == v) {
    if (graph::definitely_less(agg.cur_len, c.best_len)) {
      record_incumbent(c, agg.cur_len);
    }
    return;
  }
  if (c.budget == 0) {
    c.capped = true;
    return;
  }
  --c.budget;
  ++c.counters.expanded;
  // fastsched: hot
  for (NodeId n = 0; n < v; ++n) {
    if (c.pending[n] != 0 || c.assign[n] != kUnassignedProc) continue;
    bool opened_empty = false;
    for (ProcId q = 0; q < c.procs; ++q) {
      if (c.load[q] == 0) {
        // Empty processors are interchangeable: only the first opens.
        if (opened_empty) {
          ++c.counters.pruned_symmetry;
          continue;
        }
        opened_empty = true;
      }
      ++c.counters.generated;
      const Cost fin = compute_start(c, n, q) + g.weight(n);
      // Cheap reject before touching any state: the placed node's own
      // tail floor against the incumbent.
      Cost bound = std::max(agg.path_lb, fin + (*c.tail)[n]);
      if (!graph::definitely_less(std::max(bound, fin), c.best_len)) {
        ++c.counters.pruned_bound;
        continue;
      }
      Agg child = agg;
      const Applied ap = apply_move(c, n, q, fin, child);
      bound = std::max({child.path_lb, machine_bound(c, child),
                        child.cur_len});
      if (graph::definitely_less(bound, c.best_len)) {
        c.order[depth] = n;
        c.path_proc[depth] = q;
        dfs(c, depth + 1, child);
      } else {
        ++c.counters.pruned_bound;
      }
      undo_move(c, n, q, ap);
      if (c.capped) return;  // fast unwind once the budget is gone
    }
  }
  // fastsched: end-hot
}

/// One frontier entry: a partial schedule as aligned (node, processor)
/// prefixes plus the lower bound it was admitted with. The bound is what
/// an unexplored subtree contributes to the reported global bound.
struct FrontierState {
  std::vector<NodeId> order;
  std::vector<ProcId> procs;
  Cost bound = 0;
};

/// Replays a frontier prefix into `c`, returning the aggregates. The
/// prefix was admitted by the search, so it is topological by
/// construction. When `log` is given, the applied-move records are
/// appended so the caller can roll the prefix back in reverse.
Agg replay_prefix(Ctx& c, const FrontierState& s, const Agg& root,
                  std::vector<Applied>* log = nullptr) {
  Agg agg = root;
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    const NodeId n = s.order[i];
    const ProcId q = s.procs[i];
    const Cost fin = compute_start(c, n, q) + c.g->weight(n);
    c.order[i] = n;
    c.path_proc[i] = q;
    const Applied ap = apply_move(c, n, q, fin, agg);
    if (log != nullptr) log->push_back(ap);
  }
  return agg;
}

/// Expands one state a single level for the breadth-first frontier
/// build: same canonical order, same pruning as `dfs`, but open children
/// are appended to `queue` instead of recursed into.
void expand_children(Ctx& c, const Agg& agg, std::size_t depth,
                     std::vector<FrontierState>& queue) {
  const TaskGraph& g = *c.g;
  const std::size_t v = g.num_nodes();
  ++c.counters.expanded;
  for (NodeId n = 0; n < v; ++n) {
    if (c.pending[n] != 0 || c.assign[n] != kUnassignedProc) continue;
    bool opened_empty = false;
    for (ProcId q = 0; q < c.procs; ++q) {
      if (c.load[q] == 0) {
        if (opened_empty) {
          ++c.counters.pruned_symmetry;
          continue;
        }
        opened_empty = true;
      }
      ++c.counters.generated;
      const Cost fin = compute_start(c, n, q) + g.weight(n);
      Agg child = agg;
      const Applied ap = apply_move(c, n, q, fin, child);
      const Cost bound = std::max({child.path_lb, machine_bound(c, child),
                                   child.cur_len});
      if (!graph::definitely_less(bound, c.best_len)) {
        ++c.counters.pruned_bound;
      } else if (depth + 1 == v) {
        if (graph::definitely_less(child.cur_len, c.best_len)) {
          c.order[depth] = n;
          c.path_proc[depth] = q;
          record_incumbent(c, child.cur_len);
        }
      } else {
        c.order[depth] = n;
        c.path_proc[depth] = q;
        FrontierState next;
        next.order.assign(c.order.begin(),
                          c.order.begin() + static_cast<std::ptrdiff_t>(depth) + 1);
        next.procs.assign(c.path_proc.begin(),
                          c.path_proc.begin() + static_cast<std::ptrdiff_t>(depth) + 1);
        next.bound = bound;
        queue.push_back(std::move(next));
      }
      undo_move(c, n, q, ap);
    }
  }
}

/// What one frontier subtree reports back to the merge barrier.
struct SubtreeResult {
  bool pruned = false;  ///< stored bound met the snapshot incumbent
  bool improved = false;
  Cost best_len = 0;
  std::vector<NodeId> order;
  std::vector<ProcId> assign;
  std::uint64_t used = 0;
  bool capped = false;
  BBCounters counters;
};

/// Runs one frontier subtree to exhaustion or budget. Pure function of
/// (graph, state, snapshot, share): tasks share nothing mutable, so the
/// wave's results are independent of worker count and interleaving.
SubtreeResult run_subtree(const TaskGraph& g, std::size_t procs,
                          const std::vector<Cost>& tail,
                          const std::vector<Cost>& est, const Agg& root,
                          const FrontierState& s, Cost snapshot,
                          std::uint64_t share) {
  SubtreeResult r;
  r.best_len = snapshot;
  if (!graph::definitely_less(s.bound, snapshot)) {
    r.pruned = true;
    return r;
  }
  Ctx c = make_ctx(g, procs, tail, est);
  c.best_len = snapshot;
  c.budget = share;
  const Agg agg = replay_prefix(c, s, root);
  dfs(c, s.order.size(), agg);
  r.improved = c.improved;
  r.best_len = c.best_len;
  if (c.improved) {
    r.order = std::move(c.best_order);
    r.assign = std::move(c.best_assign);
  }
  r.used = share == kUnlimited ? 0 : share - c.budget;
  r.capped = c.capped;
  r.counters = c.counters;
  return r;
}

void add_counters(BBCounters& into, const BBCounters& from) {
  into.expanded += from.expanded;
  into.generated += from.generated;
  into.pruned_bound += from.pruned_bound;
  into.pruned_symmetry += from.pruned_symmetry;
  into.incumbent_updates += from.incumbent_updates;
  into.capped_subtrees += from.capped_subtrees;
}

/// Shared replay: schedule length of (order, assignment), optionally
/// materialized into `out`. Validates that the order is a topological
/// permutation and the placement in range.
Cost replay_into(const TaskGraph& g, const std::vector<NodeId>& order,
                 const std::vector<ProcId>& assignment, std::size_t num_procs,
                 sched::Schedule* out) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_REQUIRE(order.size() == v,
                    "exact replay: order must cover every node exactly once");
  FASTSCHED_REQUIRE(assignment.size() == v,
                    "exact replay: one processor per node required");
  std::vector<Cost> finish(v, 0);
  std::vector<char> placed(v, 0);
  std::vector<Cost> ready(std::max<std::size_t>(num_procs, 1), 0);
  Cost length = 0;
  for (const NodeId n : order) {
    FASTSCHED_REQUIRE(n < v, "exact replay: node id out of range");
    FASTSCHED_REQUIRE(placed[n] == 0, "exact replay: node placed twice");
    const ProcId q = assignment[n];
    FASTSCHED_REQUIRE(q < ready.size(),
                      "exact replay: processor id out of range");
    Cost start = ready[q];
    for (const graph::Adjacency& pred : g.predecessors(n)) {
      FASTSCHED_REQUIRE(placed[pred.node] != 0,
                        "exact replay: order is not topological");
      const Cost arrival =
          finish[pred.node] + (assignment[pred.node] == q ? Cost(0) : pred.cost);
      start = std::max(start, arrival);
    }
    const Cost fin = start + g.weight(n);
    finish[n] = fin;
    ready[q] = fin;
    placed[n] = 1;
    length = std::max(length, fin);
    if (out != nullptr) out->assign(n, q, start, fin);
  }
  return length;
}

}  // namespace

BBSolver::BBSolver(const TaskGraph& g, BBOptions options)
    : graph_(g), options_(options) {
  const std::size_t v = g.num_nodes();
  std::size_t p = options_.num_procs == 0 ? v : options_.num_procs;
  if (p > v) p = v;  // identical spare processors can never help
  procs_ = std::max<std::size_t>(p, 1);
  tail_ = analysis::comm_aware_tail(g);
  est_ = analysis::comm_aware_est(g);
  analysis::BoundOptions bound_options;
  bound_options.num_procs = procs_;
  bound_options.interval_density = options_.fernandez;
  bound_options.density_endpoints = 0;
  const analysis::BoundSet bounds = analysis::compute_bounds(g, bound_options);
  static_floor_ = bounds.best();
  if (const analysis::BoundCertificate* binding = bounds.binding()) {
    floor_id_ = binding->id;
  }
}

BBResult BBSolver::solve() const {
  fast::FastOptions fast_options;
  fast_options.num_procs = procs_;
  fast_options.seed = options_.seed;
  const fast::FastResult fr = fast::run_fast(graph_, fast_options);
  BBSeed seed;
  seed.order = fr.list;
  seed.assignment = fr.assignment;
  return solve(seed);
}

BBResult BBSolver::solve(const BBSeed& seed) const {
  const std::size_t v = graph_.num_nodes();
  BBResult result;
  result.static_floor = static_floor_;
  result.bound_id = floor_id_;
  if (v == 0) {
    result.proven = true;
    result.bound_id = "empty";
    return result;
  }
  result.seed_length = replay_length(graph_, seed.order, seed.assignment,
                                     procs_);
  result.best_length = result.seed_length;
  result.order = seed.order;
  result.assignment = seed.assignment;
  // A certificate above a real schedule is an accounting bug somewhere.
  FASTSCHED_ASSERT_MSG(
      !graph::definitely_less(result.best_length, static_floor_),
      "BBSolver: static certificate exceeds a valid schedule's makespan");
  if (graph::approx_equal(static_floor_, result.best_length)) {
    // The seed incumbent already meets a static certificate.
    result.lower_bound = result.best_length;
    result.proven = true;
    return result;
  }

  const bool unlimited = options_.node_budget == 0;
  std::uint64_t remaining = unlimited ? kUnlimited : options_.node_budget;
  const std::size_t frontier_target =
      std::max<std::size_t>(options_.frontier_target, 1);
  const std::size_t wave_size = std::max<std::size_t>(options_.wave_size, 1);

  Ctx ctx = make_ctx(graph_, procs_, tail_, est_);
  ctx.best_len = result.best_length;
  ctx.best_order = result.order;
  ctx.best_assign = result.assignment;
  Agg root;
  root.path_lb = static_floor_;
  root.work_rem = graph_.total_work();
  root.ready_sum = 0;
  root.cur_len = 0;

  // --- Phase 1: serial breadth-first frontier build. ---
  std::vector<FrontierState> queue;
  queue.reserve(frontier_target + procs_ * v + 16);
  {
    FrontierState root_state;
    root_state.bound = static_floor_;
    queue.push_back(std::move(root_state));
  }
  std::size_t head = 0;
  std::vector<Applied> replay_log;
  replay_log.reserve(v);
  // The queue may overshoot the target by one expansion's children; the
  // stop test runs between expansions, keeping the tree shape a pure
  // function of the instance and the target (never of `jobs`).
  while (head < queue.size() && queue.size() - head < frontier_target &&
         remaining > 0) {
    const FrontierState state = std::move(queue[head]);
    ++head;
    if (!graph::definitely_less(state.bound, ctx.best_len)) {
      ++ctx.counters.pruned_bound;
      continue;
    }
    if (!unlimited) --remaining;
    // Replay, expand one level, then roll the context back so the next
    // state starts from the root.
    replay_log.clear();
    const Agg agg = replay_prefix(ctx, state, root, &replay_log);
    expand_children(ctx, agg, state.order.size(), queue);
    for (std::size_t i = state.order.size(); i > 0; --i) {
      undo_move(ctx, state.order[i - 1], state.procs[i - 1],
                replay_log[i - 1]);
    }
  }

  // --- Phase 2: frontier subtrees in fixed-size waves. ---
  // A subtree that exhausts its per-wave budget share is re-queued for
  // the next round: unused shares flow back into `remaining` at every
  // barrier, so later rounds (with fewer states left) retry capped
  // subtrees with larger shares until the tree is exhausted or the
  // global budget truly runs out. The round/wave structure is a pure
  // recurrence over (remaining, states) — independent of `jobs`.
  Cost open_min = kInfinity;
  std::vector<FrontierState> work(
      std::make_move_iterator(queue.begin() +
                              static_cast<std::ptrdiff_t>(head)),
      std::make_move_iterator(queue.end()));
  while (!work.empty()) {
    if (!unlimited && remaining == 0) {
      // Out of budget: every state still open caps the provable bound
      // at its admission bound.
      for (const FrontierState& state : work) {
        if (graph::definitely_less(state.bound, ctx.best_len)) {
          open_min = std::min(open_min, state.bound);
          ++ctx.counters.capped_subtrees;
        } else {
          ++ctx.counters.pruned_bound;
        }
      }
      break;
    }
    std::vector<FrontierState> reopened;
    reopened.reserve(work.size());
    for (std::size_t pos = 0; pos < work.size();) {
      if (!unlimited && remaining == 0) {
        // Budget died mid-round: park the rest for the final sweep.
        for (; pos < work.size(); ++pos) {
          reopened.push_back(std::move(work[pos]));
        }
        break;
      }
      const std::size_t left = work.size() - pos;
      const std::size_t wave = std::min(wave_size, left);
      // Every state left in this round gets an equal share of the
      // remaining budget, fixed at the barrier.
      const std::uint64_t share =
          unlimited ? kUnlimited
                    : std::max<std::uint64_t>(1, remaining / left);
      const Cost snapshot = ctx.best_len;
      std::vector<SubtreeResult> results(wave);
      parallel_for_index(options_.jobs, wave, [&](std::size_t i) {
        results[i] = run_subtree(graph_, procs_, tail_, est_, root,
                                 work[pos + i], snapshot, share);
      });
      // Submission-order merge: the only point where subtree outcomes
      // touch shared state.
      for (std::size_t i = 0; i < wave; ++i) {
        const SubtreeResult& sr = results[i];
        add_counters(ctx.counters, sr.counters);
        if (sr.pruned) {
          ++ctx.counters.pruned_bound;
          continue;
        }
        if (!unlimited) remaining -= std::min(remaining, sr.used);
        if (sr.capped) {
          ++ctx.counters.capped_subtrees;
          reopened.push_back(std::move(work[pos + i]));
        }
        if (sr.improved &&
            graph::definitely_less(sr.best_len, ctx.best_len)) {
          ctx.best_len = sr.best_len;
          ctx.best_order = sr.order;
          ctx.best_assign = sr.assign;
          ctx.improved = true;
        }
      }
      pos += wave;
    }
    work = std::move(reopened);
  }

  result.best_length = ctx.best_len;
  if (ctx.improved) {
    result.order = ctx.best_order;
    result.assignment = ctx.best_assign;
  }
  result.counters = ctx.counters;
  // A capped subtree whose admission bound still reaches the final
  // incumbent proves nothing below it — the search is effectively
  // exhausted despite the cap.
  if (open_min < kInfinity &&
      graph::definitely_less(open_min, result.best_length)) {
    result.lower_bound = std::max(static_floor_, open_min);
    result.proven = false;
    if (graph::definitely_less(static_floor_, open_min)) {
      result.bound_id = "search-frontier";
    }
  } else {
    result.lower_bound = result.best_length;
    result.proven = true;
    if (!graph::approx_equal(static_floor_, result.best_length)) {
      result.bound_id = "search-exhausted";
    }
  }
  return result;
}

Cost BBSolver::replay_length(const TaskGraph& g,
                             const std::vector<NodeId>& order,
                             const std::vector<ProcId>& assignment,
                             std::size_t num_procs) {
  return replay_into(g, order, assignment, num_procs, nullptr);
}

sched::Schedule BBSolver::materialize(const TaskGraph& g, const BBResult& r,
                                      std::size_t num_procs) {
  sched::Schedule schedule(g.num_nodes(), num_procs);
  replay_into(g, r.order, r.assignment, num_procs, &schedule);
  return schedule;
}

}  // namespace fastsched::exact
