#pragma once

/// \file bb_solver.hpp
/// The exact optimality anchor: a deterministic, parallel depth-first
/// branch-and-bound solver over partial schedules (Fujita-style; see
/// PAPERS.md "Analyzing Branch-and-Bound Algorithms for the
/// Multiprocessor Scheduling Problem").
///
/// Search space. A state is a prefix of a topological order with a
/// processor per placed node, timed under the library's ready-time
/// replay recurrence (fast/replay_core.hpp): each node starts at
/// max(processor ready, data arrival) — the left-shifted canonical form.
/// Any valid schedule left-shifts to such a state (sorting each
/// processor's tasks by start time yields a topological order whose
/// greedy replay is pointwise no later), so the minimum over the search
/// space is the true optimum for the processor count. Extensions are
/// enumerated in a canonical order — ready nodes ascending by id, then
/// processors ascending — so the tree shape is a pure function of the
/// instance.
///
/// Pruning. A child is cut when a lower bound on every completion of its
/// partial schedule fails to beat the incumbent:
///  * the static certificate floor (analysis/bounds.hpp: cp-comp,
///    comm-cp, comm-cp-tail, work, and the exact Fernández
///    interval-density bound), evaluated once at the root;
///  * the per-path certificate replay: finish(n) + tail(n) for every
///    placed n, and co-location earliest starts propagated to the placed
///    nodes' unscheduled successors (the incremental form of the
///    comm-cp-tail argument on the partial schedule);
///  * the machine capacity bound (W_remaining + Σ_p ready_p) / p — no
///    processor can run work before its committed ready time.
/// Dominance: identical empty processors are interchangeable, so a node
/// may only open the lowest-indexed empty processor.
///
/// Parallelism and determinism. The root is expanded breadth-first until
/// the frontier reaches a fixed (jobs-independent) size; frontier
/// subtrees are then explored depth-first in fixed-size waves fanned out
/// over the deterministic thread pool. Every subtree starts from the
/// incumbent merged at the previous wave barrier and writes only its own
/// result slot; incumbents, counters and budget are merged in submission
/// order at each barrier. Results — schedule, bounds, and every counter
/// — are therefore byte-identical for every `--jobs` value.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace fastsched::exact {

using graph::Cost;
using graph::NodeId;
using sched::ProcId;

/// Knobs for `BBSolver`.
struct BBOptions {
  /// Processor budget. 0 = one processor per node (the search caps its
  /// branching at min(num_procs, v) — identical processors beyond one
  /// per node can never help).
  std::size_t num_procs = 0;
  /// Node-expansion budget for the whole search; 0 = unlimited. When the
  /// budget runs out the result is an incumbent plus a certified lower
  /// bound instead of a proven optimum.
  std::uint64_t node_budget = 20'000'000;
  /// Worker threads for the frontier waves (0 = FASTSCHED_JOBS /
  /// hardware concurrency, 1 = inline). Results are byte-identical for
  /// every value.
  std::size_t jobs = 1;
  /// Seed for the FAST run that provides the default incumbent.
  std::uint64_t seed = 1;
  /// Include the exact Fernández interval-density certificate in the
  /// static floor (O(v² log v) once per solve).
  bool fernandez = true;
  /// Breadth-first expansion stops once the frontier holds this many
  /// states. Jobs-independent on purpose: it shapes the search tree, so
  /// it must not change with the worker count.
  std::size_t frontier_target = 256;
  /// Frontier states explored between incumbent merge barriers. Also
  /// jobs-independent: the wave boundaries decide which incumbent a
  /// subtree prunes against.
  std::size_t wave_size = 64;
};

/// Deterministic search statistics; identical at every `jobs` value.
struct BBCounters {
  std::uint64_t expanded = 0;          ///< states branched on
  std::uint64_t generated = 0;         ///< children considered
  std::uint64_t pruned_bound = 0;      ///< children cut by a bound
  std::uint64_t pruned_symmetry = 0;   ///< children cut as proc-symmetric
  std::uint64_t incumbent_updates = 0; ///< strict improvements found
  std::uint64_t capped_subtrees = 0;   ///< subtrees that hit their budget
};

/// An externally supplied incumbent: `order` must be a topological order
/// of the graph, `assignment` one processor per node.
struct BBSeed {
  std::vector<NodeId> order;
  std::vector<ProcId> assignment;
};

/// The outcome of one solve.
struct BBResult {
  /// Makespan of the best schedule found (always a real, valid
  /// schedule: the seed incumbent or an improvement on it).
  Cost best_length = 0;
  /// Certified lower bound on the optimum: the static floor, raised to
  /// `best_length` when the search exhausted the tree. `proven` iff the
  /// two meet.
  Cost lower_bound = 0;
  /// True when `lower_bound == best_length`: the incumbent is the
  /// optimum, proven either by a static certificate or by exhaustion.
  bool proven = false;
  /// Binding static certificate id (cp-comp, comm-cp-tail, fernandez,
  /// ...), or "search-exhausted" when only the exhaustion proves it.
  std::string bound_id;
  Cost static_floor = 0;  ///< best static certificate value
  Cost seed_length = 0;   ///< incumbent length before the search
  /// The best schedule as (placement order, processor per node).
  std::vector<NodeId> order;
  std::vector<ProcId> assignment;
  BBCounters counters;
};

/// Exact branch-and-bound solver for one graph. Construction precomputes
/// the static certificates; `solve()` runs the search.
class BBSolver {
 public:
  BBSolver(const graph::TaskGraph& g, BBOptions options);

  /// Solves with the default incumbent: FAST's schedule for the same
  /// processor budget (options.seed seeds its local search).
  [[nodiscard]] BBResult solve() const;

  /// Solves from an explicit incumbent.
  [[nodiscard]] BBResult solve(const BBSeed& seed) const;

  /// Effective processor count the search branches over:
  /// min(num_procs == 0 ? v : num_procs, v).
  [[nodiscard]] std::size_t effective_procs() const noexcept { return procs_; }

  /// Replays (order, assignment) under the ready-time recurrence and
  /// returns the schedule length. `order` must be topological.
  [[nodiscard]] static Cost replay_length(
      const graph::TaskGraph& g, const std::vector<NodeId>& order,
      const std::vector<ProcId>& assignment, std::size_t num_procs);

  /// Materializes a result into a `sched::Schedule` over `num_procs`
  /// processors (>= the result's effective processor count).
  [[nodiscard]] static sched::Schedule materialize(const graph::TaskGraph& g,
                                                   const BBResult& r,
                                                   std::size_t num_procs);

 private:
  const graph::TaskGraph& graph_;
  BBOptions options_;
  std::size_t procs_ = 1;
  std::vector<Cost> tail_;  ///< analysis::comm_aware_tail
  std::vector<Cost> est_;   ///< analysis::comm_aware_est
  Cost static_floor_ = 0;
  std::string floor_id_;
};

}  // namespace fastsched::exact
