#pragma once

/// \file transform.hpp
/// Graph transformations used by the experiment harness and useful to
/// downstream users: CCR retargeting (rescale all edge costs to hit a
/// given communication-to-computation ratio), transitive reduction
/// (drop edges implied by longer paths — classic DAG hygiene before
/// scheduling), and series composition of two DAGs (the exits of the first
/// feed the entries of the second).

#include "graph/task_graph.hpp"

namespace fastsched::graph {

/// Returns a copy of `g` whose edge costs are uniformly scaled so that
/// ccr() == `target_ccr`. Requires the graph to have at least one edge and
/// positive total work; a zero-comm graph cannot be rescaled (throws).
[[nodiscard]] TaskGraph with_ccr(const TaskGraph& g, double target_ccr);

/// Returns a copy of `g` without transitively-redundant edges: an edge
/// (a, b) is dropped when another a→…→b path of at least two edges exists.
/// Node weights and remaining edge costs are unchanged. O(v·e) worst case.
[[nodiscard]] TaskGraph transitive_reduction(const TaskGraph& g);

/// Series composition: every exit of `first` gains an edge (cost
/// `join_cost`) to every entry of `second`; node ids of `second` are
/// shifted by first.num_nodes().
[[nodiscard]] TaskGraph series_compose(const TaskGraph& first,
                                       const TaskGraph& second,
                                       Cost join_cost = 0.0);

}  // namespace fastsched::graph
