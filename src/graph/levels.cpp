#include "graph/levels.hpp"

#include <algorithm>

namespace fastsched::graph {

std::vector<Cost> compute_t_levels(const TaskGraph& g) {
  std::vector<Cost> tl(g.num_nodes(), 0.0);
  for (const NodeId n : g.topological_order()) {
    Cost best = 0.0;
    for (const Adjacency& p : g.predecessors(n)) {
      best = std::max(best, tl[p.node] + g.weight(p.node) + p.cost);
    }
    tl[n] = best;
  }
  return tl;
}

std::vector<Cost> compute_b_levels(const TaskGraph& g) {
  std::vector<Cost> bl(g.num_nodes(), 0.0);
  const auto topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    Cost best = 0.0;
    for (const Adjacency& s : g.successors(n)) {
      best = std::max(best, s.cost + bl[s.node]);
    }
    bl[n] = g.weight(n) + best;
  }
  return bl;
}

std::vector<Cost> compute_static_levels(const TaskGraph& g) {
  std::vector<Cost> sl(g.num_nodes(), 0.0);
  const auto topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    Cost best = 0.0;
    for (const Adjacency& s : g.successors(n)) {
      best = std::max(best, sl[s.node]);
    }
    sl[n] = g.weight(n) + best;
  }
  return sl;
}

LevelInfo compute_levels(const TaskGraph& g) {
  LevelInfo info;
  info.t_level = compute_t_levels(g);
  info.b_level = compute_b_levels(g);
  info.static_level = compute_static_levels(g);

  const std::size_t v = g.num_nodes();
  info.cp_length = 0.0;
  for (NodeId n = 0; n < v; ++n) {
    info.cp_length = std::max(info.cp_length, info.t_level[n] + info.b_level[n]);
  }

  info.alap.resize(v);
  info.is_cpn.assign(v, false);
  for (NodeId n = 0; n < v; ++n) {
    info.alap[n] = info.cp_length - info.b_level[n];
    info.is_cpn[n] =
        approx_equal(info.t_level[n] + info.b_level[n], info.cp_length);
  }

  for (NodeId n = 0; n < v; ++n) {
    if (info.is_cpn[n]) info.cpns_in_order.push_back(n);
  }
  std::stable_sort(info.cpns_in_order.begin(), info.cpns_in_order.end(),
                   [&](NodeId a, NodeId b) {
                     if (!approx_equal(info.t_level[a], info.t_level[b])) {
                       return info.t_level[a] < info.t_level[b];
                     }
                     return a < b;
                   });

  // Canonical critical path: walk CP edges from the first entry CPN.
  if (v > 0) {
    NodeId cur = kInvalidNode;
    for (const NodeId n : g.entry_nodes()) {
      if (!info.is_cpn[n]) continue;
      if (cur == kInvalidNode || info.b_level[n] > info.b_level[cur] ||
          (approx_equal(info.b_level[n], info.b_level[cur]) && n < cur)) {
        cur = n;
      }
    }
    while (cur != kInvalidNode) {
      info.critical_path.push_back(cur);
      NodeId next = kInvalidNode;
      for (const Adjacency& s : g.successors(cur)) {
        const NodeId c = s.node;
        if (!info.is_cpn[c]) continue;
        // The edge lies on the CP iff it realizes both levels.
        const bool on_cp =
            approx_equal(info.t_level[cur] + g.weight(cur) + s.cost +
                             info.b_level[c],
                         info.cp_length);
        if (on_cp && (next == kInvalidNode || c < next)) next = c;
      }
      cur = next;
    }
  }
  return info;
}

}  // namespace fastsched::graph
