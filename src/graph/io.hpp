#pragma once

/// \file io.hpp
/// Task-graph serialization: a line-oriented text format (round-trippable)
/// and Graphviz DOT export (CPNs rendered dark, as in the paper's Figure 1).

#include <iosfwd>
#include <string>

#include "graph/levels.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::graph {

/// Writes `g` in the text format:
/// ```
/// # comment lines start with '#'
/// node <id> <weight> <name>
/// edge <src-id> <dst-id> <cost>
/// ```
/// Ids are 0-based and dense; nodes appear before edges.
void write_text(std::ostream& os, const TaskGraph& g);

/// `write_text` into a string.
[[nodiscard]] std::string to_text(const TaskGraph& g);

/// Parses the text format. Throws `fastsched::Error` on malformed input.
[[nodiscard]] TaskGraph read_text(std::istream& is);

/// `read_text` from a string.
[[nodiscard]] TaskGraph from_text(const std::string& text);

/// Graphviz DOT rendering. When `levels` is non-null, CPNs are filled dark
/// and CP edges are drawn bold (mirrors the paper's Figure 1 styling).
[[nodiscard]] std::string to_dot(const TaskGraph& g,
                                 const LevelInfo* levels = nullptr);

}  // namespace fastsched::graph
