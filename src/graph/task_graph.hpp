#pragma once

/// \file task_graph.hpp
/// The weighted directed acyclic task graph that models a parallel program
/// (paper §2): nodes are sequential tasks with a computation cost, edges are
/// messages with a communication cost.
///
/// `TaskGraphBuilder` accumulates nodes/edges with cheap amortized-O(1)
/// operations; `build()` validates (acyclicity, edge sanity) and freezes the
/// graph into an immutable CSR representation with O(1) adjacency access in
/// both directions, which every algorithm in the library consumes.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace fastsched::graph {

/// Dense node index in [0, num_nodes).
using NodeId = std::uint32_t;
/// Dense edge index in [0, num_edges), in insertion order.
using EdgeId = std::uint32_t;
/// Computation / communication cost. Non-negative finite.
using Cost = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// The implicit display name of node `n`: "n<i+1>", matching the paper's
/// n1..n9. Nodes keep this name lazily — it is generated on demand and
/// never stored, so a million-node graph pays no per-node string.
[[nodiscard]] inline std::string default_node_name(NodeId n) {
  return "n" + std::to_string(n + 1);
}

/// Tolerance used when comparing derived cost sums (t-level + b-level
/// against the critical-path length, schedule lengths, ...). Costs are
/// typically integers or microsecond-scale values, so an absolute-plus-
/// relative tolerance of 1e-9 is far below any meaningful difference.
[[nodiscard]] constexpr bool approx_equal(Cost a, Cost b) noexcept {
  const Cost diff = a > b ? a - b : b - a;
  const Cost mag = (a > b ? a : b);
  const Cost scale = mag > 1.0 ? mag : 1.0;
  return diff <= 1e-9 * scale;
}

/// `a < b` with the same tolerance: true only for a meaningful improvement.
[[nodiscard]] constexpr bool definitely_less(Cost a, Cost b) noexcept {
  return a < b && !approx_equal(a, b);
}

/// One adjacency entry: the neighbour, the message cost on the connecting
/// edge, and the edge's dense id.
struct Adjacency {
  NodeId node;
  Cost cost;
  EdgeId edge;
};

class TaskGraph;

/// Mutable accumulator for task graphs.
class TaskGraphBuilder {
 public:
  TaskGraphBuilder() = default;

  /// Reserves capacity (optional optimization for large generators).
  void reserve(std::size_t nodes, std::size_t edges);

  /// Adds a task with computation cost `weight` (>= 0) and an optional
  /// display name (defaults to "n<i+1>", matching the paper's n1..n9).
  NodeId add_node(Cost weight, std::string name = "");

  /// Adds a message edge `src -> dst` with communication cost `cost` (>= 0).
  /// Parallel edges and self-loops are rejected at build() time.
  void add_edge(NodeId src, NodeId dst, Cost cost);

  /// Replaces the weight of an existing node (used by timing databases that
  /// assign measured costs after the topology is produced).
  void set_node_weight(NodeId node, Cost weight);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_src_.size();
  }

  /// Validates and freezes into an immutable TaskGraph. Throws
  /// `fastsched::Error` on cycles, self-loops, duplicate edges or
  /// out-of-range endpoints.
  [[nodiscard]] TaskGraph build() const;

 private:
  friend class TaskGraph;
  std::vector<Cost> weights_;
  /// Sparse explicit names, ascending by node id (ids are handed out in
  /// order, so plain appends keep it sorted). Nodes without an entry use
  /// `default_node_name`; explicit names equal to it are dropped at
  /// add_node so graph copies through builders stay sparse.
  std::vector<std::pair<NodeId, std::string>> named_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<Cost> edge_cost_;
};

/// Immutable CSR task graph.
class TaskGraph {
 public:
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_cost_.size();
  }

  /// Computation cost w(n).
  [[nodiscard]] Cost weight(NodeId n) const { return weights_[n]; }

  /// Display name: the sparse explicit name if one was given, otherwise
  /// `default_node_name(n)` generated on demand (returned by value).
  [[nodiscard]] std::string name(NodeId n) const;

  /// Outgoing adjacencies (children) of `n`, in deterministic (insertion)
  /// order.
  [[nodiscard]] std::span<const Adjacency> successors(NodeId n) const {
    return {out_adj_.data() + out_off_[n], out_off_[n + 1] - out_off_[n]};
  }

  /// Incoming adjacencies (parents) of `n`.
  [[nodiscard]] std::span<const Adjacency> predecessors(NodeId n) const {
    return {in_adj_.data() + in_off_[n], in_off_[n + 1] - in_off_[n]};
  }

  [[nodiscard]] std::size_t out_degree(NodeId n) const {
    return out_off_[n + 1] - out_off_[n];
  }
  [[nodiscard]] std::size_t in_degree(NodeId n) const {
    return in_off_[n + 1] - in_off_[n];
  }

  /// Communication cost of edge `e`.
  [[nodiscard]] Cost edge_cost(EdgeId e) const { return edge_cost_[e]; }
  [[nodiscard]] NodeId edge_source(EdgeId e) const { return edge_src_[e]; }
  [[nodiscard]] NodeId edge_target(EdgeId e) const { return edge_dst_[e]; }

  /// Cost of the edge src->dst if present.
  [[nodiscard]] std::optional<Cost> find_edge_cost(NodeId src,
                                                   NodeId dst) const;

  /// A fixed topological order (Kahn's algorithm with a FIFO queue;
  /// deterministic for a given construction order).
  [[nodiscard]] std::span<const NodeId> topological_order() const noexcept {
    return topo_order_;
  }

  /// Nodes without parents / without children, ascending by id.
  [[nodiscard]] std::span<const NodeId> entry_nodes() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::span<const NodeId> exit_nodes() const noexcept {
    return exits_;
  }

  /// Sum of all computation costs.
  [[nodiscard]] Cost total_work() const noexcept { return total_work_; }
  /// Sum of all communication costs.
  [[nodiscard]] Cost total_comm() const noexcept { return total_comm_; }

  /// Communication-to-computation ratio (paper §2): average edge cost over
  /// average node cost. Zero when the graph has no edges.
  [[nodiscard]] Cost ccr() const;

  /// True when the underlying undirected graph is connected (the paper's
  /// IBN/OBN definitions assume a connected graph).
  [[nodiscard]] bool is_connected() const;

 private:
  friend class TaskGraphBuilder;
  TaskGraph() = default;

  std::vector<Cost> weights_;
  std::vector<std::pair<NodeId, std::string>> named_;  ///< sparse, sorted
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<Cost> edge_cost_;
  std::vector<std::size_t> out_off_;
  std::vector<Adjacency> out_adj_;
  std::vector<std::size_t> in_off_;
  std::vector<Adjacency> in_adj_;
  std::vector<NodeId> topo_order_;
  std::vector<NodeId> entries_;
  std::vector<NodeId> exits_;
  Cost total_work_ = 0;
  Cost total_comm_ = 0;
};

}  // namespace fastsched::graph
