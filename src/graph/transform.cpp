#include "graph/transform.hpp"

#include <vector>

namespace fastsched::graph {

TaskGraph with_ccr(const TaskGraph& g, double target_ccr) {
  FASTSCHED_REQUIRE(target_ccr >= 0.0, "CCR must be non-negative");
  FASTSCHED_REQUIRE(g.num_edges() > 0 && g.total_comm() > 0.0,
                    "cannot rescale a graph without communication");
  FASTSCHED_REQUIRE(g.total_work() > 0.0, "graph has no computation");
  const double current = g.ccr();
  const double factor = target_ccr / current;

  TaskGraphBuilder builder;
  builder.reserve(g.num_nodes(), g.num_edges());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    builder.add_node(g.weight(n), g.name(n));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    builder.add_edge(g.edge_source(e), g.edge_target(e),
                     g.edge_cost(e) * factor);
  }
  return builder.build();
}

TaskGraph transitive_reduction(const TaskGraph& g) {
  // An edge (a, b) is redundant iff b is reachable from a through some
  // child c != b. For each node a, mark everything reachable from each
  // child; one DFS per node bounds the work by O(v·e).
  const std::size_t v = g.num_nodes();
  std::vector<bool> redundant(g.num_edges(), false);
  std::vector<std::uint32_t> mark(v, 0);
  std::uint32_t stamp = 0;
  std::vector<NodeId> stack;

  for (NodeId a = 0; a < v; ++a) {
    if (g.out_degree(a) < 2) continue;  // nothing to shortcut
    ++stamp;
    // Reachability from all children, excluding the direct edges
    // themselves: seed the DFS with grandchildren.
    stack.clear();
    for (const Adjacency& child : g.successors(a)) {
      for (const Adjacency& grand : g.successors(child.node)) {
        if (mark[grand.node] != stamp) {
          mark[grand.node] = stamp;
          stack.push_back(grand.node);
        }
      }
    }
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const Adjacency& s : g.successors(n)) {
        if (mark[s.node] != stamp) {
          mark[s.node] = stamp;
          stack.push_back(s.node);
        }
      }
    }
    for (const Adjacency& child : g.successors(a)) {
      if (mark[child.node] == stamp) redundant[child.edge] = true;
    }
  }

  TaskGraphBuilder builder;
  builder.reserve(v, g.num_edges());
  for (NodeId n = 0; n < v; ++n) builder.add_node(g.weight(n), g.name(n));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!redundant[e]) {
      builder.add_edge(g.edge_source(e), g.edge_target(e), g.edge_cost(e));
    }
  }
  return builder.build();
}

TaskGraph series_compose(const TaskGraph& first, const TaskGraph& second,
                         Cost join_cost) {
  TaskGraphBuilder builder;
  builder.reserve(first.num_nodes() + second.num_nodes(),
                  first.num_edges() + second.num_edges() +
                      first.exit_nodes().size() * second.entry_nodes().size());
  for (NodeId n = 0; n < first.num_nodes(); ++n) {
    builder.add_node(first.weight(n), first.name(n));
  }
  const auto offset = static_cast<NodeId>(first.num_nodes());
  for (NodeId n = 0; n < second.num_nodes(); ++n) {
    builder.add_node(second.weight(n), second.name(n) + "'");
  }
  for (EdgeId e = 0; e < first.num_edges(); ++e) {
    builder.add_edge(first.edge_source(e), first.edge_target(e),
                     first.edge_cost(e));
  }
  for (EdgeId e = 0; e < second.num_edges(); ++e) {
    builder.add_edge(second.edge_source(e) + offset,
                     second.edge_target(e) + offset, second.edge_cost(e));
  }
  for (const NodeId exit : first.exit_nodes()) {
    for (const NodeId entry : second.entry_nodes()) {
      builder.add_edge(exit, entry + offset, join_cost);
    }
  }
  return builder.build();
}

}  // namespace fastsched::graph
