#pragma once

/// \file stats.hpp
/// Structural statistics of a task graph: the quantities scheduling papers
/// (including this one) use to characterize their workloads — size, depth,
/// width, degree distribution, CCR, and the parallelism profile (how many
/// tasks could run concurrently at each depth under infinite processors).

#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::graph {

struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  /// Longest path in hops (number of nodes on it).
  std::size_t depth = 0;
  /// Maximum antichain size approximated by the widest depth layer.
  std::size_t width = 0;
  std::size_t entry_nodes = 0;
  std::size_t exit_nodes = 0;
  double avg_out_degree = 0;
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
  double total_work = 0;
  double total_comm = 0;
  double ccr = 0;
  /// total_work / computation-critical-path: the average parallelism the
  /// graph could sustain with free communication.
  double avg_parallelism = 0;
  /// tasks per depth layer (layer = longest hop-distance from an entry).
  std::vector<std::size_t> layer_sizes;
};

/// Computes all statistics in O(v + e).
[[nodiscard]] GraphStats compute_stats(const TaskGraph& g);

/// One-paragraph human-readable rendering.
[[nodiscard]] std::string format_stats(const GraphStats& stats);

}  // namespace fastsched::graph
