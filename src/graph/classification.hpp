#pragma once

/// \file classification.hpp
/// Node partitioning from paper §4.1: Critical-Path Nodes (CPN), In-Branch
/// Nodes (IBN — non-CPNs from which a CPN is reachable), and Out-Branch
/// Nodes (OBN — everything else). The IBN/OBN split drives both the
/// CPN-Dominate list construction and FAST's blocking-node list.

#include <vector>

#include "graph/levels.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::graph {

enum class NodeClass : std::uint8_t { kCpn, kIbn, kObn };

/// Classifies every node in O(v + e): CPNs come from `levels`; IBNs are the
/// non-CPN ancestors of any CPN (reverse reachability from the CPN set);
/// the rest are OBNs.
[[nodiscard]] std::vector<NodeClass> classify_nodes(const TaskGraph& g,
                                                    const LevelInfo& levels);

/// Nodes of a given class, ascending by id.
[[nodiscard]] std::vector<NodeId> nodes_of_class(
    const std::vector<NodeClass>& classes, NodeClass wanted);

}  // namespace fastsched::graph
