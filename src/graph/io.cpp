#include "graph/io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace fastsched::graph {
namespace {

// Costs are written with enough digits to round-trip doubles exactly.
void write_cost(std::ostream& os, Cost c) {
  os << std::setprecision(17) << c;
}

// Escapes a node name for use inside a DOT double-quoted string:
// quotes and backslashes are backslash-escaped, literal newlines become
// DOT's "\n" line-break escape.
std::string dot_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "# fastsched task graph: " << g.num_nodes() << " nodes, "
     << g.num_edges() << " edges\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    os << "node " << n << ' ';
    write_cost(os, g.weight(n));
    os << ' ' << g.name(n) << '\n';
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "edge " << g.edge_source(e) << ' ' << g.edge_target(e) << ' ';
    write_cost(os, g.edge_cost(e));
    os << '\n';
  }
}

std::string to_text(const TaskGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

TaskGraph read_text(std::istream& is) {
  TaskGraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (kind == "node") {
      std::uint64_t id = 0;
      Cost weight = 0;
      std::string name;
      FASTSCHED_REQUIRE(static_cast<bool>(ls >> id >> weight),
                        "malformed node line" + where);
      ls >> name;  // optional
      FASTSCHED_REQUIRE(id == builder.num_nodes(),
                        "node ids must be dense and in order" + where);
      builder.add_node(weight, name);
    } else if (kind == "edge") {
      std::uint64_t src = 0;
      std::uint64_t dst = 0;
      Cost cost = 0;
      FASTSCHED_REQUIRE(static_cast<bool>(ls >> src >> dst >> cost),
                        "malformed edge line" + where);
      FASTSCHED_REQUIRE(src < builder.num_nodes() && dst < builder.num_nodes(),
                        "edge endpoint out of range" + where);
      builder.add_edge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                       cost);
    } else {
      throw Error("unknown record '" + kind + "'" + where);
    }
  }
  return builder.build();
}

TaskGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

std::string to_dot(const TaskGraph& g, const LevelInfo* levels) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    os << "  " << n << " [label=\"" << dot_escape(g.name(n)) << "\\n"
       << g.weight(n) << '"';
    if (levels != nullptr && levels->is_cpn[n]) {
      os << ", style=filled, fillcolor=gray30, fontcolor=white";
    }
    os << "];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId s = g.edge_source(e);
    const NodeId t = g.edge_target(e);
    os << "  " << s << " -> " << t << " [label=\"" << g.edge_cost(e) << '"';
    if (g.edge_cost(e) == 0.0) os << ", style=dashed";
    if (levels != nullptr && levels->is_cpn[s] && levels->is_cpn[t]) {
      const bool on_cp = approx_equal(levels->t_level[s] + g.weight(s) +
                                          g.edge_cost(e) + levels->b_level[t],
                                      levels->cp_length);
      if (on_cp) os << ", penwidth=2.5";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace fastsched::graph
