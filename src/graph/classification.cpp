#include "graph/classification.hpp"

#include <deque>

namespace fastsched::graph {

std::vector<NodeClass> classify_nodes(const TaskGraph& g,
                                      const LevelInfo& levels) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_REQUIRE(levels.is_cpn.size() == v,
                    "levels were computed for a different graph");

  std::vector<NodeClass> classes(v, NodeClass::kObn);
  // Reverse BFS from all CPNs marks every node that reaches a CPN.
  std::vector<bool> reaches_cpn(v, false);
  std::deque<NodeId> queue;
  for (NodeId n = 0; n < v; ++n) {
    if (levels.is_cpn[n]) {
      reaches_cpn[n] = true;
      queue.push_back(n);
    }
  }
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (const Adjacency& p : g.predecessors(n)) {
      if (!reaches_cpn[p.node]) {
        reaches_cpn[p.node] = true;
        queue.push_back(p.node);
      }
    }
  }
  for (NodeId n = 0; n < v; ++n) {
    if (levels.is_cpn[n]) {
      classes[n] = NodeClass::kCpn;
    } else if (reaches_cpn[n]) {
      classes[n] = NodeClass::kIbn;
    }
  }
  return classes;
}

std::vector<NodeId> nodes_of_class(const std::vector<NodeClass>& classes,
                                   NodeClass wanted) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < classes.size(); ++n) {
    if (classes[n] == wanted) out.push_back(n);
  }
  return out;
}

}  // namespace fastsched::graph
