#pragma once

/// \file levels.hpp
/// Node attributes from paper §2: t-level (ASAP start time), b-level,
/// static level (computation-only b-level), ALAP start time, the
/// critical-path (CP) length, and the set of critical-path nodes (CPNs).
///
/// All attributes are computed in a single O(v + e) pass over a fixed
/// topological order — the complexity budget the FAST algorithm relies on.

#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::graph {

/// All level attributes of a task graph.
struct LevelInfo {
  /// Length of the longest path from an entry node to n, excluding w(n).
  /// Equals the ASAP start time.
  std::vector<Cost> t_level;
  /// Length of the longest path from n to an exit node, including w(n).
  std::vector<Cost> b_level;
  /// b-level computed over computation costs only (SL in the paper).
  std::vector<Cost> static_level;
  /// ALAP start time = CP length − b-level.
  std::vector<Cost> alap;
  /// Length of the critical path (max over nodes of t-level + b-level).
  Cost cp_length = 0;
  /// is_cpn[n]: t-level(n) + b-level(n) == cp_length (within tolerance).
  std::vector<bool> is_cpn;
  /// All CPNs ordered by ascending t-level (ties by id). For a unique CP
  /// this is exactly the path order; with parallel CPs it is the
  /// deterministic generalization used by the CPN-Dominate list.
  std::vector<NodeId> cpns_in_order;
  /// One canonical critical path: starts at the entry CPN with the largest
  /// b-level, repeatedly follows the CP edge (the child whose t-level is
  /// produced by this node and whose t+b sum equals cp_length), breaking
  /// ties by smallest node id.
  std::vector<NodeId> critical_path;
};

/// Computes every attribute in LevelInfo in O(v + e).
[[nodiscard]] LevelInfo compute_levels(const TaskGraph& g);

/// t-level only (O(v + e)); used by algorithms that maintain their own
/// incremental state.
[[nodiscard]] std::vector<Cost> compute_t_levels(const TaskGraph& g);

/// b-level only (O(v + e)).
[[nodiscard]] std::vector<Cost> compute_b_levels(const TaskGraph& g);

/// Static level (computation-only b-level) only (O(v + e)).
[[nodiscard]] std::vector<Cost> compute_static_levels(const TaskGraph& g);

}  // namespace fastsched::graph
