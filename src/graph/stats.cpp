#include "graph/stats.hpp"

#include <algorithm>
#include <sstream>

namespace fastsched::graph {

GraphStats compute_stats(const TaskGraph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.entry_nodes = g.entry_nodes().size();
  s.exit_nodes = g.exit_nodes().size();
  s.total_work = g.total_work();
  s.total_comm = g.total_comm();
  s.ccr = g.ccr();
  if (s.nodes == 0) return s;

  s.avg_out_degree = static_cast<double>(s.edges) / static_cast<double>(s.nodes);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(n));
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(n));
  }

  // Depth layers: longest hop-distance from any entry node.
  std::vector<std::size_t> layer(g.num_nodes(), 0);
  std::size_t max_layer = 0;
  for (const NodeId n : g.topological_order()) {
    for (const Adjacency& p : g.predecessors(n)) {
      layer[n] = std::max(layer[n], layer[p.node] + 1);
    }
    max_layer = std::max(max_layer, layer[n]);
  }
  s.depth = max_layer + 1;
  s.layer_sizes.assign(s.depth, 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) ++s.layer_sizes[layer[n]];
  s.width = *std::max_element(s.layer_sizes.begin(), s.layer_sizes.end());

  // Computation-only critical path for the average-parallelism measure.
  std::vector<Cost> down(g.num_nodes(), 0.0);
  const auto topo = g.topological_order();
  Cost cp = 0.0;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    Cost best = 0.0;
    for (const Adjacency& succ : g.successors(n)) {
      best = std::max(best, down[succ.node]);
    }
    down[n] = g.weight(n) + best;
    cp = std::max(cp, down[n]);
  }
  if (cp > 0) s.avg_parallelism = s.total_work / cp;
  return s;
}

std::string format_stats(const GraphStats& s) {
  std::ostringstream os;
  os << s.nodes << " tasks, " << s.edges << " edges ("
     << s.avg_out_degree << " avg out-degree, max out " << s.max_out_degree
     << " / in " << s.max_in_degree << ")\n"
     << "depth " << s.depth << ", width " << s.width << ", "
     << s.entry_nodes << " entries, " << s.exit_nodes << " exits\n"
     << "work " << s.total_work << ", comm " << s.total_comm << ", CCR "
     << s.ccr << ", average parallelism " << s.avg_parallelism << "\n";
  return os.str();
}

}  // namespace fastsched::graph
