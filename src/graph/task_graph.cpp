#include "graph/task_graph.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace fastsched::graph {

void TaskGraphBuilder::reserve(std::size_t nodes, std::size_t edges) {
  weights_.reserve(nodes);
  edge_src_.reserve(edges);
  edge_dst_.reserve(edges);
  edge_cost_.reserve(edges);
}

NodeId TaskGraphBuilder::add_node(Cost weight, std::string name) {
  FASTSCHED_REQUIRE(std::isfinite(weight) && weight >= 0.0,
                    "node weight must be finite and non-negative");
  const auto id = static_cast<NodeId>(weights_.size());
  weights_.push_back(weight);
  // Names are lazy: only store names that differ from the implicit
  // "n<i+1>", so round-tripping a graph through a builder (transform,
  // io) keeps default-named nodes string-free.
  if (!name.empty() && name != default_node_name(id)) {
    named_.emplace_back(id, std::move(name));
  }
  return id;
}

void TaskGraphBuilder::add_edge(NodeId src, NodeId dst, Cost cost) {
  FASTSCHED_REQUIRE(src < weights_.size() && dst < weights_.size(),
                    "edge endpoint out of range");
  FASTSCHED_REQUIRE(src != dst, "self-loop edges are not allowed");
  FASTSCHED_REQUIRE(std::isfinite(cost) && cost >= 0.0,
                    "edge cost must be finite and non-negative");
  edge_src_.push_back(src);
  edge_dst_.push_back(dst);
  edge_cost_.push_back(cost);
}

void TaskGraphBuilder::set_node_weight(NodeId node, Cost weight) {
  FASTSCHED_REQUIRE(node < weights_.size(), "node out of range");
  FASTSCHED_REQUIRE(std::isfinite(weight) && weight >= 0.0,
                    "node weight must be finite and non-negative");
  weights_[node] = weight;
}

TaskGraph TaskGraphBuilder::build() const {
  const std::size_t v = weights_.size();
  const std::size_t e = edge_src_.size();

  TaskGraph g;
  g.weights_ = weights_;
  g.named_ = named_;
  g.edge_src_ = edge_src_;
  g.edge_dst_ = edge_dst_;
  g.edge_cost_ = edge_cost_;

  // Reject duplicate edges: each (src, dst) pair may carry one message.
  // The hashed set is insert-only — membership is order-free, and it is
  // never iterated, so there is no det-unordered-iter hazard here.
  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(e * 2);
    for (std::size_t i = 0; i < e; ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(edge_src_[i]) << 32) | edge_dst_[i];
      FASTSCHED_REQUIRE(seen.insert(key).second,
                        "duplicate edge between the same node pair");
    }
  }

  // CSR construction (counting sort by src / dst).
  g.out_off_.assign(v + 1, 0);
  g.in_off_.assign(v + 1, 0);
  for (std::size_t i = 0; i < e; ++i) {
    ++g.out_off_[edge_src_[i] + 1];
    ++g.in_off_[edge_dst_[i] + 1];
  }
  for (std::size_t n = 0; n < v; ++n) {
    g.out_off_[n + 1] += g.out_off_[n];
    g.in_off_[n + 1] += g.in_off_[n];
  }
  g.out_adj_.resize(e);
  g.in_adj_.resize(e);
  {
    std::vector<std::size_t> out_pos(g.out_off_.begin(), g.out_off_.end() - 1);
    std::vector<std::size_t> in_pos(g.in_off_.begin(), g.in_off_.end() - 1);
    for (std::size_t i = 0; i < e; ++i) {
      const auto eid = static_cast<EdgeId>(i);
      g.out_adj_[out_pos[edge_src_[i]]++] =
          Adjacency{edge_dst_[i], edge_cost_[i], eid};
      g.in_adj_[in_pos[edge_dst_[i]]++] =
          Adjacency{edge_src_[i], edge_cost_[i], eid};
    }
  }

  // Kahn's algorithm: topological order + cycle detection.
  {
    std::vector<std::size_t> indeg(v);
    for (NodeId n = 0; n < v; ++n) indeg[n] = g.in_degree(n);
    std::deque<NodeId> queue;
    for (NodeId n = 0; n < v; ++n) {
      if (indeg[n] == 0) queue.push_back(n);
    }
    g.topo_order_.reserve(v);
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop_front();
      g.topo_order_.push_back(n);
      for (const Adjacency& a : g.successors(n)) {
        if (--indeg[a.node] == 0) queue.push_back(a.node);
      }
    }
    FASTSCHED_REQUIRE(g.topo_order_.size() == v,
                      "task graph contains a cycle");
  }

  for (NodeId n = 0; n < v; ++n) {
    if (g.in_degree(n) == 0) g.entries_.push_back(n);
    if (g.out_degree(n) == 0) g.exits_.push_back(n);
  }

  for (const Cost w : g.weights_) g.total_work_ += w;
  for (const Cost c : g.edge_cost_) g.total_comm_ += c;
  return g;
}

std::string TaskGraph::name(NodeId n) const {
  const auto it = std::lower_bound(
      named_.begin(), named_.end(), n,
      [](const auto& entry, NodeId id) { return entry.first < id; });
  if (it != named_.end() && it->first == n) return it->second;
  return default_node_name(n);
}

std::optional<Cost> TaskGraph::find_edge_cost(NodeId src, NodeId dst) const {
  for (const Adjacency& a : successors(src)) {
    if (a.node == dst) return a.cost;
  }
  return std::nullopt;
}

Cost TaskGraph::ccr() const {
  if (num_edges() == 0 || total_work_ == 0.0) return 0.0;
  const Cost avg_comm = total_comm_ / static_cast<Cost>(num_edges());
  const Cost avg_comp = total_work_ / static_cast<Cost>(num_nodes());
  return avg_comm / avg_comp;
}

bool TaskGraph::is_connected() const {
  const std::size_t v = num_nodes();
  if (v <= 1) return true;
  std::vector<bool> visited(v, false);
  std::deque<NodeId> queue{0};
  visited[0] = true;
  std::size_t count = 1;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const auto visit = [&](NodeId m) {
      if (!visited[m]) {
        visited[m] = true;
        ++count;
        queue.push_back(m);
      }
    };
    for (const Adjacency& a : successors(n)) visit(a.node);
    for (const Adjacency& a : predecessors(n)) visit(a.node);
  }
  return count == v;
}

}  // namespace fastsched::graph
