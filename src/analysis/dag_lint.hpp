#pragma once

/// \file dag_lint.hpp
/// The DAG-lint engine: the rule-registry machinery of rule_registry.hpp
/// applied to *input graphs* instead of schedules. Where
/// `TaskGraphBuilder::build()` hard-rejects malformed graphs with one
/// exception, this engine accepts anything the text format can express —
/// cycles, duplicate edges, negative weights — and reports every problem
/// at once as structured diagnostics, plus quality warnings `build()`
/// never checks: transitively redundant edges, disconnected components,
/// isolated nodes, zero-weight tasks and cost outliers.
///
/// Because malformed graphs by definition cannot become a `TaskGraph`,
/// the engine runs on a `RawDag`: the unvalidated parse of the graph text
/// format (`read_raw_dag`), or the trivial projection of an existing
/// `TaskGraph` (`to_raw`).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rule_registry.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::analysis {

/// One unvalidated edge. Endpoints are raw integers: they may be out of
/// range (that is one of the things the lint rules check).
struct RawEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  graph::Cost cost = 0;
};

/// An unvalidated task graph: exactly what the text format said.
struct RawDag {
  std::vector<graph::Cost> weights;
  std::vector<std::string> names;
  std::vector<RawEdge> edges;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return weights.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges.size();
  }
  /// Display name of node `n` ("node<n>" when unnamed or out of range).
  [[nodiscard]] std::string name(std::uint64_t n) const;
};

/// Lenient parse of the graph text format (graph/io.hpp): keeps cycles,
/// duplicate edges, out-of-range endpoints and anomalous weights for the
/// lint rules to report. Throws `fastsched::Error` only on syntax errors
/// (malformed records, non-dense node ids).
[[nodiscard]] RawDag read_raw_dag(std::istream& is);

/// `read_raw_dag` from a string.
[[nodiscard]] RawDag raw_from_text(const std::string& text);

/// Projects an already-validated graph into the raw shape, so built
/// graphs can run through the same rules (generators, tests, benches).
[[nodiscard]] RawDag to_raw(const graph::TaskGraph& g);

/// Everything a DAG-lint rule may inspect.
struct DagLintInput {
  const RawDag* dag = nullptr;
};

/// One registered DAG-lint rule.
using DagRule = BasicRule<DagLintInput>;

/// Rule collection over raw graphs.
class DagRuleRegistry : public BasicRuleRegistry<DagLintInput> {
 public:
  /// The built-in rules, in documentation order:
  ///   edge-endpoint, self-loop, cycle                    (structural)
  ///   duplicate-edge, bad-cost, transitive-edge,
  ///   isolated-node, disconnected, zero-weight,
  ///   cost-outlier                                       (semantic)
  [[nodiscard]] static const DagRuleRegistry& builtin();
};

/// Shape facts about the graph that are reports, not findings: perfectly
/// legal graphs have several sources or a nonzero CCR, but the numbers
/// belong in every lint summary (the paper's generators are classified by
/// exactly these).
struct DagSummary {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  std::vector<graph::NodeId> sources;  ///< in-degree 0 (valid edges only)
  std::vector<graph::NodeId> sinks;    ///< out-degree 0
  std::size_t components = 0;  ///< undirected connected components
  graph::Cost total_work = 0;
  graph::Cost total_comm = 0;
  graph::Cost ccr = 0;  ///< avg edge cost / avg node weight (paper §2)
  bool acyclic = true;
};

/// Computes the summary (independent of any rule findings).
[[nodiscard]] DagSummary summarize(const RawDag& dag);

/// The outcome of one DAG-lint run.
struct DagLintReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t num_errors = 0;
  std::size_t num_warnings = 0;
  DagSummary summary;

  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
  [[nodiscard]] bool ok(bool warnings_as_errors = false) const noexcept {
    return num_errors == 0 && (!warnings_as_errors || num_warnings == 0);
  }
};

/// Runs every rule in `registry` against `dag` and fills in the summary.
/// Structural-rule errors suppress the semantic stage.
[[nodiscard]] DagLintReport dag_lint(const RawDag& dag,
                                     const DagRuleRegistry& registry =
                                         DagRuleRegistry::builtin());

}  // namespace fastsched::analysis
