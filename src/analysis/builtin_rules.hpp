#pragma once

/// \file builtin_rules.hpp
/// Registration hook for the built-in lint rules (builtin_rules.cpp); used
/// by `RuleRegistry::builtin()` and by tests that want a fresh registry to
/// extend with custom rules.

#include "analysis/lint.hpp"

namespace fastsched::analysis::detail {

/// Adds every built-in rule to `registry` (ids listed in lint.hpp).
void register_builtin_rules(RuleRegistry& registry);

}  // namespace fastsched::analysis::detail
