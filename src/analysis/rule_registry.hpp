#pragma once

/// \file rule_registry.hpp
/// The generic rule-registry machinery shared by the schedule-lint engine
/// (lint.hpp, rules over graph + schedule pairs) and the DAG-lint engine
/// (dag_lint.hpp, rules over raw input graphs). A rule set is a list of
/// named checks over one Input type; running a registry stamps every
/// finding with the rule's id and severity and applies the common
/// two-stage protocol: *structural* rules gate the rest — when any of
/// them errors, the semantic rules would only echo noise from garbage
/// input, so the runner stops after stage one.

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "common/error.hpp"

namespace fastsched::analysis {

/// One registered rule over inputs of type `Input`. `check` appends any
/// findings to its output vector; the runner overwrites each appended
/// diagnostic's `rule_id` and `severity` from the rule itself.
template <typename Input>
struct BasicRule {
  std::string id;        ///< stable kebab-case identifier
  Severity severity = Severity::kError;
  bool structural = false;  ///< stage-one rule that gates the others
  std::string summary;   ///< one-line description for --list-rules
  std::function<void(const Input&, std::vector<Diagnostic>&)> check;
};

/// Ordered rule collection over one Input type. Engines derive from this
/// to add their `builtin()` set; callers may extend a copy with
/// project-specific rules.
template <typename Input>
class BasicRuleRegistry {
 public:
  using RuleType = BasicRule<Input>;

  /// Registers a rule. Ids must be unique; throws `fastsched::Error` on
  /// duplicates.
  void add(RuleType rule) {
    FASTSCHED_REQUIRE(!rule.id.empty(), "lint rule needs a non-empty id");
    FASTSCHED_REQUIRE(static_cast<bool>(rule.check),
                      "lint rule '" + rule.id + "' has no check function");
    FASTSCHED_REQUIRE(find(rule.id) == nullptr,
                      "duplicate lint rule id '" + rule.id + "'");
    rules_.push_back(std::move(rule));
  }

  [[nodiscard]] const std::vector<RuleType>& rules() const noexcept {
    return rules_;
  }

  /// Rule by id, or nullptr.
  [[nodiscard]] const RuleType* find(std::string_view id) const noexcept {
    for (const RuleType& rule : rules_) {
      if (rule.id == id) return &rule;
    }
    return nullptr;
  }

 private:
  std::vector<RuleType> rules_;
};

/// Runs every rule in `registry` against `input`, appending stamped
/// diagnostics and bumping the error/warning counters. Structural-rule
/// errors suppress the semantic stage (see file comment).
template <typename Input>
void run_rules(const BasicRuleRegistry<Input>& registry, const Input& input,
               std::vector<Diagnostic>& diagnostics, std::size_t& num_errors,
               std::size_t& num_warnings) {
  const auto run_one = [&](const BasicRule<Input>& rule) {
    const std::size_t first = diagnostics.size();
    rule.check(input, diagnostics);
    for (std::size_t i = first; i < diagnostics.size(); ++i) {
      Diagnostic& d = diagnostics[i];
      d.rule_id = rule.id;
      d.severity = rule.severity;
      if (d.severity == Severity::kError) {
        ++num_errors;
      } else {
        ++num_warnings;
      }
    }
  };
  for (const auto& rule : registry.rules()) {
    if (rule.structural) run_one(rule);
  }
  if (num_errors > 0) return;
  for (const auto& rule : registry.rules()) {
    if (!rule.structural) run_one(rule);
  }
}

}  // namespace fastsched::analysis
