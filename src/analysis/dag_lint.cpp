#include "analysis/dag_lint.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <sstream>

namespace fastsched::analysis {
namespace {

using graph::Cost;
using graph::NodeId;

std::string num(Cost c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

// An edge usable for topology checks: endpoints in range, not a self-loop
// (both are reported by their own structural rules).
bool topology_edge(const RawDag& dag, const RawEdge& e) {
  return e.src < dag.num_nodes() && e.dst < dag.num_nodes() &&
         e.src != e.dst;
}

// Successor / predecessor lists over the topology edges.
struct AdjLists {
  std::vector<std::vector<NodeId>> succ;
  std::vector<std::vector<NodeId>> pred;
};

AdjLists adjacency(const RawDag& dag) {
  AdjLists adj;
  adj.succ.resize(dag.num_nodes());
  adj.pred.resize(dag.num_nodes());
  for (const RawEdge& e : dag.edges) {
    if (!topology_edge(dag, e)) continue;
    adj.succ[e.src].push_back(static_cast<NodeId>(e.dst));
    adj.pred[e.dst].push_back(static_cast<NodeId>(e.src));
  }
  return adj;
}

// Kahn's algorithm; returns the nodes left unprocessed (members of cycles
// or their downstream) — empty iff acyclic.
std::vector<bool> kahn_leftover(const RawDag& dag, const AdjLists& adj) {
  const std::size_t v = dag.num_nodes();
  std::vector<std::size_t> in_degree(v, 0);
  for (NodeId n = 0; n < v; ++n) in_degree[n] = adj.pred[n].size();
  std::vector<NodeId> queue;
  for (NodeId n = 0; n < v; ++n) {
    if (in_degree[n] == 0) queue.push_back(n);
  }
  std::size_t head = 0;
  std::vector<bool> leftover(v, true);
  while (head < queue.size()) {
    const NodeId n = queue[head++];
    leftover[n] = false;
    for (const NodeId c : adj.succ[n]) {
      if (--in_degree[c] == 0) queue.push_back(c);
    }
  }
  return leftover;
}

// --- structural rules ------------------------------------------------------

void check_edge_endpoint(const DagLintInput& in,
                         std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  for (std::size_t i = 0; i < dag.edges.size(); ++i) {
    const RawEdge& e = dag.edges[i];
    if (e.src < dag.num_nodes() && e.dst < dag.num_nodes()) continue;
    Diagnostic d;
    d.message = "edge #" + std::to_string(i) + " (" +
                std::to_string(e.src) + " -> " + std::to_string(e.dst) +
                ") references a node outside the " +
                std::to_string(dag.num_nodes()) + "-node graph";
    out.push_back(std::move(d));
  }
}

void check_self_loop(const DagLintInput& in, std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  for (const RawEdge& e : dag.edges) {
    if (e.src != e.dst || e.src >= dag.num_nodes()) continue;
    Diagnostic d;
    d.node = static_cast<NodeId>(e.src);
    d.message = "task depends on itself (self-loop, cost " + num(e.cost) +
                ")";
    out.push_back(std::move(d));
  }
}

void check_cycle(const DagLintInput& in, std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  const AdjLists adj = adjacency(dag);
  const std::vector<bool> leftover = kahn_leftover(dag, adj);
  NodeId start = graph::kInvalidNode;
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (leftover[n]) {
      start = n;
      break;
    }
  }
  if (start == graph::kInvalidNode) return;
  // Witness: walk predecessors inside the leftover set (each leftover node
  // has at least one) until a node repeats — that suffix is a cycle.
  std::vector<NodeId> walk{start};
  std::vector<std::size_t> pos(dag.num_nodes(), dag.num_nodes());
  pos[start] = 0;
  std::size_t cycle_begin = 0;
  for (;;) {
    NodeId next = graph::kInvalidNode;
    for (const NodeId p : adj.pred[walk.back()]) {
      if (leftover[p]) {
        next = p;
        break;
      }
    }
    if (next == graph::kInvalidNode) return;  // unreachable: leftover
                                              // nodes keep leftover preds
    if (pos[next] != dag.num_nodes()) {
      cycle_begin = pos[next];
      walk.push_back(next);
      break;
    }
    pos[next] = walk.size();
    walk.push_back(next);
  }
  // The walk followed predecessor links, so reverse for edge direction.
  std::ostringstream path;
  for (std::size_t i = walk.size(); i-- > cycle_begin;) {
    path << dag.name(walk[i]);
    if (i > cycle_begin) path << " -> ";
  }
  std::size_t members = 0;
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (leftover[n]) ++members;
  }
  Diagnostic d;
  d.node = walk[cycle_begin];
  d.message = "dependency cycle (" + std::to_string(members) +
              " nodes unschedulable): " + path.str();
  out.push_back(std::move(d));
}

// --- semantic rules --------------------------------------------------------

void check_duplicate_edge(const DagLintInput& in,
                          std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  seen.reserve(dag.edges.size());
  for (const RawEdge& e : dag.edges) seen.emplace_back(e.src, e.dst);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i + 1 < seen.size();) {
    std::size_t j = i + 1;
    while (j < seen.size() && seen[j] == seen[i]) ++j;
    if (j - i > 1) {
      Diagnostic d;
      if (seen[i].first < dag.num_nodes()) {
        d.node = static_cast<NodeId>(seen[i].first);
      }
      if (seen[i].second < dag.num_nodes()) {
        d.related = static_cast<NodeId>(seen[i].second);
      }
      d.message = "edge " + dag.name(seen[i].first) + " -> " +
                  dag.name(seen[i].second) + " appears " +
                  std::to_string(j - i) + " times";
      out.push_back(std::move(d));
    }
    i = j;
  }
}

void check_bad_cost(const DagLintInput& in, std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    const Cost w = dag.weights[n];
    if (w >= 0 && std::isfinite(w)) continue;
    Diagnostic d;
    d.node = n;
    d.message = "computation cost " + num(w) + " is " +
                (std::isfinite(w) ? "negative" : "not finite");
    out.push_back(std::move(d));
  }
  for (std::size_t i = 0; i < dag.edges.size(); ++i) {
    const Cost c = dag.edges[i].cost;
    if (c >= 0 && std::isfinite(c)) continue;
    Diagnostic d;
    if (dag.edges[i].src < dag.num_nodes()) {
      d.node = static_cast<NodeId>(dag.edges[i].src);
    }
    if (dag.edges[i].dst < dag.num_nodes()) {
      d.related = static_cast<NodeId>(dag.edges[i].dst);
    }
    d.message = "communication cost " + num(c) + " of edge #" +
                std::to_string(i) + " is " +
                (std::isfinite(c) ? "negative" : "not finite");
    out.push_back(std::move(d));
  }
}

// An edge u -> v is transitively redundant for precedence when another
// u ->* v path of length >= 2 exists; the direct message may still be
// meaningful, so this is a warning. Reachability via per-node bitsets in
// reverse topological order: O(v·e/64).
void check_transitive_edge(const DagLintInput& in,
                           std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  const std::size_t v = dag.num_nodes();
  if (v == 0) return;
  const AdjLists adj = adjacency(dag);
  const std::size_t words = (v + 63) / 64;
  std::vector<std::uint64_t> reach(v * words, 0);
  const auto test = [&](NodeId from, NodeId to) {
    return (reach[from * words + to / 64] >> (to % 64)) & 1u;
  };
  // Reverse topological order; the structural cycle rule gates this one,
  // so Kahn processes every node.
  std::vector<std::size_t> in_degree(v, 0);
  std::vector<NodeId> order;
  order.reserve(v);
  for (NodeId n = 0; n < v; ++n) in_degree[n] = adj.pred[n].size();
  for (NodeId n = 0; n < v; ++n) {
    if (in_degree[n] == 0) order.push_back(n);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const NodeId c : adj.succ[order[head]]) {
      if (--in_degree[c] == 0) order.push_back(c);
    }
  }
  for (std::size_t i = order.size(); i-- > 0;) {
    const NodeId n = order[i];
    for (const NodeId c : adj.succ[n]) {
      reach[n * words + c / 64] |= std::uint64_t{1} << (c % 64);
      for (std::size_t w = 0; w < words; ++w) {
        reach[n * words + w] |= reach[c * words + w];
      }
    }
  }
  for (const RawEdge& e : dag.edges) {
    if (!topology_edge(dag, e)) continue;
    const NodeId u = static_cast<NodeId>(e.src);
    const NodeId tgt = static_cast<NodeId>(e.dst);
    NodeId via = graph::kInvalidNode;
    for (const NodeId c : adj.succ[u]) {
      if (c != tgt && test(c, tgt)) {
        via = c;
        break;
      }
    }
    if (via == graph::kInvalidNode) continue;
    Diagnostic d;
    d.node = u;
    d.related = tgt;
    d.message = "edge " + dag.name(u) + " -> " + dag.name(tgt) +
                " is transitively implied (longer path via " +
                dag.name(via) + ")";
    out.push_back(std::move(d));
  }
}

void check_isolated_node(const DagLintInput& in,
                         std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  if (dag.num_nodes() <= 1) return;
  std::vector<bool> touched(dag.num_nodes(), false);
  for (const RawEdge& e : dag.edges) {
    if (e.src < dag.num_nodes()) touched[e.src] = true;
    if (e.dst < dag.num_nodes()) touched[e.dst] = true;
  }
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (touched[n]) continue;
    Diagnostic d;
    d.node = n;
    d.message = "task has no dependencies in either direction";
    out.push_back(std::move(d));
  }
}

void check_disconnected(const DagLintInput& in,
                        std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  const std::size_t v = dag.num_nodes();
  std::vector<NodeId> parent(v);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](NodeId n) {
    while (parent[n] != n) n = parent[n] = parent[parent[n]];
    return n;
  };
  std::vector<bool> touched(v, false);
  for (const RawEdge& e : dag.edges) {
    if (!topology_edge(dag, e)) continue;
    touched[e.src] = touched[e.dst] = true;
    parent[find(static_cast<NodeId>(e.src))] =
        find(static_cast<NodeId>(e.dst));
  }
  // Isolated nodes have their own rule; this one flags >= 2 genuine
  // components.
  std::vector<NodeId> roots;
  for (NodeId n = 0; n < v; ++n) {
    if (!touched[n]) continue;
    const NodeId r = find(n);
    if (std::find(roots.begin(), roots.end(), r) == roots.end()) {
      roots.push_back(r);
    }
  }
  if (roots.size() <= 1) return;
  Diagnostic d;
  d.node = roots[0];
  d.related = roots[1];
  d.message = "graph splits into " + std::to_string(roots.size()) +
              " disconnected components (e.g. the ones holding " +
              dag.name(roots[0]) + " and " + dag.name(roots[1]) + ")";
  out.push_back(std::move(d));
}

void check_zero_weight(const DagLintInput& in, std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (dag.weights[n] != 0) continue;
    Diagnostic d;
    d.node = n;
    d.message = "task has zero computation cost";
    out.push_back(std::move(d));
  }
}

// Costs more than 64x the median positive cost of their kind usually mean
// a unit mix-up (seconds vs microseconds) in the timing database; checked
// only with >= 8 samples so tiny hand-written graphs stay quiet.
void check_cost_outlier(const DagLintInput& in,
                        std::vector<Diagnostic>& out) {
  const RawDag& dag = *in.dag;
  const Cost factor = 64;
  const auto median_positive = [](std::vector<Cost> values) -> Cost {
    std::erase_if(values, [](Cost c) { return !(c > 0); });
    if (values.size() < 8) return 0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
  };
  const Cost node_median = median_positive(dag.weights);
  if (node_median > 0) {
    for (NodeId n = 0; n < dag.num_nodes(); ++n) {
      if (dag.weights[n] <= factor * node_median) continue;
      Diagnostic d;
      d.node = n;
      d.message = "computation cost " + num(dag.weights[n]) + " is over " +
                  num(factor) + "x the median " + num(node_median);
      out.push_back(std::move(d));
    }
  }
  std::vector<Cost> edge_costs;
  edge_costs.reserve(dag.edges.size());
  for (const RawEdge& e : dag.edges) edge_costs.push_back(e.cost);
  const Cost edge_median = median_positive(std::move(edge_costs));
  if (edge_median > 0) {
    for (std::size_t i = 0; i < dag.edges.size(); ++i) {
      const RawEdge& e = dag.edges[i];
      if (e.cost <= factor * edge_median) continue;
      Diagnostic d;
      if (e.src < dag.num_nodes()) d.node = static_cast<NodeId>(e.src);
      if (e.dst < dag.num_nodes()) d.related = static_cast<NodeId>(e.dst);
      d.message = "communication cost " + num(e.cost) + " of edge #" +
                  std::to_string(i) + " is over " + num(factor) +
                  "x the median " + num(edge_median);
      out.push_back(std::move(d));
    }
  }
}

void register_builtin_dag_rules(DagRuleRegistry& registry) {
  const auto add = [&](const char* id, Severity severity, bool structural,
                       const char* summary,
                       void (*check)(const DagLintInput&,
                                     std::vector<Diagnostic>&)) {
    registry.add(DagRule{id, severity, structural, summary, check});
  };
  add("edge-endpoint", Severity::kError, true,
      "every edge endpoint names an existing node", check_edge_endpoint);
  add("self-loop", Severity::kError, true, "no task depends on itself",
      check_self_loop);
  add("cycle", Severity::kError, true,
      "the dependence graph is acyclic (witness path reported)",
      check_cycle);
  add("duplicate-edge", Severity::kError, false,
      "no ordered node pair is connected twice", check_duplicate_edge);
  add("bad-cost", Severity::kError, false,
      "computation and communication costs are finite and non-negative",
      check_bad_cost);
  add("transitive-edge", Severity::kWarning, false,
      "no edge is transitively implied by a longer path",
      check_transitive_edge);
  add("isolated-node", Severity::kWarning, false,
      "every task is connected to the rest of the program",
      check_isolated_node);
  add("disconnected", Severity::kWarning, false,
      "the graph is one connected program", check_disconnected);
  add("zero-weight", Severity::kWarning, false,
      "every task has a positive computation cost", check_zero_weight);
  add("cost-outlier", Severity::kWarning, false,
      "no cost exceeds 64x the median of its kind (unit mix-ups)",
      check_cost_outlier);
}

}  // namespace

std::string RawDag::name(std::uint64_t n) const {
  if (n < names.size() && !names[n].empty()) return names[n];
  return "node" + std::to_string(n);
}

RawDag read_raw_dag(std::istream& is) {
  RawDag dag;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (kind == "node") {
      std::uint64_t id = 0;
      graph::Cost weight = 0;
      std::string name;
      FASTSCHED_REQUIRE(static_cast<bool>(ls >> id >> weight),
                        "malformed node line" + where);
      ls >> name;  // optional
      FASTSCHED_REQUIRE(id == dag.num_nodes(),
                        "node ids must be dense and in order" + where);
      dag.weights.push_back(weight);
      dag.names.push_back(std::move(name));
    } else if (kind == "edge") {
      RawEdge e;
      FASTSCHED_REQUIRE(static_cast<bool>(ls >> e.src >> e.dst >> e.cost),
                        "malformed edge line" + where);
      dag.edges.push_back(e);
    } else {
      throw Error("unknown record '" + kind + "'" + where);
    }
  }
  return dag;
}

RawDag raw_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_raw_dag(is);
}

RawDag to_raw(const graph::TaskGraph& g) {
  RawDag dag;
  dag.weights.reserve(g.num_nodes());
  dag.names.reserve(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    dag.weights.push_back(g.weight(n));
    dag.names.push_back(g.name(n));
  }
  dag.edges.reserve(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    dag.edges.push_back({g.edge_source(e), g.edge_target(e), g.edge_cost(e)});
  }
  return dag;
}

const DagRuleRegistry& DagRuleRegistry::builtin() {
  static const DagRuleRegistry registry = [] {
    DagRuleRegistry r;
    register_builtin_dag_rules(r);
    return r;
  }();
  return registry;
}

DagSummary summarize(const RawDag& dag) {
  DagSummary s;
  s.num_nodes = dag.num_nodes();
  s.num_edges = dag.num_edges();
  const AdjLists adj = adjacency(dag);
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (adj.pred[n].empty()) s.sources.push_back(n);
    if (adj.succ[n].empty()) s.sinks.push_back(n);
  }
  // Undirected components over every node (isolated nodes count as their
  // own component).
  std::vector<NodeId> parent(dag.num_nodes());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](NodeId n) {
    while (parent[n] != n) n = parent[n] = parent[parent[n]];
    return n;
  };
  for (const RawEdge& e : dag.edges) {
    if (!topology_edge(dag, e)) continue;
    parent[find(static_cast<NodeId>(e.src))] =
        find(static_cast<NodeId>(e.dst));
  }
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    if (find(n) == n) ++s.components;
  }
  for (const Cost w : dag.weights) s.total_work += w;
  for (const RawEdge& e : dag.edges) s.total_comm += e.cost;
  if (s.num_edges > 0 && s.total_work != 0) {
    // Matches TaskGraph::ccr: average edge cost over average node cost.
    s.ccr = (s.total_comm / static_cast<Cost>(s.num_edges)) /
            (s.total_work / static_cast<Cost>(s.num_nodes));
  }
  std::vector<bool> leftover = kahn_leftover(dag, adj);
  s.acyclic =
      std::none_of(leftover.begin(), leftover.end(), [](bool b) { return b; });
  return s;
}

DagLintReport dag_lint(const RawDag& dag, const DagRuleRegistry& registry) {
  DagLintReport report;
  DagLintInput input;
  input.dag = &dag;
  run_rules(registry, input, report.diagnostics, report.num_errors,
            report.num_warnings);
  report.summary = summarize(dag);
  return report;
}

}  // namespace fastsched::analysis
