#pragma once

/// \file source_lexer.hpp
/// A lightweight C++ lexer for the project's own sources — the front end
/// of the `fastsched_check` static analyzer (srccheck.hpp). It is *not* a
/// parser: it produces a flat token stream with comments, string and
/// character literals stripped (raw strings included), line numbers
/// preserved through continuations and block comments, and preprocessor
/// lines marked so rules can skip `#include <unordered_map>` without
/// special cases. Comments are kept on the side, because the project's
/// in-source annotations (`// NOLINT-fastsched(rule): reason`,
/// `// fastsched: hot`, `// det-ok: fixed-order`) live there.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fastsched::analysis::srccheck {

enum class TokenKind : std::uint8_t {
  kIdentifier,  ///< identifiers and keywords
  kNumber,      ///< numeric literals (pp-numbers, one token)
  kString,      ///< string/char literal placeholder (text is "")
  kPunct,       ///< operators and punctuation
};

/// One code token. Multi-character operators that the rules match on
/// (`::`, `->`, `+=`, `-=`, `*=`, `/=`) are single tokens; every other
/// punctuation character is its own token.
struct Token {
  std::string text;
  std::uint32_t line = 0;  ///< 1-based line of the token's first character
  TokenKind kind = TokenKind::kPunct;
  bool preprocessor = false;  ///< token sits on a preprocessor directive
};

/// One comment, with markers stripped (`// x` and `/* x */` both yield
/// "x", trimmed). Block comments spanning several lines yield one entry
/// per line so line-anchored annotations stay line-accurate.
struct Comment {
  std::string text;
  std::uint32_t line = 0;
  bool own_line = false;  ///< nothing but whitespace precedes it
};

/// One lexed source file.
struct SourceFile {
  std::string path;                ///< as reported in diagnostics
  std::vector<std::string> lines;  ///< raw text, line n at lines[n - 1]
  std::vector<Token> tokens;
  std::vector<Comment> comments;

  /// Raw text of `line` (1-based), or "" when out of range.
  [[nodiscard]] std::string_view line_text(std::uint32_t line) const {
    if (line == 0 || line > lines.size()) return {};
    return lines[line - 1];
  }
};

/// Lexes `content` (the bytes of one C++ source file). Never throws on
/// malformed input: an unterminated literal or comment simply runs to the
/// end of the file, matching how rules should degrade on garbage.
[[nodiscard]] SourceFile lex_source(std::string path, std::string_view content);

}  // namespace fastsched::analysis::srccheck
