/// \file src_rules.cpp
/// The built-in fastsched_check rules (registry in srccheck.hpp). Every
/// rule is a token-level heuristic over the lexed sources — deliberately
/// no type information, so each rule documents exactly what it matches
/// and offers either a fix or an annotation as the escape hatch.

#include <algorithm>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "analysis/srccheck/srccheck.hpp"

namespace fastsched::analysis::srccheck {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Tokens [i, i + seq.size()) match `seq` exactly (identifier or
/// punctuation text), all outside preprocessor directives.
bool match_seq(const Tokens& t, std::size_t i,
               std::initializer_list<std::string_view> seq) {
  if (i + seq.size() > t.size()) return false;
  std::size_t k = i;
  for (const std::string_view want : seq) {
    if (t[k].preprocessor || t[k].text != want) return false;
    ++k;
  }
  return true;
}

std::string_view basename(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

void add_finding(std::vector<Diagnostic>& out, const CheckedFile& f,
                 std::uint32_t line, std::string message,
                 std::string fix_hint) {
  Diagnostic d;
  d.file = f.source.path;
  d.line = line;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  out.push_back(std::move(d));
}

/// Call-shaped use of a free function: `name(` not preceded by an access
/// or scope token (`.`, `->`, `::` — member calls and foreign-namespace
/// qualifications are someone else's function).
bool is_free_call(const Tokens& t, std::size_t i) {
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  return !(is_punct(prev, ".") || is_punct(prev, "->") ||
           is_punct(prev, "::"));
}

/// `std::name(` — the std:: qualification of the same libc functions.
bool is_std_call(const Tokens& t, std::size_t i) {
  return i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std") &&
         i + 1 < t.size() && is_punct(t[i + 1], "(");
}

// ---------------------------------------------------------------------------
// D1 det-random-source: nondeterminism sources in checked code. Wall
// clocks, process-seeded RNGs and thread ids make output depend on when
// and where the code ran; the project funnels randomness through
// common/rng.hpp (explicit seeds) and time through common/timer.hpp
// (measurement only, never control flow).
void check_random_source(const SrcCheckInput& input,
                         std::vector<Diagnostic>& out) {
  static constexpr std::string_view kLibcSources[] = {"rand", "srand", "time",
                                                      "clock"};
  for (const CheckedFile& f : *input.files) {
    const bool is_timer = basename(f.source.path) == "timer.hpp";
    const Tokens& t = f.source.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
      if (match_seq(t, i, {"std", "::", "random_device"})) {
        add_finding(out, f, t[i].line,
                    "std::random_device draws entropy from the host: output "
                    "can never be reproduced",
                    "seed a common/rng.hpp Rng from an explicit parameter");
        continue;
      }
      if (match_seq(t, i, {"std", "::", "this_thread", "::", "get_id"})) {
        add_finding(out, f, t[i].line,
                    "std::this_thread::get_id() varies run to run: any value "
                    "derived from it is nondeterministic",
                    "use the pool's stable worker index instead");
        continue;
      }
      for (const std::string_view name : kLibcSources) {
        if (t[i].text == name && (is_free_call(t, i) || is_std_call(t, i))) {
          add_finding(out, f, t[i].line,
                      "call of " + std::string(name) +
                          "(): process-global clock/RNG state makes output "
                          "depend on when the code ran",
                      name == "rand" || name == "srand"
                          ? "use common/rng.hpp with an explicit seed"
                          : "use common/timer.hpp (steady_clock, measurement "
                            "only)");
          break;
        }
      }
      if (!is_timer && match_seq(t, i, {"std", "::", "chrono", "::"}) &&
          i + 4 < t.size() && t[i + 4].kind == TokenKind::kIdentifier &&
          t[i + 4].text.size() > 6 &&
          t[i + 4].text.compare(t[i + 4].text.size() - 6, 6, "_clock") == 0 &&
          match_seq(t, i + 5, {"::", "now"})) {
        add_finding(out, f, t[i].line,
                    "std::chrono::" + t[i + 4].text +
                        "::now() outside timer.hpp: wall time must never "
                        "reach scheduling decisions or reports",
                    "route timing through common/timer.hpp and keep it out "
                    "of outputs");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D2 det-unordered-iter: range-for over a variable declared as an
// unordered container in the same file. Iteration order is
// implementation- and seed-defined, so any order-sensitive consumer
// (output, reports, schedules, edge construction) silently loses
// byte-identity. Order-independent folds may suppress with a
// justified NOLINT-fastsched(det-unordered-iter) annotation.
void check_unordered_iter(const SrcCheckInput& input,
                          std::vector<Diagnostic>& out) {
  static constexpr std::string_view kUnordered[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const CheckedFile& f : *input.files) {
    const Tokens& t = f.source.tokens;
    // Harvest declared names: `unordered_xxx< ... > name`.
    std::unordered_set<std::string> vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
      if (std::find(std::begin(kUnordered), std::end(kUnordered), t[i].text) ==
          std::end(kUnordered)) {
        continue;
      }
      if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
      std::size_t depth = 1;
      std::size_t j = i + 2;
      while (j < t.size() && depth > 0) {
        if (is_punct(t[j], "<")) ++depth;
        if (is_punct(t[j], ">")) --depth;
        ++j;
      }
      // Skip ref/pointer declarators: `unordered_map<K, V>& name` (or
      // `&&`, which lexes as two '&' tokens) declares `name` all the same.
      while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
        vars.insert(t[j].text);
      }
    }
    if (vars.empty()) continue;
    // Range-for whose range expression names a harvested variable.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
      std::size_t depth = 1;
      std::size_t colon = 0;
      std::size_t j = i + 2;
      while (j < t.size() && depth > 0) {
        if (is_punct(t[j], "(")) ++depth;
        if (is_punct(t[j], ")")) --depth;
        if (depth == 1 && colon == 0 && is_punct(t[j], ":")) colon = j;
        ++j;
      }
      if (colon == 0) continue;
      for (std::size_t k = colon + 1; k < j; ++k) {
        if (t[k].kind == TokenKind::kIdentifier && vars.count(t[k].text) > 0) {
          add_finding(out, f, t[i].line,
                      "iteration over unordered container '" + t[k].text +
                          "': visit order is unspecified and varies across "
                          "implementations",
                      "sort the keys first or use an ordered container; "
                      "suppress only if the fold is provably "
                      "order-independent");
          break;
        }
      }
    }
  }
}

/// Loop-body token spans (`for`/`while`/`do` with a braced body),
/// innermost bodies included — shared by D3.
std::vector<bool> loop_body_mask(const Tokens& t) {
  std::vector<bool> in_loop(t.size(), false);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
    std::size_t open = 0;  // index of the body's '{'
    if (t[i].text == "for" || t[i].text == "while") {
      if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
      std::size_t depth = 1;
      std::size_t j = i + 2;
      while (j < t.size() && depth > 0) {
        if (is_punct(t[j], "(")) ++depth;
        if (is_punct(t[j], ")")) --depth;
        ++j;
      }
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      open = j;
    } else if (t[i].text == "do" && i + 1 < t.size() &&
               is_punct(t[i + 1], "{")) {
      open = i + 1;
    } else {
      continue;
    }
    std::size_t depth = 1;
    std::size_t j = open + 1;
    while (j < t.size() && depth > 0) {
      if (is_punct(t[j], "{")) ++depth;
      if (is_punct(t[j], "}")) --depth;
      if (depth > 0) in_loop[j] = true;
      ++j;
    }
  }
  return in_loop;
}

// ---------------------------------------------------------------------------
// D3 det-float-merge: `x += ...` on a floating-point variable inside a
// loop, in a file that uses the deterministic thread pool. Float addition
// is not associative, so a merge loop folding worker results is
// byte-identical only when the fold order is fixed; the annotation
// `// det-ok: fixed-order` records that the order is pinned (e.g. a loop
// over a fixed node order or the pool's submission-order merge).
void check_float_merge(const SrcCheckInput& input,
                       std::vector<Diagnostic>& out) {
  for (const CheckedFile& f : *input.files) {
    bool uses_pool = false;
    for (const std::string& line : f.source.lines) {
      if (line.find("common/thread_pool.hpp") != std::string::npos) {
        uses_pool = true;
        break;
      }
    }
    if (!uses_pool) continue;
    const Tokens& t = f.source.tokens;
    // Harvest float-typed names: `double|float|Cost name` where the next
    // token starts an initializer or ends the declarator.
    std::unordered_set<std::string> vars;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
      if (t[i].text != "double" && t[i].text != "float" &&
          t[i].text != "Cost") {
        continue;
      }
      if (t[i + 1].kind != TokenKind::kIdentifier) continue;
      if (is_punct(t[i + 2], "=") || is_punct(t[i + 2], ";") ||
          is_punct(t[i + 2], "{") || is_punct(t[i + 2], ",")) {
        vars.insert(t[i + 1].text);
      }
    }
    if (vars.empty()) continue;
    const std::vector<bool> in_loop = loop_body_mask(t);
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!is_punct(t[i], "+=") || !in_loop[i]) continue;
      const Token& lhs = t[i - 1];
      if (lhs.kind != TokenKind::kIdentifier || vars.count(lhs.text) == 0) {
        continue;
      }
      if (f.annotations.det_ok(t[i].line)) continue;
      add_finding(out, f, t[i].line,
                  "floating-point reduction '" + lhs.text +
                      " +=' in a loop in a thread-pool-using file: float "
                      "addition is not associative, so the fold order must "
                      "be fixed for byte-identical output",
                  "fold in a deterministic order (submission-order merge) "
                  "and annotate the loop '// det-ok: fixed-order'");
    }
  }
}

/// One function the semantic model inferred something about, with the
/// provenance chain to quote in findings.
struct InferredFn {
  const FunctionDef* def = nullptr;
  const std::string* why = nullptr;
};

/// Functions of file `fi` whose entry in `reasons` (hot_reason or
/// task_reason, flat-indexed) is non-empty. Empty without a model.
std::vector<InferredFn> inferred_fns(const SrcCheckInput& input,
                                     std::size_t fi,
                                     const std::vector<std::string>& reasons) {
  std::vector<InferredFn> out;
  if (input.model == nullptr) return out;
  const SemanticModel& m = *input.model;
  const FileSemantics& sem = (*input.files)[fi].semantics;
  for (std::size_t k = 0; k < sem.functions.size(); ++k) {
    const std::string& why = reasons[m.fn_base[fi] + k];
    if (!why.empty()) out.push_back({&sem.functions[k], &why});
  }
  return out;
}

/// The innermost entry of `fns` whose body contains token `i`, or
/// nullptr.
const InferredFn* innermost_body(const std::vector<InferredFn>& fns,
                                 std::size_t i) {
  const InferredFn* best = nullptr;
  for (const InferredFn& fn : fns) {
    if (fn.def->body_begin < i && i < fn.def->body_end &&
        (best == nullptr || fn.def->body_begin > best->def->body_begin)) {
      best = &fn;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// H1 hot-alloc: allocation inside a `// fastsched: hot` region, or in a
// function the semantic model (semantic.hpp) infers is reached from one
// — hot regions mark the per-probe inner loops (evaluator scans, event
// replay, commit walks) that run millions of times per search; one
// malloc there dominates the probe cost the paper's complexity argument
// depends on, and extracting the loop body into a helper must not hide
// it. push_back/emplace_back/resize are allowed when the same file
// reserves the container's capacity (amortized O(0) growth in steady
// state).
void check_hot_alloc(const SrcCheckInput& input,
                     std::vector<Diagnostic>& out) {
  for (std::size_t fi = 0; fi < input.files->size(); ++fi) {
    const CheckedFile& f = (*input.files)[fi];
    const std::vector<InferredFn> hot =
        input.model == nullptr
            ? std::vector<InferredFn>{}
            : inferred_fns(input, fi, input.model->hot_reason);
    if (f.annotations.hot_regions.empty() && hot.empty()) continue;
    const Tokens& t = f.source.tokens;
    // Containers with a `.reserve(` anywhere in the file.
    std::unordered_set<std::string> reserved;
    for (std::size_t i = 2; i < t.size(); ++i) {
      if (is_ident(t[i], "reserve") && is_punct(t[i - 1], ".") &&
          t[i - 2].kind == TokenKind::kIdentifier && i + 1 < t.size() &&
          is_punct(t[i + 1], "(")) {
        reserved.insert(t[i - 2].text);
      }
    }
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
      // Explicit regions keep their original wording; inferred bodies
      // cite the provenance chain so the finding is self-explaining.
      const bool in_region = f.annotations.in_hot_region(t[i].line);
      std::string where = "inside a hot region";
      if (!in_region) {
        const InferredFn* fn = innermost_body(hot, i);
        if (fn == nullptr) continue;
        where = "in '" + fn->def->name + "' (inferred hot: " + *fn->why + ")";
      }
      if (t[i].text == "new") {
        add_finding(out, f, t[i].line, "operator new " + where,
                    "preallocate outside the region and reuse the storage");
        continue;
      }
      if ((t[i].text == "malloc" || t[i].text == "calloc" ||
           t[i].text == "realloc") &&
          (is_free_call(t, i) || is_std_call(t, i))) {
        add_finding(out, f, t[i].line,
                    "call of " + t[i].text + "() " + where,
                    "preallocate outside the region and reuse the storage");
        continue;
      }
      if ((t[i].text == "push_back" || t[i].text == "emplace_back" ||
           t[i].text == "resize") &&
          i >= 2 && is_punct(t[i - 1], ".") &&
          t[i - 2].kind == TokenKind::kIdentifier && i + 1 < t.size() &&
          is_punct(t[i + 1], "(") && reserved.count(t[i - 2].text) == 0) {
        add_finding(out, f, t[i].line,
                    "'" + t[i - 2].text + "." + t[i].text + "(...)' " + where +
                        " with no reserve() for '" + t[i - 2].text +
                        "' anywhere in this file: growth "
                        "reallocates on the hot path",
                    "reserve the container's capacity during setup");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// H2 hot-region-balance: every `// fastsched: hot` needs exactly one
// `// fastsched: end-hot` — an unterminated region silently widens (or
// disables) the hot-alloc gate.
void check_hot_balance(const SrcCheckInput& input,
                       std::vector<Diagnostic>& out) {
  for (const CheckedFile& f : *input.files) {
    if (f.annotations.unbalanced_hot_line != 0) {
      add_finding(out, f, f.annotations.unbalanced_hot_line,
                  "unbalanced hot-region marker: every '// fastsched: hot' "
                  "needs a matching '// fastsched: end-hot'",
                  "close (or remove) the region marker");
    }
  }
}

// ---------------------------------------------------------------------------
// H3 hot-nested-container: a nested dynamic container declared as a data
// member (`vector<vector<...>>`, map-of-vector, ...) in a file inside
// the forward include closure of hot code. Each inner container is its
// own heap block, so walking the member costs one pointer chase — and
// likely one cache miss — per element; at v ~ 10^6 that layout dominates
// probe cost (the SoA/slot-pool refactor of sched::Schedule exists
// precisely to retire this shape from the hot state). Members that are
// provably cold (built once, never walked per probe) may waive with
// `NOLINT-fastsched(hot-nested-container): <why>`.

/// `inc` names `path` as a path suffix at a '/' boundary (same contract
/// as the semantic model's include resolution).
bool include_names_path(const std::string& inc, const std::string& path) {
  if (path == inc) return true;
  if (path.size() <= inc.size()) return false;
  return path.compare(path.size() - inc.size(), inc.size(), inc) == 0 &&
         path[path.size() - inc.size() - 1] == '/';
}

void check_hot_nested_container(const SrcCheckInput& input,
                                std::vector<Diagnostic>& out) {
  static const std::unordered_set<std::string> kContainers = {
      "vector",        "deque",         "list",
      "forward_list",  "map",           "multimap",
      "set",           "multiset",      "unordered_map",
      "unordered_set", "unordered_multimap", "unordered_multiset"};
  const std::vector<CheckedFile>& files = *input.files;
  const std::size_t n = files.size();

  // Hot roots: files with an explicit `// fastsched: hot` region, plus
  // (when the semantic model is present) files holding an inferred-hot
  // function. `via[f]` records the root that pulled f in, for the
  // finding's provenance.
  std::vector<std::string> via(n);
  std::vector<std::size_t> queue;
  for (std::size_t f = 0; f < n; ++f) {
    bool hot = !files[f].annotations.hot_regions.empty();
    if (!hot && input.model != nullptr) {
      const SemanticModel& m = *input.model;
      for (std::uint32_t k = m.fn_base[f]; k < m.fn_base[f + 1]; ++k) {
        if (!m.hot_reason[k].empty()) {
          hot = true;
          break;
        }
      }
    }
    if (hot) {
      via[f] = files[f].source.path;
      queue.push_back(f);
    }
  }
  // Forward include closure: a type only reaches hot code through a
  // header some hot file (transitively) includes.
  while (!queue.empty()) {
    const std::size_t f = queue.back();
    queue.pop_back();
    for (const std::string& inc : files[f].semantics.includes) {
      for (std::size_t g = 0; g < n; ++g) {
        if (via[g].empty() && include_names_path(inc, files[g].source.path)) {
          via[g] = via[f];
          queue.push_back(g);
        }
      }
    }
  }

  for (std::size_t f = 0; f < n; ++f) {
    if (via[f].empty()) continue;
    const Tokens& t = files[f].source.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].preprocessor ||
          !(is_ident(t[i], "class") || is_ident(t[i], "struct"))) {
        continue;
      }
      // Find the type body's '{'; a ';'/')'/'>'/','/'=' first means this
      // was a forward declaration or a template-parameter keyword.
      std::size_t j = i + 1;
      std::size_t angle = 0;
      std::size_t open = 0;
      while (j < t.size()) {
        if (is_punct(t[j], "<")) ++angle;
        if (is_punct(t[j], ">") && angle > 0) --angle;
        if (angle == 0) {
          if (is_punct(t[j], "{")) {
            open = j;
            break;
          }
          if (is_punct(t[j], ";") || is_punct(t[j], ")") ||
              is_punct(t[j], ">") || is_punct(t[j], ",") ||
              is_punct(t[j], "=")) {
            break;
          }
        }
        ++j;
      }
      if (open == 0) continue;
      // Member declarations sit at brace depth 1 of the body; member
      // function bodies (depth >= 2) are skipped wholesale.
      std::size_t depth = 1;
      for (std::size_t k = open + 1; k < t.size() && depth > 0; ++k) {
        if (is_punct(t[k], "{")) ++depth;
        if (is_punct(t[k], "}")) --depth;
        if (depth != 1 || t[k].preprocessor ||
            t[k].kind != TokenKind::kIdentifier ||
            kContainers.count(t[k].text) == 0 || k + 1 >= t.size() ||
            !is_punct(t[k + 1], "<")) {
          continue;
        }
        // Scan the template argument list for an inner container head.
        std::size_t a = k + 2;
        std::size_t nest = 1;
        std::string inner;
        while (a < t.size() && nest > 0) {
          if (is_punct(t[a], "<")) ++nest;
          if (is_punct(t[a], ">")) --nest;
          if (nest > 0 && inner.empty() &&
              t[a].kind == TokenKind::kIdentifier &&
              kContainers.count(t[a].text) > 0 && a + 1 < t.size() &&
              is_punct(t[a + 1], "<")) {
            inner = t[a].text;
          }
          ++a;
        }
        if (inner.empty() || a >= t.size()) {
          k = a > k ? a - 1 : k;
          continue;
        }
        // Declarator: `> name ;` / `{` / `=` is a data member; a `(`
        // next means `name` was a function's return type.
        if (t[a].kind != TokenKind::kIdentifier || a + 1 >= t.size() ||
            !(is_punct(t[a + 1], ";") || is_punct(t[a + 1], "{") ||
              is_punct(t[a + 1], "="))) {
          k = a - 1;
          continue;
        }
        add_finding(
            out, files[f], t[k].line,
            "nested dynamic container member '" + t[a].text + "' (" +
                t[k].text + "<..." + inner + "<...>...>) in a file reachable "
                "from hot code (via " + via[f] + "): every inner " + inner +
                " is a separate heap block, one pointer chase per element "
                "on the hot path",
            "flatten to offsets into one backing array (slot pool), or "
            "suppress with a reason if the member is never walked per "
            "probe");
        k = a - 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P1 probe-pairing: a function that calls `evaluate_move(` must also call
// `revert(`, `commit(` or `rescore(` — a probe left pending poisons the
// next probe's undo log (evaluate_move documents that it replaces an
// un-reverted predecessor, which is almost never what a caller means).
// Lambdas and control blocks attribute to the enclosing function.
void check_probe_pairing(const SrcCheckInput& input,
                         std::vector<Diagnostic>& out) {
  enum class ParenKind : std::uint8_t { kOther, kControl, kLambda };
  for (const CheckedFile& f : *input.files) {
    const Tokens& t = f.source.tokens;
    // One forward pass: classify every '(' so that when its ')' is later
    // followed by '{', the brace can be classified without re-scanning.
    std::vector<ParenKind> paren_stack;
    std::vector<ParenKind> close_kind(t.size(), ParenKind::kOther);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_punct(t[i], "(")) {
        ParenKind kind = ParenKind::kOther;
        if (i > 0) {
          const Token& prev = t[i - 1];
          if (prev.kind == TokenKind::kIdentifier &&
              (prev.text == "for" || prev.text == "while" ||
               prev.text == "if" || prev.text == "switch" ||
               prev.text == "catch")) {
            kind = ParenKind::kControl;
          } else if (is_punct(prev, "]")) {
            kind = ParenKind::kLambda;
          }
        }
        paren_stack.push_back(kind);
      } else if (is_punct(t[i], ")") && !paren_stack.empty()) {
        close_kind[i] = paren_stack.back();
        paren_stack.pop_back();
      }
    }

    struct Scope {
      bool is_function = false;
      std::size_t probes = 0;
      std::size_t resolutions = 0;
      std::uint32_t first_probe_line = 0;
    };
    std::vector<Scope> scopes;
    const auto function_scope = [&]() -> Scope* {
      for (std::size_t k = scopes.size(); k-- > 0;) {
        if (scopes[k].is_function) return &scopes[k];
      }
      return nullptr;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor) continue;
      if (is_punct(t[i], "{")) {
        // A function body's '{' follows the parameter list's ')', with
        // const/noexcept/ref-qualifiers or a trailing return type in
        // between; control statements and lambdas are excluded via the
        // paren classification above.
        Scope scope;
        std::size_t j = i;
        while (j-- > 0) {
          const Token& p = t[j];
          if (p.kind == TokenKind::kIdentifier &&
              (p.text == "const" || p.text == "noexcept" ||
               p.text == "override" || p.text == "final" ||
               p.text == "mutable" || p.text == "try")) {
            continue;
          }
          if (is_punct(p, "->") || is_punct(p, "::") || is_punct(p, "<") ||
              is_punct(p, ">") || is_punct(p, "&") || is_punct(p, "*") ||
              p.kind == TokenKind::kIdentifier) {
            // Trailing return type tokens; keep scanning (bounded by the
            // next ')' or an unambiguous stop token).
            if (p.kind == TokenKind::kIdentifier && j > 0 &&
                is_punct(t[j - 1], ")")) {
              continue;
            }
            if (p.kind == TokenKind::kIdentifier &&
                (j == 0 || t[j - 1].kind == TokenKind::kIdentifier ||
                 is_punct(t[j - 1], "{") || is_punct(t[j - 1], ";") ||
                 is_punct(t[j - 1], "}"))) {
              break;  // namespace/class head or aggregate init
            }
            continue;
          }
          if (is_punct(p, ")")) {
            scope.is_function = close_kind[j] == ParenKind::kOther;
          }
          break;
        }
        scopes.push_back(scope);
        continue;
      }
      if (is_punct(t[i], "}")) {
        if (!scopes.empty()) {
          const Scope done = scopes.back();
          scopes.pop_back();
          if (done.is_function && done.probes > 0 &&
              done.resolutions == 0) {
            add_finding(out, f, done.first_probe_line,
                        "evaluate_move() probe is neither committed nor "
                        "reverted in this function: the pending candidate "
                        "leaks into the next probe's undo log",
                        "pair every probe with revert() or commit() on all "
                        "paths");
          }
        }
        continue;
      }
      if (t[i].kind != TokenKind::kIdentifier || i + 1 >= t.size() ||
          !is_punct(t[i + 1], "(")) {
        continue;
      }
      Scope* fn = function_scope();
      if (fn == nullptr) continue;
      if (t[i].text == "evaluate_move") {
        if (fn->probes == 0) fn->first_probe_line = t[i].line;
        ++fn->probes;
      } else if (t[i].text == "revert" || t[i].text == "commit" ||
                 t[i].text == "rescore") {
        ++fn->resolutions;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A1 bare-assert: `assert(` compiles out under NDEBUG, so release builds
// silently skip the invariant; the project contract (common/error.hpp) is
// FASTSCHED_ASSERT, active in every build type.
void check_bare_assert(const SrcCheckInput& input,
                       std::vector<Diagnostic>& out) {
  for (const CheckedFile& f : *input.files) {
    const Tokens& t = f.source.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor) continue;
      if (is_ident(t[i], "assert") && is_free_call(t, i)) {
        add_finding(out, f, t[i].line,
                    "bare assert() is compiled out under NDEBUG: release "
                    "builds skip the invariant",
                    "use FASTSCHED_ASSERT / FASTSCHED_ASSERT_MSG "
                    "(common/error.hpp)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A2 raw-runtime-error: `throw std::runtime_error` bypasses the typed
// error contract — callers catch `fastsched::Error` for user-facing
// failures, so raw runtime_errors skip every recovery path.
void check_raw_runtime_error(const SrcCheckInput& input,
                             std::vector<Diagnostic>& out) {
  for (const CheckedFile& f : *input.files) {
    const Tokens& t = f.source.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor) continue;
      if (match_seq(t, i, {"throw", "std", "::", "runtime_error"})) {
        add_finding(out, f, t[i].line,
                    "raw 'throw std::runtime_error': callers catch "
                    "fastsched::Error, so this escapes every recovery path",
                    "throw fastsched::Error (or use FASTSCHED_REQUIRE, "
                    "common/error.hpp)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// S1 suppression-needs-reason: a NOLINT-fastsched without a reason is an
// unreviewable waiver; the reason is the review record.
void check_suppression_reason(const SrcCheckInput& input,
                              std::vector<Diagnostic>& out) {
  for (const CheckedFile& f : *input.files) {
    for (const Suppression& s : f.annotations.suppressions) {
      if (!s.reason.empty()) continue;
      add_finding(out, f, s.line,
                  "NOLINT-fastsched suppression without a reason: waivers "
                  "must record why the finding does not apply",
                  "append ': <why the invariant holds here>'");
    }
  }
}

// ---------------------------------------------------------------------------
// The T rule family: deterministic parallelism at thread-pool fan-out
// sites, backed by the semantic model (semantic.hpp). Every rule is a
// no-op when `input.model` is absent.

/// Member calls that mutate their receiver (the vocabulary T1 checks on
/// reference-captured names).
bool is_mutating_member(const Token& t) {
  static const std::unordered_set<std::string> kMutators = {
      "push_back", "emplace_back", "emplace",   "insert",    "erase",
      "clear",     "resize",       "reserve",   "assign",    "append",
      "pop_back",  "push",         "pop",       "store",     "fetch_add",
      "fetch_sub", "fetch_or",     "fetch_and", "fetch_xor", "exchange"};
  return t.kind == TokenKind::kIdentifier && kMutators.count(t.text) > 0;
}

/// Is token `j` (an identifier) the target of a write? Matches plain and
/// compound assignment (`=`, fused `+=` ... plus the two/three-token
/// spellings `|=`, `<<=` the lexer leaves unfused), increment/decrement,
/// direct member assignment, and mutating member calls. `W[...]` is
/// never a write to W itself: the slot-per-task pattern
/// (`results[i] = ...`) is exactly the sanctioned pool idiom.
bool is_write_to(const Tokens& t, std::size_t j, std::size_t end) {
  const auto tok = [&](std::size_t k) -> const Token* {
    return k < end ? &t[k] : nullptr;
  };
  const Token* a = tok(j + 1);
  if (a == nullptr) return false;
  if (is_punct(*a, "[")) return false;  // per-slot write, sanctioned
  const Token* b = tok(j + 2);
  // `W = x` (but not `W == x`: `==` lexes as two `=` tokens).
  if (is_punct(*a, "=") && (b == nullptr || !is_punct(*b, "="))) return true;
  if (is_punct(*a, "+=") || is_punct(*a, "-=") || is_punct(*a, "*=") ||
      is_punct(*a, "/=")) {
    return true;
  }
  if (b != nullptr && is_punct(*b, "=") &&
      (is_punct(*a, "|") || is_punct(*a, "&") || is_punct(*a, "^") ||
       is_punct(*a, "%"))) {
    return true;
  }
  const Token* c = tok(j + 3);
  if (c != nullptr && is_punct(*c, "=") &&
      ((is_punct(*a, "<") && is_punct(*b, "<")) ||
       (is_punct(*a, ">") && is_punct(*b, ">")))) {
    return true;
  }
  // `W++` / `++W` (the lexer emits two '+' tokens).
  if (b != nullptr && ((is_punct(*a, "+") && is_punct(*b, "+")) ||
                       (is_punct(*a, "-") && is_punct(*b, "-")))) {
    return true;
  }
  if (j >= 2 && ((is_punct(t[j - 1], "+") && is_punct(t[j - 2], "+")) ||
                 (is_punct(t[j - 1], "-") && is_punct(t[j - 2], "-")))) {
    return true;
  }
  // `W.member = x` / `W->m(...)` with a mutating member.
  if ((is_punct(*a, ".") || is_punct(*a, "->")) && b != nullptr &&
      b->kind == TokenKind::kIdentifier) {
    if (c != nullptr && is_punct(*c, "=") &&
        (tok(j + 4) == nullptr || !is_punct(*tok(j + 4), "="))) {
      return true;
    }
    if (is_mutating_member(*b) && c != nullptr && is_punct(*c, "(")) {
      return true;
    }
  }
  return false;
}

/// Names declared inside the token range (begin, end): an identifier
/// preceded (through `&`/`*`/`const`) by a type-looking token
/// (identifier or `>`), followed by an initializer or declarator end.
/// Over-collecting here only makes T1 quieter, never noisier.
std::unordered_set<std::string> local_decls(const Tokens& t, std::size_t begin,
                                            std::size_t end) {
  static const std::unordered_set<std::string> kStop = {
      "return", "new",   "delete", "throw", "goto", "case", "using",
      "else",   "do",    "if",     "while", "for",  "switch", "sizeof",
      "co_return", "co_yield", "co_await"};
  std::unordered_set<std::string> out;
  for (std::size_t j = begin + 1; j + 1 < end; ++j) {
    if (t[j].kind != TokenKind::kIdentifier || t[j].preprocessor) continue;
    const Token& next = t[j + 1];
    if (!(is_punct(next, "=") || is_punct(next, ";") || is_punct(next, "{") ||
          is_punct(next, "(") || is_punct(next, ":") || is_punct(next, ","))) {
      continue;
    }
    std::size_t k = j;
    while (k > begin + 1 &&
           (is_punct(t[k - 1], "&") || is_punct(t[k - 1], "*") ||
            is_ident(t[k - 1], "const"))) {
      --k;
    }
    if (k == begin + 1) continue;
    const Token& prev = t[k - 1];
    const bool type_like =
        (prev.kind == TokenKind::kIdentifier && kStop.count(prev.text) == 0) ||
        is_punct(prev, ">");
    if (type_like) out.insert(t[j].text);
  }
  return out;
}

// T1 par-ref-mutation: a lambda submitted to the deterministic pool
// writes to a name it captured by reference. Tasks run concurrently, so
// a write to shared state is a data race (or, behind a lock, an
// order-dependent merge) — either way the pool's byte-identity contract
// is gone. The sanctioned pattern writes to a per-task slot
// (`results[i] = ...`), which subscripting exempts.
void check_par_ref_mutation(const SrcCheckInput& input,
                            std::vector<Diagnostic>& out) {
  if (input.model == nullptr) return;
  for (std::size_t fi = 0; fi < input.files->size(); ++fi) {
    const CheckedFile& f = (*input.files)[fi];
    const Tokens& t = f.source.tokens;
    for (const SemanticModel::TaskLambda& tl : input.model->task_lambdas[fi]) {
      const LambdaDef& lam = f.semantics.lambdas[tl.lambda];
      std::unordered_set<std::string> locals;
      if (lam.ref_default) {
        locals = local_decls(t, lam.body_begin, lam.body_end - 1);
      }
      const auto shared_by_ref = [&](const std::string& name) {
        if (std::find(lam.ref_captures.begin(), lam.ref_captures.end(),
                      name) != lam.ref_captures.end()) {
          return true;
        }
        if (!lam.ref_default) return false;
        if (std::find(lam.value_captures.begin(), lam.value_captures.end(),
                      name) != lam.value_captures.end()) {
          return false;
        }
        if (std::find(lam.params.begin(), lam.params.end(), name) !=
            lam.params.end()) {
          return false;
        }
        return locals.count(name) == 0;
      };
      std::unordered_set<std::string> reported;
      for (std::size_t j = lam.body_begin + 1; j + 1 < lam.body_end; ++j) {
        if (t[j].kind != TokenKind::kIdentifier || t[j].preprocessor) continue;
        // `x.member = ...` writes to x, not to a capture named `member`;
        // the receiver is handled by is_write_to's member-write case.
        if (j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->") ||
                      is_punct(t[j - 1], "::"))) {
          continue;
        }
        if (reported.count(t[j].text) > 0) continue;
        if (!is_write_to(t, j, lam.body_end)) continue;
        if (!shared_by_ref(t[j].text)) continue;
        reported.insert(t[j].text);
        add_finding(
            out, f, t[j].line,
            "pool task ('" + tl.entry + "' at line " +
                std::to_string(tl.line) + ") mutates '" + t[j].text +
                "', captured by reference and shared across tasks: "
                "concurrent writes race, and even locked writes merge in "
                "scheduling order",
            "write to a per-task slot (results[i] = ...) and merge in "
            "submission order after wait()");
      }
    }
  }
}

// T2 par-unordered-merge: a function reachable from a pool task iterates
// a *parameter* that some call site binds to an unordered container —
// the cross-call-boundary case D2's same-file harvest cannot see. The
// iteration order is unspecified, and inside a task it additionally
// interleaves with task scheduling.
void check_par_unordered_merge(const SrcCheckInput& input,
                               std::vector<Diagnostic>& out) {
  if (input.model == nullptr) return;
  const SemanticModel& m = *input.model;
  for (std::size_t fi = 0; fi < input.files->size(); ++fi) {
    const CheckedFile& f = (*input.files)[fi];
    const Tokens& t = f.source.tokens;
    const FileSemantics& sem = f.semantics;
    for (std::size_t k = 0; k < sem.functions.size(); ++k) {
      const std::string& why = m.task_reason[m.fn_base[fi] + k];
      if (why.empty()) continue;
      const FunctionDef& fn = sem.functions[k];
      const std::vector<bool>& unordered = m.param_unordered[m.fn_base[fi] + k];
      std::vector<std::string> unames;
      for (std::size_t p = 0; p < fn.params.size() && p < unordered.size();
           ++p) {
        if (unordered[p] && !fn.params[p].empty()) {
          unames.push_back(fn.params[p]);
        }
      }
      if (unames.empty()) continue;
      for (std::size_t j = fn.body_begin; j + 1 < fn.body_end; ++j) {
        if (!is_ident(t[j], "for") || !is_punct(t[j + 1], "(")) continue;
        std::size_t depth = 1;
        std::size_t colon = 0;
        std::size_t e = j + 2;
        while (e < fn.body_end && depth > 0) {
          if (is_punct(t[e], "(")) ++depth;
          if (is_punct(t[e], ")")) --depth;
          if (depth == 1 && colon == 0 && is_punct(t[e], ":")) colon = e;
          ++e;
        }
        if (colon == 0) continue;
        for (std::size_t r = colon + 1; r < e; ++r) {
          if (t[r].kind == TokenKind::kIdentifier &&
              std::find(unames.begin(), unames.end(), t[r].text) !=
                  unames.end()) {
            add_finding(
                out, f, t[j].line,
                "iteration over parameter '" + t[r].text + "' of '" +
                    fn.name + "', which a call site binds to an unordered "
                    "container: visit order is unspecified, and this "
                    "function runs inside a pool task (" + why + ")",
                "sort the keys first or take an ordered container; suppress "
                "only if the fold is provably order-independent");
            break;
          }
        }
      }
    }
  }
}

// T3 par-hot-lock: lock acquisition or an atomic read-modify-write
// inside hot code (an explicit `// fastsched: hot` region or an
// inferred-hot function). A contended lock serializes the probe loop the
// complexity argument counts on, and an atomic RMW in a pool task is a
// scheduling-order-dependent merge in disguise.
void check_par_hot_lock(const SrcCheckInput& input,
                        std::vector<Diagnostic>& out) {
  static const std::unordered_set<std::string> kGuards = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  static const std::unordered_set<std::string> kAtomicRmw = {
      "fetch_add", "fetch_sub", "fetch_or",
      "fetch_and", "fetch_xor", "exchange",
      "compare_exchange_weak", "compare_exchange_strong"};
  for (std::size_t fi = 0; fi < input.files->size(); ++fi) {
    const CheckedFile& f = (*input.files)[fi];
    const std::vector<InferredFn> hot =
        input.model == nullptr
            ? std::vector<InferredFn>{}
            : inferred_fns(input, fi, input.model->hot_reason);
    if (f.annotations.hot_regions.empty() && hot.empty()) continue;
    const Tokens& t = f.source.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].preprocessor || t[i].kind != TokenKind::kIdentifier) continue;
      const bool in_region = f.annotations.in_hot_region(t[i].line);
      std::string where = "inside a hot region";
      if (!in_region) {
        const InferredFn* fn = innermost_body(hot, i);
        if (fn == nullptr) continue;
        where = "in '" + fn->def->name + "' (inferred hot: " + *fn->why + ")";
      }
      if (kGuards.count(t[i].text) > 0) {
        add_finding(out, f, t[i].line,
                    "lock acquisition (" + t[i].text + ") " + where +
                        ": a contended lock serializes the hot loop",
                    "hoist synchronization out of the hot path; hot code "
                    "should touch only task-local state");
        continue;
      }
      const bool member =
          i >= 2 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
      if (member && i + 1 < t.size() && is_punct(t[i + 1], "(") &&
          (t[i].text == "lock" || t[i].text == "unlock" ||
           kAtomicRmw.count(t[i].text) > 0)) {
        const bool is_lock = t[i].text == "lock" || t[i].text == "unlock";
        add_finding(out, f, t[i].line,
                    (is_lock ? "mutex " + t[i].text + "() "
                             : "atomic RMW " + t[i].text + "() ") +
                        where +
                        (is_lock ? ": a contended lock serializes the hot loop"
                                 : ": the result depends on scheduling order"),
                    "hoist synchronization out of the hot path; hot code "
                    "should touch only task-local state");
      }
    }
  }
}

// T4 par-unsplit-rng: an `Rng` constructed inside pool-task-reachable
// code without deriving it via `Rng::split`. Two tasks seeding from the
// same value correlate; seeding from anything index-independent makes
// the stream depend on which task ran — `split(task_index)` is the one
// construction that is both deterministic and per-task independent.
void check_par_unsplit_rng(const SrcCheckInput& input,
                           std::vector<Diagnostic>& out) {
  if (input.model == nullptr) return;
  const SemanticModel& m = *input.model;
  for (std::size_t fi = 0; fi < input.files->size(); ++fi) {
    const CheckedFile& f = (*input.files)[fi];
    const Tokens& t = f.source.tokens;
    const FileSemantics& sem = f.semantics;
    // Token ranges running under the pool: submitted lambda bodies plus
    // the bodies of task-reachable functions.
    struct TaskRange {
      std::size_t begin = 0;
      std::size_t end = 0;
      std::string why;
    };
    std::vector<TaskRange> ranges;
    for (const SemanticModel::TaskLambda& tl : m.task_lambdas[fi]) {
      const LambdaDef& lam = sem.lambdas[tl.lambda];
      ranges.push_back({lam.body_begin, lam.body_end,
                        "submitted via '" + tl.entry + "' at line " +
                            std::to_string(tl.line)});
    }
    for (std::size_t k = 0; k < sem.functions.size(); ++k) {
      const std::string& why = m.task_reason[m.fn_base[fi] + k];
      if (!why.empty()) {
        ranges.push_back(
            {sem.functions[k].body_begin, sem.functions[k].body_end, why});
      }
    }
    std::unordered_set<std::string> reported;  // "line:name" dedup
    for (const TaskRange& range : ranges) {
      for (std::size_t j = range.begin; j + 2 < range.end; ++j) {
        if (!is_ident(t[j], "Rng") || t[j].preprocessor) continue;
        if (t[j + 1].kind != TokenKind::kIdentifier) continue;
        const Token& open = t[j + 2];
        if (!(is_punct(open, "(") || is_punct(open, "{") ||
              is_punct(open, "="))) {
          continue;
        }
        // Scan the initializer (to the statement's ';') for a split().
        bool split = false;
        for (std::size_t e = j + 2; e < range.end && e < j + 64; ++e) {
          if (is_punct(t[e], ";")) break;
          if (is_ident(t[e], "split")) {
            split = true;
            break;
          }
        }
        if (split) continue;
        const std::string key =
            std::to_string(t[j].line) + ":" + t[j + 1].text;
        if (!reported.insert(key).second) continue;
        add_finding(out, f, t[j].line,
                    "Rng '" + t[j + 1].text +
                        "' constructed in pool-task code (" + range.why +
                        ") without Rng::split: identical seeds correlate "
                        "streams across tasks, and any other seed breaks "
                        "worker-count independence",
                    "derive per-task randomness with rng.split(task_index)");
      }
    }
  }
}

SrcRuleRegistry build_registry() {
  SrcRuleRegistry registry;
  registry.add({"det-random-source", Severity::kError, false,
                "nondeterminism source (wall clock, entropy, thread id) in "
                "checked code",
                check_random_source});
  registry.add({"det-unordered-iter", Severity::kError, false,
                "iteration over an unordered container (order is "
                "unspecified)",
                check_unordered_iter});
  registry.add({"det-float-merge", Severity::kWarning, false,
                "unannotated floating-point loop reduction in a thread-pool "
                "consumer",
                check_float_merge});
  registry.add({"hot-alloc", Severity::kError, false,
                "allocation inside a '// fastsched: hot' region",
                check_hot_alloc});
  registry.add({"hot-region-balance", Severity::kError, false,
                "unbalanced '// fastsched: hot' region markers",
                check_hot_balance});
  registry.add({"hot-nested-container", Severity::kError, false,
                "nested dynamic-container data member in the include "
                "closure of hot code",
                check_hot_nested_container});
  registry.add({"probe-pairing", Severity::kWarning, false,
                "evaluate_move() probe neither committed nor reverted in "
                "the same function",
                check_probe_pairing});
  registry.add({"bare-assert", Severity::kError, false,
                "bare assert() instead of FASTSCHED_ASSERT",
                check_bare_assert});
  registry.add({"raw-runtime-error", Severity::kWarning, false,
                "raw 'throw std::runtime_error' instead of the typed error "
                "contract",
                check_raw_runtime_error});
  registry.add({"suppression-needs-reason", Severity::kError, false,
                "NOLINT-fastsched suppression lacking a reason",
                check_suppression_reason});
  registry.add({"par-ref-mutation", Severity::kError, false,
                "pool task mutates state captured by reference and shared "
                "across tasks",
                check_par_ref_mutation});
  registry.add({"par-unordered-merge", Severity::kError, false,
                "task-reachable code iterates a parameter bound to an "
                "unordered container",
                check_par_unordered_merge});
  registry.add({"par-hot-lock", Severity::kWarning, false,
                "lock or atomic RMW inside hot code",
                check_par_hot_lock});
  registry.add({"par-unsplit-rng", Severity::kError, false,
                "Rng constructed in pool-task code without Rng::split",
                check_par_unsplit_rng});
  return registry;
}

}  // namespace

const SrcRuleRegistry& SrcRuleRegistry::builtin() {
  static const SrcRuleRegistry registry = build_registry();
  return registry;
}

}  // namespace fastsched::analysis::srccheck
