#include "analysis/srccheck/srccheck.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "analysis/report_io.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace fastsched::analysis::srccheck {

namespace fs = std::filesystem;

namespace {

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  return std::string(text.substr(b, e - b));
}

constexpr std::string_view kNolintMarker = "NOLINT-fastsched";
constexpr std::string_view kHotMarker = "fastsched: hot";
constexpr std::string_view kEndHotMarker = "fastsched: end-hot";
constexpr std::string_view kDetOkMarker = "det-ok: fixed-order";

/// An annotation must be the *start* of its comment (trailing explanation
/// allowed after a non-identifier boundary); prose that merely mentions
/// the syntax mid-sentence — this very analyzer's documentation, say —
/// must not register.
bool marker_at_start(std::string_view text, std::string_view marker) {
  if (text.rfind(marker, 0) != 0) return false;
  return text.size() == marker.size() ||
         std::isalnum(static_cast<unsigned char>(text[marker.size()])) == 0;
}

/// Parses "NOLINT-fastsched(rule-a, rule-b): reason" out of one comment.
/// Malformed variants (no parens) yield a rule-less suppression with an
/// empty reason, which `suppression-needs-reason` then reports.
Suppression parse_suppression(const Comment& comment, std::size_t at) {
  Suppression s;
  s.line = comment.line;
  s.next_line = comment.own_line;
  std::string_view rest = std::string_view(comment.text).substr(
      at + kNolintMarker.size());
  if (!rest.empty() && rest.front() == '(') {
    const std::size_t close = rest.find(')');
    if (close != std::string_view::npos) {
      std::string_view list = rest.substr(1, close - 1);
      std::size_t begin = 0;
      while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::size_t end =
            comma == std::string_view::npos ? list.size() : comma;
        const std::string rule = trim(list.substr(begin, end - begin));
        if (!rule.empty()) s.rules.push_back(rule);
        if (comma == std::string_view::npos) break;
        begin = comma + 1;
      }
      rest = rest.substr(close + 1);
    }
  }
  const std::size_t colon = rest.find(':');
  if (colon != std::string_view::npos) {
    s.reason = trim(rest.substr(colon + 1));
  }
  return s;
}

bool is_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

/// Directories never descended into: build trees in any configuration,
/// hidden directories (.git, .cache), and editor droppings — mirroring
/// .gitignore, so a source-tree self-run over "." cannot pick up
/// generated or vendored code.
bool is_excluded_dir(const fs::path& name) {
  const std::string n = name.string();
  if (n.empty() || n.front() == '.') return true;
  if (n.rfind("build", 0) == 0) return true;
  if (n.rfind("cmake-build", 0) == 0) return true;
  return false;
}

}  // namespace

bool FileAnnotations::in_hot_region(std::uint32_t line) const {
  for (const HotRegion& r : hot_regions) {
    if (line >= r.begin && line <= r.end) return true;
  }
  return false;
}

bool FileAnnotations::det_ok(std::uint32_t line) const {
  for (const std::uint32_t l : det_ok_lines) {
    if (l == line || l + 1 == line) return true;
  }
  return false;
}

const Suppression* FileAnnotations::suppressing(std::string_view rule,
                                                std::uint32_t line) const {
  for (const Suppression& s : suppressions) {
    const std::uint32_t target = s.next_line ? s.line + 1 : s.line;
    if (target != line && s.line != line) continue;
    if (s.rules.empty()) return &s;
    for (const std::string& r : s.rules) {
      if (r == rule) return &s;
    }
  }
  return nullptr;
}

FileAnnotations parse_annotations(const SourceFile& file) {
  FileAnnotations a;
  std::uint32_t open_hot = 0;
  bool in_hot = false;
  for (const Comment& comment : file.comments) {
    if (marker_at_start(comment.text, kNolintMarker)) {
      a.suppressions.push_back(parse_suppression(comment, 0));
      continue;
    }
    if (marker_at_start(comment.text, kEndHotMarker)) {
      if (in_hot) {
        a.hot_regions.push_back(HotRegion{open_hot, comment.line});
        in_hot = false;
      } else if (a.unbalanced_hot_line == 0) {
        a.unbalanced_hot_line = comment.line;  // end without begin
      }
      continue;
    }
    if (marker_at_start(comment.text, kHotMarker)) {
      if (in_hot && a.unbalanced_hot_line == 0) {
        a.unbalanced_hot_line = open_hot;  // begin without end
      }
      open_hot = comment.line;
      in_hot = true;
      continue;
    }
    if (marker_at_start(comment.text, kDetOkMarker)) {
      a.det_ok_lines.push_back(comment.line);
    }
  }
  if (in_hot) {
    if (a.unbalanced_hot_line == 0) a.unbalanced_hot_line = open_hot;
    a.hot_regions.push_back(HotRegion{
        open_hot, static_cast<std::uint32_t>(file.lines.size())});
  }
  return a;
}

CheckedFile check_file_from_text(std::string path, std::string_view content) {
  CheckedFile f;
  f.source = lex_source(std::move(path), content);
  f.annotations = parse_annotations(f.source);
  f.semantics = parse_semantics(f.source);
  return f;
}

SrcCheckReport src_check(const std::vector<CheckedFile>& files,
                         const SrcRuleRegistry& registry, std::size_t jobs) {
  // The model is a cross-file fixpoint — built once, serially, then
  // shared read-only by every rule.
  const SemanticModel model = build_semantic_model(files);
  SrcCheckInput input{&files, &model};
  SrcCheckReport report;
  report.num_files = files.size();

  // Same stamping protocol as run_rules (rule_registry.hpp), with one
  // extra stage: findings covered by a NOLINT-fastsched annotation are
  // dropped before counting, so suppressed findings never gate. Each
  // rule fills its own slot; concatenating the slots in registration
  // order reproduces the serial evaluation byte for byte.
  const auto& rules = registry.rules();
  std::vector<std::vector<Diagnostic>> per_rule(rules.size());
  parallel_for_index(jobs, rules.size(), [&](std::size_t r) {
    const SrcRule& rule = rules[r];
    rule.check(input, per_rule[r]);
    for (Diagnostic& d : per_rule[r]) {
      d.rule_id = rule.id;
      d.severity = rule.severity;
    }
  });
  std::vector<Diagnostic> raw;
  for (std::vector<Diagnostic>& chunk : per_rule) {
    for (Diagnostic& d : chunk) raw.push_back(std::move(d));
  }

  for (Diagnostic& d : raw) {
    const CheckedFile* owner = nullptr;
    for (const CheckedFile& f : files) {
      if (f.source.path == d.file) {
        owner = &f;
        break;
      }
    }
    if (owner != nullptr &&
        owner->annotations.suppressing(d.rule_id, d.line) != nullptr) {
      ++report.num_suppressed;
      continue;
    }
    if (d.severity == Severity::kError) {
      ++report.num_errors;
    } else {
      ++report.num_warnings;
    }
    report.diagnostics.push_back(std::move(d));
  }

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule_id != b.rule_id) return a.rule_id < b.rule_id;
              return a.message < b.message;
            });
  return report;
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths) {
  const fs::path base = root.empty() ? fs::path(".") : fs::path(root);
  std::vector<std::string> out;

  const auto add_file = [&](const fs::path& p) {
    // Report root-relative, '/'-separated paths: stable across machines,
    // so baselines and golden files are location-independent.
    std::error_code ec;
    fs::path rel = fs::relative(p, base, ec);
    if (ec || rel.empty()) rel = p;
    std::string text = rel.generic_string();
    if (text.rfind("./", 0) == 0) text = text.substr(2);
    out.push_back(std::move(text));
  };

  for (const std::string& path : paths) {
    const fs::path p = base / path;
    if (fs::is_regular_file(p)) {
      add_file(p);
      continue;
    }
    FASTSCHED_REQUIRE(fs::is_directory(p),
                      "fastsched_check: no such file or directory: " +
                          p.generic_string());
    fs::recursive_directory_iterator it(p), end;
    while (it != end) {
      if (it->is_directory() && is_excluded_dir(it->path().filename())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && is_source_ext(it->path())) {
        add_file(it->path());
      }
      ++it;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<CheckedFile> load_sources(const std::string& root,
                                      const std::vector<std::string>& paths,
                                      std::size_t jobs) {
  const fs::path base = root.empty() ? fs::path(".") : fs::path(root);
  const std::vector<std::string> rels = collect_sources(root, paths);
  std::vector<CheckedFile> files(rels.size());
  // Slot-per-file over the sorted path list: the result (and any error,
  // by the pool's earliest-index contract) is worker-count independent.
  parallel_for_index(jobs, rels.size(), [&](std::size_t i) {
    std::ifstream in(base / rels[i], std::ios::binary);
    FASTSCHED_REQUIRE(in.good(), "fastsched_check: cannot open " + rels[i]);
    std::ostringstream content;
    content << in.rdbuf();
    files[i] = check_file_from_text(rels[i], content.str());
  });
  return files;
}

void write_json(std::ostream& os, const SrcCheckReport& report) {
  os << "{\n  \"tool\": \"fastsched_check\",\n  \"files\": "
     << report.num_files << ",\n  \"errors\": " << report.num_errors
     << ",\n  \"warnings\": " << report.num_warnings
     << ",\n  \"suppressed\": " << report.num_suppressed
     << ",\n  \"baselined\": " << report.num_baselined
     << ",\n  \"stale_baseline\": " << report.num_stale_baseline
     << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ")
       << to_json(report.diagnostics[i]);
  }
  os << (report.diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace fastsched::analysis::srccheck
