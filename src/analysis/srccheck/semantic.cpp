#include "analysis/srccheck/semantic.hpp"

#include <algorithm>
#include <map>
#include <string_view>

#include "analysis/srccheck/srccheck.hpp"

namespace fastsched::analysis::srccheck {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool ident_in(const Token& t, std::initializer_list<std::string_view> set) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const std::string_view s : set) {
    if (t.text == s) return true;
  }
  return false;
}

/// Identifiers that look like calls or definitions (`name(`) but are
/// neither: control flow, operators-with-parens, builtin type
/// conversions. Keeps the call graph free of `if(...)` "callees".
bool is_non_call_name(const Token& t) {
  return ident_in(
      t, {"if",       "for",      "while",    "switch",   "catch",
          "return",   "sizeof",   "alignof",  "alignas",  "decltype",
          "noexcept", "constexpr", "requires", "typeid",  "new",
          "delete",   "throw",    "case",     "defined",  "static_assert",
          "operator", "void",     "int",      "double",   "float",
          "char",     "bool",     "long",     "short",    "unsigned",
          "signed",   "auto"});
}

bool is_unordered_type(const Token& t) {
  return ident_in(t, {"unordered_map", "unordered_set", "unordered_multimap",
                      "unordered_multiset"});
}

/// Balanced-bracket match table over the non-preprocessor tokens:
/// `match[i]` is the partner index of an open/close `(`/`[`/`{` token, or
/// kNoMatch. Preprocessor tokens never participate (directive bodies can
/// legally be unbalanced). Returns false when anything fails to match.
bool match_brackets(const Tokens& t, std::vector<std::size_t>& match) {
  match.assign(t.size(), kNoMatch);
  std::vector<std::size_t> stack;
  bool balanced = true;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].preprocessor || t[i].kind != TokenKind::kPunct) continue;
    const char c = t[i].text.size() == 1 ? t[i].text[0] : '\0';
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back(i);
    } else if (c == ')' || c == ']' || c == '}') {
      const char want = c == ')' ? '(' : c == ']' ? '[' : '{';
      if (stack.empty() || t[stack.back()].text[0] != want) {
        balanced = false;
        continue;
      }
      match[i] = stack.back();
      match[stack.back()] = i;
      stack.pop_back();
    }
  }
  if (!stack.empty()) balanced = false;
  return balanced;
}

/// Splits the token range (begin, end) at top-level commas, jumping over
/// balanced groups. Angle brackets are tracked heuristically: `<` opens
/// only after an identifier or `>` (a template argument list), so
/// comparisons mostly stay neutral. Returns [first, last) index pairs.
std::vector<std::pair<std::size_t, std::size_t>> split_commas(
    const Tokens& t, const std::vector<std::size_t>& match, std::size_t begin,
    std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> pieces;
  if (begin >= end) return pieces;
  std::size_t piece = begin;
  std::size_t angle = 0;
  for (std::size_t j = begin; j < end; ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokenKind::kPunct && tok.text.size() == 1) {
      const char c = tok.text[0];
      if (c == '(' || c == '[' || c == '{') {
        if (match[j] == kNoMatch || match[j] >= end) break;
        j = match[j];
        continue;
      }
      if (c == '<' && j > begin &&
          (t[j - 1].kind == TokenKind::kIdentifier || is_punct(t[j - 1], ">"))) {
        ++angle;
        continue;
      }
      if (c == '>' && angle > 0) {
        --angle;
        continue;
      }
      if (c == ',' && angle == 0) {
        pieces.emplace_back(piece, j);
        piece = j + 1;
      }
    }
  }
  pieces.emplace_back(piece, end);
  return pieces;
}

/// True when the range holds a literal `...` (three '.' tokens in a row).
bool has_ellipsis(const Tokens& t, std::size_t begin, std::size_t end) {
  for (std::size_t j = begin; j + 2 < end; ++j) {
    if (is_punct(t[j], ".") && is_punct(t[j + 1], ".") &&
        is_punct(t[j + 2], ".")) {
      return true;
    }
  }
  return false;
}

/// Declared name of one parameter piece: the last identifier before a
/// top-level `=`, provided the piece holds at least two identifiers (a
/// lone identifier is an unnamed parameter's type). "" when unnamed.
std::string param_name(const Tokens& t, const std::vector<std::size_t>& match,
                       std::size_t begin, std::size_t end) {
  std::size_t count = 0;
  std::size_t last = kNoMatch;
  std::size_t angle = 0;
  for (std::size_t j = begin; j < end; ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokenKind::kPunct && tok.text.size() == 1) {
      const char c = tok.text[0];
      if (c == '(' || c == '[' || c == '{') {
        if (match[j] == kNoMatch || match[j] >= end) break;
        j = match[j];
        continue;
      }
      if (c == '<' && j > begin &&
          (t[j - 1].kind == TokenKind::kIdentifier || is_punct(t[j - 1], ">"))) {
        ++angle;
        continue;
      }
      if (c == '>' && angle > 0) {
        --angle;
        continue;
      }
      if (c == '=' && angle == 0) break;
    }
    if (angle == 0 && tok.kind == TokenKind::kIdentifier) {
      ++count;
      last = j;
    }
  }
  if (count < 2 || last == kNoMatch) return "";
  return t[last].text;
}

/// Parses the parameter list in (open, close) into `def`.
void parse_params(const Tokens& t, const std::vector<std::size_t>& match,
                  std::size_t open, std::size_t close, FunctionDef& def) {
  const auto pieces = split_commas(t, match, open + 1, close);
  if (pieces.size() == 1 && pieces[0].first >= pieces[0].second) {
    def.min_arity = def.max_arity = 0;
    return;
  }
  // `(void)` declares zero parameters.
  if (pieces.size() == 1 && pieces[0].second == pieces[0].first + 1 &&
      is_ident(t[pieces[0].first], "void")) {
    def.min_arity = def.max_arity = 0;
    return;
  }
  bool variadic = false;
  std::uint32_t min_arity = 0;
  bool saw_default = false;
  for (const auto& [pb, pe] : pieces) {
    if (has_ellipsis(t, pb, pe)) variadic = true;
    bool has_default = false;
    std::size_t angle = 0;
    for (std::size_t j = pb; j < pe; ++j) {
      if (t[j].kind != TokenKind::kPunct || t[j].text.size() != 1) continue;
      const char c = t[j].text[0];
      if (c == '(' || c == '[' || c == '{') {
        if (match[j] == kNoMatch || match[j] >= pe) break;
        j = match[j];
        continue;
      }
      if (c == '<' && j > pb &&
          (t[j - 1].kind == TokenKind::kIdentifier || is_punct(t[j - 1], ">"))) {
        ++angle;
      } else if (c == '>' && angle > 0) {
        --angle;
      } else if (c == '=' && angle == 0) {
        has_default = true;
        break;
      }
    }
    if (has_default) saw_default = true;
    if (!saw_default) ++min_arity;
    def.params.push_back(param_name(t, match, pb, pe));
    bool unordered = false;
    for (std::size_t j = pb; j < pe; ++j) {
      if (is_unordered_type(t[j])) {
        unordered = true;
        break;
      }
    }
    def.param_unordered.push_back(unordered);
  }
  def.min_arity = min_arity;
  def.max_arity = variadic ? kVariadicArity
                           : static_cast<std::uint32_t>(def.params.size());
}

/// Starting just past a candidate parameter list's ')', finds the token
/// index of the definition's body '{', or kNoMatch when the tokens do
/// not form a definition. Handles cv/ref/noexcept qualifiers, trailing
/// return types, and constructor member-initializer lists; anything else
/// (most importantly `;` — a declaration) rejects.
std::size_t find_body(const Tokens& t, const std::vector<std::size_t>& match,
                      std::size_t after_close, std::uint32_t& unsupported) {
  const std::size_t n = t.size();
  bool saw_arrow = false;
  std::size_t j = after_close;
  for (int steps = 0; j < n && steps < 128; ++steps) {
    const Token& tok = t[j];
    if (tok.preprocessor) return kNoMatch;
    if (is_punct(tok, "{")) return j;
    if (is_punct(tok, ":")) {
      // Constructor member-initializer list: `name(args)` or
      // `name{args}` entries separated by commas, then the body.
      std::size_t j2 = j + 1;
      for (int entries = 0; j2 < n && entries < 64; ++entries) {
        bool any = false;
        while (j2 < n && (t[j2].kind == TokenKind::kIdentifier ||
                          is_punct(t[j2], "::") || is_punct(t[j2], "<") ||
                          is_punct(t[j2], ">"))) {
          ++j2;
          any = true;
        }
        if (!any || j2 >= n ||
            !(is_punct(t[j2], "(") || is_punct(t[j2], "{")) ||
            match[j2] == kNoMatch) {
          ++unsupported;  // looked like an init list; refuse to guess
          return kNoMatch;
        }
        j2 = match[j2] + 1;
        if (j2 < n && is_punct(t[j2], ",")) {
          ++j2;
          continue;
        }
        if (j2 < n && is_punct(t[j2], "{")) return j2;
        return kNoMatch;
      }
      return kNoMatch;
    }
    if (is_punct(tok, "->")) {
      saw_arrow = true;
      ++j;
      continue;
    }
    if (tok.kind == TokenKind::kIdentifier) {
      if (ident_in(tok, {"const", "noexcept", "override", "final", "mutable",
                         "try", "requires"}) ||
          saw_arrow) {
        ++j;
        continue;
      }
      return kNoMatch;
    }
    if (is_punct(tok, "(")) {
      // noexcept(...) / requires(...) clause, or parens in a trailing
      // return type.
      const bool clause =
          j > 0 && ident_in(t[j - 1], {"noexcept", "requires"});
      if ((clause || saw_arrow) && match[j] != kNoMatch) {
        j = match[j] + 1;
        continue;
      }
      return kNoMatch;
    }
    if (saw_arrow &&
        (is_punct(tok, "::") || is_punct(tok, "<") || is_punct(tok, ">") ||
         is_punct(tok, "&") || is_punct(tok, "*") || is_punct(tok, ","))) {
      ++j;
      continue;
    }
    if (is_punct(tok, "&")) {  // ref-qualified member function
      ++j;
      continue;
    }
    return kNoMatch;
  }
  return kNoMatch;
}

/// Quoted #include targets, read from the raw lines because string
/// literal contents are stripped from the token stream.
std::vector<std::string> parse_includes(const SourceFile& file) {
  std::vector<std::string> out;
  for (const std::string& raw : file.lines) {
    std::string_view line = raw;
    std::size_t b = 0;
    while (b < line.size() &&
           (line[b] == ' ' || line[b] == '\t')) {
      ++b;
    }
    line = line.substr(b);
    if (line.empty() || line[0] != '#') continue;
    line = line.substr(1);
    b = 0;
    while (b < line.size() && (line[b] == ' ' || line[b] == '\t')) ++b;
    line = line.substr(b);
    if (line.rfind("include", 0) != 0) continue;
    const std::size_t open = line.find('"');
    if (open == std::string_view::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    out.emplace_back(line.substr(open + 1, close - open - 1));
  }
  return out;
}

/// Names declared as unordered containers: `unordered_xxx< ... > name`
/// (the same harvest rule D2 uses, kept in sync so T2 can exclude
/// findings D2 already reports).
std::vector<std::string> harvest_unordered(const Tokens& t) {
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].preprocessor || !is_unordered_type(t[i])) continue;
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
    std::size_t depth = 1;
    std::size_t j = i + 2;
    while (j < t.size() && depth > 0) {
      if (is_punct(t[j], "<")) ++depth;
      if (is_punct(t[j], ">")) --depth;
      ++j;
    }
    while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*"))) ++j;
    if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
      vars.push_back(t[j].text);
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

/// Index of the innermost function whose body contains token `i`.
std::uint32_t enclosing_function(const std::vector<FunctionDef>& functions,
                                 std::size_t i) {
  std::uint32_t best = kNoFunction;
  for (std::size_t k = 0; k < functions.size(); ++k) {
    const FunctionDef& f = functions[k];
    if (f.body_begin < i && i < f.body_end &&
        (best == kNoFunction ||
         f.body_begin > functions[best].body_begin)) {
      best = static_cast<std::uint32_t>(k);
    }
  }
  return best;
}

}  // namespace

FileSemantics parse_semantics(const SourceFile& file) {
  FileSemantics sem;
  const Tokens& t = file.tokens;
  std::vector<std::size_t> match;
  sem.balanced = match_brackets(t, match);
  sem.includes = parse_includes(file);
  sem.unordered_vars = harvest_unordered(t);

  // --- function definitions: `name ( params ) [qualifiers] {` ---------
  std::vector<char> is_def_name(t.size(), 0);
  std::size_t header_end = 0;  // one past the last accepted def header
  for (std::size_t r = 0; r < t.size(); ++r) {
    if (!is_punct(t[r], ")") || t[r].preprocessor || match[r] == kNoMatch) {
      continue;
    }
    // Member-initializer entries (`: x(v), y(w)`) and trailing-return
    // tokens live between an accepted def's ')' and its body '{'; their
    // close parens must not spawn spurious definitions.
    if (r < header_end) continue;
    const std::size_t o = match[r];
    if (o == 0) continue;
    const std::size_t k = o - 1;
    if (t[k].kind != TokenKind::kIdentifier || t[k].preprocessor ||
        is_non_call_name(t[k])) {
      continue;
    }
    const std::size_t body = find_body(t, match, r + 1, sem.unsupported);
    if (body == kNoMatch || match[body] == kNoMatch) continue;
    FunctionDef def;
    def.name = t[k].text;
    def.line = t[k].line;
    std::size_t q = k;
    if (k > 0 && is_punct(t[k - 1], "~")) {
      def.name = "~" + def.name;
      q = k - 1;
    }
    if (q >= 2 && is_punct(t[q - 1], "::") &&
        t[q - 2].kind == TokenKind::kIdentifier) {
      def.qualifier = t[q - 2].text;
    }
    parse_params(t, match, o, r, def);
    def.body_begin = body;
    def.body_end = match[body] + 1;
    is_def_name[k] = 1;
    header_end = body;
    sem.functions.push_back(std::move(def));
  }
  std::sort(sem.functions.begin(), sem.functions.end(),
            [](const FunctionDef& a, const FunctionDef& b) {
              return a.body_begin < b.body_begin;
            });

  // --- lambdas: `[captures] (params)? qualifiers? {` ------------------
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t[i], "[") || t[i].preprocessor || match[i] == kNoMatch) {
      continue;
    }
    if (i > 0) {
      const Token& prev = t[i - 1];
      // Subscripts follow a value; a lambda introducer cannot.
      if (prev.kind == TokenKind::kIdentifier ||
          prev.kind == TokenKind::kNumber || prev.kind == TokenKind::kString ||
          is_punct(prev, ")") || is_punct(prev, "]")) {
        continue;
      }
    }
    const std::size_t m = match[i];
    LambdaDef lam;
    lam.intro = i;
    lam.line = t[i].line;
    std::size_t j = m + 1;
    std::size_t params_open = kNoMatch;
    if (j < t.size() && is_punct(t[j], "(") && match[j] != kNoMatch) {
      params_open = j;
      j = match[j] + 1;
    }
    bool ok = true;
    for (int steps = 0; j < t.size() && steps < 64; ++steps) {
      if (is_punct(t[j], "{")) break;
      if (ident_in(t[j], {"mutable", "constexpr", "noexcept", "static"})) {
        ++j;
        continue;
      }
      if (is_punct(t[j], "(") && j > 0 && is_ident(t[j - 1], "noexcept") &&
          match[j] != kNoMatch) {
        j = match[j] + 1;
        continue;
      }
      if (is_punct(t[j], "->") || is_punct(t[j], "::") ||
          is_punct(t[j], "<") || is_punct(t[j], ">") || is_punct(t[j], "&") ||
          is_punct(t[j], "*") || t[j].kind == TokenKind::kIdentifier) {
        ++j;
        continue;
      }
      ok = false;
      break;
    }
    if (!ok || j >= t.size() || !is_punct(t[j], "{") || match[j] == kNoMatch) {
      continue;
    }
    lam.body_begin = j;
    lam.body_end = match[j] + 1;
    for (const auto& [cb, ce] : split_commas(t, match, i + 1, m)) {
      if (cb >= ce) continue;
      const Token& first = t[cb];
      if (ce == cb + 1 && is_punct(first, "&")) {
        lam.ref_default = true;
      } else if (ce == cb + 1 && is_punct(first, "=")) {
        lam.value_default = true;
      } else if (is_punct(first, "&") && cb + 1 < ce &&
                 t[cb + 1].kind == TokenKind::kIdentifier) {
        lam.ref_captures.push_back(t[cb + 1].text);
      } else if (is_ident(first, "this") ||
                 (is_punct(first, "*") && cb + 1 < ce &&
                  is_ident(t[cb + 1], "this"))) {
        // `this` captures: member mutation is outside this model's scope.
      } else if (first.kind == TokenKind::kIdentifier) {
        lam.value_captures.push_back(first.text);
      } else {
        ++sem.unsupported;  // exotic capture (pack expansion, subscript init)
      }
    }
    if (params_open != kNoMatch) {
      for (const auto& [pb, pe] :
           split_commas(t, match, params_open + 1, match[params_open])) {
        if (pb >= pe) continue;
        lam.params.push_back(param_name(t, match, pb, pe));
      }
    }
    lam.caller = enclosing_function(sem.functions, i);
    sem.lambdas.push_back(std::move(lam));
  }

  // --- call sites: `name ( args )`, definitions excluded --------------
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier || t[i].preprocessor ||
        is_def_name[i] != 0 || is_non_call_name(t[i])) {
      continue;
    }
    if (!is_punct(t[i + 1], "(") || match[i + 1] == kNoMatch) continue;
    CallSite call;
    call.name = t[i].text;
    call.line = t[i].line;
    call.token = i;
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
      call.member = true;
    } else if (i >= 2 && is_punct(t[i - 1], "::") &&
               t[i - 2].kind == TokenKind::kIdentifier) {
      call.qualifier = t[i - 2].text;
    }
    const std::size_t close = match[i + 1];
    call.end = close + 1;
    const auto pieces = split_commas(t, match, i + 2, close);
    if (!(pieces.size() == 1 && pieces[0].first >= pieces[0].second)) {
      for (const auto& [ab, ae] : pieces) {
        call.args.push_back(ae == ab + 1 &&
                                    t[ab].kind == TokenKind::kIdentifier
                                ? t[ab].text
                                : std::string());
      }
    }
    call.arity = static_cast<std::uint32_t>(call.args.size());
    call.caller = enclosing_function(sem.functions, i);
    sem.calls.push_back(std::move(call));
  }
  return sem;
}

namespace {

/// `path` minus its extension (after the last '/'): the key that pairs
/// `x.cpp` with `x.hpp` for cross-TU call resolution.
std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

/// Does include string `inc` name file `path`? Matched by exact path or
/// path suffix at a '/' boundary, so `analysis/srccheck/srccheck.hpp`
/// finds `src/analysis/srccheck/srccheck.hpp`.
bool include_names(const std::string& inc, const std::string& path) {
  if (path == inc) return true;
  if (path.size() <= inc.size()) return false;
  return path.compare(path.size() - inc.size(), inc.size(), inc) == 0 &&
         path[path.size() - inc.size() - 1] == '/';
}

std::string location(const std::string& path, std::uint32_t line) {
  return path + ":" + std::to_string(line);
}

/// Provenance chain: `step <- prior`, abbreviated to keep the first hop
/// and the root cause once chains get long.
std::string chain(const std::string& step, const std::string& prior) {
  std::string full = step + " <- " + prior;
  if (full.size() <= 200) return full;
  const std::size_t last = prior.rfind(" <- ");
  const std::string root =
      last == std::string::npos ? prior : prior.substr(last + 4);
  return step + " <- ... <- " + root;
}

}  // namespace

SemanticModel build_semantic_model(const std::vector<CheckedFile>& files,
                                   const SemanticOptions& options) {
  SemanticModel m;
  const std::size_t n = files.size();
  m.fn_base.assign(n + 1, 0);
  m.call_base.assign(n + 1, 0);
  for (std::size_t f = 0; f < n; ++f) {
    m.fn_base[f + 1] =
        m.fn_base[f] +
        static_cast<std::uint32_t>(files[f].semantics.functions.size());
    m.call_base[f + 1] =
        m.call_base[f] +
        static_cast<std::uint32_t>(files[f].semantics.calls.size());
  }
  const std::uint32_t num_fns = m.fn_base[n];
  const std::uint32_t num_calls = m.call_base[n];
  m.hot_reason.assign(num_fns, "");
  m.task_reason.assign(num_fns, "");
  m.param_unordered.resize(num_fns);
  m.callees.resize(num_calls);
  m.task_lambdas.resize(n);

  const auto fn_of = [&](std::uint32_t flat) -> const FunctionDef& {
    const std::size_t f =
        static_cast<std::size_t>(
            std::upper_bound(m.fn_base.begin(), m.fn_base.end(), flat) -
            m.fn_base.begin()) -
        1;
    return files[f].semantics.functions[flat - m.fn_base[f]];
  };
  const auto file_of_fn = [&](std::uint32_t flat) -> std::size_t {
    return static_cast<std::size_t>(
               std::upper_bound(m.fn_base.begin(), m.fn_base.end(), flat) -
               m.fn_base.begin()) -
           1;
  };

  for (std::uint32_t fid = 0; fid < num_fns; ++fid) {
    const FunctionDef& def = fn_of(fid);
    m.param_unordered[fid].assign(def.param_unordered.begin(),
                                  def.param_unordered.end());
  }

  // Name index (std::map: deterministic iteration everywhere).
  std::map<std::string, std::vector<std::uint32_t>> by_name;
  for (std::uint32_t fid = 0; fid < num_fns; ++fid) {
    by_name[fn_of(fid).name].push_back(fid);
  }

  // Include closure, then stem-companion expansion: a call in a.cpp can
  // reach functions defined in b.cpp when a's closure contains b.hpp
  // (the declaration travels through the header; the companion source
  // holds the definition). This over-approximates — a TU-local helper
  // in b.cpp becomes "visible" — which is the conservative direction
  // for reachability inference.
  std::vector<std::vector<std::uint32_t>> include_edges(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const std::string& inc : files[f].semantics.includes) {
      for (std::size_t g = 0; g < n; ++g) {
        if (g != f && include_names(inc, files[g].source.path)) {
          include_edges[f].push_back(static_cast<std::uint32_t>(g));
        }
      }
    }
  }
  std::map<std::string, std::vector<std::uint32_t>> by_stem;
  for (std::size_t f = 0; f < n; ++f) {
    by_stem[stem_of(files[f].source.path)].push_back(
        static_cast<std::uint32_t>(f));
  }
  std::vector<std::vector<bool>> visible(n);
  for (std::size_t f = 0; f < n; ++f) {
    std::vector<bool>& vis = visible[f];
    vis.assign(n, false);
    std::vector<std::uint32_t> queue{static_cast<std::uint32_t>(f)};
    vis[f] = true;
    while (!queue.empty()) {
      const std::uint32_t g = queue.back();
      queue.pop_back();
      for (const std::uint32_t h : include_edges[g]) {
        if (!vis[h]) {
          vis[h] = true;
          queue.push_back(h);
        }
      }
    }
    for (std::size_t g = 0; g < n; ++g) {
      if (!vis[g]) continue;
      for (const std::uint32_t h : by_stem[stem_of(files[g].source.path)]) {
        vis[h] = true;
      }
    }
  }

  // Call resolution: name + arity window + visibility. `std::` calls
  // are external by definition; anything with no candidate stays an
  // unknown callee and propagates nothing.
  for (std::size_t f = 0; f < n; ++f) {
    const FileSemantics& sem = files[f].semantics;
    for (std::size_t c = 0; c < sem.calls.size(); ++c) {
      const CallSite& call = sem.calls[c];
      if (call.qualifier == "std") continue;
      const auto it = by_name.find(call.name);
      if (it == by_name.end()) continue;
      std::vector<std::uint32_t>& out = m.callees[m.call_base[f] + c];
      for (const std::uint32_t fid : it->second) {
        const FunctionDef& def = fn_of(fid);
        if (call.arity < def.min_arity) continue;
        if (def.max_arity != kVariadicArity && call.arity > def.max_arity) {
          continue;
        }
        if (!visible[f][file_of_fn(fid)]) continue;
        out.push_back(fid);
      }
    }
  }

  // Outgoing resolved calls per function.
  std::vector<std::vector<std::uint32_t>> out_calls(num_fns);
  for (std::size_t f = 0; f < n; ++f) {
    const FileSemantics& sem = files[f].semantics;
    for (std::size_t c = 0; c < sem.calls.size(); ++c) {
      if (sem.calls[c].caller != kNoFunction) {
        out_calls[m.fn_base[f] + sem.calls[c].caller].push_back(
            m.call_base[f] + static_cast<std::uint32_t>(c));
      }
    }
  }
  const auto call_at = [&](std::uint32_t cid)
      -> std::pair<std::size_t, const CallSite*> {
    const std::size_t f =
        static_cast<std::size_t>(
            std::upper_bound(m.call_base.begin(), m.call_base.end(), cid) -
            m.call_base.begin()) -
        1;
    return {f, &files[f].semantics.calls[cid - m.call_base[f]]};
  };

  // --- hot-path inference: BFS from annotated regions + entry points --
  std::vector<std::uint32_t> queue;
  const auto mark = [&](std::vector<std::string>& reason, std::uint32_t fid,
                        std::string why) {
    if (!reason[fid].empty()) return;
    reason[fid] = std::move(why);
    queue.push_back(fid);
  };
  for (const std::string& entry : options.hot_entries) {
    const std::size_t sep = entry.find("::");
    const std::string qual =
        sep == std::string::npos ? "" : entry.substr(0, sep);
    const std::string name =
        sep == std::string::npos ? entry : entry.substr(sep + 2);
    const auto it = by_name.find(name);
    if (it == by_name.end()) continue;
    for (const std::uint32_t fid : it->second) {
      if (qual.empty() || fn_of(fid).qualifier == qual) {
        mark(m.hot_reason, fid, "hot entry point '" + entry + "'");
      }
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    const FileSemantics& sem = files[f].semantics;
    for (std::size_t c = 0; c < sem.calls.size(); ++c) {
      const CallSite& call = sem.calls[c];
      if (!files[f].annotations.in_hot_region(call.line)) continue;
      for (const std::uint32_t callee : m.callees[m.call_base[f] + c]) {
        mark(m.hot_reason, callee,
             "called from hot region (" +
                 location(files[f].source.path, call.line) + ")");
      }
    }
  }
  const auto propagate = [&](std::vector<std::string>& reason) {
    // FIFO: the first (shortest) provenance chain wins deterministically.
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t fid = queue[head];
      for (const std::uint32_t cid : out_calls[fid]) {
        const auto [cf, call] = call_at(cid);
        const std::string step =
            "called from '" + fn_of(fid).name + "' (" +
            location(files[cf].source.path, call->line) + ")";
        for (const std::uint32_t callee : m.callees[cid]) {
          mark(reason, callee, chain(step, reason[fid]));
        }
      }
    }
    queue.clear();
  };
  propagate(m.hot_reason);

  // --- task reachability: lambdas at submit-shaped calls, then BFS ----
  const auto is_task_entry = [&](const CallSite& call) {
    for (const std::string& entry : options.task_entries) {
      if (call.name == entry) return true;
    }
    return false;
  };
  for (std::size_t f = 0; f < n; ++f) {
    const FileSemantics& sem = files[f].semantics;
    for (std::size_t l = 0; l < sem.lambdas.size(); ++l) {
      const LambdaDef& lam = sem.lambdas[l];
      for (const CallSite& call : sem.calls) {
        if (!is_task_entry(call)) continue;
        // The lambda is an argument when it sits entirely between the
        // call's parens.
        if (call.token < lam.intro && lam.body_end <= call.end) {
          m.task_lambdas[f].push_back(SemanticModel::TaskLambda{
              static_cast<std::uint32_t>(l), call.line, call.name});
          break;
        }
      }
    }
    for (const SemanticModel::TaskLambda& tl : m.task_lambdas[f]) {
      const LambdaDef& lam = sem.lambdas[tl.lambda];
      for (std::size_t c = 0; c < sem.calls.size(); ++c) {
        const CallSite& call = sem.calls[c];
        if (call.token <= lam.body_begin || call.token >= lam.body_end) {
          continue;
        }
        for (const std::uint32_t callee : m.callees[m.call_base[f] + c]) {
          mark(m.task_reason, callee,
               "called from a pool task ('" + tl.entry + "' at " +
                   location(files[f].source.path, tl.line) + ")");
        }
      }
    }
  }
  propagate(m.task_reason);

  // --- unordered-parameter propagation to fixpoint --------------------
  // Sources: file-harvested unordered locals passed as single-identifier
  // arguments, and (transitively) parameters already marked unordered.
  // Monotone, so the fixpoint is iteration-order independent.
  const auto arg_unordered = [&](std::size_t f, const CallSite& call,
                                 const std::string& arg) {
    const FileSemantics& sem = files[f].semantics;
    if (std::binary_search(sem.unordered_vars.begin(),
                           sem.unordered_vars.end(), arg)) {
      return true;
    }
    if (call.caller == kNoFunction) return false;
    const FunctionDef& caller = sem.functions[call.caller];
    for (std::size_t p = 0; p < caller.params.size(); ++p) {
      if (caller.params[p] == arg &&
          m.param_unordered[m.fn_base[f] + call.caller][p]) {
        return true;
      }
    }
    return false;
  };
  std::vector<std::uint32_t> work;
  std::vector<bool> queued(num_calls, false);
  for (std::uint32_t cid = 0; cid < num_calls; ++cid) {
    if (!m.callees[cid].empty()) {
      work.push_back(cid);
      queued[cid] = true;
    }
  }
  while (!work.empty()) {
    const std::uint32_t cid = work.back();
    work.pop_back();
    queued[cid] = false;
    const auto [f, call] = call_at(cid);
    for (std::size_t k = 0; k < call->args.size(); ++k) {
      if (call->args[k].empty() || !arg_unordered(f, *call, call->args[k])) {
        continue;
      }
      for (const std::uint32_t callee : m.callees[cid]) {
        if (k >= m.param_unordered[callee].size() ||
            m.param_unordered[callee][k]) {
          continue;
        }
        m.param_unordered[callee][k] = true;
        // Re-examine the callee's own outgoing calls.
        for (const std::uint32_t next : out_calls[callee]) {
          if (!queued[next]) {
            queued[next] = true;
            work.push_back(next);
          }
        }
      }
    }
  }
  return m;
}

}  // namespace fastsched::analysis::srccheck
