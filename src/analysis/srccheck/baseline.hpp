#pragma once

/// \file baseline.hpp
/// Checked-in acceptance of pre-existing fastsched_check findings, so the
/// CI gate fails only on *new* findings while the backlog is burned down
/// out of band. A baseline entry is a fingerprint — rule id, file path,
/// and the trimmed text of the offending source line — deliberately
/// line-number-free so unrelated edits above a finding do not invalidate
/// the baseline. Matching is multiset-aware: two identical findings need
/// two entries.

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/srccheck/srccheck.hpp"

namespace fastsched::analysis::srccheck {

/// One accepted finding.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string context;  ///< trimmed source line text at the finding
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Fingerprint context for a diagnostic: the trimmed raw text of its
/// source line (empty when the line is unknown).
[[nodiscard]] std::string baseline_context(const Diagnostic& d,
                                           const std::vector<CheckedFile>& files);

/// Parses a baseline file: `{"tool": "fastsched_check", "findings":
/// [{"rule", "file", "context"}, ...]}`. Unknown keys are ignored (the
/// schema only ever adds fields). Throws `fastsched::Error` on malformed
/// JSON or a missing `findings` array.
[[nodiscard]] Baseline read_baseline(std::istream& is);

/// Serializes `baseline` in the schema `read_baseline` accepts, entries
/// sorted, one per line — diff-reviewable and byte-deterministic.
void write_baseline(std::ostream& os, const Baseline& baseline);

/// Baseline capturing every active finding of `report` (the
/// `--write-baseline` payload).
[[nodiscard]] Baseline baseline_from_report(
    const SrcCheckReport& report, const std::vector<CheckedFile>& files);

/// Moves findings matched by `baseline` out of `report.diagnostics`
/// (decrementing the error/warning counters, incrementing
/// `num_baselined`) and counts unmatched baseline entries as stale.
void apply_baseline(SrcCheckReport& report, const Baseline& baseline,
                    const std::vector<CheckedFile>& files);

}  // namespace fastsched::analysis::srccheck
