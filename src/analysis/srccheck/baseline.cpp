#include "analysis/srccheck/baseline.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "analysis/report_io.hpp"
#include "common/error.hpp"

namespace fastsched::analysis::srccheck {

namespace {

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  return std::string(text.substr(b, e - b));
}

/// Minimal recursive-descent JSON reader, just enough for the baseline
/// schema (objects, arrays, strings, numbers, true/false/null). The
/// report writers in this repo emit JSON but nothing else parses it; this
/// stays private to the baseline format on purpose.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  /// Parses the top-level object and returns the "findings" entries.
  std::vector<BaselineEntry> findings() {
    skip_ws();
    expect('{');
    std::vector<BaselineEntry> entries;
    bool saw_findings = false;
    if (!consume('}')) {
      do {
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        if (key == "findings") {
          saw_findings = true;
          parse_findings(entries);
        } else {
          skip_value();
        }
      } while (consume(','));
      expect('}');
    }
    FASTSCHED_REQUIRE(saw_findings,
                      "baseline: missing \"findings\" array");
    return entries;
  }

 private:
  void fail(const std::string& what) {
    throw Error("baseline: " + what + " at offset " + std::to_string(i_));
  }

  void skip_ws() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_])) != 0) {
      ++i_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (i_ >= text_.size()) fail("unexpected end of input");
    return text_[i_];
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < text_.size() && text_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (i_ < text_.size() && text_[i_] != '"') {
      char c = text_[i_++];
      if (c == '\\' && i_ < text_.size()) {
        const char esc = text_[i_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // Only \u00XX is ever emitted by json_escape; decode the low
            // byte, drop the rest.
            if (i_ + 4 > text_.size()) fail("truncated \\u escape");
            c = static_cast<char>(
                std::stoi(std::string(text_.substr(i_, 4)), nullptr, 16));
            i_ += 4;
            break;
          }
          default: c = esc; break;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{') {
      expect('{');
      if (!consume('}')) {
        do {
          (void)parse_string();
          skip_ws();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      expect('[');
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else {
      // number / true / false / null
      while (i_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[i_])) != 0 ||
              text_[i_] == '-' || text_[i_] == '+' || text_[i_] == '.')) {
        ++i_;
      }
    }
  }

  void parse_findings(std::vector<BaselineEntry>& entries) {
    skip_ws();
    expect('[');
    if (consume(']')) return;
    do {
      expect('{');
      BaselineEntry entry;
      if (!consume('}')) {
        do {
          const std::string key = parse_string();
          skip_ws();
          expect(':');
          if (key == "rule") {
            entry.rule = parse_string();
          } else if (key == "file") {
            entry.file = parse_string();
          } else if (key == "context") {
            entry.context = parse_string();
          } else {
            skip_value();
          }
        } while (consume(','));
        expect('}');
      }
      FASTSCHED_REQUIRE(!entry.rule.empty() && !entry.file.empty(),
                        "baseline: finding needs \"rule\" and \"file\"");
      entries.push_back(std::move(entry));
    } while (consume(','));
    expect(']');
  }

  std::string_view text_;
  std::size_t i_ = 0;
};

std::string fingerprint(std::string_view rule, std::string_view file,
                        std::string_view context) {
  std::string key;
  key.reserve(rule.size() + file.size() + context.size() + 2);
  key.append(rule);
  key += '\0';
  key.append(file);
  key += '\0';
  key.append(context);
  return key;
}

}  // namespace

std::string baseline_context(const Diagnostic& d,
                             const std::vector<CheckedFile>& files) {
  for (const CheckedFile& f : files) {
    if (f.source.path == d.file) {
      return trim(f.source.line_text(d.line));
    }
  }
  return {};
}

Baseline read_baseline(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  JsonReader reader(text);
  Baseline baseline;
  baseline.entries = reader.findings();
  return baseline;
}

void write_baseline(std::ostream& os, const Baseline& baseline) {
  std::vector<const BaselineEntry*> sorted;
  sorted.reserve(baseline.entries.size());
  for (const BaselineEntry& e : baseline.entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const BaselineEntry* a, const BaselineEntry* b) {
              if (a->file != b->file) return a->file < b->file;
              if (a->rule != b->rule) return a->rule < b->rule;
              return a->context < b->context;
            });
  os << "{\n  \"tool\": \"fastsched_check\",\n  \"findings\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"rule\": \""
       << json_escape(sorted[i]->rule) << "\", \"file\": \""
       << json_escape(sorted[i]->file) << "\", \"context\": \""
       << json_escape(sorted[i]->context) << "\"}";
  }
  os << (sorted.empty() ? "]" : "\n  ]") << "\n}\n";
}

Baseline baseline_from_report(const SrcCheckReport& report,
                              const std::vector<CheckedFile>& files) {
  Baseline baseline;
  baseline.entries.reserve(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    baseline.entries.push_back(
        BaselineEntry{d.rule_id, d.file, baseline_context(d, files)});
  }
  return baseline;
}

void apply_baseline(SrcCheckReport& report, const Baseline& baseline,
                    const std::vector<CheckedFile>& files) {
  std::map<std::string, std::size_t> accepted;
  for (const BaselineEntry& e : baseline.entries) {
    ++accepted[fingerprint(e.rule, e.file, e.context)];
  }
  std::vector<Diagnostic> kept;
  kept.reserve(report.diagnostics.size());
  for (Diagnostic& d : report.diagnostics) {
    const auto it =
        accepted.find(fingerprint(d.rule_id, d.file,
                                  baseline_context(d, files)));
    if (it != accepted.end() && it->second > 0) {
      --it->second;
      ++report.num_baselined;
      if (d.severity == Severity::kError) {
        --report.num_errors;
      } else {
        --report.num_warnings;
      }
      continue;
    }
    kept.push_back(std::move(d));
  }
  report.diagnostics = std::move(kept);
  for (const auto& [key, remaining] : accepted) {
    report.num_stale_baseline += remaining;
  }
}

}  // namespace fastsched::analysis::srccheck
