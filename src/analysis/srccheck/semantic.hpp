#pragma once

/// \file semantic.hpp
/// The semantic layer of `fastsched_check`: a heuristic
/// declaration/definition parser on top of `source_lexer`, an
/// include-graph + project-wide call graph, and two transitive
/// inferences over it — *hot-path* (which functions are reachable from
/// `// fastsched: hot` regions and the known hot entry points) and
/// *task-reachability* (which code runs inside lambdas submitted to the
/// deterministic thread pool).
///
/// This is deliberately **not** a C++ parser. It recognizes function
/// definitions, call expressions and lambdas by brace/paren-balanced
/// token patterns, resolves calls by (name, arity) within the caller's
/// include closure, and *degrades* on everything it cannot prove:
/// an unresolvable call has no callees (no propagation, no finding),
/// an unrecognizable construct bumps `FileSemantics::unsupported` and
/// is skipped. The soundness/completeness trade-offs are documented in
/// DESIGN.md ("what the heuristic parser deliberately gives up").
///
/// The hot-path inference lets the H rules fire on allocations *reached
/// from* hot code instead of only on annotated lines; the T rule family
/// (src_rules.cpp) checks determinism invariants at and below
/// `thread_pool::submit` / `parallel_for_index` sites.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/srccheck/source_lexer.hpp"

namespace fastsched::analysis::srccheck {

struct CheckedFile;  // srccheck.hpp (includes this header)

/// "No enclosing function" / "no such function".
inline constexpr std::uint32_t kNoFunction = 0xffffffffU;

/// Arity upper bound used for parameter packs / C varargs.
inline constexpr std::uint32_t kVariadicArity = 0xffffffffU;

/// One heuristically parsed function definition. Methods defined out of
/// line carry the last scope name (`X` of `X::f`) in `qualifier`;
/// methods defined inside their class body, and functions in namespaces,
/// carry "" — the parser does not track enclosing scopes.
struct FunctionDef {
  std::string name;
  std::string qualifier;
  std::uint32_t line = 0;       ///< line of the name token
  std::uint32_t min_arity = 0;  ///< parameters without defaults
  std::uint32_t max_arity = 0;  ///< kVariadicArity on packs / `...`
  std::vector<std::string> params;     ///< declared names, "" when unnamed
  std::vector<bool> param_unordered;   ///< declared as unordered_* container
  std::size_t body_begin = 0;          ///< token index of the body '{'
  std::size_t body_end = 0;            ///< one past the matching '}'
};

/// One call-shaped expression `name(...)` (definitions excluded).
struct CallSite {
  std::string name;
  std::string qualifier;  ///< `X` of `X::name(`, "" when unqualified/member
  std::uint32_t line = 0;
  std::uint32_t arity = 0;
  std::uint32_t caller = kNoFunction;  ///< index into FileSemantics::functions
  std::size_t token = 0;               ///< index of the name token
  std::size_t end = 0;                 ///< one past the matching ')'
  bool member = false;                 ///< `x.name(` / `x->name(`
  std::vector<std::string> args;  ///< single-identifier argument names, else ""
};

/// One lambda expression with a braced body.
struct LambdaDef {
  std::uint32_t line = 0;
  std::uint32_t caller = kNoFunction;  ///< enclosing function
  bool ref_default = false;            ///< `[&]` / `[&, ...]`
  bool value_default = false;          ///< `[=]` / `[=, ...]`
  std::vector<std::string> ref_captures;    ///< explicit `&name`
  std::vector<std::string> value_captures;  ///< explicit `name` (init-captures
                                            ///< record the introduced name)
  std::vector<std::string> params;          ///< declared names, "" when unnamed
  std::size_t intro = 0;       ///< token index of the capture '['
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< one past the matching '}'
};

/// Heuristic per-file semantic facts, computed once per file (in
/// parallel under `--jobs`) and shared by every semantic rule.
struct FileSemantics {
  std::vector<FunctionDef> functions;  ///< in body-start order
  std::vector<CallSite> calls;         ///< in token order
  std::vector<LambdaDef> lambdas;      ///< in token order
  std::vector<std::string> includes;   ///< quoted #include paths, verbatim
  std::vector<std::string> unordered_vars;  ///< names declared as
                                            ///< unordered_* (sorted, unique)
  std::uint32_t unsupported = 0;  ///< constructs the parser refused to guess
  bool balanced = true;  ///< braces/brackets matched outside directives
};

/// Parses `file`'s token stream. Never throws: unparseable constructs
/// are counted in `unsupported` and skipped.
[[nodiscard]] FileSemantics parse_semantics(const SourceFile& file);

/// Seeds for the two transitive inferences.
struct SemanticOptions {
  /// Hot roots by definition name: `Class::name` (matches qualifier +
  /// name) or a bare `name` (matches any qualifier). Defaults are the
  /// evaluator probe, the event-replay probe loop, and the shared
  /// replay core.
  std::vector<std::string> hot_entries = {
      "IncrementalEvaluator::evaluate_move",
      "EventReplay::replay",
      "replay_list",
  };
  /// Call names whose lambda arguments run as pool tasks.
  std::vector<std::string> task_entries = {
      "submit",
      "parallel_for_index",
      "run_cells",
  };
};

/// The project-wide model the semantic rules consult. Functions are
/// addressed by *flat id*: `fn_base[file] + local index` in file order,
/// so every table below is one flat vector. Built deterministically —
/// identical inputs yield identical reasons and callee lists regardless
/// of `--jobs`.
struct SemanticModel {
  /// Per file: flat id of its first function (plus one trailing entry
  /// holding the total, so `fn_base[f + 1] - fn_base[f]` is the count).
  std::vector<std::uint32_t> fn_base;
  /// Per file: flat id of its first call site (same layout).
  std::vector<std::uint32_t> call_base;

  /// Per flat function: non-empty iff inferred hot; the string is the
  /// provenance chain, e.g.
  /// "called from 'a' (x.cpp:12) <- hot region (y.cpp:30)".
  std::vector<std::string> hot_reason;
  /// Per flat function: non-empty iff reachable from a pool task; the
  /// string names the submitting site.
  std::vector<std::string> task_reason;
  /// Per flat function, per parameter: unordered-container-typed, either
  /// declared or propagated through resolved call arguments.
  std::vector<std::vector<bool>> param_unordered;

  /// Per flat call: resolved callee flat ids, sorted ascending. Empty
  /// means "unknown callee" — external, through a function pointer, or
  /// no (name, arity, visibility) match — and propagates nothing.
  std::vector<std::vector<std::uint32_t>> callees;

  /// One lambda submitted to the pool.
  struct TaskLambda {
    std::uint32_t lambda = 0;  ///< index into FileSemantics::lambdas
    std::uint32_t line = 0;    ///< line of the submitting call
    std::string entry;         ///< the task-entry call name
  };
  /// Per file: its pool-task lambdas, in lambda order.
  std::vector<std::vector<TaskLambda>> task_lambdas;

  [[nodiscard]] std::uint32_t flat_fn(std::uint32_t file,
                                      std::uint32_t fn) const {
    return fn_base[file] + fn;
  }
  [[nodiscard]] std::uint32_t num_functions() const {
    return fn_base.empty() ? 0 : fn_base.back();
  }
};

/// Builds the model over every checked file: include closure, call
/// resolution, hot-path BFS, task-reachability BFS, unordered-parameter
/// propagation to fixpoint.
[[nodiscard]] SemanticModel build_semantic_model(
    const std::vector<CheckedFile>& files, const SemanticOptions& options = {});

}  // namespace fastsched::analysis::srccheck
