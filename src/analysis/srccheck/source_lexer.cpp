#include "analysis/srccheck/source_lexer.hpp"

#include <cctype>

namespace fastsched::analysis::srccheck {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  return std::string(text.substr(b, e - b));
}

/// Cursor over the file contents tracking the 1-based line number and
/// whether anything but whitespace has appeared on the current line yet
/// (needed for `Comment::own_line` and preprocessor detection).
struct Cursor {
  std::string_view text;
  std::size_t i = 0;
  std::uint32_t line = 1;
  bool line_has_code = false;
  bool in_preprocessor = false;

  [[nodiscard]] bool done() const { return i >= text.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }
  void advance() {
    if (text[i] == '\n') {
      ++line;
      line_has_code = false;
      in_preprocessor = false;
    }
    ++i;
  }
};

}  // namespace

SourceFile lex_source(std::string path, std::string_view content) {
  SourceFile out;
  out.path = std::move(path);

  // Raw line table first (diagnostic context and baseline fingerprints).
  {
    std::size_t begin = 0;
    for (std::size_t i = 0; i <= content.size(); ++i) {
      if (i == content.size() || content[i] == '\n') {
        std::string_view line = content.substr(begin, i - begin);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        out.lines.emplace_back(line);
        begin = i + 1;
      }
    }
    if (!out.lines.empty() && out.lines.back().empty() &&
        (content.empty() || content.back() == '\n')) {
      out.lines.pop_back();
    }
  }

  Cursor c{content};
  const auto push_token = [&](std::string text, TokenKind kind,
                              std::uint32_t line) {
    out.tokens.push_back(Token{std::move(text), line, kind, c.in_preprocessor});
  };

  while (!c.done()) {
    const char ch = c.peek();

    if (ch == '\\' && c.peek(1) == '\n') {
      // Line continuation: the preprocessor state survives the newline.
      const bool pp = c.in_preprocessor;
      c.advance();
      c.advance();
      c.in_preprocessor = pp;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
      c.advance();
      continue;
    }

    // Comments (captured, not tokenized).
    if (ch == '/' && c.peek(1) == '/') {
      const bool own = !c.line_has_code;
      const std::uint32_t line = c.line;
      std::size_t begin = c.i + 2;
      while (!c.done() && c.peek() != '\n') c.advance();
      out.comments.push_back(
          Comment{trim(content.substr(begin, c.i - begin)), line, own});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      bool own = !c.line_has_code;
      std::uint32_t line = c.line;
      // Comments are removed before directives are parsed (translation
      // phase 3), so newlines inside a block comment do not end a
      // preprocessor line: the directive state must survive the comment.
      const bool pp = c.in_preprocessor;
      std::size_t begin = c.i + 2;
      c.advance();
      c.advance();
      const auto flush = [&](std::size_t end) {
        out.comments.push_back(
            Comment{trim(content.substr(begin, end - begin)), line, own});
      };
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          flush(c.i);
          c.advance();
          c.advance();
          break;
        }
        if (c.peek() == '\n') {
          flush(c.i);
          c.advance();
          line = c.line;
          begin = c.i;
          own = true;
          continue;
        }
        c.advance();
      }
      c.in_preprocessor = pp;
      continue;
    }

    c.line_has_code = true;

    // Preprocessor directive: the `#` marks the rest of the (continued)
    // logical line; its tokens are lexed normally but flagged.
    if (ch == '#' && !c.in_preprocessor) {
      c.in_preprocessor = true;
      push_token("#", TokenKind::kPunct, c.line);
      c.advance();
      continue;
    }

    // Raw string payload from the opening `"` of R"delim( ... )delim":
    // consumed verbatim up to the matching close sequence. Shared by the
    // unprefixed branch below and the encoding-prefixed forms (u8R, uR,
    // UR, LR) caught in the identifier branch.
    const auto lex_raw_string = [&](std::uint32_t line) {
      c.advance();  // "
      std::string delim;
      while (!c.done() && c.peek() != '(') {
        delim += c.peek();
        c.advance();
      }
      const std::string close = ")" + delim + "\"";
      if (!c.done()) c.advance();  // (
      while (!c.done() && content.compare(c.i, close.size(), close) != 0) {
        c.advance();
      }
      for (std::size_t k = 0; k < close.size() && !c.done(); ++k) c.advance();
      push_token("", TokenKind::kString, line);
    };

    // Raw string literal: R"delim( ... )delim".
    if (ch == 'R' && c.peek(1) == '"') {
      const std::uint32_t line = c.line;
      c.advance();  // R
      lex_raw_string(line);
      continue;
    }

    // String and character literals (escape-aware).
    if (ch == '"' || ch == '\'') {
      const char quote = ch;
      const std::uint32_t line = c.line;
      c.advance();
      while (!c.done() && c.peek() != quote && c.peek() != '\n') {
        if (c.peek() == '\\') c.advance();
        if (!c.done()) c.advance();
      }
      if (!c.done() && c.peek() == quote) c.advance();
      push_token("", TokenKind::kString, line);
      continue;
    }

    if (is_ident_start(ch)) {
      const std::uint32_t line = c.line;
      std::size_t begin = c.i;
      while (!c.done() && is_ident_char(c.peek())) c.advance();
      const std::string_view ident = content.substr(begin, c.i - begin);
      // Encoding-prefixed raw strings (u8R"(...)"sv and friends) reach
      // this branch because the prefix lexes as an identifier; without
      // this hand-off the payload would be retokenized as code — across
      // lines, since the ordinary string branch stops at a newline — and
      // every downstream rule would see phantom tokens.
      if (c.peek() == '"' && (ident == "LR" || ident == "uR" ||
                              ident == "UR" || ident == "u8R")) {
        lex_raw_string(line);
        continue;
      }
      push_token(std::string(ident), TokenKind::kIdentifier, line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
      const std::uint32_t line = c.line;
      std::size_t begin = c.i;
      while (!c.done() &&
             (is_ident_char(c.peek()) || c.peek() == '.' ||
              ((c.peek() == '+' || c.peek() == '-') &&
               (content[c.i - 1] == 'e' || content[c.i - 1] == 'E' ||
                content[c.i - 1] == 'p' || content[c.i - 1] == 'P')))) {
        c.advance();
      }
      push_token(std::string(content.substr(begin, c.i - begin)),
                 TokenKind::kNumber, line);
      continue;
    }

    // Punctuation: fuse only the pairs rules match on.
    {
      const std::uint32_t line = c.line;
      const char next = c.peek(1);
      std::string text(1, ch);
      if ((ch == ':' && next == ':') || (ch == '-' && next == '>') ||
          ((ch == '+' || ch == '-' || ch == '*' || ch == '/') &&
           next == '=')) {
        text += next;
        c.advance();
      }
      c.advance();
      push_token(std::move(text), TokenKind::kPunct, line);
    }
  }
  return out;
}

}  // namespace fastsched::analysis::srccheck
