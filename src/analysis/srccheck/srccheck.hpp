#pragma once

/// \file srccheck.hpp
/// The `fastsched_check` engine: project-invariant static analysis over
/// the repository's own C++ sources. The repo's value proposition —
/// bit-identical move evaluators, a deterministic thread pool,
/// certificate-backed bounds — rests on invariants that golden diffs and
/// TSan shards only catch *dynamically*, on whichever fixture happens to
/// exercise the regression. This engine enforces them statically, at
/// check time, with the same rule-registry machinery as the schedule and
/// DAG linters (rule_registry.hpp): a registry of `BasicRule`s over lexed
/// sources (source_lexer.hpp), diagnostics flowing through
/// `analysis::Diagnostic` with `file:line` and a fix-hint.
///
/// Rule families (ids in src_rules.cpp, table in tools/README.md):
///   D* — determinism: nondeterminism sources, unordered-container
///        iteration, unannotated floating-point merge reductions.
///   H* — hot-path hygiene: allocation inside `// fastsched: hot` regions.
///   P* — protocol: evaluate_move probes that are neither committed nor
///        reverted in the same function.
///   A* — assertion/error contract: bare `assert(`, raw
///        `throw std::runtime_error` (error.hpp owns both).
///   S* — the checker's own annotation contract (suppressions need a
///        reason).
///   T* — deterministic parallelism at thread-pool fan-out sites:
///        shared-state reference captures, unordered merges across call
///        boundaries, locking in inferred-hot code, unsplit Rng in pool
///        tasks. Backed by the semantic layer (semantic.hpp): a
///        heuristic call graph with transitive hot-path and
///        task-reachability inference, which also extends H* beyond
///        explicitly annotated regions.
///
/// Suppression: `// NOLINT-fastsched(rule-id): reason` on the offending
/// line, or alone on the line above. The reason is mandatory (rule
/// `suppression-needs-reason`). Findings already accepted by a checked-in
/// baseline (baseline.hpp) are reported but do not fail the run, so the
/// gate only blocks *new* findings.

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rule_registry.hpp"
#include "analysis/srccheck/semantic.hpp"
#include "analysis/srccheck/source_lexer.hpp"

namespace fastsched::analysis::srccheck {

/// One parsed `// NOLINT-fastsched(rule, rule): reason` annotation.
struct Suppression {
  std::vector<std::string> rules;  ///< empty means "all rules"
  std::string reason;
  std::uint32_t line = 0;   ///< line the comment sits on
  bool next_line = false;   ///< own-line comment: applies to line + 1
};

/// Inclusive line range marked `// fastsched: hot` .. `// fastsched:
/// end-hot`. An unterminated region runs to the end of the file (rules
/// still apply; the imbalance is itself reported by `hot-region-balance`).
struct HotRegion {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Everything annotation-driven about one file, precomputed once so every
/// rule shares the same interpretation.
struct FileAnnotations {
  std::vector<Suppression> suppressions;
  std::vector<HotRegion> hot_regions;
  std::vector<std::uint32_t> det_ok_lines;  ///< `// det-ok: fixed-order`
  std::uint32_t unbalanced_hot_line = 0;  ///< stray hot marker (0: balanced)

  [[nodiscard]] bool in_hot_region(std::uint32_t line) const;
  /// det-ok annotation on `line`, or alone on the line above.
  [[nodiscard]] bool det_ok(std::uint32_t line) const;
  /// Suppression covering (rule, line)?
  [[nodiscard]] const Suppression* suppressing(std::string_view rule,
                                               std::uint32_t line) const;
};

[[nodiscard]] FileAnnotations parse_annotations(const SourceFile& file);

/// One file ready for rule evaluation.
struct CheckedFile {
  SourceFile source;
  FileAnnotations annotations;
  FileSemantics semantics;
};

/// Everything a source-check rule may inspect. `model` is the
/// project-wide semantic model over `files`; `src_check` always provides
/// it, and rules must tolerate `nullptr` (unit tests may omit it).
struct SrcCheckInput {
  const std::vector<CheckedFile>* files = nullptr;
  const SemanticModel* model = nullptr;
};

using SrcRule = BasicRule<SrcCheckInput>;

/// Rule collection over lexed sources.
class SrcRuleRegistry : public BasicRuleRegistry<SrcCheckInput> {
 public:
  /// The built-in rules, in documentation order:
  ///   det-random-source, det-unordered-iter, det-float-merge,
  ///   hot-alloc, hot-region-balance, hot-nested-container, probe-pairing,
  ///   bare-assert, raw-runtime-error, suppression-needs-reason,
  ///   par-ref-mutation, par-unordered-merge, par-hot-lock,
  ///   par-unsplit-rng
  [[nodiscard]] static const SrcRuleRegistry& builtin();
};

/// The outcome of one source-check run. `diagnostics` holds the *active*
/// findings (suppressed ones are dropped, counted in `num_suppressed`;
/// baselined ones are moved out by `apply_baseline`, baseline.hpp).
struct SrcCheckReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t num_errors = 0;
  std::size_t num_warnings = 0;
  std::size_t num_files = 0;
  std::size_t num_suppressed = 0;
  std::size_t num_baselined = 0;
  std::size_t num_stale_baseline = 0;  ///< baseline entries matching nothing

  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
  [[nodiscard]] bool ok(bool warnings_as_errors = false) const noexcept {
    return num_errors == 0 && (!warnings_as_errors || num_warnings == 0);
  }
};

/// Lexes and annotates one in-memory source (unit tests and fixtures).
[[nodiscard]] CheckedFile check_file_from_text(std::string path,
                                               std::string_view content);

/// Runs every rule against `files`. Diagnostics are stamped with the
/// rule's id/severity, filtered through the files' suppressions, and
/// sorted (file, line, rule) so output is deterministic regardless of
/// rule registration order. The semantic model is built first and handed
/// to every rule. `jobs > 1` evaluates the rules on the deterministic
/// thread pool — each rule writes its own result slot, concatenated in
/// registration order, so the report is byte-identical to a serial run.
[[nodiscard]] SrcCheckReport src_check(const std::vector<CheckedFile>& files,
                                       const SrcRuleRegistry& registry =
                                           SrcRuleRegistry::builtin(),
                                       std::size_t jobs = 1);

/// Collects the checkable sources (*.cpp, *.hpp, *.h, *.cc, *.hh) under
/// `paths` (files or directories), resolved relative to `root`. Build
/// trees (`build*/`, `cmake-build-*/`) and hidden directories are skipped
/// even when a path points into the source checkout, so a self-run over
/// "." never lints generated or vendored code. Returned paths are
/// root-relative with '/' separators, sorted, and de-duplicated —
/// the scan order (and therefore every report) is deterministic.
/// Throws `fastsched::Error` when a named path does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& paths);

/// `collect_sources` + read + lex + annotate + parse semantics. The
/// per-file work fans out over `jobs` pool workers (1 = inline); each
/// file lands in its pre-assigned slot of the sorted path list, so the
/// result is independent of the worker count.
[[nodiscard]] std::vector<CheckedFile> load_sources(
    const std::string& root, const std::vector<std::string>& paths,
    std::size_t jobs = 1);

/// Machine-readable report (schema documented in tools/README.md):
/// `{"tool": "fastsched_check", "files", "errors", "warnings",
///   "suppressed", "baselined", "stale_baseline", "diagnostics": [...]}`.
void write_json(std::ostream& os, const SrcCheckReport& report);

}  // namespace fastsched::analysis::srccheck
