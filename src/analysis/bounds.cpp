#include "analysis/bounds.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "graph/levels.hpp"

namespace fastsched::analysis {
namespace {

using graph::Adjacency;
using graph::approx_equal;
using graph::Cost;
using graph::definitely_less;
using graph::NodeId;
using graph::TaskGraph;

std::string num(Cost c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

// Longest computation-only chain starting at the max-static-level node,
// following children that realize sl(n) = w(n) + sl(child).
std::vector<NodeId> comp_critical_path(const TaskGraph& g,
                                       const std::vector<Cost>& sl) {
  NodeId cur = 0;
  for (NodeId n = 1; n < g.num_nodes(); ++n) {
    if (sl[n] > sl[cur]) cur = n;
  }
  std::vector<NodeId> path{cur};
  for (;;) {
    const NodeId prev = cur;
    for (const Adjacency& succ : g.successors(cur)) {
      if (approx_equal(sl[cur], g.weight(cur) + sl[succ.node])) {
        cur = succ.node;
        path.push_back(cur);
        break;
      }
    }
    if (cur == prev) break;
  }
  return path;
}

// Exhaustive placement cases for a join node n and two of its
// predecessors q1 ≠ q2 (F = certified finish lower bound, c = message
// cost to n, e = certified start lower bound, w = weight):
//   all three co-located   -> preds serialize on n's processor
//   n with q1, q2 apart    -> q2 pays its message
//   n with q2, q1 apart    -> q1 pays its message
//   n apart from both      -> both pay their messages
// The minimum over the cases lower-bounds start(n) in every schedule.
Cost pair_join_bound(Cost e1, Cost w1, Cost c1, Cost e2, Cost w2, Cost c2) {
  const Cost f1 = e1 + w1;
  const Cost f2 = e2 + w2;
  const Cost all_together =
      std::max({f1, f2, std::min(e1, e2) + w1 + w2});
  const Cost with_q1 = std::max(f1, f2 + c2);
  const Cost with_q2 = std::max(f2, f1 + c1);
  const Cost apart = std::max(f1 + c1, f2 + c2);
  return std::min({all_together, with_q1, with_q2, apart});
}

// Minimum execution overlap of task (window [e, l], weight w) with the
// interval [a, b): the window offers at most (a − e)⁺ room before a and
// (l − b)⁺ room after b to dodge the interval.
Cost min_overlap(Cost e, Cost l, Cost w, Cost a, Cost b) {
  const Cost before = std::max(Cost{0}, a - e);
  const Cost after = std::max(Cost{0}, l - b);
  return std::max(Cost{0}, w - before - after);
}

// The Fernández/Bussell interval-density bound. Every task must execute
// inside its window [est[n], t0 − tail[n]] in any schedule meeting the
// reference makespan t0 (the window is at least w(n) long because t0 is
// itself at least the comm-cp-tail certificate est + w + tail). If some
// interval [a, b) must contain more mandatory work than p·(b − a), no
// schedule of length t0 exists, and the relaxed excess lifts the bound.
//
// With `opt.density_endpoints == 0` the search is exact: it examines
// every (release, deadline) endpoint pair — the classical sufficient
// candidate set — via a per-`a` sorted-breakpoint sweep. For fixed a,
// task n's mandatory overlap as a function of b is 0 until
// s_n = l_n − x_n (x_n = w(n) minus the room before a), then grows with
// slope 1 until it saturates at x_n when b ≥ l_n; so prefix sums over
// the breakpoints sorted by s_n and by l_n give density and contributor
// count in O(1) amortized per b. A positive cap samples the endpoint set
// first (the retired legacy behavior, never stronger than the exact
// search since it maximizes over a subset of the same intervals).
void add_interval_density_bound(const TaskGraph& g, const BoundOptions& opt,
                                const std::vector<Cost>& est,
                                const std::vector<Cost>& tail, Cost t0,
                                BoundSet& out) {
  const std::size_t v = g.num_nodes();
  const Cost p = static_cast<Cost>(opt.num_procs);
  const bool exact = opt.density_endpoints == 0;

  // Candidate interval endpoints: every release est[n] and every deadline
  // t0 − tail[n].
  std::vector<Cost> points;
  points.reserve(2 * v);
  for (NodeId n = 0; n < v; ++n) {
    points.push_back(est[n]);
    points.push_back(t0 - tail[n]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (!exact && points.size() > opt.density_endpoints) {
    std::vector<Cost> sampled;
    sampled.reserve(opt.density_endpoints);
    const std::size_t last = points.size() - 1;
    for (std::size_t i = 0; i < opt.density_endpoints; ++i) {
      sampled.push_back(points[i * last / (opt.density_endpoints - 1)]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    points = std::move(sampled);
  }

  // Per-`a` breakpoint scratch: overlap onset s_n ascending, and
  // (deadline, residual, onset) sorted by deadline. Fully-ordered sort
  // keys keep the prefix-sum folds bit-identical run to run.
  struct Deadline {
    Cost l, x, s;
  };
  std::vector<Cost> onsets;
  std::vector<Deadline> deadlines;
  onsets.reserve(v);
  deadlines.reserve(v);

  Cost best_value = t0;
  TimeWindow best_interval{};
  Cost best_density = 0;
  for (std::size_t ai = 0; ai + 1 < points.size(); ++ai) {
    const Cost a = points[ai];
    onsets.clear();
    deadlines.clear();
    for (NodeId n = 0; n < v; ++n) {
      const Cost x =
          g.weight(n) - std::max(Cost{0}, a - est[n]);  // residual past a
      const Cost l = t0 - tail[n];
      // Drop residuals below the float tolerance (relative to the
      // deadline's magnitude): they add nothing to the density, and a
      // sub-ulp x makes l − x round back to l, which would let the
      // saturated count overtake the onset count at b == l.
      if (x <= 1e-9 * std::max(Cost{1}, l)) continue;
      onsets.push_back(l - x);
      deadlines.push_back({l, x, l - x});
    }
    if (onsets.empty()) continue;
    std::sort(onsets.begin(), onsets.end());
    std::sort(deadlines.begin(), deadlines.end(),
              [](const Deadline& d1, const Deadline& d2) {
                if (d1.l != d2.l) return d1.l < d2.l;
                if (d1.s != d2.s) return d1.s < d2.s;
                return d1.x < d2.x;
              });
    std::size_t onset_count = 0;     // tasks with s_n < b (contributors)
    std::size_t saturated_count = 0; // tasks with l_n <= b
    Cost onset_sum = 0;              // Σ s_n over contributors
    Cost saturated_x = 0;            // Σ x_n over saturated tasks
    Cost saturated_s = 0;            // Σ s_n over saturated tasks
    for (std::size_t bi = ai + 1; bi < points.size(); ++bi) {
      const Cost b = points[bi];
      while (onset_count < onsets.size() && onsets[onset_count] < b) {
        // det-ok: fixed-order — sequential fold over the sorted onsets
        onset_sum += onsets[onset_count];
        ++onset_count;
      }
      while (saturated_count < deadlines.size() &&
             deadlines[saturated_count].l <= b) {
        // det-ok: fixed-order — sequential fold over the sorted deadlines
        saturated_x += deadlines[saturated_count].x;
        saturated_s += deadlines[saturated_count].s;  // det-ok: fixed-order
        ++saturated_count;
      }
      if (onset_count == 0) continue;
      // Saturated tasks contribute x_n; the rest of the contributors are
      // still on the slope and contribute b − s_n each. Signed casts:
      // the counts are subtracted, and an unsigned wrap would turn a
      // rounding slip into an astronomical density.
      const Cost density =
          saturated_x +
          (static_cast<Cost>(onset_count) - static_cast<Cost>(saturated_count)) *
              b -
          (onset_sum - saturated_s);
      const Cost capacity = p * (b - a);
      if (!definitely_less(capacity, density)) continue;
      // Growing the makespan by δ widens every window's tail by δ, so the
      // density falls by at most `contributors`·δ: feasibility needs at
      // least the relaxed excess on top of the reference makespan.
      const Cost value =
          t0 + (density - capacity) / static_cast<Cost>(onset_count);
      if (value <= best_value) continue;
      best_value = value;
      best_interval = {a, b};
      best_density = density;
    }
  }

  std::vector<NodeId> best_witness;
  if (best_value > t0) {
    for (NodeId n = 0; n < v && best_witness.size() < 12; ++n) {
      if (min_overlap(est[n], t0 - tail[n], g.weight(n), best_interval.begin,
                      best_interval.end) > 0) {
        best_witness.push_back(n);
      }
    }
  }

  BoundCertificate cert;
  cert.id = exact ? "fernandez" : "interval-density";
  cert.value = best_value;
  cert.num_procs = opt.num_procs;
  cert.interval = best_interval;
  cert.witness = std::move(best_witness);
  if (best_value > t0) {
    cert.detail = "interval [" + num(best_interval.begin) + ", " +
                  num(best_interval.end) + ") must hold " +
                  num(best_density) + " units of work but " +
                  std::to_string(opt.num_procs) + " processors fit only " +
                  num(p * (best_interval.end - best_interval.begin));
  } else {
    cert.detail = std::string(exact ? "no" : "no sampled") +
                  " interval exceeds processor capacity at the reference "
                  "makespan " +
                  num(t0);
  }
  out.certificates.push_back(std::move(cert));
}

}  // namespace

Cost BoundSet::best() const noexcept {
  Cost value = 0;
  for (const BoundCertificate& c : certificates) value = std::max(value, c.value);
  return value;
}

const BoundCertificate* BoundSet::binding() const noexcept {
  const BoundCertificate* best_cert = nullptr;
  for (const BoundCertificate& c : certificates) {
    if (best_cert == nullptr || c.value > best_cert->value) best_cert = &c;
  }
  return best_cert;
}

const BoundCertificate* BoundSet::find(std::string_view id) const noexcept {
  for (const BoundCertificate& c : certificates) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

std::vector<Cost> comm_aware_tail(const TaskGraph& g) {
  std::vector<Cost> tail(g.num_nodes(), 0);
  // The forward pass on the edge-reversed graph, computed directly: walk
  // the topological order backwards, so a node's successors (its
  // predecessors in the reversed graph) are finalized first. Soundness by
  // time reversal: a schedule read backwards is a valid schedule of the
  // reversed graph, in which tail[n] plays the role of est[n].
  struct Pred {
    Cost e, w, c;
  };
  std::vector<Pred> top;
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    const auto succs = g.successors(n);
    Cost t = 0;
    for (const Adjacency& succ : succs) {
      t = std::max(t, tail[succ.node] + g.weight(succ.node));
    }
    if (succs.size() >= 2) {
      top.clear();
      for (const Adjacency& succ : succs) {
        top.push_back({tail[succ.node], g.weight(succ.node), succ.cost});
      }
      const std::size_t keep = std::min<std::size_t>(4, top.size());
      std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                        [](const Pred& x, const Pred& y) {
                          return x.e + x.w + x.c > y.e + y.w + y.c;
                        });
      top.resize(keep);
      for (std::size_t i = 0; i < top.size(); ++i) {
        for (std::size_t j = i + 1; j < top.size(); ++j) {
          t = std::max(t, pair_join_bound(top[i].e, top[i].w, top[i].c,
                                          top[j].e, top[j].w, top[j].c));
        }
      }
    }
    tail[n] = t;
  }
  return tail;
}

RejectionTails make_rejection_tails(const TaskGraph& g,
                                    std::size_t num_procs) {
  RejectionTails out;
  out.tail = comm_aware_tail(g);
  BoundOptions options;
  options.num_procs = num_procs;
  options.interval_density = false;  // keep the helper O(v + e)
  out.floor = compute_bounds(g, options).best();
  return out;
}

std::vector<Cost> comm_aware_est(const TaskGraph& g) {
  std::vector<Cost> est(g.num_nodes(), 0);
  // Per-node scratch for the heaviest predecessors by finish + message.
  struct Pred {
    Cost e, w, c;
  };
  std::vector<Pred> top;
  for (const NodeId n : g.topological_order()) {
    const auto preds = g.predecessors(n);
    Cost start = 0;
    for (const Adjacency& pred : preds) {
      start = std::max(start, est[pred.node] + g.weight(pred.node));
    }
    if (preds.size() >= 2) {
      // The pairwise case analysis only tightens for the predecessors
      // with the largest finish-plus-message values; four candidates keep
      // the pass O(e) while catching the binding pair in practice. Any
      // subset yields a sound bound.
      top.clear();
      for (const Adjacency& pred : preds) {
        top.push_back({est[pred.node], g.weight(pred.node), pred.cost});
      }
      const std::size_t keep = std::min<std::size_t>(4, top.size());
      std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                        [](const Pred& x, const Pred& y) {
                          return x.e + x.w + x.c > y.e + y.w + y.c;
                        });
      top.resize(keep);
      for (std::size_t i = 0; i < top.size(); ++i) {
        for (std::size_t j = i + 1; j < top.size(); ++j) {
          start = std::max(
              start, pair_join_bound(top[i].e, top[i].w, top[i].c, top[j].e,
                                     top[j].w, top[j].c));
        }
      }
    }
    est[n] = start;
  }
  return est;
}

BoundSet compute_bounds(const TaskGraph& g, const BoundOptions& options) {
  BoundSet out;
  if (g.num_nodes() == 0) return out;

  const std::vector<Cost> sl = graph::compute_static_levels(g);
  const std::vector<Cost> est = comm_aware_est(g);
  const std::vector<Cost> tail = comm_aware_tail(g);

  // cp-comp: the longest computation-only chain.
  {
    BoundCertificate cert;
    cert.id = "cp-comp";
    cert.witness = comp_critical_path(g, sl);
    cert.value = sl[cert.witness.front()];
    cert.detail = "computation-only critical path over " +
                  std::to_string(cert.witness.size()) + " nodes";
    out.certificates.push_back(std::move(cert));
  }

  // comm-cp: communication-aware earliest starts + computation-only tail.
  {
    NodeId arg = 0;
    for (NodeId n = 1; n < g.num_nodes(); ++n) {
      if (est[n] + sl[n] > est[arg] + sl[arg]) arg = n;
    }
    BoundCertificate cert;
    cert.id = "comm-cp";
    cert.value = est[arg] + sl[arg];
    cert.witness = {arg};
    cert.detail = "node " + g.name(arg) + " cannot start before " +
                  num(est[arg]) +
                  " (join-placement case analysis) and is followed by a " +
                  num(sl[arg]) + "-long computation chain";
    out.certificates.push_back(std::move(cert));
  }

  // comm-cp-tail: forward earliest starts + backward communication-aware
  // tails. est[n] + w(n) + tail[n] lower-bounds every schedule for every
  // n; tail >= sl − w makes this dominate comm-cp in value (ties keep
  // comm-cp binding — BoundSet::binding prefers the earlier certificate).
  {
    NodeId arg = 0;
    Cost value = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const Cost through = est[n] + g.weight(n) + tail[n];
      if (through > value) {
        value = through;
        arg = n;
      }
    }
    BoundCertificate cert;
    cert.id = "comm-cp-tail";
    cert.value = value;
    cert.witness = {arg};
    cert.detail = "node " + g.name(arg) + " cannot start before " +
                  num(est[arg]) + " and " + num(tail[arg]) +
                  " units must follow its finish (backward join-placement "
                  "case analysis)";
    out.certificates.push_back(std::move(cert));
  }

  if (options.num_procs > 0) {
    // work: p processors burn at most p units of work per time step.
    {
      BoundCertificate cert;
      cert.id = "work";
      cert.num_procs = options.num_procs;
      cert.value = g.total_work() / static_cast<Cost>(options.num_procs);
      cert.detail = "total work " + num(g.total_work()) + " over " +
                    std::to_string(options.num_procs) + " processors";
      out.certificates.push_back(std::move(cert));
    }
    if (options.interval_density) {
      add_interval_density_bound(g, options, est, tail, out.best(), out);
    }
  }
  return out;
}

BoundSet compute_bounds(const TaskGraph& g, std::size_t num_procs) {
  BoundOptions options;
  options.num_procs = num_procs;
  return compute_bounds(g, options);
}

std::vector<BoundSet> compute_bounds_batch(
    const std::vector<BoundRequest>& requests, const BoundOptions& options,
    std::size_t jobs) {
  std::vector<BoundSet> results(requests.size());
  parallel_for_index(jobs, requests.size(), [&](std::size_t i) {
    FASTSCHED_ASSERT(requests[i].graph != nullptr);
    BoundOptions per_request = options;
    per_request.num_procs = requests[i].num_procs;
    results[i] = compute_bounds(*requests[i].graph, per_request);
  });
  return results;
}

double optimality_gap(const BoundSet& bounds, Cost makespan) noexcept {
  const Cost best = bounds.best();
  if (best <= 0) return 0;
  return (makespan - best) / best;
}

}  // namespace fastsched::analysis
