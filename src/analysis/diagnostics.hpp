#pragma once

/// \file diagnostics.hpp
/// Structured diagnostics emitted by the schedule-lint engine (lint.hpp).
/// Every finding names the rule that produced it, the offending task(s),
/// the processor and the time window involved, so tooling can filter,
/// aggregate or jump to the exact slot — unlike the free-text messages of
/// the older `sched::validate`.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace fastsched::analysis {

/// Diagnostic severity. Errors mean the schedule is wrong (it would compute
/// the wrong result or misreport its length); warnings flag anomalies that
/// are legal but indicate a scheduler bug or wasted machine time.
enum class Severity : std::uint8_t { kWarning, kError };

[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

/// Half-open time interval [begin, end) a diagnostic refers to.
struct TimeWindow {
  graph::Cost begin = 0;
  graph::Cost end = 0;
};

/// One finding from one rule. Schedule/DAG rules fill the node/proc/window
/// fields; source-check rules (srccheck/) fill `file`/`line` instead and
/// may carry a `fix_hint`. Unset fields are omitted from every rendering,
/// so the two families share one type, one formatter and one JSON shape.
struct Diagnostic {
  std::string rule_id;                          ///< stable rule identifier
  Severity severity = Severity::kError;
  graph::NodeId node = graph::kInvalidNode;     ///< primary offending task
  graph::NodeId related = graph::kInvalidNode;  ///< second task involved
  sched::ProcId proc = sched::kUnassignedProc;  ///< processor involved
  TimeWindow window{};                          ///< time window involved
  std::string file;                             ///< source file (srccheck)
  std::uint32_t line = 0;                       ///< 1-based line (srccheck)
  std::string fix_hint;                         ///< suggested remediation
  std::string message;                          ///< human-readable detail
};

/// Renders `d` as one line: `error[slot-overlap] n3 on P2 [1, 3): ...`.
/// Node names come from `g` when given, otherwise ids are printed.
[[nodiscard]] std::string format(const Diagnostic& d,
                                 const graph::TaskGraph* g = nullptr);

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

}  // namespace fastsched::analysis
