#pragma once

/// \file report_io.hpp
/// Machine-readable (JSON) serialization of lint reports and bound
/// certificates, so CI jobs and scripts consume diagnostics structurally
/// instead of scraping the human-readable tables. The schema is stable:
/// tools only ever *add* fields.
///
/// Shapes:
///  * diagnostics — `{"rule", "severity", "message"}` plus, when set,
///    `"node"`, `"node_name"`, `"related"`, `"proc"`, `"window": [b, e]`.
///  * schedule-lint report — `{"tool": "sched_lint", "errors",
///    "warnings", "diagnostics": [...]}` plus, when bounds were computed,
///    `"makespan"`, `"best_bound"`, `"gap"` and `"bounds": [...]`.
///  * DAG-lint report — `{"tool": "dag_lint", "summary": {...},
///    "errors", "warnings", "diagnostics": [...]}`.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/bounds.hpp"
#include "analysis/dag_lint.hpp"
#include "analysis/lint.hpp"

namespace fastsched::analysis {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// One diagnostic as a JSON object. Node names come from `g` when given.
[[nodiscard]] std::string to_json(const Diagnostic& d,
                                  const graph::TaskGraph* g = nullptr);

/// One bound certificate as a JSON object.
[[nodiscard]] std::string to_json(const BoundCertificate& cert);

/// Full schedule-lint report. When `bounds` is given, the certificates
/// plus `makespan`/`best_bound`/`gap` are included.
void write_json(std::ostream& os, const LintReport& report,
                const graph::TaskGraph* g = nullptr,
                const BoundSet* bounds = nullptr,
                std::optional<graph::Cost> makespan = std::nullopt);

/// Full DAG-lint report including the summary block.
void write_json(std::ostream& os, const DagLintReport& report,
                const RawDag* dag = nullptr);

}  // namespace fastsched::analysis
