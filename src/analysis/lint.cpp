#include "analysis/lint.hpp"

#include <sstream>
#include <utility>

#include "analysis/builtin_rules.hpp"
#include "common/error.hpp"

namespace fastsched::analysis {

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    detail::register_builtin_rules(r);
    return r;
  }();
  return registry;
}

void RuleRegistry::add(Rule rule) {
  FASTSCHED_REQUIRE(!rule.id.empty(), "lint rule needs a non-empty id");
  FASTSCHED_REQUIRE(static_cast<bool>(rule.check),
                    "lint rule '" + rule.id + "' has no check function");
  FASTSCHED_REQUIRE(find(rule.id) == nullptr,
                    "duplicate lint rule id '" + rule.id + "'");
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const noexcept {
  for (const Rule& rule : rules_) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

namespace {

// Runs `rule`, stamping id/severity on everything it appends.
void run_rule(const Rule& rule, const LintInput& input, LintReport& report) {
  const std::size_t first = report.diagnostics.size();
  rule.check(input, report.diagnostics);
  for (std::size_t i = first; i < report.diagnostics.size(); ++i) {
    Diagnostic& d = report.diagnostics[i];
    d.rule_id = rule.id;
    d.severity = rule.severity;
    if (d.severity == Severity::kError) {
      ++report.num_errors;
    } else {
      ++report.num_warnings;
    }
  }
}

}  // namespace

LintReport lint(const LintInput& input, const RuleRegistry& registry) {
  FASTSCHED_REQUIRE(input.graph != nullptr && input.schedule != nullptr,
                    "lint needs both a graph and a schedule");
  FASTSCHED_REQUIRE(input.graph->num_nodes() == input.schedule->num_nodes(),
                    "schedule sized for a different graph");

  LintReport report;
  for (const Rule& rule : registry.rules()) {
    if (rule.structural) run_rule(rule, input, report);
  }
  // Garbage placements would make every semantic rule fire spuriously.
  if (report.num_errors > 0) return report;

  for (const Rule& rule : registry.rules()) {
    if (!rule.structural) run_rule(rule, input, report);
  }
  return report;
}

LintReport lint(const graph::TaskGraph& g, const sched::Schedule& s) {
  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  return lint(input);
}

void require_clean(const graph::TaskGraph& g, const sched::Schedule& s) {
  const LintReport report = lint(g, s);
  if (report.clean()) return;
  std::ostringstream os;
  os << "schedule lint failed (" << report.num_errors << " errors, "
     << report.num_warnings << " warnings):";
  for (const Diagnostic& d : report.diagnostics) {
    os << "\n  " << format(d, &g);
  }
  throw Error(os.str());
}

}  // namespace fastsched::analysis
