#include "analysis/lint.hpp"

#include <sstream>

#include "analysis/builtin_rules.hpp"
#include "common/error.hpp"

namespace fastsched::analysis {

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    detail::register_builtin_rules(r);
    return r;
  }();
  return registry;
}

LintReport lint(const LintInput& input, const RuleRegistry& registry) {
  FASTSCHED_REQUIRE(input.graph != nullptr && input.schedule != nullptr,
                    "lint needs both a graph and a schedule");
  FASTSCHED_REQUIRE(input.graph->num_nodes() == input.schedule->num_nodes(),
                    "schedule sized for a different graph");

  LintReport report;
  run_rules(registry, input, report.diagnostics, report.num_errors,
            report.num_warnings);
  return report;
}

LintReport lint(const graph::TaskGraph& g, const sched::Schedule& s) {
  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  return lint(input);
}

void require_clean(const graph::TaskGraph& g, const sched::Schedule& s) {
  const LintReport report = lint(g, s);
  if (report.clean()) return;
  std::ostringstream os;
  os << "schedule lint failed (" << report.num_errors << " errors, "
     << report.num_warnings << " warnings):";
  for (const Diagnostic& d : report.diagnostics) {
    os << "\n  " << format(d, &g);
  }
  throw Error(os.str());
}

}  // namespace fastsched::analysis
