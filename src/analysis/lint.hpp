#pragma once

/// \file lint.hpp
/// The schedule-lint engine: a registry of named, machine-checkable rules
/// over (task graph, schedule) pairs. It supersedes the ad-hoc checks in
/// `sched/validation.hpp` — every check there maps onto a rule here — and
/// adds rules the old validator never had: communication-delay accounting
/// split out from plain ordering, idle-gap anomalies, CPN-Dominate
/// list-order invariants, and makespan-vs-reported cross-checks.
///
/// Rules come in two stages. *Structural* rules (every task placed exactly
/// once, durations match weights, processors in range) gate the rest:
/// when any of them fails, the semantic rules would only echo noise from
/// garbage placements, so the engine stops after stage one. The staging
/// and registry mechanics are the generic machinery of rule_registry.hpp,
/// shared with the DAG-lint engine (dag_lint.hpp).

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rule_registry.hpp"
#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace fastsched::analysis {

/// Everything a rule may inspect. `graph` and `schedule` are required;
/// `list` (a static scheduling list, e.g. FAST's CPN-Dominate order) and
/// `reported_length` (a makespan claimed by a scheduler or a results
/// table) unlock the rules that need them and are skipped otherwise.
struct LintInput {
  const graph::TaskGraph* graph = nullptr;
  const sched::Schedule* schedule = nullptr;
  const std::vector<graph::NodeId>* list = nullptr;
  std::optional<graph::Cost> reported_length;
};

/// One registered schedule-lint rule (the shared rule shape of
/// rule_registry.hpp instantiated for LintInput).
using Rule = BasicRule<LintInput>;

/// Ordered rule collection. The default set lives in `builtin()`; callers
/// may extend a copy with project-specific rules.
class RuleRegistry : public BasicRuleRegistry<LintInput> {
 public:
  /// The built-in rules, in documentation order:
  ///   unassigned-task, bad-duration, proc-out-of-range   (structural)
  ///   slot-overlap, precedence, comm-delay, idle-gap,
  ///   makespan-mismatch, bound-violation, list-topology,
  ///   cpn-list-order                                     (semantic)
  [[nodiscard]] static const RuleRegistry& builtin();
};

/// The outcome of one lint run.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t num_errors = 0;
  std::size_t num_warnings = 0;

  /// No findings at all.
  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }

  /// No errors (optionally: and no warnings either).
  [[nodiscard]] bool ok(bool warnings_as_errors = false) const noexcept {
    return num_errors == 0 && (!warnings_as_errors || num_warnings == 0);
  }
};

/// Runs every rule in `registry` against `input`. Structural-rule errors
/// suppress the semantic stage (see file comment). Throws
/// `fastsched::Error` when `input.graph`/`input.schedule` are missing or
/// sized for different graphs.
[[nodiscard]] LintReport lint(const LintInput& input,
                              const RuleRegistry& registry =
                                  RuleRegistry::builtin());

/// Convenience overload for the common graph + schedule case.
[[nodiscard]] LintReport lint(const graph::TaskGraph& g,
                              const sched::Schedule& s);

/// Throws `fastsched::Error` listing every diagnostic when `lint` finds
/// anything (warnings included); the drop-in strict replacement for
/// `sched::require_valid`.
void require_clean(const graph::TaskGraph& g, const sched::Schedule& s);

}  // namespace fastsched::analysis
