#include "analysis/diagnostics.hpp"

#include <ostream>
#include <sstream>

namespace fastsched::analysis {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string format(const Diagnostic& d, const graph::TaskGraph* g) {
  std::ostringstream os;
  if (!d.file.empty()) {
    os << d.file << ':' << d.line << ": ";
  }
  os << to_string(d.severity) << '[' << d.rule_id << ']';
  const auto name = [&](graph::NodeId n) -> std::string {
    if (g != nullptr && n < g->num_nodes()) return g->name(n);
    return "node" + std::to_string(n);
  };
  if (d.node != graph::kInvalidNode) {
    os << ' ' << name(d.node);
    if (d.related != graph::kInvalidNode) os << '/' << name(d.related);
  }
  if (d.proc != sched::kUnassignedProc) os << " on P" << d.proc;
  if (d.window.begin != 0 || d.window.end != 0) {
    os << " [" << d.window.begin << ", " << d.window.end << ')';
  }
  os << ": " << d.message;
  if (!d.fix_hint.empty()) os << " (fix: " << d.fix_hint << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << format(d);
}

}  // namespace fastsched::analysis
