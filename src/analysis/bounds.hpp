#pragma once

/// \file bounds.hpp
/// Machine-checkable makespan lower bounds. Each bound is emitted as a
/// structured certificate carrying the derivation witness, so a schedule
/// whose reported makespan beats a certificate is *provably* the product
/// of an accounting bug — the static cross-check the `bound-violation`
/// lint rule and the `sched_diff` differential oracle are built on.
///
/// The bound families (all assume every task is placed exactly once,
/// i.e. no task duplication — true for every scheduler in this library):
///
///  * `cp-comp` — the communication-free critical path: the longest chain
///    of computation costs. Holds for every processor count, since a chain
///    can never run faster than its serial work even with free messages.
///  * `comm-cp` — a communication-aware strengthening of `cp-comp`.
///    For a join node, exhaustive case analysis over the placements of
///    its two heaviest predecessors (co-located and serialized, or
///    separated and paying the message delay) yields an earliest start
///    no schedule can beat; propagated in topological order and combined
///    with the computation-only tail. Holds for every processor count.
///  * `comm-cp-tail` — `comm-cp` with the computation-only tail replaced
///    by the backward communication-aware pass (`comm_aware_tail`, the
///    same case analysis on the edge-reversed graph): every schedule is at
///    least est(n) + w(n) + tail(n) long for every n. Dominates both
///    `comm-cp` and the pure backward mirror; kept separate so the
///    forward-only certificate stays independently checkable.
///  * `work` — total computation divided by the processor pool: p
///    processors cannot burn work faster than p units per time step.
///  * `fernandez` — the exact Fernández/Bussell interval-density bound:
///    fixing a reference makespan T₀ (the best of the bounds above) gives
///    every task an execution window [earliest start, T₀ − tail]; if some
///    interval [a, b) must contain more mandatory work than p·(b − a),
///    the makespan provably exceeds T₀ by the (relaxed) excess. The
///    search examines *every* (release, deadline) endpoint pair — the
///    classical sufficient set — via a sorted-breakpoint sweep that is
///    O(1) amortized per pair. Catches width bottlenecks that neither the
///    path nor the average-work bound sees, and is what the exact
///    branch-and-bound solver (src/exact) uses as its static floor.
///  * `interval-density` — the retired endpoint-sampling variant of the
///    same bound, kept behind `BoundOptions::density_endpoints > 0` as an
///    escape hatch for very large graphs. Never stronger than
///    `fernandez` (it maximizes over a subset of the same intervals).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::analysis {

/// One certified lower bound on the makespan of any valid schedule.
struct BoundCertificate {
  std::string id;            ///< bound family: cp-comp, comm-cp, work, ...
  graph::Cost value = 0;     ///< certified lower bound
  /// Processor-pool size the certificate assumes; 0 = holds for every
  /// processor count.
  std::size_t num_procs = 0;
  std::string detail;        ///< human-readable derivation
  /// Nodes backing the bound (the critical path for cp-comp, the binding
  /// join/exit node for comm-cp, the tasks of the binding interval for
  /// interval-density). Empty for aggregate bounds like work.
  std::vector<graph::NodeId> witness;
  /// interval-density only: the overloaded interval [begin, end).
  TimeWindow interval{};
};

/// Knobs for `compute_bounds`.
struct BoundOptions {
  /// Processor-pool size for the pool-dependent bounds (work,
  /// fernandez); 0 emits only the pool-independent certificates.
  std::size_t num_procs = 0;
  /// The density bound costs O(v² log v) for the exact interval search;
  /// turn it off on hot paths that only want the O(v + e) bounds.
  bool interval_density = true;
  /// 0 (the default) runs the exact Fernández search over every
  /// (release, deadline) endpoint pair and emits the `fernandez`
  /// certificate. A positive value k samples the endpoint set down to k
  /// points first and emits the legacy `interval-density` certificate —
  /// sampling only weakens the bound (a maximum over fewer intervals),
  /// never unsounds it; use it for very large graphs where O(v² log v)
  /// is too hot.
  std::size_t density_endpoints = 0;
};

/// The certificates computed for one graph.
struct BoundSet {
  std::vector<BoundCertificate> certificates;

  /// Largest certified bound (0 when empty).
  [[nodiscard]] graph::Cost best() const noexcept;

  /// The certificate achieving `best()`, or nullptr when empty.
  [[nodiscard]] const BoundCertificate* binding() const noexcept;

  /// Certificate by id, or nullptr.
  [[nodiscard]] const BoundCertificate* find(
      std::string_view id) const noexcept;
};

/// Computes every applicable bound certificate for `g`.
[[nodiscard]] BoundSet compute_bounds(const graph::TaskGraph& g,
                                      const BoundOptions& options = {});

/// Convenience overload: pool-dependent bounds for `num_procs` processors.
[[nodiscard]] BoundSet compute_bounds(const graph::TaskGraph& g,
                                      std::size_t num_procs);

/// One certification request for the batch API: a graph plus the
/// processor-pool size its certificates should assume.
struct BoundRequest {
  const graph::TaskGraph* graph = nullptr;
  std::size_t num_procs = 0;
};

/// Computes `compute_bounds` for every request, fanned out over `jobs`
/// worker threads of a `ThreadPool` (0 = FASTSCHED_JOBS / hardware
/// concurrency, 1 = inline). Results come back in request order and are
/// bit-identical to the sequential computation — `compute_bounds` is a
/// pure function of its inputs, so only the merge order matters and that
/// is fixed by the request index. This is what `sched_lint --bounds` and
/// the differential oracle use on multi-graph inputs.
[[nodiscard]] std::vector<BoundSet> compute_bounds_batch(
    const std::vector<BoundRequest>& requests, const BoundOptions& options,
    std::size_t jobs = 1);

/// Relative optimality gap (makespan − best) / best; 0 when the bound set
/// is empty or the best bound is zero. Negative means the makespan beats a
/// certificate — an accounting bug by construction.
[[nodiscard]] double optimality_gap(const BoundSet& bounds,
                                    graph::Cost makespan) noexcept;

/// The communication-aware earliest start times underlying the `comm-cp`
/// bound: est[n] lower-bounds start(n) in every duplication-free schedule
/// on any processor count. Exposed for tests and tools.
[[nodiscard]] std::vector<graph::Cost> comm_aware_est(
    const graph::TaskGraph& g);

/// Backward mirror of `comm_aware_est`: tail[n] lower-bounds the time
/// between finish(n) and the makespan in every duplication-free schedule
/// on any processor count. Soundness by time reversal — any schedule read
/// backwards is a valid schedule of the edge-reversed graph, so the
/// forward pass's join-placement case analysis applies verbatim to each
/// node's successors. Always >= the computation-only tail
/// (static level − weight); combined per-node with live forward evidence
/// (a replayed finish time) it gives the max(forward, backward) floor the
/// evaluators' bound-based early rejection uses.
[[nodiscard]] std::vector<graph::Cost> comm_aware_tail(
    const graph::TaskGraph& g);

/// Per-node backward bounds plus a static whole-graph floor, packaged for
/// `IncrementalEvaluator::set_reject_tails`.
struct RejectionTails {
  std::vector<graph::Cost> tail;  ///< comm_aware_tail(g)
  graph::Cost floor = 0;          ///< best static certificate for the pool
};

/// Builds rejection tails for `g` on `num_procs` processors. Uses only the
/// O(v + e) certificates (no interval-density sweep) so schedulers can
/// call it once per run without changing their complexity.
[[nodiscard]] RejectionTails make_rejection_tails(const graph::TaskGraph& g,
                                                  std::size_t num_procs);

}  // namespace fastsched::analysis
