#include "analysis/builtin_rules.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/bounds.hpp"
#include "graph/levels.hpp"

namespace fastsched::analysis::detail {
namespace {

using graph::Adjacency;
using graph::approx_equal;
using graph::Cost;
using graph::definitely_less;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

// Allows `a >= b` up to the shared cost tolerance.
bool at_least(Cost a, Cost b) { return a > b || approx_equal(a, b); }

std::string num(Cost c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

// --- structural rules ------------------------------------------------------

void check_unassigned(const LintInput& in, std::vector<Diagnostic>& out) {
  const Schedule& s = *in.schedule;
  for (NodeId n = 0; n < s.num_nodes(); ++n) {
    if (s.is_assigned(n)) continue;
    Diagnostic d;
    d.node = n;
    d.message = "task was never placed on any processor";
    out.push_back(std::move(d));
  }
}

void check_bad_duration(const LintInput& in, std::vector<Diagnostic>& out) {
  const TaskGraph& g = *in.graph;
  const Schedule& s = *in.schedule;
  for (NodeId n = 0; n < s.num_nodes(); ++n) {
    if (!s.is_assigned(n)) continue;
    const Cost duration = s.finish(n) - s.start(n);
    if (approx_equal(duration, g.weight(n))) continue;
    Diagnostic d;
    d.node = n;
    d.proc = s.proc(n);
    d.window = {s.start(n), s.finish(n)};
    d.message = "task runs for " + num(duration) + " but has weight " +
                num(g.weight(n));
    out.push_back(std::move(d));
  }
}

void check_proc_range(const LintInput& in, std::vector<Diagnostic>& out) {
  const Schedule& s = *in.schedule;
  for (NodeId n = 0; n < s.num_nodes(); ++n) {
    if (!s.is_assigned(n)) continue;
    const ProcId p = s.proc(n);
    if (p < s.num_procs()) continue;
    Diagnostic d;
    d.node = n;
    d.proc = p;
    d.message = "task references processor " + std::to_string(p) +
                " outside the pool of " + std::to_string(s.num_procs());
    out.push_back(std::move(d));
  }
}

// --- semantic rules --------------------------------------------------------

// No two tasks on one processor may overlap with positive measure; touching
// endpoints and zero-duration tasks are fine. Sorting by start keeps the
// check valid for insertion-based algorithms whose assignment order is not
// start-time order; the running max-finish catches non-adjacent overlaps.
void check_slot_overlap(const LintInput& in, std::vector<Diagnostic>& out) {
  const Schedule& s = *in.schedule;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const auto tasks = s.tasks_on(p);
    std::vector<NodeId> by_start(tasks.begin(), tasks.end());
    std::stable_sort(
        by_start.begin(), by_start.end(),
        [&](NodeId a, NodeId b) { return s.start(a) < s.start(b); });
    Cost max_finish = 0.0;
    NodeId max_finish_node = graph::kInvalidNode;
    for (const NodeId b : by_start) {
      const bool positive = s.finish(b) > s.start(b);
      if (positive && max_finish_node != graph::kInvalidNode &&
          !at_least(s.start(b), max_finish)) {
        const NodeId a = max_finish_node;
        Diagnostic d;
        d.node = b;
        d.related = a;
        d.proc = p;
        d.window = {s.start(b), std::min(s.finish(a), s.finish(b))};
        d.message = "slot [" + num(s.start(b)) + ", " + num(s.finish(b)) +
                    ") overlaps [" + num(s.start(a)) + ", " +
                    num(s.finish(a)) + ")";
        out.push_back(std::move(d));
      }
      if (s.finish(b) > max_finish || max_finish_node == graph::kInvalidNode) {
        max_finish = s.finish(b);
        max_finish_node = b;
      }
    }
  }
}

// A child may never start before a parent finishes, on any processor pair;
// violations of the *additional* cross-processor message delay are the
// separate comm-delay rule below, so the two failure modes are
// distinguishable in reports.
void check_precedence(const LintInput& in, std::vector<Diagnostic>& out) {
  const TaskGraph& g = *in.graph;
  const Schedule& s = *in.schedule;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Adjacency& succ : g.successors(n)) {
      const NodeId c = succ.node;
      if (at_least(s.start(c), s.finish(n))) continue;
      Diagnostic d;
      d.node = c;
      d.related = n;
      d.proc = s.proc(c);
      d.window = {s.start(c), s.finish(n)};
      d.message = "starts at " + num(s.start(c)) + " before parent finishes at " +
                  num(s.finish(n));
      out.push_back(std::move(d));
    }
  }
}

void check_comm_delay(const LintInput& in, std::vector<Diagnostic>& out) {
  const TaskGraph& g = *in.graph;
  const Schedule& s = *in.schedule;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Adjacency& succ : g.successors(n)) {
      const NodeId c = succ.node;
      if (s.proc(n) == s.proc(c)) continue;
      // Plain ordering violations belong to the precedence rule.
      if (!at_least(s.start(c), s.finish(n))) continue;
      const Cost arrival = s.finish(n) + succ.cost;
      if (at_least(s.start(c), arrival)) continue;
      Diagnostic d;
      d.node = c;
      d.related = n;
      d.proc = s.proc(c);
      d.window = {s.start(c), arrival};
      d.message = "starts at " + num(s.start(c)) +
                  " before the message from P" + std::to_string(s.proc(n)) +
                  " arrives at " + num(arrival);
      out.push_back(std::move(d));
    }
  }
}

// A task that starts later than both its data arrival and the previous
// task's finish on its processor could be shifted left without violating
// anything: legal, but a scheduler-quality anomaly worth flagging.
void check_idle_gap(const LintInput& in, std::vector<Diagnostic>& out) {
  const TaskGraph& g = *in.graph;
  const Schedule& s = *in.schedule;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const auto tasks = s.tasks_on(p);
    std::vector<NodeId> by_start(tasks.begin(), tasks.end());
    std::stable_sort(
        by_start.begin(), by_start.end(),
        [&](NodeId a, NodeId b) { return s.start(a) < s.start(b); });
    Cost prev_finish = 0.0;
    for (const NodeId n : by_start) {
      Cost ready = 0.0;
      for (const Adjacency& pred : g.predecessors(n)) {
        const Cost arrival = s.proc(pred.node) == p
                                 ? s.finish(pred.node)
                                 : s.finish(pred.node) + pred.cost;
        ready = std::max(ready, arrival);
      }
      const Cost earliest = std::max(ready, prev_finish);
      if (definitely_less(earliest, s.start(n))) {
        Diagnostic d;
        d.node = n;
        d.proc = p;
        d.window = {earliest, s.start(n)};
        d.message = "idle gap: task could start at " + num(earliest) +
                    " but starts at " + num(s.start(n));
        out.push_back(std::move(d));
      }
      prev_finish = std::max(prev_finish, s.finish(n));
    }
  }
}

// Schedule::length() must equal the recomputed maximum finish time, and
// both must match any externally reported makespan (results tables, bench
// cells, serialized runs).
void check_makespan(const LintInput& in, std::vector<Diagnostic>& out) {
  const Schedule& s = *in.schedule;
  Cost recomputed = 0.0;
  NodeId last = graph::kInvalidNode;
  for (NodeId n = 0; n < s.num_nodes(); ++n) {
    if (!s.is_assigned(n)) continue;
    if (last == graph::kInvalidNode || s.finish(n) > recomputed) {
      recomputed = s.finish(n);
      last = n;
    }
  }
  if (!approx_equal(recomputed, s.length())) {
    Diagnostic d;
    d.node = last;
    d.window = {std::min(recomputed, s.length()),
                std::max(recomputed, s.length())};
    d.message = "schedule reports length " + num(s.length()) +
                " but tasks finish by " + num(recomputed);
    out.push_back(std::move(d));
  }
  if (in.reported_length && !approx_equal(recomputed, *in.reported_length)) {
    Diagnostic d;
    d.node = last;
    d.window = {std::min(recomputed, *in.reported_length),
                std::max(recomputed, *in.reported_length)};
    d.message = "externally reported makespan " + num(*in.reported_length) +
                " does not match the schedule's " + num(recomputed);
    out.push_back(std::move(d));
  }
}

// A makespan below a certified lower bound (bounds.hpp) cannot come from
// a correct schedule of this graph: some cost was dropped or shrunk in
// accounting. Cross-checks the schedule against every certificate for its
// processor-pool size and names the violated bound. The density bound is
// skipped on very large graphs to keep lint O(v + e) there.
void check_bound_violation(const LintInput& in, std::vector<Diagnostic>& out) {
  const TaskGraph& g = *in.graph;
  const Schedule& s = *in.schedule;
  if (g.num_nodes() == 0) return;
  Cost makespan = 0;
  for (NodeId n = 0; n < s.num_nodes(); ++n) {
    if (!s.is_assigned(n)) return;  // partial schedules prove nothing
    makespan = std::max(makespan, s.finish(n));
  }
  BoundOptions options;
  options.num_procs = s.num_procs();
  options.interval_density = g.num_nodes() <= 4096;
  // Exact Fernández search is O(v² log v); past 1k nodes lint falls back
  // to the sampled variant (weaker, still sound) to stay responsive.
  options.density_endpoints = g.num_nodes() <= 1024 ? 0 : 96;
  const BoundSet bounds = compute_bounds(g, options);
  for (const BoundCertificate& cert : bounds.certificates) {
    if (!definitely_less(makespan, cert.value)) continue;
    Diagnostic d;
    if (!cert.witness.empty()) d.node = cert.witness.front();
    d.window = {makespan, cert.value};
    d.message = "makespan " + num(makespan) + " beats the certified '" +
                cert.id + "' lower bound " + num(cert.value) +
                " (gap " + num(makespan - cert.value) + "): " + cert.detail;
    out.push_back(std::move(d));
  }
}

// --- list rules (run only when a scheduling list is supplied) --------------

void check_list_topology(const LintInput& in, std::vector<Diagnostic>& out) {
  if (in.list == nullptr) return;
  const TaskGraph& g = *in.graph;
  const auto& list = *in.list;
  if (list.size() != g.num_nodes()) {
    Diagnostic d;
    d.message = "list has " + std::to_string(list.size()) + " entries for " +
                std::to_string(g.num_nodes()) + " nodes";
    out.push_back(std::move(d));
    return;
  }
  std::vector<std::size_t> pos(g.num_nodes(), g.num_nodes());
  for (std::size_t i = 0; i < list.size(); ++i) {
    const NodeId n = list[i];
    if (n >= g.num_nodes()) {
      Diagnostic d;
      d.message = "list entry " + std::to_string(i) +
                  " references unknown node " + std::to_string(n);
      out.push_back(std::move(d));
      return;
    }
    if (pos[n] != g.num_nodes()) {
      Diagnostic d;
      d.node = n;
      d.message = "node appears twice in the list (positions " +
                  std::to_string(pos[n]) + " and " + std::to_string(i) + ")";
      out.push_back(std::move(d));
      return;
    }
    pos[n] = i;
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Adjacency& succ : g.successors(n)) {
      if (pos[n] < pos[succ.node]) continue;
      Diagnostic d;
      d.node = succ.node;
      d.related = n;
      d.message = "child at list position " + std::to_string(pos[succ.node]) +
                  " precedes its parent at " + std::to_string(pos[n]);
      out.push_back(std::move(d));
    }
  }
}

// CPN-Dominate invariant (paper §4.1): critical-path nodes appear in the
// list in non-decreasing t-level order (for CPNs, descending b-level is
// the same order, since t + b = CP length exactly on the critical path).
void check_cpn_order(const LintInput& in, std::vector<Diagnostic>& out) {
  if (in.list == nullptr) return;
  const TaskGraph& g = *in.graph;
  if (g.num_nodes() == 0) return;
  const graph::LevelInfo levels = graph::compute_levels(g);
  NodeId prev = graph::kInvalidNode;
  for (const NodeId n : *in.list) {
    if (n >= g.num_nodes() || !levels.is_cpn[n]) continue;
    if (prev != graph::kInvalidNode &&
        definitely_less(levels.t_level[n], levels.t_level[prev])) {
      Diagnostic d;
      d.node = n;
      d.related = prev;
      d.window = {levels.t_level[n], levels.t_level[prev]};
      d.message = "CPN with t-level " + num(levels.t_level[n]) +
                  " listed after CPN with t-level " + num(levels.t_level[prev]);
      out.push_back(std::move(d));
    }
    prev = n;
  }
}

}  // namespace

void register_builtin_rules(RuleRegistry& registry) {
  const auto add = [&](const char* id, Severity severity, bool structural,
                       const char* summary,
                       void (*check)(const LintInput&,
                                     std::vector<Diagnostic>&)) {
    registry.add(Rule{id, severity, structural, summary, check});
  };
  add("unassigned-task", Severity::kError, true,
      "every task is placed on exactly one processor", check_unassigned);
  add("bad-duration", Severity::kError, true,
      "finish - start equals the task weight", check_bad_duration);
  add("proc-out-of-range", Severity::kError, true,
      "placements reference processors inside the pool", check_proc_range);
  add("slot-overlap", Severity::kError, false,
      "no two tasks overlap on one processor (touching endpoints allowed)",
      check_slot_overlap);
  add("precedence", Severity::kError, false,
      "no child starts before a parent finishes", check_precedence);
  add("comm-delay", Severity::kError, false,
      "cross-processor children wait for the message delay", check_comm_delay);
  add("idle-gap", Severity::kWarning, false,
      "no task starts later than its data and processor allow",
      check_idle_gap);
  add("makespan-mismatch", Severity::kError, false,
      "reported schedule length matches the latest finish time",
      check_makespan);
  add("bound-violation", Severity::kError, false,
      "the makespan respects every certified lower bound (bounds.hpp)",
      check_bound_violation);
  add("list-topology", Severity::kError, false,
      "the scheduling list is a topological permutation of all nodes",
      check_list_topology);
  add("cpn-list-order", Severity::kError, false,
      "CPNs appear in the list in non-decreasing t-level order",
      check_cpn_order);
}

}  // namespace fastsched::analysis::detail
