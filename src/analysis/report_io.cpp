#include "analysis/report_io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace fastsched::analysis {
namespace {

// Doubles printed with enough digits to round-trip.
std::string num(graph::Cost c) {
  std::ostringstream os;
  os << std::setprecision(17) << c;
  return os.str();
}

std::string quoted(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

void append_node_fields(std::ostringstream& os, const Diagnostic& d,
                        const graph::TaskGraph* g) {
  if (d.node != graph::kInvalidNode) {
    os << ", \"node\": " << d.node;
    if (g != nullptr && d.node < g->num_nodes()) {
      os << ", \"node_name\": " << quoted(g->name(d.node));
    }
  }
  if (d.related != graph::kInvalidNode) {
    os << ", \"related\": " << d.related;
  }
  if (d.proc != sched::kUnassignedProc) {
    os << ", \"proc\": " << d.proc;
  }
  if (d.window.begin != 0 || d.window.end != 0) {
    os << ", \"window\": [" << num(d.window.begin) << ", "
       << num(d.window.end) << ']';
  }
  if (!d.file.empty()) {
    os << ", \"file\": " << quoted(d.file) << ", \"line\": " << d.line;
  }
  if (!d.fix_hint.empty()) {
    os << ", \"fix_hint\": " << quoted(d.fix_hint);
  }
}

template <typename Reports>
void write_diagnostics(std::ostream& os, const Reports& diagnostics,
                       const graph::TaskGraph* g) {
  os << "\"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << to_json(diagnostics[i], g);
  }
  os << (diagnostics.empty() ? "]" : "\n  ]");
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const Diagnostic& d, const graph::TaskGraph* g) {
  std::ostringstream os;
  os << "{\"rule\": " << quoted(d.rule_id) << ", \"severity\": "
     << quoted(to_string(d.severity));
  append_node_fields(os, d, g);
  os << ", \"message\": " << quoted(d.message) << '}';
  return os.str();
}

std::string to_json(const BoundCertificate& cert) {
  std::ostringstream os;
  os << "{\"id\": " << quoted(cert.id) << ", \"value\": " << num(cert.value)
     << ", \"procs\": " << cert.num_procs;
  if (!cert.witness.empty()) {
    os << ", \"witness\": [";
    for (std::size_t i = 0; i < cert.witness.size(); ++i) {
      os << (i == 0 ? "" : ", ") << cert.witness[i];
    }
    os << ']';
  }
  if (cert.interval.begin != 0 || cert.interval.end != 0) {
    os << ", \"interval\": [" << num(cert.interval.begin) << ", "
       << num(cert.interval.end) << ']';
  }
  os << ", \"detail\": " << quoted(cert.detail) << '}';
  return os.str();
}

void write_json(std::ostream& os, const LintReport& report,
                const graph::TaskGraph* g, const BoundSet* bounds,
                std::optional<graph::Cost> makespan) {
  os << "{\n  \"tool\": \"sched_lint\",\n  \"errors\": " << report.num_errors
     << ",\n  \"warnings\": " << report.num_warnings << ",\n  ";
  write_diagnostics(os, report.diagnostics, g);
  if (bounds != nullptr) {
    os << ",\n  \"bounds\": [";
    for (std::size_t i = 0; i < bounds->certificates.size(); ++i) {
      os << (i == 0 ? "\n    " : ",\n    ")
         << to_json(bounds->certificates[i]);
    }
    os << (bounds->certificates.empty() ? "]" : "\n  ]");
    os << ",\n  \"best_bound\": " << num(bounds->best());
    if (makespan) {
      os << ",\n  \"makespan\": " << num(*makespan)
         << ",\n  \"gap\": " << num(optimality_gap(*bounds, *makespan));
    }
  }
  os << "\n}\n";
}

void write_json(std::ostream& os, const DagLintReport& report,
                const RawDag* dag) {
  const DagSummary& s = report.summary;
  os << "{\n  \"tool\": \"dag_lint\",\n  \"summary\": {"
     << "\"nodes\": " << s.num_nodes << ", \"edges\": " << s.num_edges
     << ", \"sources\": [";
  for (std::size_t i = 0; i < s.sources.size(); ++i) {
    os << (i == 0 ? "" : ", ") << s.sources[i];
  }
  os << "], \"sinks\": [";
  for (std::size_t i = 0; i < s.sinks.size(); ++i) {
    os << (i == 0 ? "" : ", ") << s.sinks[i];
  }
  os << "], \"components\": " << s.components << ", \"acyclic\": "
     << (s.acyclic ? "true" : "false")
     << ", \"total_work\": " << num(s.total_work)
     << ", \"total_comm\": " << num(s.total_comm)
     << ", \"ccr\": " << num(s.ccr) << "},\n  \"errors\": "
     << report.num_errors << ",\n  \"warnings\": " << report.num_warnings
     << ",\n  ";
  // Diagnostic node names for raw graphs are resolved through the raw
  // name table in the message text already; ids suffice here.
  (void)dag;
  write_diagnostics(os, report.diagnostics, nullptr);
  os << "\n}\n";
}

}  // namespace fastsched::analysis
