#include "baselines/etf.hpp"

#include "baselines/bounded_common.hpp"

namespace fastsched::baselines {

sched::Schedule EtfScheduler::run(const graph::TaskGraph& g,
                                  const sched::SchedulerOptions& options) const {
  using detail::BoundedState;
  using graph::Cost;
  using graph::NodeId;
  using sched::ProcId;

  const std::size_t num_procs = sched::effective_procs(g, options);
  BoundedState state(g, num_procs);
  const std::vector<Cost> sl = graph::compute_static_levels(g);

  while (!state.done()) {
    NodeId best_node = graph::kInvalidNode;
    ProcId best_proc = 0;
    Cost best_est = 0.0;
    for (const NodeId n : state.ready()) {
      const auto [p, est] = state.best_proc(n);
      const bool better =
          best_node == graph::kInvalidNode ||
          graph::definitely_less(est, best_est) ||
          // Tie on EST: higher static level wins (paper §3.2); remaining
          // ties to the lower id for determinism.
          (graph::approx_equal(est, best_est) &&
           (sl[n] > sl[best_node] ||
            (graph::approx_equal(sl[n], sl[best_node]) && n < best_node)));
      if (better) {
        best_node = n;
        best_proc = p;
        best_est = est;
      }
    }
    state.place(best_node, best_proc);
  }
  return std::move(state).take_schedule();
}

}  // namespace fastsched::baselines
