#include "baselines/bsa.hpp"

#include <algorithm>
#include <deque>

#include "fast/cpn_dominate.hpp"
#include "fast/incremental_evaluator.hpp"
#include "graph/classification.hpp"

namespace fastsched::baselines {
namespace {

using graph::Cost;
using graph::NodeId;
using sched::ProcId;

/// Mesh neighbours of processor `p` (2–4 of them).
void neighbours(const sim::MeshConfig& mesh, ProcId p,
                std::vector<ProcId>& out) {
  out.clear();
  const int x = static_cast<int>(p) % mesh.width;
  const int y = static_cast<int>(p) / mesh.width;
  if (x + 1 < mesh.width) out.push_back(p + 1);
  if (x > 0) out.push_back(p - 1);
  if (y + 1 < mesh.height) out.push_back(p + static_cast<ProcId>(mesh.width));
  if (y > 0) out.push_back(p - static_cast<ProcId>(mesh.width));
}

}  // namespace

sched::Schedule BsaScheduler::run(const graph::TaskGraph& g,
                                  const sched::SchedulerOptions& options) const {
  const std::size_t v = g.num_nodes();
  const std::size_t num_procs =
      options.num_procs > 0
          ? std::min<std::size_t>(options.num_procs,
                                  static_cast<std::size_t>(mesh_.procs()))
          : static_cast<std::size_t>(mesh_.procs());
  if (v == 0) return sched::Schedule(0, std::max<std::size_t>(num_procs, 1));

  // Serial injection: everything on the pivot (processor 0) in
  // CPN-Dominate order.
  const graph::LevelInfo levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  auto list = fast::build_cpn_dominate_list(g, levels, classes);
  // kAuto replay: BSA's unbounded probes pick the contiguous restart or
  // the event worklist per move; either way pending_start() feeds the
  // bubble tie-break and results stay bit-identical.
  fast::IncrementalEvaluator evaluator(g, list, num_procs,
                                       fast::IncrementalEvaluator::kAutoInterval,
                                       fast::ReplayPolicy::kAuto);
  std::vector<ProcId> assignment(v, 0);
  Cost length = evaluator.reset(assignment);

  // Per-task start times under the current assignment (recomputed from a
  // materialized schedule after each accepted migration batch).
  const auto starts_of = [&](const std::vector<ProcId>& a) {
    const sched::Schedule s = evaluator.materialize(a);
    std::vector<Cost> starts(v);
    for (NodeId n = 0; n < v; ++n) starts[n] = s.start(n);
    return starts;
  };
  std::vector<Cost> starts = starts_of(assignment);

  // Breadth-first processor order over the mesh from the pivot.
  std::vector<ProcId> bfs_order;
  {
    std::vector<bool> seen(num_procs, false);
    std::deque<ProcId> queue{0};
    seen[0] = true;
    std::vector<ProcId> adj;
    while (!queue.empty()) {
      const ProcId p = queue.front();
      queue.pop_front();
      bfs_order.push_back(p);
      neighbours(mesh_, p, adj);
      for (const ProcId q : adj) {
        if (q < num_procs && !seen[q]) {
          seen[q] = true;
          queue.push_back(q);
        }
      }
    }
  }

  // Bubbling passes: for each processor in BFS order, try to migrate each
  // of its tasks (in list order) to an adjacent processor when that
  // strictly shortens the schedule, or keeps it equal while strictly
  // reducing the task's own start time (the published "bubble" condition).
  // Sweeps repeat until quiescent (bounded by the mesh diameter): a task
  // reaches distance-k processors only after k sweeps.
  std::vector<ProcId> adj;
  const auto run_sweep = [&] {
    for (const ProcId p : bfs_order) {
      neighbours(mesh_, p, adj);
      adj.erase(std::remove_if(adj.begin(), adj.end(),
                               [&](ProcId q) { return q >= num_procs; }),
                adj.end());
      if (adj.empty()) continue;
      for (const NodeId n : list) {
        if (assignment[n] != p) continue;
        ProcId best_proc = p;
        Cost best_length = length;
        Cost best_start = starts[n];
        for (const ProcId q : adj) {
          // Unbounded scan: the bubble condition also accepts
          // equal-length moves, so the exact candidate length is needed.
          const Cost candidate = *evaluator.evaluate_move(n, q);
          if (graph::definitely_less(candidate, best_length)) {
            best_length = candidate;
            best_proc = q;
          } else if (graph::approx_equal(candidate, best_length)) {
            // The scan already computed the moved task's start time — no
            // materialized trial schedule needed for the tie-break.
            const Cost trial_start = evaluator.pending_start();
            if (graph::definitely_less(trial_start, best_start)) {
              best_start = trial_start;
              best_proc = q;
            }
          }
        }
        evaluator.revert();
        if (best_proc != p) {
          (void)evaluator.evaluate_move(n, best_proc);
          length = evaluator.commit();
          assignment[n] = best_proc;
          starts = starts_of(assignment);
        }
      }
    }
  };

  const int max_sweeps = mesh_.width + mesh_.height;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    const Cost length_before_sweep = length;
    run_sweep();
    if (!graph::definitely_less(length, length_before_sweep)) break;
  }

  return evaluator.materialize(assignment);
}

}  // namespace fastsched::baselines
