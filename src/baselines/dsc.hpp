#pragma once

/// \file dsc.hpp
/// The DSC (Dominant Sequence Clustering) baseline of Yang & Gerasoulis
/// (paper §3.4), reimplemented from the TPDS'94 description.
///
/// Every node starts in its own unit cluster. Nodes are examined in
/// priority order (t-level + b-level, the length of the longest path
/// through the node — the Dominant Sequence), restricted to *free* nodes
/// (all parents examined) so t-levels can be maintained incrementally and
/// b-levels stay constant, giving O((e + v) log v). An examined node is
/// merged into the parent cluster that minimizes its start time (zeroing
/// the incoming edges from that cluster), and only if that strictly beats
/// starting in a fresh cluster; DSRW (the Dominant Sequence Reduction
/// Warranty) guards the case where a higher-priority partially-free node
/// would be delayed: when the top partial-free node is a child of the node
/// being examined and outranks it, the cluster choice minimizes the child's
/// future data arrival instead of the node's own start time.
///
/// Clusters map 1:1 to processors, so DSC "uses O(v) processors", exactly
/// the behaviour the paper's evaluation penalizes it for.

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class DscScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DSC"; }

  [[nodiscard]] bool unbounded_processors() const override { return true; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
