#pragma once

/// \file ez.hpp
/// EZ (Edge Zeroing; Sarkar 1989) — the classic cost-driven clustering
/// scheduler from the paper's research context. Edges are examined in
/// descending communication cost; an edge is "zeroed" (its endpoints'
/// clusters merged) iff the merge does not increase the schedule length,
/// re-estimated after each tentative merge by a b-level-ordered replay.
/// O(e·(v + e)).

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class EzScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "EZ"; }

  [[nodiscard]] bool unbounded_processors() const override { return true; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
