#include "baselines/dsc.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "graph/levels.hpp"

namespace fastsched::baselines {
namespace {

using graph::Adjacency;
using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

constexpr Cost kInf = std::numeric_limits<Cost>::max();
constexpr std::uint32_t kNoCluster = std::numeric_limits<std::uint32_t>::max();

/// Max-priority queue with lazy invalidation: entries carry the priority
/// they were pushed with; stale entries (priority changed since push) are
/// skipped on pop.
class LazyMaxQueue {
 public:
  void push(Cost priority, NodeId n) { heap_.emplace(priority, n); }

  /// Pops the highest-priority entry whose recorded priority still matches
  /// `current` and for which `alive` holds. Returns kInvalidNode when empty.
  template <typename PriorityFn, typename AliveFn>
  NodeId pop_valid(PriorityFn current, AliveFn alive) {
    while (!heap_.empty()) {
      const auto [prio, n] = heap_.top();
      if (!alive(n) || !graph::approx_equal(prio, current(n))) {
        heap_.pop();
        continue;
      }
      heap_.pop();
      return n;
    }
    return graph::kInvalidNode;
  }

  /// Highest valid entry without removing it.
  template <typename PriorityFn, typename AliveFn>
  std::pair<NodeId, Cost> peek_valid(PriorityFn current, AliveFn alive) {
    while (!heap_.empty()) {
      const auto [prio, n] = heap_.top();
      if (!alive(n) || !graph::approx_equal(prio, current(n))) {
        heap_.pop();
        continue;
      }
      return {n, prio};
    }
    return {graph::kInvalidNode, -kInf};
  }

 private:
  // (priority, ~node) so that ties break toward the smaller node id.
  struct Entry {
    Cost priority;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> heap_;

  // Allow structured bindings on top().
  friend struct EntryAccess;
};

}  // namespace

Schedule DscScheduler::run(const graph::TaskGraph& g,
                           const sched::SchedulerOptions&) const {
  const std::size_t v = g.num_nodes();
  const std::size_t num_procs = std::max<std::size_t>(v, 1);
  Schedule schedule(v, num_procs);
  if (v == 0) return schedule;

  // b-levels are static during the DSC pass: nodes are examined in
  // topological order (only free nodes get scheduled), so every path below
  // an unexamined node consists of unzeroed edges.
  const std::vector<Cost> blevel = graph::compute_b_levels(g);

  // t-level estimate, refined as parents get scheduled: for a free node it
  // is exact (max over parents of finish + cost, cluster-blind); priority =
  // tlevel + blevel.
  std::vector<Cost> tlevel(v, 0.0);
  const auto priority = [&](NodeId n) { return tlevel[n] + blevel[n]; };

  std::vector<std::uint32_t> cluster_of(v, kNoCluster);
  std::vector<Cost> cluster_ready;  // finish time of last task per cluster
  std::vector<Cost> start_of(v, 0.0);
  std::vector<Cost> finish_of(v, 0.0);
  std::vector<bool> examined(v, false);
  std::vector<std::size_t> pending(v);

  LazyMaxQueue free_queue;
  LazyMaxQueue partial_queue;  // >= 1 parent examined, not yet free
  std::vector<bool> in_partial(v, false);

  for (NodeId n = 0; n < v; ++n) {
    pending[n] = g.in_degree(n);
    if (pending[n] == 0) free_queue.push(priority(n), n);
  }

  const auto is_free = [&](NodeId n) {
    return !examined[n] && pending[n] == 0;
  };
  const auto is_partial = [&](NodeId n) {
    return !examined[n] && pending[n] != 0;
  };

  // Start time of `n` if appended to cluster `c` (kNoCluster = fresh).
  const auto est_on = [&](NodeId n, std::uint32_t c) {
    Cost dat = 0.0;
    for (const Adjacency& q : g.predecessors(n)) {
      dat = std::max(dat, finish_of[q.node] +
                              (cluster_of[q.node] == c ? 0.0 : q.cost));
    }
    const Cost ready = c == kNoCluster ? 0.0 : cluster_ready[c];
    return std::max(dat, ready);
  };

  std::vector<std::uint32_t> candidates;
  for (std::size_t step = 0; step < v; ++step) {
    const NodeId nf = free_queue.pop_valid(priority, is_free);
    FASTSCHED_ASSERT_MSG(nf != graph::kInvalidNode, "free list ran dry");

    // Candidate cluster: per the original minimization procedure, DSC
    // examines the incoming edges in descending arrival order and tries to
    // zero the ones from the head — i.e. the cluster of the last-arriving
    // parent. (Offering every parent cluster would be a stronger greedy
    // than the published algorithm.)
    candidates.clear();
    {
      NodeId last_parent = graph::kInvalidNode;
      Cost last_arrival = -1.0;
      for (const Adjacency& q : g.predecessors(nf)) {
        const Cost arrival = finish_of[q.node] + q.cost;
        if (arrival > last_arrival) {
          last_arrival = arrival;
          last_parent = q.node;
        }
      }
      if (last_parent != graph::kInvalidNode) {
        candidates.push_back(cluster_of[last_parent]);
      }
    }
    const Cost est_fresh = est_on(nf, kNoCluster);

    // DSRW: when the top partially-free node outranks nf and is a child of
    // nf, pick the cluster minimizing that child's future data-arrival
    // time; otherwise minimize nf's own start. In both cases a merge must
    // not start nf later than a fresh cluster would.
    const auto [np, np_prio] = partial_queue.peek_valid(priority, is_partial);
    NodeId guarded_child = graph::kInvalidNode;
    Cost guarded_edge = 0.0;
    if (np != graph::kInvalidNode && np_prio > priority(nf) &&
        !graph::approx_equal(np_prio, priority(nf))) {
      for (const Adjacency& s : g.successors(nf)) {
        if (s.node == np) {
          guarded_child = np;
          guarded_edge = s.cost;
          break;
        }
      }
    }

    std::uint32_t best_cluster = kNoCluster;
    Cost best_est = est_fresh;
    Cost best_key = guarded_child != graph::kInvalidNode
                        ? est_fresh + g.weight(nf) + guarded_edge
                        : est_fresh;
    for (const std::uint32_t c : candidates) {
      const Cost est = est_on(nf, c);
      if (graph::definitely_less(est_fresh, est)) continue;  // merge delays nf
      // Arrival at the guarded child assumes the cross-cluster cost: the
      // warranty must hold even if the child ends up elsewhere.
      const Cost key = guarded_child != graph::kInvalidNode
                           ? est + g.weight(nf) + guarded_edge
                           : est;
      if (graph::definitely_less(key, best_key)) {
        best_cluster = c;
        best_est = est;
        best_key = key;
      }
    }

    std::uint32_t target = best_cluster;
    if (target == kNoCluster) {
      target = static_cast<std::uint32_t>(cluster_ready.size());
      cluster_ready.push_back(0.0);
    }

    const Cost start = best_cluster == kNoCluster ? est_fresh : best_est;
    const Cost finish = start + g.weight(nf);
    cluster_of[nf] = target;
    cluster_ready[target] = finish;
    start_of[nf] = start;
    finish_of[nf] = finish;
    examined[nf] = true;
    tlevel[nf] = start;

    // Update children: refresh t-level estimates, promote to free.
    for (const Adjacency& s : g.successors(nf)) {
      const NodeId c = s.node;
      tlevel[c] = std::max(tlevel[c], finish + s.cost);
      --pending[c];
      if (pending[c] == 0) {
        free_queue.push(priority(c), c);
      } else if (!in_partial[c]) {
        in_partial[c] = true;
        partial_queue.push(priority(c), c);
      } else {
        partial_queue.push(priority(c), c);  // refreshed priority entry
      }
    }
  }

  FASTSCHED_ASSERT(cluster_ready.size() <= num_procs);
  for (NodeId n = 0; n < v; ++n) {
    schedule.assign(n, static_cast<ProcId>(cluster_of[n]), start_of[n],
                    finish_of[n]);
  }
  return schedule;
}

}  // namespace fastsched::baselines
