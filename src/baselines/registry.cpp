#include "baselines/registry.hpp"

#include "baselines/bsa.hpp"
#include "baselines/dcp.hpp"
#include "baselines/dls.hpp"
#include "baselines/dsc.hpp"
#include "baselines/etf.hpp"
#include "baselines/ez.hpp"
#include "baselines/hlfet.hpp"
#include "baselines/lc.hpp"
#include "baselines/mcp.hpp"
#include "baselines/md.hpp"
#include "fast/fast.hpp"
#include "fast/annealing.hpp"
#include "fast/parallel_fast.hpp"

namespace fastsched::baselines {

sched::SchedulerPtr make_scheduler(const std::string& name) {
  if (name == "FAST") return std::make_unique<fast::FastScheduler>();
  if (name == "PFAST") return std::make_unique<fast::ParallelFastScheduler>();
  if (name == "FAST-SA") return std::make_unique<fast::AnnealingFastScheduler>();
  if (name == "MD") return std::make_unique<MdScheduler>();
  if (name == "ETF") return std::make_unique<EtfScheduler>();
  if (name == "DLS") return std::make_unique<DlsScheduler>();
  if (name == "DSC") return std::make_unique<DscScheduler>();
  if (name == "HLFET") return std::make_unique<HlfetScheduler>();
  if (name == "MCP") return std::make_unique<McpScheduler>();
  if (name == "LC") return std::make_unique<LcScheduler>();
  if (name == "EZ") return std::make_unique<EzScheduler>();
  if (name == "DCP") return std::make_unique<DcpScheduler>();
  if (name == "BSA") return std::make_unique<BsaScheduler>();
  throw Error("unknown scheduler: " + name +
              " (expected FAST, PFAST, FAST-SA, MD, ETF, DLS, DSC, HLFET, MCP, LC, EZ, DCP or BSA)");
}

std::vector<std::string> scheduler_names() {
  return {"FAST", "DSC", "MD", "ETF", "DLS", "PFAST", "FAST-SA", "HLFET",
          "MCP", "LC", "EZ", "DCP", "BSA"};
}

std::vector<sched::SchedulerPtr> all_schedulers() {
  std::vector<sched::SchedulerPtr> out;
  for (const auto& name : scheduler_names()) out.push_back(make_scheduler(name));
  return out;
}

std::vector<sched::SchedulerPtr> paper_schedulers() {
  std::vector<sched::SchedulerPtr> out;
  for (const auto& name : {"FAST", "DSC", "MD", "ETF", "DLS"}) {
    out.push_back(make_scheduler(name));
  }
  return out;
}

}  // namespace fastsched::baselines
