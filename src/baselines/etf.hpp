#pragma once

/// \file etf.hpp
/// The ETF (Earliest Task First) baseline of Hwang, Chow, Anger & Lee
/// (paper §3.2): at each step compute the earliest start time of every
/// ready node over every processor and schedule the (node, processor) pair
/// with the smallest start time; ties go to the node with the higher static
/// level. O(p·v²).

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class EtfScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ETF"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
