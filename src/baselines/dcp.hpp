#pragma once

/// \file dcp.hpp
/// DCP (Dynamic Critical Path; Kwok & Ahmad, TPDS 1996) — the FAST
/// authors' own high-quality O(v³) scheduler, published the same year,
/// included here because the FAST paper positions itself as the
/// low-complexity alternative to exactly this class of algorithm.
///
/// Each step recomputes AEST/ALST (absolute earliest/latest start times)
/// on the partially-scheduled graph — scheduled nodes pinned, co-located
/// edges zeroed — and selects the schedulable node with the smallest ALST
/// (the head of the *dynamic* critical path; ties to smaller AEST). The
/// processor choice uses DCP's hallmark look-ahead: among the processors
/// of the node's parents plus one fresh, minimize the node's insertion
/// start time *plus* the estimated start of its critical child if that
/// child were placed on the same processor.
///
/// Simplification (as with MD, documented in DESIGN.md): candidates are
/// restricted to nodes whose parents are already scheduled, preserving the
/// selection rule while guaranteeing valid schedules by construction.

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class DcpScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DCP"; }

  [[nodiscard]] bool unbounded_processors() const override { return true; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
