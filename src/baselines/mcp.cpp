#include "baselines/mcp.hpp"

#include <algorithm>
#include <limits>

#include "baselines/timeline.hpp"
#include "graph/levels.hpp"

namespace fastsched::baselines {

sched::Schedule McpScheduler::run(const graph::TaskGraph& g,
                                  const sched::SchedulerOptions& options) const {
  using graph::Adjacency;
  using graph::Cost;
  using graph::NodeId;
  using sched::ProcId;

  const std::size_t v = g.num_nodes();
  const std::size_t num_procs = sched::effective_procs(g, options);
  sched::Schedule schedule(v, num_procs);
  if (v == 0) return schedule;

  const graph::LevelInfo levels = graph::compute_levels(g);

  // Secondary key: the smallest ALAP among a node's children (infinite for
  // exits), per Wu & Gajski's tie-break. Topological rank resolves exact
  // ties so the list always remains a valid topological order.
  std::vector<Cost> child_alap(v, std::numeric_limits<Cost>::max());
  for (NodeId n = 0; n < v; ++n) {
    for (const Adjacency& s : g.successors(n)) {
      child_alap[n] = std::min(child_alap[n], levels.alap[s.node]);
    }
  }
  std::vector<std::size_t> topo_rank(v);
  {
    const auto topo = g.topological_order();
    for (std::size_t i = 0; i < topo.size(); ++i) topo_rank[topo[i]] = i;
  }

  std::vector<NodeId> list(v);
  for (NodeId n = 0; n < v; ++n) list[n] = n;
  std::sort(list.begin(), list.end(), [&](NodeId a, NodeId b) {
    if (!graph::approx_equal(levels.alap[a], levels.alap[b])) {
      return levels.alap[a] < levels.alap[b];
    }
    if (!graph::approx_equal(child_alap[a], child_alap[b])) {
      return child_alap[a] < child_alap[b];
    }
    return topo_rank[a] < topo_rank[b];
  });

  std::vector<Timeline> timelines(num_procs);
  std::vector<Cost> finish(v, 0.0);
  std::vector<ProcId> proc_of(v, sched::kUnassignedProc);
  std::size_t procs_touched = 0;

  for (const NodeId n : list) {
    const Cost w = g.weight(n);
    // Earliest insertion slot over the touched processors plus one fresh.
    const std::size_t scan = std::min(procs_touched + 1, num_procs);
    ProcId best_proc = 0;
    Cost best_start = std::numeric_limits<Cost>::max();
    for (ProcId p = 0; p < scan; ++p) {
      Cost dat = 0.0;
      for (const Adjacency& q : g.predecessors(n)) {
        dat = std::max(dat,
                       finish[q.node] + (proc_of[q.node] == p ? 0.0 : q.cost));
      }
      const Cost s = timelines[p].earliest_fit(dat, w);
      if (graph::definitely_less(s, best_start)) {
        best_start = s;
        best_proc = p;
      }
    }
    timelines[best_proc].insert(best_start, best_start + w);
    if (best_proc == procs_touched && procs_touched < num_procs) {
      ++procs_touched;
    }
    finish[n] = best_start + w;
    proc_of[n] = best_proc;
    schedule.assign(n, best_proc, best_start, best_start + w);
  }
  return schedule;
}

}  // namespace fastsched::baselines
