#include "baselines/dls.hpp"

#include "baselines/bounded_common.hpp"

namespace fastsched::baselines {

sched::Schedule DlsScheduler::run(const graph::TaskGraph& g,
                                  const sched::SchedulerOptions& options) const {
  using detail::BoundedState;
  using graph::Cost;
  using graph::NodeId;
  using sched::ProcId;

  const std::size_t num_procs = sched::effective_procs(g, options);
  BoundedState state(g, num_procs);
  const std::vector<Cost> sl = graph::compute_static_levels(g);

  while (!state.done()) {
    NodeId best_node = graph::kInvalidNode;
    ProcId best_proc = 0;
    Cost best_dl = 0.0;
    for (const NodeId n : state.ready()) {
      // Maximizing SL(n) − EST(n, p) over p means minimizing EST for a
      // fixed node, so the per-node inner loop reuses the EST minimizer.
      const auto [p, est] = state.best_proc(n);
      const Cost dl = sl[n] - est;
      const bool better = best_node == graph::kInvalidNode ||
                          graph::definitely_less(best_dl, dl) ||
                          (graph::approx_equal(dl, best_dl) && n < best_node);
      if (better) {
        best_node = n;
        best_proc = p;
        best_dl = dl;
      }
    }
    state.place(best_node, best_proc);
  }
  return std::move(state).take_schedule();
}

}  // namespace fastsched::baselines
