#include "baselines/hlfet.hpp"

#include "baselines/bounded_common.hpp"

namespace fastsched::baselines {

sched::Schedule HlfetScheduler::run(
    const graph::TaskGraph& g, const sched::SchedulerOptions& options) const {
  using detail::BoundedState;
  using graph::Cost;
  using graph::NodeId;

  const std::size_t num_procs = sched::effective_procs(g, options);
  BoundedState state(g, num_procs);
  const std::vector<Cost> sl = graph::compute_static_levels(g);

  while (!state.done()) {
    // Highest static level among ready nodes; ties to the smaller id.
    NodeId best = graph::kInvalidNode;
    for (const NodeId n : state.ready()) {
      if (best == graph::kInvalidNode || sl[n] > sl[best] ||
          (graph::approx_equal(sl[n], sl[best]) && n < best)) {
        best = n;
      }
    }
    const auto [proc, est] = state.best_proc(best);
    (void)est;
    state.place(best, proc);
  }
  return std::move(state).take_schedule();
}

}  // namespace fastsched::baselines
