#include "baselines/md.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "baselines/timeline.hpp"

namespace fastsched::baselines {
namespace {

using graph::Adjacency;
using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

constexpr Cost kInf = std::numeric_limits<Cost>::max();

/// Recomputes ASAP, ALAP and the dynamic CP length on the partially
/// scheduled graph: scheduled nodes are pinned to their actual start times
/// and edges joining two co-located scheduled nodes cost zero.
struct DynamicLevels {
  std::vector<Cost> asap;
  std::vector<Cost> alap;
};

DynamicLevels compute_dynamic_levels(const TaskGraph& g,
                                     const std::vector<bool>& scheduled,
                                     const std::vector<ProcId>& proc_of,
                                     const std::vector<Cost>& start_of) {
  const std::size_t v = g.num_nodes();
  const auto effective = [&](NodeId a, NodeId b, Cost c) -> Cost {
    const bool zeroed = scheduled[a] && scheduled[b] &&
                        proc_of[a] == proc_of[b];
    return zeroed ? 0.0 : c;
  };

  DynamicLevels out;
  out.asap.assign(v, 0.0);
  for (const NodeId n : g.topological_order()) {
    if (scheduled[n]) {
      out.asap[n] = start_of[n];
      continue;
    }
    Cost best = 0.0;
    for (const Adjacency& p : g.predecessors(n)) {
      best = std::max(best, out.asap[p.node] + g.weight(p.node) +
                                effective(p.node, n, p.cost));
    }
    out.asap[n] = best;
  }

  // Downward path length (b-level analogue) with effective costs.
  std::vector<Cost> down(v, 0.0);
  const auto topo = g.topological_order();
  Cost cp = 0.0;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    Cost best = 0.0;
    for (const Adjacency& s : g.successors(n)) {
      best = std::max(best, effective(n, s.node, s.cost) + down[s.node]);
    }
    down[n] = g.weight(n) + best;
    cp = std::max(cp, out.asap[n] + down[n]);
  }

  out.alap.resize(v);
  for (NodeId n = 0; n < v; ++n) {
    out.alap[n] = scheduled[n] ? start_of[n] : cp - down[n];
  }
  return out;
}

}  // namespace

Schedule MdScheduler::run(const graph::TaskGraph& g,
                          const sched::SchedulerOptions&) const {
  const std::size_t v = g.num_nodes();
  // Unbounded pool: one processor per node is always enough.
  const std::size_t num_procs = std::max<std::size_t>(v, 1);
  Schedule schedule(v, num_procs);
  if (v == 0) return schedule;

  std::vector<bool> scheduled(v, false);
  std::vector<ProcId> proc_of(v, sched::kUnassignedProc);
  std::vector<Cost> start_of(v, 0.0);
  std::vector<Cost> finish_of(v, 0.0);
  std::vector<std::size_t> pending(v);
  std::vector<Timeline> timelines(num_procs);
  std::size_t procs_touched = 0;

  for (NodeId n = 0; n < v; ++n) pending[n] = g.in_degree(n);

  for (std::size_t step = 0; step < v; ++step) {
    const DynamicLevels levels =
        compute_dynamic_levels(g, scheduled, proc_of, start_of);

    // Select the schedulable node with minimum relative mobility.
    NodeId pick = graph::kInvalidNode;
    Cost pick_mobility = kInf;
    for (NodeId n = 0; n < v; ++n) {
      if (scheduled[n] || pending[n] != 0) continue;
      const Cost w = std::max(g.weight(n), Cost{1e-12});
      const Cost mobility = (levels.alap[n] - levels.asap[n]) / w;
      if (mobility < pick_mobility - 1e-12 ||
          (graph::approx_equal(mobility, pick_mobility) && n < pick)) {
        pick = n;
        pick_mobility = mobility;
      }
    }
    FASTSCHED_ASSERT_MSG(pick != graph::kInvalidNode,
                         "no schedulable node left");

    const Cost w = g.weight(pick);
    // Scan processors in index order; the mobility window is
    // [ASAP, ALAP + w). A processor "accommodates" the node when it has an
    // idle slot of length w inside the window at or after the node's data
    // arrival time.
    const std::size_t scan_limit = std::min(procs_touched + 1, num_procs);
    ProcId chosen = sched::kUnassignedProc;
    Cost chosen_start = kInf;
    ProcId fallback = 0;
    Cost fallback_start = kInf;
    for (ProcId p = 0; p < scan_limit; ++p) {
      Cost dat = 0.0;
      for (const Adjacency& q : g.predecessors(pick)) {
        dat = std::max(dat,
                       finish_of[q.node] + (proc_of[q.node] == p ? 0.0 : q.cost));
      }
      // The true lower bound is the data-arrival time; the ASAP value
      // still carries the unzeroed communication estimate and only shapes
      // the accommodation window's upper edge (ALAP) below.
      const Cost s = timelines[p].earliest_fit(dat, w);
      if (s < fallback_start) {
        fallback_start = s;
        fallback = p;
      }
      const bool within_window =
          s <= levels.alap[pick] || graph::approx_equal(s, levels.alap[pick]);
      if (within_window) {
        chosen = p;
        chosen_start = s;
        break;  // first processor that accommodates wins
      }
    }
    if (chosen == sched::kUnassignedProc) {
      chosen = fallback;
      chosen_start = fallback_start;
    }

    timelines[chosen].insert(chosen_start, chosen_start + w);
    if (chosen == procs_touched && procs_touched < num_procs) ++procs_touched;
    scheduled[pick] = true;
    proc_of[pick] = chosen;
    start_of[pick] = chosen_start;
    finish_of[pick] = chosen_start + w;
    schedule.assign(pick, chosen, chosen_start, chosen_start + w);
    for (const Adjacency& s : g.successors(pick)) --pending[s.node];
  }
  return schedule;
}

}  // namespace fastsched::baselines
