#pragma once

/// \file bounded_common.hpp
/// Shared machinery for the bounded-processor greedy baselines (ETF, DLS):
/// ready-set maintenance and earliest-start-time computation for
/// (ready node, processor) pairs under the non-insertion (processor
/// ready-time) model used throughout the paper.

#include <algorithm>
#include <vector>

#include "graph/levels.hpp"
#include "sched/schedule.hpp"

namespace fastsched::baselines::detail {

using graph::Adjacency;
using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

/// Incremental state for greedy bounded scheduling.
class BoundedState {
 public:
  BoundedState(const TaskGraph& g, std::size_t num_procs)
      : g_(g),
        num_procs_(num_procs),
        finish_(g.num_nodes(), 0.0),
        proc_of_(g.num_nodes(), sched::kUnassignedProc),
        ready_time_(num_procs, 0.0),
        pending_parents_(g.num_nodes(), 0),
        schedule_(g.num_nodes(), num_procs) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      pending_parents_[n] = g.in_degree(n);
      if (pending_parents_[n] == 0) ready_.push_back(n);
    }
  }

  [[nodiscard]] const std::vector<NodeId>& ready() const noexcept {
    return ready_;
  }
  [[nodiscard]] bool done() const noexcept { return scheduled_ == g_.num_nodes(); }
  [[nodiscard]] std::size_t num_procs() const noexcept { return num_procs_; }

  /// Data arrival time of ready node `n` on processor `p` (paper §4.2).
  [[nodiscard]] Cost dat(NodeId n, ProcId p) const {
    Cost best = 0.0;
    for (const Adjacency& q : g_.predecessors(n)) {
      best = std::max(best,
                      finish_[q.node] + (proc_of_[q.node] == p ? 0.0 : q.cost));
    }
    return best;
  }

  /// Earliest start time of ready node `n` on processor `p`.
  [[nodiscard]] Cost est(NodeId n, ProcId p) const {
    return std::max(dat(n, p), ready_time_[p]);
  }

  /// Finds the processor minimizing EST for `n` in O(p + in-degree):
  /// processors hosting no parent share one DAT value, so only parent
  /// processors need individual treatment.
  [[nodiscard]] std::pair<ProcId, Cost> best_proc(NodeId n) const {
    // DAT for processors hosting none of n's parents.
    Cost dat_remote = 0.0;
    for (const Adjacency& q : g_.predecessors(n)) {
      dat_remote = std::max(dat_remote, finish_[q.node] + q.cost);
    }
    ProcId best_p = 0;
    Cost best = std::numeric_limits<Cost>::max();
    for (ProcId p = 0; p < num_procs_; ++p) {
      const Cost start = std::max(dat_remote, ready_time_[p]);
      if (start < best) {
        best = start;
        best_p = p;
      }
    }
    // Parent processors can beat the remote DAT thanks to zeroed edges.
    for (const Adjacency& q : g_.predecessors(n)) {
      const ProcId p = proc_of_[q.node];
      const Cost start = est(n, p);
      if (start < best || (start == best && p < best_p)) {
        best = start;
        best_p = p;
      }
    }
    return {best_p, best};
  }

  /// Commits node `n` to processor `p` at its EST and updates the ready set.
  void place(NodeId n, ProcId p) {
    const Cost start = est(n, p);
    const Cost fin = start + g_.weight(n);
    finish_[n] = fin;
    proc_of_[n] = p;
    ready_time_[p] = fin;
    schedule_.assign(n, p, start, fin);
    ++scheduled_;

    ready_.erase(std::find(ready_.begin(), ready_.end(), n));
    for (const Adjacency& s : g_.successors(n)) {
      if (--pending_parents_[s.node] == 0) ready_.push_back(s.node);
    }
  }

  [[nodiscard]] Schedule take_schedule() && { return std::move(schedule_); }

 private:
  const TaskGraph& g_;
  std::size_t num_procs_;
  std::vector<Cost> finish_;
  std::vector<ProcId> proc_of_;
  std::vector<Cost> ready_time_;
  std::vector<std::size_t> pending_parents_;
  std::vector<NodeId> ready_;
  std::size_t scheduled_ = 0;
  Schedule schedule_;
};

}  // namespace fastsched::baselines::detail
