#pragma once

/// \file hlfet.hpp
/// HLFET (Highest Level First with Estimated Times; Adam, Chandy & Dickson
/// 1974) — the grandfather of list schedulers and part of the 21-algorithm
/// comparison study the paper builds on. At each step the ready node with
/// the highest static level is scheduled to the processor allowing its
/// earliest start time (non-insertion). O(p·v²) like ETF, but with a
/// static priority: it never reconsiders EST across ready nodes, which is
/// exactly what ETF improved upon.

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class HlfetScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "HLFET"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
