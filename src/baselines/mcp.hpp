#pragma once

/// \file mcp.hpp
/// MCP (Modified Critical Path; Wu & Gajski 1990) — the list-scheduling
/// sibling of MD from the same paper, also part of the authors' comparison
/// study. Nodes are ordered by increasing ALAP time (latest possible start
/// bounded by the CP length, ties broken by the smallest ALAP among their
/// children, then by id) and each is placed, in list order, into the
/// earliest idle slot across all processors (insertion allowed). O(v² log v).

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class McpScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "MCP"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
