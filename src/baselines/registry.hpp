#pragma once

/// \file registry.hpp
/// Name-based construction of every scheduler in the library, used by the
/// bench harness, examples and the CASCH pipeline to sweep "all algorithms"
/// the way the paper's evaluation does.

#include <vector>

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

/// Constructs a scheduler by name: "FAST", "PFAST", "MD", "ETF", "DLS",
/// "DSC". Throws `fastsched::Error` on unknown names.
[[nodiscard]] sched::SchedulerPtr make_scheduler(const std::string& name);

/// All registered scheduler names, in the paper's presentation order
/// (FAST first, then DSC, MD, ETF, DLS, then the PFAST extension).
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Instantiates every scheduler from `scheduler_names()`.
[[nodiscard]] std::vector<sched::SchedulerPtr> all_schedulers();

/// The paper's comparison set only (no PFAST): FAST, DSC, MD, ETF, DLS.
[[nodiscard]] std::vector<sched::SchedulerPtr> paper_schedulers();

}  // namespace fastsched::baselines
