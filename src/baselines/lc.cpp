#include "baselines/lc.hpp"

#include <algorithm>

#include "baselines/clustering_common.hpp"

namespace fastsched::baselines {

sched::Schedule LcScheduler::run(const graph::TaskGraph& g,
                                 const sched::SchedulerOptions&) const {
  using graph::Adjacency;
  using graph::Cost;
  using graph::NodeId;

  const std::size_t v = g.num_nodes();
  if (v == 0) return sched::Schedule(0, 1);

  std::vector<std::uint32_t> cluster_of(v, 0);
  std::vector<bool> clustered(v, false);
  std::uint32_t next_cluster = 0;
  std::size_t remaining = v;

  // Longest-path extraction over the unclustered subgraph. Edges to or
  // from clustered nodes are ignored (their nodes already belong to a
  // linear cluster); edge costs count because unclustered neighbours would
  // communicate.
  std::vector<Cost> down(v);
  std::vector<NodeId> next_on_path(v);
  const auto topo = g.topological_order();

  while (remaining > 0) {
    // Downward longest path (weight + comm) within unclustered nodes.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId n = *it;
      if (clustered[n]) continue;
      Cost best = 0.0;
      NodeId best_next = graph::kInvalidNode;
      for (const Adjacency& s : g.successors(n)) {
        if (clustered[s.node]) continue;
        const Cost via = s.cost + down[s.node];
        if (via > best || (via == best && best_next == graph::kInvalidNode)) {
          best = via;
          best_next = s.node;
        }
      }
      down[n] = g.weight(n) + best;
      next_on_path[n] = best_next;
    }
    // Head of the longest path: the unclustered node with the largest
    // `down` that has no unclustered parent on a longer prefix — simply
    // the global max of `down` among nodes whose unclustered parents do
    // not extend it (taking the global max is sufficient: any prefix
    // extension would have a larger value).
    NodeId head = graph::kInvalidNode;
    for (NodeId n = 0; n < v; ++n) {
      if (clustered[n]) continue;
      if (head == graph::kInvalidNode || down[n] > down[head]) head = n;
    }
    FASTSCHED_ASSERT(head != graph::kInvalidNode);

    const std::uint32_t cluster = next_cluster++;
    for (NodeId n = head; n != graph::kInvalidNode; n = next_on_path[n]) {
      FASTSCHED_ASSERT(!clustered[n]);
      clustered[n] = true;
      cluster_of[n] = cluster;
      --remaining;
    }
  }

  const std::vector<Cost> b_level = graph::compute_b_levels(g);
  const auto replay =
      detail::replay_clusters(g, cluster_of, next_cluster, b_level);
  return detail::clusters_to_schedule(g, cluster_of, next_cluster, replay);
}

}  // namespace fastsched::baselines
