#pragma once

/// \file md.hpp
/// The MD (Mobility Directed) baseline of Wu & Gajski (paper §3.1).
///
/// Each step recomputes ASAP/ALAP times on the partially-scheduled graph
/// (edges between co-located scheduled nodes count zero; scheduled nodes
/// are pinned to their actual start times) and selects the schedulable node
/// with the smallest *relative mobility* (ALAP − ASAP)/w — i.e. a node on
/// the current critical path. The node goes to the *first* processor (by
/// index) owning an idle slot that can accommodate it inside its mobility
/// window; if no processor can, the earliest feasible slot anywhere is
/// used. The per-step level recomputation makes the algorithm O(v·e) ≈
/// O(v³) — the paper's complexity — and the first-fit placement is what
/// makes MD both frugal with processors and mediocre on schedule length.
///
/// Faithfulness note (documented in DESIGN.md): the original MD may place a
/// node before all of its parents are placed and repair slots afterwards;
/// we restrict the candidate set to nodes whose parents are scheduled,
/// which preserves the selection rule (minimum relative mobility among
/// schedulable nodes) while guaranteeing valid schedules by construction.

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class MdScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "MD"; }

  [[nodiscard]] bool unbounded_processors() const override { return true; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
