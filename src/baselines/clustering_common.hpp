#pragma once

/// \file clustering_common.hpp
/// Shared machinery for the clustering baselines (LC, EZ): given a
/// node→cluster assignment, order the nodes topologically (highest b-level
/// first within the ready set) and replay them against per-cluster ready
/// times, charging zero for intra-cluster edges. Returns the resulting
/// start/finish times — the standard way a clustering is evaluated as a
/// schedule on one processor per cluster.

#include <queue>
#include <vector>

#include "graph/levels.hpp"
#include "sched/schedule.hpp"

namespace fastsched::baselines::detail {

struct ClusterReplay {
  std::vector<graph::Cost> start;
  std::vector<graph::Cost> finish;
  graph::Cost makespan = 0;
};

/// Replays `cluster_of` (one cluster id per node, ids < num_clusters).
/// `b_level` supplies the priority used to order the ready set.
inline ClusterReplay replay_clusters(const graph::TaskGraph& g,
                                     const std::vector<std::uint32_t>& cluster_of,
                                     std::size_t num_clusters,
                                     const std::vector<graph::Cost>& b_level) {
  using graph::Adjacency;
  using graph::Cost;
  using graph::NodeId;

  const std::size_t v = g.num_nodes();
  ClusterReplay out;
  out.start.assign(v, 0.0);
  out.finish.assign(v, 0.0);

  std::vector<Cost> ready(num_clusters, 0.0);
  std::vector<std::size_t> pending(v);
  // Max-heap over (b-level, ~id): highest priority ready node first.
  using Entry = std::pair<Cost, NodeId>;
  std::priority_queue<Entry> queue;
  for (NodeId n = 0; n < v; ++n) {
    pending[n] = g.in_degree(n);
    if (pending[n] == 0) queue.emplace(b_level[n], n);
  }

  while (!queue.empty()) {
    const NodeId n = queue.top().second;
    queue.pop();
    const std::uint32_t c = cluster_of[n];
    Cost dat = 0.0;
    for (const Adjacency& q : g.predecessors(n)) {
      dat = std::max(dat, out.finish[q.node] +
                              (cluster_of[q.node] == c ? 0.0 : q.cost));
    }
    const Cost start = std::max(dat, ready[c]);
    out.start[n] = start;
    out.finish[n] = start + g.weight(n);
    ready[c] = out.finish[n];
    out.makespan = std::max(out.makespan, out.finish[n]);
    for (const Adjacency& s : g.successors(n)) {
      if (--pending[s.node] == 0) queue.emplace(b_level[s.node], s.node);
    }
  }
  return out;
}

/// Builds a Schedule from a cluster replay (cluster c = processor c).
inline sched::Schedule clusters_to_schedule(
    const graph::TaskGraph& g, const std::vector<std::uint32_t>& cluster_of,
    std::size_t num_clusters, const ClusterReplay& replay) {
  sched::Schedule s(g.num_nodes(), std::max<std::size_t>(num_clusters, 1));
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    s.assign(n, static_cast<sched::ProcId>(cluster_of[n]), replay.start[n],
             replay.finish[n]);
  }
  return s;
}

}  // namespace fastsched::baselines::detail
