#pragma once

/// \file timeline.hpp
/// Backwards-compatible alias: Timeline now lives in sched/timeline.hpp so
/// both the baselines (MD, MCP) and fast's insertion ablation can use it.

#include "sched/timeline.hpp"

namespace fastsched::baselines {
using sched::Timeline;
}  // namespace fastsched::baselines
