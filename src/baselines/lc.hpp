#pragma once

/// \file lc.hpp
/// LC (Linear Clustering; Kim & Browne 1988) — a classic clustering
/// scheduler from the paper's research context. Repeatedly: find the
/// longest (computation + communication) path through the still-unmarked
/// nodes, collapse it into one cluster (zeroing its internal edges), mark
/// its nodes, and iterate until every node is clustered. Clusters map 1:1
/// to processors; start times come from a b-level-ordered replay.
/// O(v·(v + e)).

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class LcScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "LC"; }

  [[nodiscard]] bool unbounded_processors() const override { return true; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
