#include "baselines/ez.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/clustering_common.hpp"

namespace fastsched::baselines {
namespace {

/// Plain union-find over cluster ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

sched::Schedule EzScheduler::run(const graph::TaskGraph& g,
                                 const sched::SchedulerOptions&) const {
  using graph::Cost;
  using graph::EdgeId;
  using graph::NodeId;

  const std::size_t v = g.num_nodes();
  if (v == 0) return sched::Schedule(0, 1);

  const std::vector<Cost> b_level = graph::compute_b_levels(g);

  // Edges in descending cost order (ties by id for determinism).
  std::vector<EdgeId> edges(g.num_edges());
  std::iota(edges.begin(), edges.end(), 0u);
  std::sort(edges.begin(), edges.end(), [&](EdgeId a, EdgeId b) {
    if (g.edge_cost(a) != g.edge_cost(b)) {
      return g.edge_cost(a) > g.edge_cost(b);
    }
    return a < b;
  });

  UnionFind uf(v);
  std::vector<std::uint32_t> cluster_of(v);
  const auto materialize_clusters = [&] {
    for (NodeId n = 0; n < v; ++n) cluster_of[n] = uf.find(n);
  };

  materialize_clusters();
  Cost current = detail::replay_clusters(g, cluster_of, v, b_level).makespan;

  for (const EdgeId e : edges) {
    const std::uint32_t a = uf.find(g.edge_source(e));
    const std::uint32_t b = uf.find(g.edge_target(e));
    if (a == b) continue;  // already zeroed transitively

    // Tentative merge: evaluate, keep only if not worse.
    std::vector<std::uint32_t> trial = cluster_of;
    for (NodeId n = 0; n < v; ++n) {
      if (trial[n] == a) trial[n] = b;
    }
    const Cost candidate =
        detail::replay_clusters(g, trial, v, b_level).makespan;
    if (!graph::definitely_less(current, candidate)) {
      uf.unite(a, b);
      cluster_of = std::move(trial);
      current = candidate;
    }
  }

  // Compact cluster ids to a dense range for the final schedule.
  std::vector<std::uint32_t> dense(v, 0);
  std::uint32_t num_clusters = 0;
  {
    std::vector<std::uint32_t> remap(v, UINT32_MAX);
    for (NodeId n = 0; n < v; ++n) {
      const std::uint32_t c = cluster_of[n];
      if (remap[c] == UINT32_MAX) remap[c] = num_clusters++;
      dense[n] = remap[c];
    }
  }
  const auto replay =
      detail::replay_clusters(g, dense, num_clusters, b_level);
  return detail::clusters_to_schedule(g, dense, num_clusters, replay);
}

}  // namespace fastsched::baselines
