#pragma once

/// \file dls.hpp
/// The DLS (Dynamic Level Scheduling) baseline of Sih & Lee (paper §3.3):
/// at each step pick the (ready node, processor) pair maximizing the
/// dynamic level DL(n, p) = SL(n) − EST(n, p), where SL is the static
/// (computation-only) b-level. O(p·e·v).

#include "sched/scheduler.hpp"

namespace fastsched::baselines {

class DlsScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DLS"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;
};

}  // namespace fastsched::baselines
