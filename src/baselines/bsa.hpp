#pragma once

/// \file bsa.hpp
/// BSA (Bubble Scheduling and Allocation; Kwok & Ahmad 1995) — the FAST
/// authors' topology-aware scheduler, the only algorithm in this library
/// that sees the processor network. All tasks start serialized on a pivot
/// processor (in CPN-Dominate order, reusing FAST's list machinery); then
/// processors are visited in breadth-first order over the mesh from the
/// pivot, and each task on the current processor "bubbles" to an adjacent
/// processor when that strictly reduces its start time (or, per the
/// published refinement, when the task's data-arrival time already exceeds
/// its current start, indicating it gains nothing from locality).
///
/// Start times are re-evaluated after every migration with the same
/// O(v + e) list replay FAST uses, so one bubbling pass costs
/// O(p · v · (v + e)) in the worst case — BSA sits on the expensive side
/// of the ladder, like MD and DCP.

#include "sched/scheduler.hpp"
#include "sim/mesh.hpp"

namespace fastsched::baselines {

class BsaScheduler final : public sched::Scheduler {
 public:
  /// `mesh` defines the processor adjacency; the budget in
  /// SchedulerOptions is capped by the mesh size.
  explicit BsaScheduler(sim::MeshConfig mesh = sim::MeshConfig::paragon64())
      : mesh_(mesh) {}

  [[nodiscard]] std::string name() const override { return "BSA"; }

  [[nodiscard]] sched::Schedule run(
      const graph::TaskGraph& g,
      const sched::SchedulerOptions& options) const override;

 private:
  sim::MeshConfig mesh_;
};

}  // namespace fastsched::baselines
