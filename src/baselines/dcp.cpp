#include "baselines/dcp.hpp"

#include <algorithm>
#include <limits>

#include "baselines/timeline.hpp"

namespace fastsched::baselines {
namespace {

using graph::Adjacency;
using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;
using sched::Schedule;

constexpr Cost kInf = std::numeric_limits<Cost>::max();

struct DynamicTimes {
  std::vector<Cost> aest;  ///< absolute earliest start
  std::vector<Cost> alst;  ///< absolute latest start
};

/// AEST/ALST on the partially-scheduled graph: scheduled nodes pinned to
/// their actual start times, co-located scheduled edges zeroed.
DynamicTimes compute_times(const TaskGraph& g,
                           const std::vector<bool>& scheduled,
                           const std::vector<ProcId>& proc_of,
                           const std::vector<Cost>& start_of) {
  const std::size_t v = g.num_nodes();
  const auto effective = [&](NodeId a, NodeId b, Cost c) -> Cost {
    return scheduled[a] && scheduled[b] && proc_of[a] == proc_of[b] ? 0.0 : c;
  };

  DynamicTimes out;
  out.aest.assign(v, 0.0);
  for (const NodeId n : g.topological_order()) {
    if (scheduled[n]) {
      out.aest[n] = start_of[n];
      continue;
    }
    Cost best = 0.0;
    for (const Adjacency& p : g.predecessors(n)) {
      best = std::max(best, out.aest[p.node] + g.weight(p.node) +
                                effective(p.node, n, p.cost));
    }
    out.aest[n] = best;
  }

  std::vector<Cost> down(v, 0.0);
  const auto topo = g.topological_order();
  Cost cp = 0.0;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    Cost best = 0.0;
    for (const Adjacency& s : g.successors(n)) {
      best = std::max(best, effective(n, s.node, s.cost) + down[s.node]);
    }
    down[n] = g.weight(n) + best;
    cp = std::max(cp, out.aest[n] + down[n]);
  }
  out.alst.resize(v);
  for (NodeId n = 0; n < v; ++n) {
    out.alst[n] = scheduled[n] ? start_of[n] : cp - down[n];
  }
  return out;
}

}  // namespace

Schedule DcpScheduler::run(const graph::TaskGraph& g,
                           const sched::SchedulerOptions&) const {
  const std::size_t v = g.num_nodes();
  const std::size_t num_procs = std::max<std::size_t>(v, 1);
  Schedule schedule(v, num_procs);
  if (v == 0) return schedule;

  std::vector<bool> scheduled(v, false);
  std::vector<ProcId> proc_of(v, sched::kUnassignedProc);
  std::vector<Cost> start_of(v, 0.0);
  std::vector<Cost> finish_of(v, 0.0);
  std::vector<std::size_t> pending(v);
  std::vector<Timeline> timelines(num_procs);
  std::size_t procs_touched = 0;
  for (NodeId n = 0; n < v; ++n) pending[n] = g.in_degree(n);

  std::vector<ProcId> candidates;
  std::vector<bool> candidate_mark(num_procs, false);

  for (std::size_t step = 0; step < v; ++step) {
    const DynamicTimes times =
        compute_times(g, scheduled, proc_of, start_of);

    // Head of the dynamic critical path among schedulable nodes: the
    // smallest ALST, ties to the smallest AEST, then id.
    NodeId pick = graph::kInvalidNode;
    for (NodeId n = 0; n < v; ++n) {
      if (scheduled[n] || pending[n] != 0) continue;
      if (pick == graph::kInvalidNode ||
          graph::definitely_less(times.alst[n], times.alst[pick]) ||
          (graph::approx_equal(times.alst[n], times.alst[pick]) &&
           (graph::definitely_less(times.aest[n], times.aest[pick]) ||
            (graph::approx_equal(times.aest[n], times.aest[pick]) &&
             n < pick)))) {
        pick = n;
      }
    }
    FASTSCHED_ASSERT(pick != graph::kInvalidNode);

    // Critical child: the unscheduled child with the smallest ALST.
    NodeId crit_child = graph::kInvalidNode;
    Cost crit_edge = 0.0;
    for (const Adjacency& s : g.successors(pick)) {
      if (scheduled[s.node]) continue;
      if (crit_child == graph::kInvalidNode ||
          times.alst[s.node] < times.alst[crit_child]) {
        crit_child = s.node;
        crit_edge = s.cost;
      }
    }

    // Candidate processors: parents' processors + one fresh.
    candidates.clear();
    for (const Adjacency& q : g.predecessors(pick)) {
      const ProcId pp = proc_of[q.node];
      if (!candidate_mark[pp]) {
        candidate_mark[pp] = true;
        candidates.push_back(pp);
      }
    }
    if (procs_touched < num_procs) {
      const auto fresh = static_cast<ProcId>(procs_touched);
      if (!candidate_mark[fresh]) {
        candidate_mark[fresh] = true;
        candidates.push_back(fresh);
      }
    }
    if (candidates.empty()) {
      candidate_mark[0] = true;
      candidates.push_back(0);
    }

    const Cost w = g.weight(pick);
    ProcId best_proc = candidates.front();
    Cost best_start = 0.0;
    Cost best_key = kInf;
    for (const ProcId p : candidates) {
      Cost dat = 0.0;
      for (const Adjacency& q : g.predecessors(pick)) {
        dat = std::max(dat,
                       finish_of[q.node] + (proc_of[q.node] == p ? 0.0 : q.cost));
      }
      const Cost start = timelines[p].earliest_fit(dat, w);

      // Look-ahead: estimated start of the critical child if it joined
      // this processor right after pick (its message from pick zeroed; its
      // other parents' messages conservatively cross-processor).
      Cost child_est = 0.0;
      if (crit_child != graph::kInvalidNode) {
        (void)crit_edge;
        Cost child_dat = start + w;  // data from pick, zeroed on p
        for (const Adjacency& q : g.predecessors(crit_child)) {
          if (q.node == pick) continue;
          if (scheduled[q.node]) {
            child_dat = std::max(
                child_dat,
                finish_of[q.node] + (proc_of[q.node] == p ? 0.0 : q.cost));
          } else {
            child_dat = std::max(child_dat,
                                 times.aest[q.node] + g.weight(q.node) + q.cost);
          }
        }
        child_est =
            timelines[p].earliest_fit(std::max(child_dat, start + w),
                                      g.weight(crit_child));
      }
      const Cost key = start + child_est;
      if (graph::definitely_less(key, best_key)) {
        best_key = key;
        best_start = start;
        best_proc = p;
      }
    }
    for (const ProcId p : candidates) candidate_mark[p] = false;

    timelines[best_proc].insert(best_start, best_start + w);
    if (best_proc == static_cast<ProcId>(procs_touched) &&
        procs_touched < num_procs) {
      ++procs_touched;
    }
    scheduled[pick] = true;
    proc_of[pick] = best_proc;
    start_of[pick] = best_start;
    finish_of[pick] = best_start + w;
    schedule.assign(pick, best_proc, best_start, best_start + w);
    for (const Adjacency& s : g.successors(pick)) --pending[s.node];
  }
  return schedule;
}

}  // namespace fastsched::baselines
