#include "sched/metrics.hpp"

#include <algorithm>

namespace fastsched::sched {

Cost computation_critical_path(const graph::TaskGraph& g) {
  std::vector<Cost> down(g.num_nodes(), 0.0);
  const auto topo = g.topological_order();
  Cost best = 0.0;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const graph::NodeId n = *it;
    Cost succ_best = 0.0;
    for (const graph::Adjacency& s : g.successors(n)) {
      succ_best = std::max(succ_best, down[s.node]);
    }
    down[n] = g.weight(n) + succ_best;
    best = std::max(best, down[n]);
  }
  return best;
}

ScheduleMetrics compute_metrics(const graph::TaskGraph& g,
                                const Schedule& s) {
  ScheduleMetrics m;
  m.length = s.length();
  m.procs_used = s.procs_used();
  if (m.length > 0) {
    m.speedup = g.total_work() / m.length;
  }
  if (m.procs_used > 0) {
    m.efficiency = m.speedup / static_cast<double>(m.procs_used);
  }
  const Cost cp = computation_critical_path(g);
  if (cp > 0) m.slr = m.length / cp;
  return m;
}

}  // namespace fastsched::sched
