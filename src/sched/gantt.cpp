#include "sched/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace fastsched::sched {

std::string render_gantt(const graph::TaskGraph& g, const Schedule& s,
                         int width, bool with_table) {
  std::ostringstream os;
  const Cost len = s.length();
  os << "schedule length = " << len << ", processors used = "
     << s.procs_used() << "\n";
  if (len <= 0) return os.str();

  const double scale = static_cast<double>(std::max(width, 16)) / len;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const auto tasks = s.tasks_on(p);
    if (tasks.empty()) continue;
    std::vector<graph::NodeId> by_start(tasks.begin(), tasks.end());
    std::stable_sort(
        by_start.begin(), by_start.end(),
        [&](graph::NodeId a, graph::NodeId b) { return s.start(a) < s.start(b); });

    std::string row;
    for (const graph::NodeId n : by_start) {
      const auto col0 = static_cast<std::size_t>(s.start(n) * scale);
      const auto col1 = std::max<std::size_t>(
          col0 + 1, static_cast<std::size_t>(s.finish(n) * scale));
      if (row.size() < col0) row.append(col0 - row.size(), '.');
      std::string label = "[" + g.name(n);
      label.resize(std::max<std::size_t>(col1 - col0, 2), ' ');
      label.back() = ']';
      row += label;
    }
    os << "P" << std::left << std::setw(3) << p << " |" << row << "\n";
  }

  if (with_table) {
    os << "\n  task  proc  start  finish\n";
    for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
      if (!s.is_assigned(n)) continue;
      os << "  " << std::left << std::setw(6) << g.name(n) << std::setw(6)
         << s.proc(n) << std::setw(7) << s.start(n) << s.finish(n) << "\n";
    }
  }
  return os.str();
}

}  // namespace fastsched::sched
