#pragma once

/// \file validation.hpp
/// Structural checks that a schedule respects the DAG scheduling model of
/// paper §2: every task placed exactly once, task durations match node
/// weights, no two tasks overlap on a processor, and every precedence
/// constraint is met with the communication delay charged for
/// cross-processor edges (zero for intra-processor edges).
///
/// This is the minimal in-library validator. The schedule-lint engine in
/// analysis/lint.hpp supersedes it with per-rule structured diagnostics
/// (rule id, node, processor, time window) and additional rules (idle-gap
/// anomalies, CPN list-order invariants, makespan cross-checks); prefer it
/// in tools, benches and CI. This one stays for cheap hot-path validation
/// inside the scheduling libraries themselves, which `analysis` links
/// against.

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace fastsched::sched {

/// One detected violation; `message` is human-readable.
struct Violation {
  enum class Kind {
    kUnassigned,   ///< node never placed
    kBadDuration,  ///< finish - start != node weight
    kOverlap,      ///< two tasks overlap on one processor
    kPrecedence,   ///< child starts before parent data arrives
  };
  Kind kind;
  std::string message;
};

/// Runs all checks; returns every violation found (empty == valid).
[[nodiscard]] std::vector<Violation> validate(const graph::TaskGraph& g,
                                              const Schedule& s);

/// Convenience wrapper: true iff `validate` finds nothing.
[[nodiscard]] bool is_valid(const graph::TaskGraph& g, const Schedule& s);

/// Throws `fastsched::Error` with all violation messages when invalid.
void require_valid(const graph::TaskGraph& g, const Schedule& s);

}  // namespace fastsched::sched
