#include "sched/schedule.hpp"

#include <algorithm>

namespace fastsched::sched {

Schedule::Schedule(std::size_t num_nodes, std::size_t num_procs)
    : placements_(num_nodes), proc_tasks_(num_procs) {}

void Schedule::assign(NodeId n, ProcId p, Cost start, Cost finish) {
  FASTSCHED_REQUIRE(n < placements_.size(), "node out of range");
  FASTSCHED_REQUIRE(p < proc_tasks_.size(), "processor out of range");
  FASTSCHED_REQUIRE(!is_assigned(n), "node assigned twice");
  FASTSCHED_REQUIRE(start >= 0 && finish >= start,
                    "invalid start/finish interval");
  placements_[n] = Placement{p, start, finish};
  proc_tasks_[p].push_back(n);
  length_ = std::max(length_, finish);
}

std::size_t Schedule::procs_used() const {
  return static_cast<std::size_t>(
      std::count_if(proc_tasks_.begin(), proc_tasks_.end(),
                    [](const auto& tasks) { return !tasks.empty(); }));
}

bool Schedule::is_complete() const {
  return std::all_of(placements_.begin(), placements_.end(),
                     [](const Placement& pl) {
                       return pl.proc != kUnassignedProc;
                     });
}

}  // namespace fastsched::sched
