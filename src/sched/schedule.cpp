#include "sched/schedule.hpp"

#include <algorithm>

namespace fastsched::sched {

Schedule::Schedule(std::size_t num_nodes, std::size_t num_procs)
    : proc_(num_nodes, kUnassignedProc),
      start_(num_nodes, 0.0),
      finish_(num_nodes, 0.0),
      slots_(num_procs) {}

void Schedule::grow_slots(ProcId p) {
  ProcSlots& s = slots_[p];
  const std::uint32_t new_cap = std::max<std::uint32_t>(4, 2 * s.capacity);
  const std::size_t new_off = pool_.size();
  pool_.resize(new_off + new_cap);
  std::copy_n(pool_.begin() + static_cast<std::ptrdiff_t>(s.offset), s.count,
              pool_.begin() + static_cast<std::ptrdiff_t>(new_off));
  s.offset = new_off;
  s.capacity = new_cap;
}

void Schedule::assign(NodeId n, ProcId p, Cost start, Cost finish) {
  FASTSCHED_REQUIRE(n < proc_.size(), "node out of range");
  FASTSCHED_REQUIRE(p < slots_.size(), "processor out of range");
  FASTSCHED_REQUIRE(!is_assigned(n), "node assigned twice");
  FASTSCHED_REQUIRE(start >= 0 && finish >= start,
                    "invalid start/finish interval");
  proc_[n] = p;
  start_[n] = start;
  finish_[n] = finish;
  if (slots_[p].count == slots_[p].capacity) grow_slots(p);
  ProcSlots& s = slots_[p];
  pool_[s.offset + s.count++] = n;
  length_ = std::max(length_, finish);
}

std::size_t Schedule::procs_used() const {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const ProcSlots& s) { return s.count > 0; }));
}

bool Schedule::is_complete() const {
  return std::all_of(proc_.begin(), proc_.end(),
                     [](ProcId p) { return p != kUnassignedProc; });
}

}  // namespace fastsched::sched
