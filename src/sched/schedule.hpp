#pragma once

/// \file schedule.hpp
/// The output of a DAG scheduling algorithm: a placement (processor, start
/// time, finish time) for every task, plus per-processor task sequences.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::sched {

using graph::Cost;
using graph::NodeId;

/// Dense processor index.
using ProcId = std::uint32_t;

inline constexpr ProcId kUnassignedProc = std::numeric_limits<ProcId>::max();

/// Where and when one task runs.
struct Placement {
  ProcId proc = kUnassignedProc;
  Cost start = 0;
  Cost finish = 0;
};

/// A complete (or in-progress) schedule. Nodes are assigned at most once;
/// per-processor sequences record assignment order, which for the
/// ready-time-based algorithms in this library is also start-time order.
class Schedule {
 public:
  /// Creates an empty schedule over `num_nodes` tasks and a processor pool
  /// of size `num_procs`.
  Schedule(std::size_t num_nodes, std::size_t num_procs);

  /// Places node `n`. `finish` must be >= `start`; `n` must be unassigned.
  void assign(NodeId n, ProcId p, Cost start, Cost finish);

  [[nodiscard]] bool is_assigned(NodeId n) const {
    return placements_[n].proc != kUnassignedProc;
  }

  [[nodiscard]] const Placement& placement(NodeId n) const {
    return placements_[n];
  }

  [[nodiscard]] Cost start(NodeId n) const { return placements_[n].start; }
  [[nodiscard]] Cost finish(NodeId n) const { return placements_[n].finish; }
  [[nodiscard]] ProcId proc(NodeId n) const { return placements_[n].proc; }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return placements_.size();
  }
  [[nodiscard]] std::size_t num_procs() const noexcept {
    return proc_tasks_.size();
  }

  /// Tasks on processor `p` in assignment order.
  [[nodiscard]] std::span<const NodeId> tasks_on(ProcId p) const {
    return proc_tasks_[p];
  }

  /// Largest finish time across all assigned tasks (the schedule length /
  /// makespan, paper §2). Zero for an empty schedule.
  [[nodiscard]] Cost length() const noexcept { return length_; }

  /// Number of processors that received at least one task.
  [[nodiscard]] std::size_t procs_used() const;

  /// True when every node has been assigned.
  [[nodiscard]] bool is_complete() const;

 private:
  std::vector<Placement> placements_;
  std::vector<std::vector<NodeId>> proc_tasks_;
  Cost length_ = 0;
};

}  // namespace fastsched::sched
