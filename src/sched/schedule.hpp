#pragma once

/// \file schedule.hpp
/// The output of a DAG scheduling algorithm: a placement (processor, start
/// time, finish time) for every task, plus per-processor task sequences.
///
/// Layout (million-node pass): placements are stored struct-of-arrays —
/// parallel `proc_` / `start_` / `finish_` vectors — so makespan folds,
/// completeness checks, and finish scans stride over exactly the field
/// they read instead of pulling interleaved cold fields through the
/// cache. Per-processor sequences live in one flat slot-pool (`pool_`)
/// addressed by per-processor {offset, count, capacity} headers: a
/// processor's block grows geometrically by relocating to the pool tail
/// (amortized O(1) appends, dead blocks are simply abandoned), so a
/// schedule performs O(p · log(v/p)) small copies total and zero
/// per-processor heap allocations — where the previous
/// vector-of-vectors paid one allocation chain per non-empty processor.
/// `tasks_on()` still returns a contiguous span in assignment order; the
/// accessor API is unchanged, callers recompile as-is.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::sched {

using graph::Cost;
using graph::NodeId;

/// Dense processor index.
using ProcId = std::uint32_t;

inline constexpr ProcId kUnassignedProc = std::numeric_limits<ProcId>::max();

/// Where and when one task runs. Assembled on demand from the SoA
/// columns; returned by value.
struct Placement {
  ProcId proc = kUnassignedProc;
  Cost start = 0;
  Cost finish = 0;
};

/// A complete (or in-progress) schedule. Nodes are assigned at most once;
/// per-processor sequences record assignment order, which for the
/// ready-time-based algorithms in this library is also start-time order.
class Schedule {
 public:
  /// Creates an empty schedule over `num_nodes` tasks and a processor pool
  /// of size `num_procs`.
  Schedule(std::size_t num_nodes, std::size_t num_procs);

  /// Places node `n`. `finish` must be >= `start`; `n` must be unassigned.
  void assign(NodeId n, ProcId p, Cost start, Cost finish);

  [[nodiscard]] bool is_assigned(NodeId n) const {
    return proc_[n] != kUnassignedProc;
  }

  [[nodiscard]] Placement placement(NodeId n) const {
    return Placement{proc_[n], start_[n], finish_[n]};
  }

  [[nodiscard]] Cost start(NodeId n) const { return start_[n]; }
  [[nodiscard]] Cost finish(NodeId n) const { return finish_[n]; }
  [[nodiscard]] ProcId proc(NodeId n) const { return proc_[n]; }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return proc_.size();
  }
  [[nodiscard]] std::size_t num_procs() const noexcept {
    return slots_.size();
  }

  /// Tasks on processor `p` in assignment order (a contiguous view into
  /// the slot-pool; invalidated by the next assign()).
  [[nodiscard]] std::span<const NodeId> tasks_on(ProcId p) const {
    const ProcSlots& s = slots_[p];
    return {pool_.data() + s.offset, s.count};
  }

  /// Largest finish time across all assigned tasks (the schedule length /
  /// makespan, paper §2). Zero for an empty schedule.
  [[nodiscard]] Cost length() const noexcept { return length_; }

  /// Number of processors that received at least one task.
  [[nodiscard]] std::size_t procs_used() const;

  /// True when every node has been assigned.
  [[nodiscard]] bool is_complete() const;

 private:
  /// One processor's block in the slot-pool. Invariants: the live block
  /// is pool_[offset, offset + count); count <= capacity; blocks of
  /// distinct processors never overlap; a relocated (grown) block leaves
  /// its predecessor bytes in place but unreachable.
  struct ProcSlots {
    std::size_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
  };

  /// Relocates processor `p`'s block to the pool tail with doubled
  /// capacity (amortized O(1) per assign).
  void grow_slots(ProcId p);

  // Placement columns (SoA).
  std::vector<ProcId> proc_;
  std::vector<Cost> start_;
  std::vector<Cost> finish_;
  // Per-processor sequences: flat slot-pool + headers.
  std::vector<ProcSlots> slots_;
  std::vector<NodeId> pool_;
  Cost length_ = 0;
};

}  // namespace fastsched::sched
