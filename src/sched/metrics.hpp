#pragma once

/// \file metrics.hpp
/// Derived quality measures of a schedule: length (makespan), processors
/// used, speedup over serial execution, efficiency, and the schedule length
/// ratio against the computation-only critical path (the classic SLR lower
/// bound — no schedule can beat the CP's pure computation time).

#include "sched/schedule.hpp"

namespace fastsched::sched {

struct ScheduleMetrics {
  Cost length = 0;             ///< makespan
  std::size_t procs_used = 0;  ///< processors with at least one task
  double speedup = 0;          ///< total_work / length
  double efficiency = 0;       ///< speedup / procs_used
  double slr = 0;              ///< length / computation-only CP length
};

/// Computes all metrics in O(v + e).
[[nodiscard]] ScheduleMetrics compute_metrics(const graph::TaskGraph& g,
                                              const Schedule& s);

/// Computation-only critical-path length (ignores edge costs): the absolute
/// lower bound on any schedule length with unlimited processors.
[[nodiscard]] Cost computation_critical_path(const graph::TaskGraph& g);

}  // namespace fastsched::sched
