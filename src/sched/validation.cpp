#include "sched/validation.hpp"

#include <algorithm>
#include <sstream>

namespace fastsched::sched {
namespace {

using graph::Adjacency;
using graph::approx_equal;
using graph::NodeId;
using graph::TaskGraph;

// Allows `a >= b` up to the shared cost tolerance.
bool at_least(Cost a, Cost b) { return a > b || approx_equal(a, b); }

}  // namespace

std::vector<Violation> validate(const TaskGraph& g, const Schedule& s) {
  std::vector<Violation> out;
  const auto report = [&](Violation::Kind kind, const std::string& msg) {
    out.push_back(Violation{kind, msg});
  };

  FASTSCHED_REQUIRE(g.num_nodes() == s.num_nodes(),
                    "schedule sized for a different graph");

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!s.is_assigned(n)) {
      report(Violation::Kind::kUnassigned, g.name(n) + " is unassigned");
      continue;
    }
    const Placement& pl = s.placement(n);
    if (!approx_equal(pl.finish - pl.start, g.weight(n))) {
      std::ostringstream os;
      os << g.name(n) << " runs for " << (pl.finish - pl.start)
         << " but has weight " << g.weight(n);
      report(Violation::Kind::kBadDuration, os.str());
    }
  }
  if (!out.empty()) return out;  // placement errors make later checks noisy

  // Per-processor: no two tasks may overlap with positive measure.
  // Sorting by start time keeps the check valid for insertion-based
  // algorithms (MD, MCP) whose assignment order differs from start-time
  // order; the running max-finish catches overlaps between non-adjacent
  // intervals; zero-duration tasks occupy no time and never overlap.
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const auto tasks = s.tasks_on(p);
    std::vector<NodeId> by_start(tasks.begin(), tasks.end());
    std::stable_sort(by_start.begin(), by_start.end(),
                     [&](NodeId a, NodeId b) {
                       return s.start(a) < s.start(b);
                     });
    Cost max_finish = 0.0;
    NodeId max_finish_node = graph::kInvalidNode;
    for (const NodeId b : by_start) {
      const bool positive = s.finish(b) > s.start(b);
      if (positive && max_finish_node != graph::kInvalidNode &&
          !at_least(s.start(b), max_finish)) {
        const NodeId a = max_finish_node;
        std::ostringstream os;
        os << g.name(a) << " [" << s.start(a) << ", " << s.finish(a)
           << ") overlaps " << g.name(b) << " [" << s.start(b) << ", "
           << s.finish(b) << ") on P" << p;
        report(Violation::Kind::kOverlap, os.str());
      }
      if (s.finish(b) > max_finish || max_finish_node == graph::kInvalidNode) {
        max_finish = s.finish(b);
        max_finish_node = b;
      }
    }
  }

  // Precedence with communication delays.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const Adjacency& succ : g.successors(n)) {
      const NodeId c = succ.node;
      const Cost arrival = s.proc(n) == s.proc(c)
                               ? s.finish(n)
                               : s.finish(n) + succ.cost;
      if (!at_least(s.start(c), arrival)) {
        std::ostringstream os;
        os << g.name(c) << " starts at " << s.start(c)
           << " before data from " << g.name(n) << " arrives at " << arrival;
        report(Violation::Kind::kPrecedence, os.str());
      }
    }
  }
  return out;
}

bool is_valid(const TaskGraph& g, const Schedule& s) {
  return validate(g, s).empty();
}

void require_valid(const TaskGraph& g, const Schedule& s) {
  const auto violations = validate(g, s);
  if (violations.empty()) return;
  std::ostringstream os;
  os << "invalid schedule (" << violations.size() << " violations):";
  for (const auto& v : violations) os << "\n  - " << v.message;
  throw Error(os.str());
}

}  // namespace fastsched::sched
