#pragma once

/// \file gantt.hpp
/// ASCII Gantt chart rendering, the textual analogue of the paper's
/// Figures 2–4. Useful for examples and debugging; one row per used
/// processor, time flowing rightwards.

#include <string>

#include "sched/schedule.hpp"

namespace fastsched::sched {

/// Renders the schedule as an ASCII Gantt chart scaled to roughly
/// `width` characters. Also prints a per-task table (node, proc, start,
/// finish) when `with_table` is set.
[[nodiscard]] std::string render_gantt(const graph::TaskGraph& g,
                                       const Schedule& s, int width = 72,
                                       bool with_table = false);

}  // namespace fastsched::sched
