#include "sched/io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace fastsched::sched {

void write_text(std::ostream& os, const Schedule& s) {
  os << "schedule " << s.num_nodes() << ' ' << s.num_procs() << '\n';
  os << std::setprecision(17);
  for (graph::NodeId n = 0; n < s.num_nodes(); ++n) {
    if (!s.is_assigned(n)) continue;
    os << "task " << n << ' ' << s.proc(n) << ' ' << s.start(n) << ' '
       << s.finish(n) << '\n';
  }
}

std::string to_text(const Schedule& s) {
  std::ostringstream os;
  write_text(os, s);
  return os.str();
}

Schedule read_text(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  // Header.
  std::size_t num_nodes = 0;
  std::size_t num_procs = 0;
  {
    FASTSCHED_REQUIRE(static_cast<bool>(std::getline(is, line)),
                      "empty schedule file");
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    FASTSCHED_REQUIRE(
        static_cast<bool>(ls >> kind >> num_nodes >> num_procs) &&
            kind == "schedule",
        "schedule file must start with 'schedule <nodes> <procs>'");
  }

  Schedule s(num_nodes, num_procs);
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    const std::string where = " (line " + std::to_string(line_no) + ")";
    FASTSCHED_REQUIRE(kind == "task", "unknown record '" + kind + "'" + where);
    std::uint64_t node = 0;
    std::uint64_t proc = 0;
    Cost start = 0;
    Cost finish = 0;
    FASTSCHED_REQUIRE(static_cast<bool>(ls >> node >> proc >> start >> finish),
                      "malformed task line" + where);
    FASTSCHED_REQUIRE(node < num_nodes && proc < num_procs,
                      "task indices out of range" + where);
    s.assign(static_cast<graph::NodeId>(node), static_cast<ProcId>(proc),
             start, finish);
  }
  return s;
}

Schedule from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace fastsched::sched
