#pragma once

/// \file io.hpp
/// Schedule serialization: a line-oriented text format that round-trips a
/// schedule (processor, start, finish per task), so schedules can be
/// stored, diffed, or replayed through the simulator by external tools.

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

namespace fastsched::sched {

/// Writes `s` in the format:
/// ```
/// schedule <num_nodes> <num_procs>
/// task <node-id> <proc> <start> <finish>
/// ```
/// Tasks appear in node-id order; unassigned nodes are omitted.
void write_text(std::ostream& os, const Schedule& s);

/// `write_text` into a string.
[[nodiscard]] std::string to_text(const Schedule& s);

/// Parses the text format. Throws `fastsched::Error` on malformed input.
[[nodiscard]] Schedule read_text(std::istream& is);

/// `read_text` from a string.
[[nodiscard]] Schedule from_text(const std::string& text);

}  // namespace fastsched::sched
