#pragma once

/// \file timeline.hpp
/// A processor timeline as start-sorted busy intervals, supporting
/// earliest-gap queries and ordered insertion. Shared by the
/// insertion-based schedulers (MD, MCP) and the insertion ablation of
/// FAST's initial schedule.

#include <algorithm>
#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::sched {

class Timeline {
 public:
  struct Slot {
    graph::Cost start;
    graph::Cost finish;
  };

  /// Earliest start s >= `lo` such that [s, s + len) is idle.
  [[nodiscard]] graph::Cost earliest_fit(graph::Cost lo,
                                         graph::Cost len) const {
    graph::Cost candidate = lo;
    for (const Slot& slot : slots_) {
      if (slot.finish <= candidate) continue;   // fully before the candidate
      if (slot.start >= candidate + len) break; // gap found before this slot
      candidate = slot.finish;  // collide: try right after this busy slot
    }
    return candidate;
  }

  void insert(graph::Cost start, graph::Cost finish) {
    const auto it = std::lower_bound(
        slots_.begin(), slots_.end(), start,
        [](const Slot& s, graph::Cost v) { return s.start < v; });
    slots_.insert(it, Slot{start, finish});
  }

  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

 private:
  std::vector<Slot> slots_;
};

}  // namespace fastsched::sched
