#pragma once

/// \file scheduler.hpp
/// The common interface every scheduling algorithm in the library
/// implements (FAST and the four baselines MD/ETF/DLS/DSC). Keeping the
/// interface uniform is what lets the bench harness sweep "all algorithms ×
/// all workloads" the way the paper's evaluation does.

#include <cstdint>
#include <memory>
#include <string>

#include "sched/schedule.hpp"

namespace fastsched::sched {

/// Options common to all schedulers.
struct SchedulerOptions {
  /// Processor budget. 0 means "let the algorithm decide": bounded
  /// algorithms get one processor per node (the paper's "more than enough
  /// processors"), unbounded algorithms (MD, DSC) ignore the budget.
  std::size_t num_procs = 0;
  /// Seed for any internal randomness (only FAST's local search uses it).
  std::uint64_t seed = 1;
};

/// Abstract scheduling algorithm.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short display name ("FAST", "DSC", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// True for algorithms that assume an unbounded processor pool (MD, DSC)
  /// and therefore ignore `SchedulerOptions::num_procs`.
  [[nodiscard]] virtual bool unbounded_processors() const { return false; }

  /// Produces a complete, valid schedule for `g`.
  [[nodiscard]] virtual Schedule run(const graph::TaskGraph& g,
                                     const SchedulerOptions& options) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Resolves the effective processor count for a bounded algorithm: the
/// explicit budget if given, otherwise one processor per node.
[[nodiscard]] inline std::size_t effective_procs(const graph::TaskGraph& g,
                                                 const SchedulerOptions& o) {
  return o.num_procs > 0 ? o.num_procs : g.num_nodes();
}

}  // namespace fastsched::sched
