#pragma once

/// \file trees.hpp
/// Tree-structured task graphs. Paper §1 notes that scheduling a
/// tree-structured DAG with identical node weights on unlimited processors
/// is one of the three polynomially-solvable cases (Hu's algorithm), which
/// makes trees useful oracle workloads: with zero communication the
/// optimal makespan of a uniform out-tree is its height × the node weight
/// (given enough processors), so schedulers can be tested against a known
/// optimum.

#include <cstdint>

#include "common/rng.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::workloads {

struct TreeParams {
  /// Total number of nodes.
  std::size_t num_nodes = 63;
  /// Maximum children per node (actual arity is random in [1, max_arity]).
  int max_arity = 3;
  /// true: edges point root→leaves (out-tree / fork); false: leaves→root
  /// (in-tree / reduction).
  bool out_tree = true;
  /// Node weight (identical across nodes, per Hu's classic case) and
  /// communication cost per edge.
  double node_weight = 1.0;
  double comm_cost = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a random tree task graph. Deterministic per seed.
[[nodiscard]] graph::TaskGraph random_tree_dag(const TreeParams& params);

/// A complete binary out-tree with `levels` levels (2^levels − 1 nodes).
[[nodiscard]] graph::TaskGraph binary_out_tree(int levels,
                                               double node_weight = 1.0,
                                               double comm_cost = 0.0);

}  // namespace fastsched::workloads
