#pragma once

/// \file paper_example.hpp
/// The 9-node example DAG of the paper's Figure 1, reconstructed by
/// constraint search (tools/example_search.cpp) because the figure images
/// are not part of the available text. The topology is fixed by the
/// paper's narrative; the weights below satisfy every textual fact:
///
///  * the critical path is n1 -> n7 -> n9 (CPNs exactly {n1, n7, n9});
///  * the CPN-Dominate list is {n1, n3, n2, n7, n6, n5, n4, n8, n9}, with
///    the documented tie-breaks (n3 before n2 by t-level; n8 after n6 by
///    t-level);
///  * SL(n5) > SL(n2) (why ETF/DLS misprioritize, §4.2/§5);
///  * InitialSchedule() yields schedule length 24 (Figure 4(a));
///  * transferring the blocking node n6 to the processor running n5, n8
///    and n9 shortens the schedule to 23 while increasing the start times
///    of n5 and n8 (Figure 4(b));
///  * on this graph ETF and DLS produce schedules of equal length, MD is
///    the worst, and DSC lands between them and FAST (Figures 2–3).

#include "graph/task_graph.hpp"

namespace fastsched::workloads {

/// Builds the reconstructed Figure 1 task graph. Node ids 0..8 are n1..n9.
[[nodiscard]] graph::TaskGraph paper_figure1_dag();

/// The CPN-Dominate list the paper reports for the graph (§4.2), as ids.
[[nodiscard]] std::vector<graph::NodeId> paper_cpn_dominate_list();

}  // namespace fastsched::workloads
