#include "workloads/paper_example.hpp"

namespace fastsched::workloads {

graph::TaskGraph paper_figure1_dag() {
  graph::TaskGraphBuilder builder;
  // Node weights: the canonical Kwok–Ahmad example values.
  const graph::Cost weights[] = {2, 3, 3, 4, 5, 4, 4, 4, 1};
  for (const graph::Cost w : weights) builder.add_node(w);

  const auto n = [](int i) { return static_cast<graph::NodeId>(i - 1); };
  // Edge costs found by tools/example_search (best-ranked solution).
  builder.add_edge(n(1), n(2), 2);
  builder.add_edge(n(1), n(3), 1);
  builder.add_edge(n(1), n(4), 1);
  builder.add_edge(n(1), n(5), 1);
  builder.add_edge(n(1), n(6), 6);
  builder.add_edge(n(1), n(7), 11);
  builder.add_edge(n(2), n(7), 1);
  builder.add_edge(n(3), n(7), 1);
  builder.add_edge(n(4), n(8), 3);
  builder.add_edge(n(5), n(8), 4);
  builder.add_edge(n(6), n(9), 11);
  builder.add_edge(n(7), n(9), 10);
  builder.add_edge(n(8), n(9), 10);
  return builder.build();
}

std::vector<graph::NodeId> paper_cpn_dominate_list() {
  // {n1, n3, n2, n7, n6, n5, n4, n8, n9} as zero-based ids.
  return {0, 2, 1, 6, 5, 4, 3, 7, 8};
}

}  // namespace fastsched::workloads
