// timing_db.hpp is header-only; this translation unit exists so the target
// always has at least one compiled source and to anchor the vtable-free
// struct's odr-used inline functions during debugging.
#include "workloads/timing_db.hpp"
