#include "workloads/trees.hpp"

#include <vector>

namespace fastsched::workloads {

graph::TaskGraph random_tree_dag(const TreeParams& params) {
  FASTSCHED_REQUIRE(params.num_nodes >= 1, "tree needs at least one node");
  FASTSCHED_REQUIRE(params.max_arity >= 1, "max_arity must be positive");
  Rng rng(params.seed);

  graph::TaskGraphBuilder builder;
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    builder.add_node(params.node_weight);
  }

  // Attach each node i > 0 to a random earlier node that still has arity
  // budget; a frontier list keeps attachment O(1) amortized.
  std::vector<graph::NodeId> frontier{0};
  std::vector<int> children(params.num_nodes, 0);
  for (graph::NodeId i = 1; i < params.num_nodes; ++i) {
    const std::size_t pick = rng.uniform(frontier.size());
    const graph::NodeId parent = frontier[pick];
    if (params.out_tree) {
      builder.add_edge(parent, i, params.comm_cost);
    } else {
      builder.add_edge(i, parent, params.comm_cost);
    }
    if (++children[parent] >= params.max_arity) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
    }
    frontier.push_back(i);
  }
  return builder.build();
}

graph::TaskGraph binary_out_tree(int levels, double node_weight,
                                 double comm_cost) {
  FASTSCHED_REQUIRE(levels >= 1 && levels < 26, "levels must be in [1, 25]");
  graph::TaskGraphBuilder builder;
  const std::size_t n = (std::size_t{1} << levels) - 1;
  for (std::size_t i = 0; i < n; ++i) builder.add_node(node_weight);
  for (std::size_t i = 1; i < n; ++i) {
    builder.add_edge(static_cast<graph::NodeId>((i - 1) / 2),
                     static_cast<graph::NodeId>(i), comm_cost);
  }
  return builder.build();
}

}  // namespace fastsched::workloads
