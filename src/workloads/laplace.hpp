#pragma once

/// \file laplace.hpp
/// Laplace-equation-solver task graph (paper §5.1): a Gauss–Seidel / SOR
/// wavefront sweep over an N×N grid of cell-update tasks, plus one
/// distribution (source) task and one collection (sink) task — v = N² + 2,
/// exactly the task counts the paper reports (N = 4, 8, 16, 32 →
/// v = 18, 66, 258, 1026).
///
/// Cell (i, j) depends on its west neighbour (i, j−1) and its north
/// neighbour (i−1, j), giving the classic diagonal wavefront; boundary
/// cells take their inputs from the source task.

#include "graph/task_graph.hpp"
#include "workloads/timing_db.hpp"

namespace fastsched::workloads {

/// Builds the Laplace-solver DAG over an N×N grid (N >= 1).
[[nodiscard]] graph::TaskGraph laplace_dag(
    int n, const TimingDatabase& db = TimingDatabase::paragon());

/// Node count of `laplace_dag(n)`: n² + 2.
[[nodiscard]] constexpr std::size_t laplace_task_count(int n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) + 2;
}

}  // namespace fastsched::workloads
