#pragma once

/// \file gaussian.hpp
/// Gaussian-elimination task graph (paper §5.1). The decomposition mirrors
/// the CASCH kernel: elimination proceeds in N pivot steps; step k holds
/// one pivot-row task plus one update task per remaining row, and the
/// trailing layers shrink as rows are eliminated. Layer k (k = 0..N) has
/// N + 2 − k tasks, so the total node count is (N+1)(N+4)/2 — exactly the
/// task counts the paper reports (N = 4, 8, 16, 32 → v = 20, 54, 170, 594).
///
/// Edges: the pivot task of a layer broadcasts the pivot row to every
/// update task of the same layer; each update task feeds the task that
/// continues its row in the next layer. Weights come from the timing
/// database: a pivot/update task on a length-(N − k) row costs O(N − k)
/// flops and ships O(N − k) words.

#include "graph/task_graph.hpp"
#include "workloads/timing_db.hpp"

namespace fastsched::workloads {

/// Builds the Gaussian-elimination DAG for an N×N matrix (N >= 2).
[[nodiscard]] graph::TaskGraph gaussian_elimination_dag(
    int n, const TimingDatabase& db = TimingDatabase::paragon());

/// Node count of `gaussian_elimination_dag(n)`: (n+1)(n+4)/2.
[[nodiscard]] constexpr std::size_t gaussian_task_count(int n) {
  return static_cast<std::size_t>((n + 1) * (n + 4) / 2);
}

}  // namespace fastsched::workloads
