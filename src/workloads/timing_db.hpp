#pragma once

/// \file timing_db.hpp
/// The timing database substrate. In the paper, CASCH assigns node and edge
/// weights from a database of costs benchmarked on the Intel Paragon; here
/// the database is an explicit parameter object so the kernels derive their
/// weights from operation and message counts rather than hand-picked
/// numbers (same code path, synthetic calibration).
///
/// Units are microseconds throughout; message costs follow the standard
/// linear α + β·words model.

#include <cstdint>

namespace fastsched::workloads {

struct TimingDatabase {
  /// Cost of one logical operation on a grain of data (µs). The kernels
  /// count operations per row/block/cell, so this is "µs per element-op on
  /// the machine's natural grain", not a literal per-flop cost.
  double flop_cost = 5.0;
  /// Message startup latency α (µs).
  double alpha = 100.0;
  /// Per-word transfer cost β (µs / grain word).
  double beta = 0.5;
  /// Relative spread of the benchmarked task timings. CASCH assigned node
  /// weights from measured runs, which are data-dependent and noisy; the
  /// kernels jitter each task's cost deterministically by up to this
  /// fraction. Zero gives perfectly regular DAGs.
  double timing_noise = 0.15;

  /// Cost of shipping `words` 8-byte words between processors.
  [[nodiscard]] double comm_cost(double words) const {
    return alpha + beta * words;
  }

  /// Deterministic multiplicative timing jitter in
  /// [1 − timing_noise, 1 + timing_noise] for task `index` of the kernel
  /// identified by `kernel_seed` (a SplitMix64-style hash, so neighbouring
  /// indices decorrelate).
  [[nodiscard]] double jitter(std::uint64_t kernel_seed,
                              std::uint64_t index) const {
    std::uint64_t z = kernel_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    return 1.0 + timing_noise * (2.0 * u - 1.0);
  }

  /// Cost of `flops` floating-point operations.
  [[nodiscard]] double compute_cost(double flops) const {
    return flop_cost * flops;
  }

  /// Calibration in the ballpark of the paper's testbed (Intel Paragon:
  /// ~100 µs message startup, tens of MB/s sustained bandwidth, task
  /// grains of hundreds of µs). Small problem sizes come out
  /// communication-bound (matching the paper's near-identical times at
  /// dimension 4) while large sizes have real parallelism to exploit.
  [[nodiscard]] static TimingDatabase paragon() {
    return TimingDatabase{5.0, 100.0, 0.5};
  }

  /// A low-latency calibration (modern-cluster-like) used by tests and the
  /// CCR sweep benches.
  [[nodiscard]] static TimingDatabase low_latency() {
    return TimingDatabase{5.0, 5.0, 0.05};
  }
};

}  // namespace fastsched::workloads
