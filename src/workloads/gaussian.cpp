#include "workloads/gaussian.hpp"

#include <string>
#include <vector>

namespace fastsched::workloads {

graph::TaskGraph gaussian_elimination_dag(int n, const TimingDatabase& db) {
  FASTSCHED_REQUIRE(n >= 2, "matrix dimension must be >= 2");
  graph::TaskGraphBuilder builder;
  {
    // Sum over layers of (n + 2 - k) nodes; each layer contributes one
    // broadcast edge per update task plus a full handoff to the next.
    const auto nn = static_cast<std::size_t>(n);
    builder.reserve((nn + 1) * (nn + 4) / 2, (nn + 1) * (nn + 2));
  }

  // layer k (k = 0..n) has (n + 2 - k) tasks: index 0 is the pivot task,
  // indices 1..n+1-k are row-update tasks.
  std::vector<std::vector<graph::NodeId>> layer(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    const int tasks = n + 2 - k;
    const double row_len = static_cast<double>(n - k) + 1.0;
    for (int i = 0; i < tasks; ++i) {
      // A pivot task normalizes its row (one divide per element); an
      // update task does a multiply-subtract per element.
      const double flops = (i == 0 ? 1.0 : 2.0) * row_len;
      const std::string name =
          (i == 0 ? "piv" : "upd") + std::to_string(k) + "_" + std::to_string(i);
      const double cost = db.compute_cost(flops) *
                          db.jitter(0x6A755555ULL, builder.num_nodes());
      layer[k].push_back(builder.add_node(cost, name));
    }
  }

  for (int k = 0; k <= n; ++k) {
    const double row_words = static_cast<double>(n - k) + 1.0;
    const graph::Cost row_msg = db.comm_cost(row_words);
    // Pivot row broadcast within the layer.
    for (std::size_t i = 1; i < layer[k].size(); ++i) {
      builder.add_edge(layer[k][0], layer[k][i], row_msg);
    }
    // Each updated row continues into the next layer (row i+1 of layer k
    // becomes row i of layer k+1; row 1 becomes the next pivot).
    if (k < n) {
      for (std::size_t i = 0; i < layer[k + 1].size(); ++i) {
        builder.add_edge(layer[k][i + 1], layer[k + 1][i], row_msg);
      }
    }
  }
  return builder.build();
}

}  // namespace fastsched::workloads
