#include "workloads/fft.hpp"

#include <bit>
#include <cmath>
#include <string>
#include <vector>

namespace fastsched::workloads {
namespace {

[[nodiscard]] bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

[[nodiscard]] int ilog2(unsigned x) { return std::bit_width(x) - 1; }

}  // namespace

int fft_lanes(int points) {
  FASTSCHED_REQUIRE(points >= 4 && is_pow2(static_cast<unsigned>(points)),
                    "points must be a power of two >= 4");
  const auto root = static_cast<unsigned>(std::ceil(std::sqrt(points)));
  return static_cast<int>(std::bit_ceil(root));
}

std::size_t fft_task_count(int points) {
  const auto lanes = static_cast<std::size_t>(fft_lanes(points));
  const auto stages = static_cast<std::size_t>(ilog2(static_cast<unsigned>(lanes)));
  return 2 + lanes * (stages + 1);
}

graph::TaskGraph fft_dag(int points, const TimingDatabase& db) {
  const int lanes = fft_lanes(points);
  const int stages = ilog2(static_cast<unsigned>(lanes));
  const double block = static_cast<double>(points) / lanes;

  graph::TaskGraphBuilder builder;
  // scatter/gather fan edges + one edge per lane per stage pair.
  builder.reserve(fft_task_count(points),
                  2 * static_cast<std::size_t>(lanes) *
                      (static_cast<std::size_t>(stages) + 1));
  const graph::NodeId scatter =
      builder.add_node(db.compute_cost(2.0 * points), "scatter");

  // level[s][i]: lane i after stage s (stage 0 = local FFT of the block).
  std::vector<std::vector<graph::NodeId>> level(
      static_cast<std::size_t>(stages) + 1,
      std::vector<graph::NodeId>(static_cast<std::size_t>(lanes)));
  const double local_fft_flops =
      5.0 * block * std::max(1.0, std::log2(block));  // ~5 n log n
  const double butterfly_flops = 10.0 * block;        // combine two blocks
  const graph::Cost block_msg = db.comm_cost(block);

  for (int i = 0; i < lanes; ++i) {
    level[0][i] = builder.add_node(
        db.compute_cost(local_fft_flops) *
            db.jitter(0xFF7BEA7ULL, builder.num_nodes()),
        "fft0_" + std::to_string(i));
    builder.add_edge(scatter, level[0][i], block_msg);
  }
  for (int s = 1; s <= stages; ++s) {
    const int stride = 1 << (s - 1);
    for (int i = 0; i < lanes; ++i) {
      level[s][i] = builder.add_node(
          db.compute_cost(butterfly_flops) *
              db.jitter(0xFF7BEA7ULL, builder.num_nodes()),
          "bfy" + std::to_string(s) + "_" + std::to_string(i));
      builder.add_edge(level[s - 1][i], level[s][i], block_msg);
      builder.add_edge(level[s - 1][i ^ stride], level[s][i], block_msg);
    }
  }

  const graph::NodeId gather =
      builder.add_node(db.compute_cost(2.0 * points), "gather");
  for (int i = 0; i < lanes; ++i) {
    builder.add_edge(level[stages][i], gather, block_msg);
  }
  return builder.build();
}

}  // namespace fastsched::workloads
