#pragma once

/// \file spec.hpp
/// Shared textual workload specs ("gauss:8", "fft:64", "rand:200",
/// "paper") used by the CLI tools, so every tool names exactly the same
/// instance for the same spec string. Random specs pin their seed to the
/// size (1996 + N): `rand:2000` is one reproducible graph, not a fresh
/// sample per invocation.

#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace fastsched::workloads {

/// A parsed spec: the original text (used as the display label) plus the
/// constructed graph.
struct NamedGraph {
  std::string label;
  graph::TaskGraph graph;
};

/// Builds the workload a spec names. Accepted forms: `gauss:N` /
/// `gaussian:N` (N >= 2), `laplace:N` (N >= 1), `fft:N` (N >= 4),
/// `paper`, and `rand:N` / `random:N` (N >= 2). Throws Error on an
/// unknown name or an out-of-range size.
[[nodiscard]] NamedGraph make_workload(const std::string& spec);

/// Splits a comma-separated spec list ("gauss:8,fft:64") and builds every
/// entry in order; empty items are skipped.
[[nodiscard]] std::vector<NamedGraph> parse_workload_list(
    const std::string& list);

}  // namespace fastsched::workloads
