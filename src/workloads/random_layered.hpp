#pragma once

/// \file random_layered.hpp
/// Random layered DAG generator, exactly the construction of paper §5.2:
/// the height is drawn from a uniform distribution with mean ~sqrt(v), each
/// level's width from the same distribution (then adjusted so the total is
/// exactly v), nodes are connected from higher to lower levels at random,
/// and weights are random. The paper's instances are deliberately dense
/// (v = 2000..5000 with e ≈ 81k..180k, i.e. average out-degree ~36), which
/// `avg_out_degree` controls.

#include <cstdint>

#include "common/rng.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::workloads {

struct RandomDagParams {
  std::size_t num_nodes = 1000;
  /// Target average out-degree (paper's dense instances: ~36).
  double avg_out_degree = 36.0;
  /// Communication-to-computation ratio target: edge weights are drawn so
  /// the graph's CCR is approximately this value.
  double ccr = 1.0;
  /// Node weights are uniform in [min_weight, max_weight].
  double min_weight = 2.0;
  double max_weight = 100.0;
  std::uint64_t seed = 1;
};

/// Generates one random layered DAG. Deterministic per `params.seed`.
/// Guarantees: acyclic by construction (edges only go to strictly later
/// levels), every non-first-level node has at least one parent and every
/// non-last-level node at least one child (so the graph is connected and
/// the paper's IBN/OBN definitions apply).
[[nodiscard]] graph::TaskGraph random_layered_dag(const RandomDagParams& params);

}  // namespace fastsched::workloads
