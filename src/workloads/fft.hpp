#pragma once

/// \file fft.hpp
/// FFT task graph (paper §5.1): a blocked butterfly. The input is split
/// across L lanes (L = the smallest power of two >= sqrt(points), the
/// blocking CASCH uses); each lane first runs a local FFT over its
/// points/L-point block, then log2(L) butterfly-exchange stages combine the
/// lanes pairwise. One scatter task feeds the lanes and one gather task
/// collects the result, so v = 2 + L·(log2(L) + 1) — exactly the task
/// counts the paper reports (points = 16, 64, 128, 512 → v = 14, 34, 82,
/// 194).

#include "graph/task_graph.hpp"
#include "workloads/timing_db.hpp"

namespace fastsched::workloads {

/// Builds the FFT DAG for `points` input points (a power of two >= 4).
[[nodiscard]] graph::TaskGraph fft_dag(
    int points, const TimingDatabase& db = TimingDatabase::paragon());

/// Number of lanes used for `points`: smallest power of two >= sqrt(points).
[[nodiscard]] int fft_lanes(int points);

/// Node count of `fft_dag(points)`: 2 + lanes·(log2(lanes) + 1).
[[nodiscard]] std::size_t fft_task_count(int points);

}  // namespace fastsched::workloads
