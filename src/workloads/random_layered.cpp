#include "workloads/random_layered.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace fastsched::workloads {

graph::TaskGraph random_layered_dag(const RandomDagParams& params) {
  FASTSCHED_REQUIRE(params.num_nodes >= 2, "need at least two nodes");
  FASTSCHED_REQUIRE(params.min_weight > 0 &&
                        params.max_weight >= params.min_weight,
                    "invalid weight range");
  // NOLINT-fastsched(par-unsplit-rng): seed is an explicit per-cell parameter (pure function of the run config, worker-count independent)
  Rng rng(params.seed);
  const std::size_t v = params.num_nodes;
  const double sqrt_v = std::sqrt(static_cast<double>(v));

  // Height ~ U with mean sqrt(v) (paper §5.2), clamped to [2, v].
  const auto lo_h = static_cast<std::int64_t>(std::max(2.0, sqrt_v / 2.0));
  const auto hi_h = static_cast<std::int64_t>(std::max(3.0, 1.5 * sqrt_v));
  const auto height = static_cast<std::size_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(v), rng.uniform_range(lo_h, hi_h)));

  // Per-level widths ~ U with mean sqrt(v), then rescaled to sum exactly v.
  std::vector<std::size_t> widths(height, 1);
  {
    std::vector<double> raw(height);
    double sum = 0.0;
    for (auto& w : raw) {
      w = rng.uniform_real(std::max(1.0, sqrt_v / 2.0),
                           std::max(2.0, 1.5 * sqrt_v));
      sum += w;
    }
    std::size_t assigned = 0;
    for (std::size_t l = 0; l < height; ++l) {
      widths[l] = std::max<std::size_t>(
          1, static_cast<std::size_t>(raw[l] / sum * static_cast<double>(v)));
      assigned += widths[l];
    }
    // Distribute the rounding remainder (or claw back an excess).
    while (assigned < v) {
      ++widths[rng.uniform(height)];
      ++assigned;
    }
    while (assigned > v) {
      const std::size_t l = rng.uniform(height);
      if (widths[l] > 1) {
        --widths[l];
        --assigned;
      }
    }
  }

  // Node ids level by level; weights ~ U[min_weight, max_weight].
  graph::TaskGraphBuilder builder;
  builder.reserve(v, static_cast<std::size_t>(params.avg_out_degree *
                                              static_cast<double>(v)));
  std::vector<std::size_t> level_begin(height + 1, 0);
  double weight_sum = 0.0;
  for (std::size_t l = 0; l < height; ++l) {
    level_begin[l + 1] = level_begin[l] + widths[l];
    for (std::size_t i = 0; i < widths[l]; ++i) {
      const double w = rng.uniform_real(params.min_weight, params.max_weight);
      builder.add_node(w);
      weight_sum += w;
    }
  }
  const auto level_of = [&](graph::NodeId n) {
    const auto it = std::upper_bound(level_begin.begin(), level_begin.end(),
                                     static_cast<std::size_t>(n));
    return static_cast<std::size_t>(it - level_begin.begin()) - 1;
  };

  // Edge weights are drawn so average comm / average comp ≈ ccr.
  const double avg_weight = weight_sum / static_cast<double>(v);
  const double target_edge_mean = std::max(1e-9, params.ccr * avg_weight);
  const auto draw_edge_cost = [&]() {
    return rng.uniform_real(0.5 * target_edge_mean, 1.5 * target_edge_mean);
  };

  // Edges stream straight into the builder as they are drawn — the only
  // side structure is this dedupe set, sized up front so a million-node
  // generation never rehashes (insert-only: no det-unordered-iter hazard).
  std::unordered_set<std::uint64_t> used;
  used.reserve(2 * static_cast<std::size_t>(params.avg_out_degree *
                                            static_cast<double>(v)));
  const auto key = [](graph::NodeId a, graph::NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  const auto try_edge = [&](graph::NodeId a, graph::NodeId b) {
    if (!used.insert(key(a, b)).second) return false;
    builder.add_edge(a, b, draw_edge_cost());
    return true;
  };
  const auto random_in_level = [&](std::size_t l) {
    return static_cast<graph::NodeId>(
        level_begin[l] + rng.uniform(level_begin[l + 1] - level_begin[l]));
  };

  // Connectivity pass 1: every non-first-level node gets a parent in the
  // immediately preceding level. Each chosen parent is marked as having a
  // child right here, at insertion, in deterministic construction order —
  // pass 2 must never recover this by folding over the unordered `used`
  // set, whose visit order is implementation-defined (det-unordered-iter).
  std::vector<bool> has_child(v, false);
  for (std::size_t l = 1; l < height; ++l) {
    for (std::size_t i = level_begin[l]; i < level_begin[l + 1]; ++i) {
      const graph::NodeId parent = random_in_level(l - 1);
      try_edge(parent, static_cast<graph::NodeId>(i));
      has_child[parent] = true;
    }
  }
  // Connectivity pass 2: every non-last-level node gets a child.
  for (std::size_t l = 0; l + 1 < height; ++l) {
    for (std::size_t i = level_begin[l]; i < level_begin[l + 1]; ++i) {
      if (has_child[i]) continue;
      const std::size_t target_level =
          l + 1 + rng.uniform(height - l - 1);
      if (try_edge(static_cast<graph::NodeId>(i),
                   random_in_level(target_level))) {
        has_child[i] = true;
      }
    }
  }

  // Density pass: random higher-to-lower-level edges until the target
  // count (bounded attempts: dense near-cliques would otherwise loop).
  const auto target_edges = static_cast<std::size_t>(
      params.avg_out_degree * static_cast<double>(v));
  std::size_t attempts = 0;
  const std::size_t max_attempts = 4 * target_edges + 64;
  while (builder.num_edges() < target_edges && attempts++ < max_attempts) {
    const auto a = static_cast<graph::NodeId>(rng.uniform(v));
    const std::size_t la = level_of(a);
    if (la + 1 >= height) continue;
    const std::size_t lb = la + 1 + rng.uniform(height - la - 1);
    try_edge(a, random_in_level(lb));
  }

  return builder.build();
}

}  // namespace fastsched::workloads
