#include "workloads/laplace.hpp"

#include <string>
#include <vector>

namespace fastsched::workloads {

graph::TaskGraph laplace_dag(int n, const TimingDatabase& db) {
  FASTSCHED_REQUIRE(n >= 1, "grid dimension must be >= 1");
  graph::TaskGraphBuilder builder;
  {
    // n^2 cells + source/sink; ~2 halo edges per cell + boundary fans.
    const auto nn = static_cast<std::size_t>(n);
    builder.reserve(nn * nn + 2, 2 * nn * nn + 4 * nn);
  }

  // A cell update averages its four neighbours: ~5 flops per point; each
  // cell task owns a block of boundary points proportional to n, so costs
  // scale with the grid dimension (keeps CCR stable across sizes).
  const double cell_flops = 5.0 * n;
  const double halo_words = static_cast<double>(n);
  const graph::Cost halo_msg = db.comm_cost(halo_words);

  const graph::NodeId source =
      builder.add_node(db.compute_cost(2.0 * n * n), "distribute");
  std::vector<graph::NodeId> cell(static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n));
  const auto at = [&](int i, int j) {
    return cell[static_cast<std::size_t>(i) * n + j];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      cell[static_cast<std::size_t>(i) * n + j] = builder.add_node(
          db.compute_cost(cell_flops) *
              db.jitter(0x1A91ACEULL, builder.num_nodes()),
          "c" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  const graph::NodeId sink =
      builder.add_node(db.compute_cost(2.0 * n * n), "collect");

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const graph::NodeId c = at(i, j);
      if (i == 0 && j == 0) {
        builder.add_edge(source, c, halo_msg);
      } else {
        if (i == 0 && j == 1) builder.add_edge(source, c, halo_msg);
        if (j == 0 && i == 1) builder.add_edge(source, c, halo_msg);
        if (i > 0) builder.add_edge(at(i - 1, j), c, halo_msg);
        if (j > 0) builder.add_edge(at(i, j - 1), c, halo_msg);
      }
      if (i == n - 1 || j == n - 1) builder.add_edge(c, sink, halo_msg);
    }
  }
  return builder.build();
}

}  // namespace fastsched::workloads
