#include "workloads/spec.hpp"

#include <cstdint>
#include <sstream>

#include "common/error.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"
#include "workloads/paper_example.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched::workloads {

NamedGraph make_workload(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const int size = colon == std::string::npos
                       ? 0
                       : std::stoi(spec.substr(colon + 1));
  if (name == "gauss" || name == "gaussian") {
    FASTSCHED_REQUIRE(size >= 2, "gauss workload needs a size >= 2");
    return {spec, gaussian_elimination_dag(size)};
  }
  if (name == "laplace") {
    FASTSCHED_REQUIRE(size >= 1, "laplace workload needs a size >= 1");
    return {spec, laplace_dag(size)};
  }
  if (name == "fft") {
    FASTSCHED_REQUIRE(size >= 4, "fft workload needs a size >= 4");
    return {spec, fft_dag(size)};
  }
  if (name == "paper") {
    return {spec, paper_figure1_dag()};
  }
  if (name == "rand" || name == "random") {
    // The fig8 setup at a tamer density: seed tied to N the same way, so
    // rand:2000 always names the same instance.
    FASTSCHED_REQUIRE(size >= 2, "rand workload needs a size >= 2");
    RandomDagParams params;
    params.num_nodes = static_cast<std::size_t>(size);
    params.avg_out_degree = 8.0;
    params.ccr = 1.0;
    params.seed = 1996 + static_cast<std::uint64_t>(size);
    return {spec, random_layered_dag(params)};
  }
  throw Error("unknown workload '" + name +
              "' (expected gauss:N, laplace:N, fft:N, rand:N or paper)");
}

std::vector<NamedGraph> parse_workload_list(const std::string& list) {
  std::vector<NamedGraph> graphs;
  std::istringstream is(list);
  std::string spec;
  while (std::getline(is, spec, ',')) {
    if (!spec.empty()) graphs.push_back(make_workload(spec));
  }
  return graphs;
}

}  // namespace fastsched::workloads
