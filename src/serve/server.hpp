#pragma once

/// \file server.hpp
/// The sched_server request loop: long-lived, line-oriented, batched.
///
/// Requests are processed in fixed-size windows (`ServerOptions::batch`
/// requests; the window size is independent of `jobs`, so output bytes
/// and cache statistics are identical at any worker count). One window:
///
///   1. serial pre-pass, in request order: parse (scratch in the request
///      arena), fingerprint, result-cache lookup, and within-window
///      dedupe (a later duplicate of a not-yet-computed request counts
///      as a hit — it is served from the first copy's fresh result);
///   2. cold uniques fan out over `parallel_for_index` into per-request
///      retained response slots (slot-per-task writes, no shared state);
///   3. responses are emitted in request order — a cache hit emits the
///      cached bytes verbatim, so hit and cold responses for the same
///      request are byte-identical (the per-request `id` is prefixed
///      outside the cached payload);
///   4. cold payloads are inserted into the cache in request order
///      (after all emits, so eviction can never invalidate a payload a
///      later response in the same window still references), and the
///      arena is reset.
///
/// Steady state — warm arena, warm retained buffers, cache hit — runs
/// the whole loop with zero heap allocation; the allocation-counting
/// hook (alloc_counter.hpp) measures it in sched_server and in
/// tests/serve/serve_alloc_test.cpp.
///
/// A `{"cmd":"stats"}` request flushes the pending window first, so its
/// counters deterministically reflect every request before it.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace fastsched::serve {

struct ServerOptions {
  std::size_t jobs = 1;           ///< workers for cold-request fan-out
  std::size_t batch = 32;         ///< window size (requests); >= 1
  std::size_t cache_entries = 1024;
  std::size_t cache_bytes = 0;    ///< 0 = no byte bound
  bool use_cache = true;
  bool use_arena = true;          ///< false = heap-baseline request scratch
};

/// Deterministic serving counters (identical at any `jobs`).
struct ServerStats {
  std::uint64_t requests = 0;      ///< valid schedule requests
  std::uint64_t errors = 0;        ///< lines answered with a parse/run error
  std::uint64_t stats_requests = 0;
  std::uint64_t hits = 0;          ///< cache hits + window-dedupe hits
  std::uint64_t window_dedupe_hits = 0;
  std::uint64_t misses = 0;        ///< cold computations
};

class Server {
 public:
  explicit Server(ServerOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Buffers one request line; when the window fills, flushes it and
  /// appends the response lines (each '\n'-terminated) to `out`.
  void submit_line(std::string_view line, std::string& out);

  /// Flushes a partially-filled window.
  void flush(std::string& out);

  /// Drives the full loop: read lines from `in` until EOF, reply on
  /// `out`, then emit one diagnostic JSON line (allocation counters,
  /// jobs — the environment-dependent half of the stats) on `log`.
  /// Returns the process exit code (0 on clean EOF).
  int serve(std::istream& in, std::ostream& out, std::ostream& log);

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ResultCache::Stats& cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const Arena& arena() const noexcept { return arena_; }

 private:
  enum class Emit : std::uint8_t { kHit, kCold, kDup, kError, kStats };

  /// Serial pre-pass + fan-out + ordered emit + ordered cache insert.
  void flush_window(std::string& out);
  /// Computes one cold request into `response_slots_[slot]`.
  void compute_cold(const Request& req, std::size_t slot);
  /// Appends the stats-response payload (deterministic counters only).
  void append_stats_payload(std::string& out) const;
  void emit_response(std::string& out, bool has_id, std::uint64_t id,
                     const std::string& payload) const;

  ServerOptions options_;
  Arena arena_;
  ResultCache cache_;
  ServerStats stats_;

  // Per-window state; all capacity is retained across windows.
  std::vector<std::string> line_slots_;    ///< request text (views point here)
  std::vector<Request> window_;
  std::vector<Emit> emit_kind_;
  std::vector<std::size_t> emit_ref_;      ///< cold: slot; dup: target slot
  std::vector<const std::string*> hit_payload_;
  std::vector<std::uint64_t> fingerprints_;
  std::vector<std::size_t> cold_;          ///< window indices of cold uniques
  std::vector<bool> cold_cacheable_;       ///< per cold unique: insert after emit
  std::vector<std::string> response_slots_;
  std::string error_scratch_;
};

}  // namespace fastsched::serve
