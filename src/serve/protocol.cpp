#include "serve/protocol.hpp"

#include <charconv>
#include <cstdint>
#include <system_error>

#include "serve/fingerprint.hpp"

namespace fastsched::serve {

namespace {

struct Cursor {
  const char* p;
  const char* end;
};

void skip_ws(Cursor& c) noexcept {
  while (c.p != c.end && (*c.p == ' ' || *c.p == '\t' || *c.p == '\r')) ++c.p;
}

bool eat(Cursor& c, char ch) noexcept {
  skip_ws(c);
  if (c.p != c.end && *c.p == ch) {
    ++c.p;
    return true;
  }
  return false;
}

bool parse_string(Cursor& c, std::string_view& out, std::string_view& err) {
  skip_ws(c);
  if (c.p == c.end || *c.p != '"') {
    err = "expected a string";
    return false;
  }
  ++c.p;
  const char* begin = c.p;
  while (c.p != c.end && *c.p != '"') {
    if (*c.p == '\\') {
      err = "string escapes are not supported";
      return false;
    }
    ++c.p;
  }
  if (c.p == c.end) {
    err = "unterminated string";
    return false;
  }
  out = std::string_view(begin, static_cast<std::size_t>(c.p - begin));
  ++c.p;
  return true;
}

bool parse_u64(Cursor& c, std::uint64_t& out, std::string_view& err) {
  skip_ws(c);
  const auto [ptr, ec] = std::from_chars(c.p, c.end, out);
  if (ec != std::errc()) {
    err = "expected an unsigned integer";
    return false;
  }
  c.p = ptr;
  return true;
}

bool parse_f64(Cursor& c, double& out, std::string_view& err) {
  skip_ws(c);
  const auto [ptr, ec] = std::from_chars(c.p, c.end, out);
  if (ec != std::errc()) {
    err = "expected a number";
    return false;
  }
  c.p = ptr;
  return true;
}

bool parse_bool(Cursor& c, bool& out, std::string_view& err) {
  skip_ws(c);
  const std::size_t left = static_cast<std::size_t>(c.end - c.p);
  if (left >= 4 && std::string_view(c.p, 4) == "true") {
    out = true;
    c.p += 4;
    return true;
  }
  if (left >= 5 && std::string_view(c.p, 5) == "false") {
    out = false;
    c.p += 5;
    return true;
  }
  err = "expected true or false";
  return false;
}

}  // namespace

void parse_request(std::string_view line, Request& req) {
  req.kind = RequestKind::kInvalid;
  req.error = {};
  Cursor c{line.data(), line.data() + line.size()};
  std::string_view err;
  bool is_stats = false;
  bool saw_cmd = false;
  bool saw_field = false;

  if (!eat(c, '{')) {
    req.error = "request must be a JSON object";
    return;
  }
  // fastsched: hot
  if (!eat(c, '}')) {
    while (true) {
      std::string_view key;
      if (!parse_string(c, key, err)) {
        req.error = err;
        return;
      }
      if (!eat(c, ':')) {
        req.error = "expected ':' after field name";
        return;
      }
      saw_field = true;
      if (key == "id") {
        if (!parse_u64(c, req.id, err)) {
          req.error = err;
          return;
        }
        req.has_id = true;
      } else if (key == "cmd") {
        std::string_view cmd;
        if (!parse_string(c, cmd, err)) {
          req.error = err;
          return;
        }
        if (cmd != "stats") {
          req.error = "unknown cmd (only \"stats\")";
          return;
        }
        saw_cmd = true;
        is_stats = true;
      } else if (key == "workload") {
        if (!parse_string(c, req.workload, err)) {
          req.error = err;
          return;
        }
      } else if (key == "algorithm") {
        if (!parse_string(c, req.algorithm, err)) {
          req.error = err;
          return;
        }
      } else if (key == "procs") {
        std::uint64_t v = 0;
        if (!parse_u64(c, v, err)) {
          req.error = err;
          return;
        }
        req.procs = static_cast<std::size_t>(v);
      } else if (key == "seed") {
        if (!parse_u64(c, req.seed, err)) {
          req.error = err;
          return;
        }
      } else if (key == "max_steps") {
        std::uint64_t v = 0;
        if (!parse_u64(c, v, err)) {
          req.error = err;
          return;
        }
        if (v > 1000000000ULL) {
          req.error = "max_steps too large";
          return;
        }
        req.max_steps = static_cast<int>(v);
      } else if (key == "nodes") {
        if (!eat(c, '[')) {
          req.error = "nodes must be an array of weights";
          return;
        }
        req.has_inline_nodes = true;
        req.node_weights.clear();
        if (!eat(c, ']')) {
          while (true) {
            double w = 0;
            if (!parse_f64(c, w, err)) {
              req.error = err;
              return;
            }
            req.node_weights.push_back(w);  // NOLINT-fastsched(hot-alloc): grows in the request arena, reclaimed wholesale at the window reset — no heap traffic once the arena is warm
            if (eat(c, ',')) continue;
            if (eat(c, ']')) break;
            req.error = "expected ',' or ']' in nodes";
            return;
          }
        }
      } else if (key == "edges") {
        if (!eat(c, '[')) {
          req.error = "edges must be an array of [src,dst,cost]";
          return;
        }
        req.edges.clear();
        if (!eat(c, ']')) {
          while (true) {
            Edge e;
            std::uint64_t src = 0;
            std::uint64_t dst = 0;
            if (!eat(c, '[') || !parse_u64(c, src, err) || !eat(c, ',') ||
                !parse_u64(c, dst, err) || !eat(c, ',') ||
                !parse_f64(c, e.cost, err) || !eat(c, ']')) {
              req.error =
                  err.empty() ? std::string_view("edge must be [src,dst,cost]")
                              : err;
              return;
            }
            if (src > 0xFFFFFFFFULL || dst > 0xFFFFFFFFULL) {
              req.error = "edge endpoint out of range";
              return;
            }
            e.src = static_cast<std::uint32_t>(src);
            e.dst = static_cast<std::uint32_t>(dst);
            req.edges.push_back(e);  // NOLINT-fastsched(hot-alloc): grows in the request arena, reclaimed wholesale at the window reset — no heap traffic once the arena is warm
            if (eat(c, ',')) continue;
            if (eat(c, ']')) break;
            req.error = "expected ',' or ']' in edges";
            return;
          }
        }
      } else if (key == "schedule") {
        if (!parse_bool(c, req.want_schedule, err)) {
          req.error = err;
          return;
        }
      } else if (key == "cache") {
        bool use = true;
        if (!parse_bool(c, use, err)) {
          req.error = err;
          return;
        }
        req.no_cache = !use;
      } else {
        req.error = "unknown request field (see tools/README.md)";
        return;
      }
      if (eat(c, ',')) continue;
      if (eat(c, '}')) break;
      req.error = "expected ',' or '}' after field";
      return;
    }
  }
  // fastsched: end-hot
  skip_ws(c);
  if (c.p != c.end) {
    req.error = "trailing bytes after request object";
    return;
  }
  if (!saw_field) {
    req.error = "empty request";
    return;
  }

  if (is_stats) {
    if (!req.workload.empty() || req.has_inline_nodes || !req.edges.empty()) {
      req.error = "stats request takes only an id";
      return;
    }
    (void)saw_cmd;
    req.kind = RequestKind::kStats;
    return;
  }
  if (!req.workload.empty() && req.has_inline_nodes) {
    req.error = "request has both workload and inline nodes";
    return;
  }
  if (req.workload.empty() && !req.has_inline_nodes) {
    req.error = "request needs workload or nodes";
    return;
  }
  if (!req.edges.empty() && !req.has_inline_nodes) {
    req.error = "edges require inline nodes";
    return;
  }
  req.kind = RequestKind::kSchedule;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_f64(std::string& out, double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_error_payload(std::string& out, std::string_view msg) {
  out += "{\"status\":\"error\",\"error\":\"";
  out += msg;
  out += "\"}";
}

std::uint64_t fingerprint_request(const Request& req) {
  Fingerprint fp;
  fp.str(req.algorithm.empty() ? std::string_view("FAST") : req.algorithm);
  if (!req.workload.empty()) {
    fp.u64(1);  // domain tag: workload-spec instance
    const std::size_t colon = req.workload.find(':');
    if (colon == std::string_view::npos) {
      fp.str(normalize_workload_name(req.workload));
      fp.str(std::string_view());
    } else {
      fp.str(normalize_workload_name(req.workload.substr(0, colon)));
      fp.str(req.workload.substr(colon));
    }
  } else {
    fp.u64(2);  // domain tag: inline graph
    fp.u64(req.node_weights.size());
    for (const double w : req.node_weights) fp.f64(w);
    fp.u64(req.edges.size());
    for (const Edge& e : req.edges) {
      fp.u64(e.src);
      fp.u64(e.dst);
      fp.f64(e.cost);
    }
  }
  // Options with defaults filled in: an omitted field and its explicit
  // default land on the same key.
  fp.u64(req.procs);
  fp.u64(req.seed);
  fp.u64(static_cast<std::uint64_t>(req.max_steps));
  fp.u64(req.want_schedule ? 1 : 0);
  return fp.value();
}

void append_normalized_spec(std::string& out, std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    out += normalize_workload_name(spec);
  } else {
    out += normalize_workload_name(spec.substr(0, colon));
    out += spec.substr(colon);
  }
}

}  // namespace fastsched::serve
