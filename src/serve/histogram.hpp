#pragma once

/// \file histogram.hpp
/// A log-bucketed latency histogram (HDR-histogram style).
///
/// Fixed storage, no allocation after construction, O(1) record: latency
/// samples land in geometrically-spaced buckets (~5% relative width)
/// spanning 1 ns .. ~1000 s, so p50/p90/p99/max are read with bounded
/// relative error without keeping every sample. sched_client uses one
/// histogram per traffic class (cold / cached) to produce the
/// BENCH_serve.json percentiles.

#include <array>
#include <cstdint>

namespace fastsched::serve {

class LatencyHistogram {
 public:
  /// Adds one latency sample (seconds; clamped to the bucket range).
  void record(double seconds) noexcept;

  /// The value at quantile `q` in [0, 1]: the upper edge of the bucket
  /// containing the q-th sample (so the estimate errs high by at most
  /// one bucket width, ~5%). 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Largest exact sample seen (not bucketed).
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Sum of exact samples (for mean latency / utilization).
  [[nodiscard]] double total() const noexcept { return sum_; }

  void merge(const LatencyHistogram& other) noexcept;

 private:
  // 1.05^680 > 1e14, so the range [1 ns, ~100 ks] fits in 680 buckets.
  static constexpr double kMin = 1e-9;
  static constexpr double kRatio = 1.05;
  static constexpr std::size_t kBuckets = 680;

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

}  // namespace fastsched::serve
