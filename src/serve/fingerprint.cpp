#include "serve/fingerprint.hpp"

#include <cstring>

namespace fastsched::serve {

void Fingerprint::bytes(const void* data, std::size_t n) noexcept {
  // fastsched: hot
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = hash_;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  hash_ = h;
  // fastsched: end-hot
}

void Fingerprint::f64(double v) noexcept {
  if (v == 0.0) v = 0.0;  // collapse -0.0
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

std::string_view normalize_workload_name(std::string_view name) noexcept {
  if (name == "random") return "rand";
  if (name == "gaussian") return "gauss";
  return name;
}

}  // namespace fastsched::serve
