#pragma once

/// \file fingerprint.hpp
/// Content-addressed cache keys for scheduling requests.
///
/// The result cache (result_cache.hpp) is keyed by a 64-bit FNV-1a
/// fingerprint of everything that determines a response byte-for-byte:
/// the problem instance plus the normalized scheduling options
/// (algorithm, processor budget, seed, step budget, response shape).
/// Two requests with equal fingerprints receive identical response
/// payloads, so a hit can skip scheduling entirely.
///
/// Key derivation (also documented in DESIGN.md §6):
///  - Workload-spec requests (`"workload": "rand:200"`) hash the
///    *normalized* spec — alias spellings (`random`/`rand`,
///    `gaussian`/`gauss`) collapse to one canonical name, so every
///    spelling of the same built-in instance hits the same entry. The
///    graph itself is never built on the hit path: the spec names a
///    reproducible instance (spec.hpp pins the seed to the size), so
///    hashing the normalized name is exactly as collision-free as
///    hashing the generated CSR, at O(spec length) instead of O(v + e).
///  - Inline-graph requests hash the node weight array and the edge
///    triples in request order. Edge order is deliberately part of the
///    key: adjacency order feeds scheduler tie-breaking, so two
///    orderings of the same edge set are distinct instances.
///  - Options are hashed with defaults filled in, so an omitted field
///    and its explicit default produce the same key.
///
/// FNV-1a is not cryptographic; a user who *wants* collisions can make
/// them. The cache serves trusted traffic (the threat model is load, not
/// adversarial inputs), and a collision costs a wrong answer for one
/// poisoned key, never memory unsafety. The collision-resistance smoke
/// tests (tests/serve/fingerprint_test.cpp) pin the properties that
/// matter in practice: structural permutations, weight edits, and every
/// option knob each move the key.

#include <cstdint>
#include <string_view>

namespace fastsched::serve {

/// Incremental FNV-1a 64-bit hasher.
class Fingerprint {
 public:
  /// Folds raw bytes into the state.
  void bytes(const void* data, std::size_t n) noexcept;

  void str(std::string_view s) noexcept {
    bytes(s.data(), s.size());
    u64(s.size());  // length-prefix: "ab"+"c" != "a"+"bc"
  }

  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }

  /// Doubles are hashed by bit pattern; -0.0 is normalized to 0.0 so the
  /// two spellings of zero cost coincide.
  void f64(double v) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;  ///< FNV offset basis
};

/// Normalizes a workload-spec name: alias spellings collapse
/// ("random" -> "rand", "gaussian" -> "gauss"); anything else is
/// returned unchanged (unknown names fail later, when the workload is
/// built).
[[nodiscard]] std::string_view normalize_workload_name(
    std::string_view name) noexcept;

}  // namespace fastsched::serve
