#include "serve/server.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/report_io.hpp"
#include "baselines/registry.hpp"
#include "common/alloc_counter.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fast/fast.hpp"
#include "graph/task_graph.hpp"
#include "serve/fingerprint.hpp"
#include "workloads/spec.hpp"

namespace fastsched::serve {

namespace {

constexpr std::string_view kOkPrefix = "{\"status\":\"ok\"";

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_entries > 0 ? options.cache_entries : 1,
             options.cache_bytes) {
  FASTSCHED_REQUIRE(options_.batch >= 1, "server batch must be >= 1");
  // Every per-window container gets its full capacity here, so the
  // steady-state loop never grows one.
  line_slots_.resize(options_.batch);
  window_.reserve(options_.batch);
  emit_kind_.reserve(options_.batch);
  emit_ref_.reserve(options_.batch);
  hit_payload_.reserve(options_.batch);
  fingerprints_.reserve(options_.batch);
  cold_.reserve(options_.batch);
  cold_cacheable_.reserve(options_.batch);
  response_slots_.resize(options_.batch);
}

void Server::submit_line(std::string_view line, std::string& out) {
  const std::size_t k = window_.size();
  // The line is copied into a retained slot: Request string_views must
  // survive until the window flushes, and the caller reuses its buffer.
  line_slots_[k].assign(line.data(), line.size());
  window_.emplace_back(options_.use_arena ? &arena_ : nullptr);
  parse_request(line_slots_[k], window_.back());

  if (window_.back().kind == RequestKind::kStats) {
    const bool has_id = window_.back().has_id;
    const std::uint64_t id = window_.back().id;
    window_.pop_back();
    // Flush first: the counters deterministically cover every request
    // that precedes this one on the wire.
    flush(out);
    ++stats_.stats_requests;
    error_scratch_.clear();
    append_stats_payload(error_scratch_);
    emit_response(out, has_id, id, error_scratch_);
    return;
  }
  if (window_.size() == options_.batch) flush_window(out);
}

void Server::flush(std::string& out) {
  if (!window_.empty()) flush_window(out);
}

void Server::flush_window(std::string& out) {
  const std::size_t n = window_.size();
  emit_kind_.clear();
  emit_ref_.clear();
  hit_payload_.clear();
  fingerprints_.clear();
  cold_.clear();
  cold_cacheable_.clear();

  // Serial pre-pass, in request order: fingerprint, cache lookup,
  // within-window dedupe. Serial and order-fixed is what makes hit/miss
  // accounting and LRU motion identical at any --jobs.
  // fastsched: hot
  for (std::size_t k = 0; k < n; ++k) {
    const Request& req = window_[k];
    if (req.kind == RequestKind::kInvalid) {
      ++stats_.errors;
      emit_kind_.push_back(Emit::kError);
      emit_ref_.push_back(0);
      hit_payload_.push_back(nullptr);
      fingerprints_.push_back(0);
      continue;
    }
    ++stats_.requests;
    const std::uint64_t fp = fingerprint_request(req);
    fingerprints_.push_back(fp);
    hit_payload_.push_back(nullptr);
    const bool cacheable = options_.use_cache && !req.no_cache;
    if (cacheable) {
      if (const std::string* hit = cache_.find(fp)) {
        ++stats_.hits;
        emit_kind_.push_back(Emit::kHit);
        emit_ref_.push_back(0);
        hit_payload_.back() = hit;
        continue;
      }
      // A duplicate of an earlier not-yet-computed request in this
      // window is served from that request's fresh result: one compute,
      // two responses, counted as a hit. Linear scan: windows are small.
      std::size_t dup_of = cold_.size();
      for (std::size_t ci = 0; ci < cold_.size(); ++ci) {
        if (fingerprints_[cold_[ci]] == fp) {
          dup_of = ci;
          break;
        }
      }
      if (dup_of != cold_.size()) {
        ++stats_.hits;
        ++stats_.window_dedupe_hits;
        emit_kind_.push_back(Emit::kDup);
        emit_ref_.push_back(dup_of);
        continue;
      }
    }
    ++stats_.misses;
    emit_kind_.push_back(Emit::kCold);
    emit_ref_.push_back(cold_.size());
    cold_.push_back(k);
    cold_cacheable_.push_back(cacheable);
  }
  // fastsched: end-hot

  // Cold uniques fan out; slot-per-task writes keep the merge trivially
  // deterministic. compute_cold never throws (errors become payloads).
  const std::size_t ncold = cold_.size();
  if (ncold > 0) {
    parallel_for_index(options_.jobs, ncold, [this](std::size_t ci) {
      compute_cold(window_[cold_[ci]], ci);
    });
  }

  // Ordered emit. Hit payloads stay valid: nothing is inserted into the
  // cache (so nothing can be evicted) until every response is out.
  // fastsched: hot
  for (std::size_t k = 0; k < n; ++k) {
    const Request& req = window_[k];
    switch (emit_kind_[k]) {
      case Emit::kError:
        error_scratch_.clear();
        append_error_payload(error_scratch_, req.error);
        emit_response(out, req.has_id, req.id, error_scratch_);
        break;
      case Emit::kHit:
        emit_response(out, req.has_id, req.id, *hit_payload_[k]);
        break;
      case Emit::kCold:
      case Emit::kDup:
        emit_response(out, req.has_id, req.id, response_slots_[emit_ref_[k]]);
        break;
      case Emit::kStats:
        break;  // stats never enters a window
    }
  }
  // fastsched: end-hot

  // Ordered cache inserts (cold path: the payload copy may allocate).
  // Error payloads are not cached: they are cheap to recompute and a
  // transient failure must not become sticky.
  for (std::size_t ci = 0; ci < ncold; ++ci) {
    if (cold_cacheable_[ci] &&
        response_slots_[ci].compare(0, kOkPrefix.size(), kOkPrefix) == 0) {
      cache_.insert(fingerprints_[cold_[ci]], std::string(response_slots_[ci]));
    }
  }

  window_.clear();
  arena_.reset();
}

void Server::compute_cold(const Request& req, std::size_t slot) {
  std::string& out = response_slots_[slot];
  out.clear();
  try {
    std::string label;
    const graph::TaskGraph g = [&] {
      if (!req.workload.empty()) {
        append_normalized_spec(label, req.workload);
        return workloads::make_workload(label).graph;
      }
      label = "inline";
      graph::TaskGraphBuilder b;
      b.reserve(req.node_weights.size(), req.edges.size());
      for (const double w : req.node_weights) b.add_node(w);
      for (const Edge& e : req.edges) b.add_edge(e.src, e.dst, e.cost);
      return b.build();
    }();

    const std::string algo =
        req.algorithm.empty() ? "FAST" : std::string(req.algorithm);
    const sched::SchedulerOptions sopts{req.procs, req.seed};
    const sched::Schedule schedule = [&] {
      if (algo == "FAST") {
        // Direct construction so the request's max_steps is honored.
        fast::FastOptions fo;
        fo.num_procs = req.procs;
        fo.max_steps = req.max_steps;
        fo.seed = req.seed;
        return fast::FastScheduler(fo).run(g, sopts);
      }
      return baselines::make_scheduler(algo)->run(g, sopts);
    }();

    // The certificate line: the cheap O(v + e) bound families only —
    // the exact Fernandez search is far too hot for a serving path.
    analysis::BoundOptions bo;
    bo.num_procs = sched::effective_procs(g, sopts);
    bo.interval_density = false;
    const analysis::BoundSet bounds = analysis::compute_bounds(g, bo);
    const analysis::BoundCertificate* binding = bounds.binding();

    out += kOkPrefix;
    out += ",\"algorithm\":\"";
    out += algo;
    out += "\",\"workload\":\"";
    out += label;
    out += "\",\"nodes\":";
    append_u64(out, g.num_nodes());
    out += ",\"edges\":";
    append_u64(out, g.num_edges());
    out += ",\"procs\":";
    append_u64(out, sched::effective_procs(g, sopts));
    out += ",\"procs_used\":";
    append_u64(out, schedule.procs_used());
    out += ",\"makespan\":";
    append_f64(out, schedule.length());
    out += ",\"best_bound\":";
    append_f64(out, bounds.best());
    out += ",\"bound_id\":\"";
    out += binding != nullptr ? binding->id : "";
    out += "\",\"gap\":";
    append_f64(out, analysis::optimality_gap(bounds, schedule.length()));
    if (req.want_schedule) {
      out += ",\"schedule\":[";
      for (std::size_t v = 0; v < g.num_nodes(); ++v) {
        const auto node = static_cast<graph::NodeId>(v);
        if (v > 0) out += ',';
        out += '[';
        append_u64(out, schedule.proc(node));
        out += ',';
        append_f64(out, schedule.start(node));
        out += ',';
        append_f64(out, schedule.finish(node));
        out += ']';
      }
      out += ']';
    }
    out += '}';
  } catch (const std::exception& e) {
    out.clear();
    out += "{\"status\":\"error\",\"error\":\"";
    out += analysis::json_escape(e.what());
    out += "\"}";
  }
}

void Server::append_stats_payload(std::string& out) const {
  const ResultCache::Stats& cs = cache_.stats();
  out += kOkPrefix;
  out += ",\"stats\":{\"requests\":";
  append_u64(out, stats_.requests);
  out += ",\"errors\":";
  append_u64(out, stats_.errors);
  out += ",\"stats_requests\":";
  append_u64(out, stats_.stats_requests);
  // No window_dedupe_hits here: whether a duplicate was served by the
  // window dedupe or by the cache depends on --batch, and the stats
  // response must be identical for any window size. The split lives on
  // the diag line with the other configuration-dependent counters.
  out += ",\"hits\":";
  append_u64(out, stats_.hits);
  out += ",\"misses\":";
  append_u64(out, stats_.misses);
  out += ",\"insertions\":";
  append_u64(out, cs.insertions);
  out += ",\"evictions\":";
  append_u64(out, cs.evictions);
  out += ",\"entries\":";
  append_u64(out, cs.entries);
  out += ",\"payload_bytes\":";
  append_u64(out, cs.payload_bytes);
  out += "}}";
}

void Server::emit_response(std::string& out, bool has_id, std::uint64_t id,
                           const std::string& payload) const {
  // The id is prefixed *outside* the payload, so cached bytes are
  // id-free and a hit is byte-identical to the cold response.
  if (has_id) {
    out += "{\"id\":";
    append_u64(out, id);
    out += ',';
    out.append(payload.data() + 1, payload.size() - 1);
  } else {
    out += payload;
  }
  out += '\n';
}

int Server::serve(std::istream& in, std::ostream& out, std::ostream& log) {
  std::string line;
  std::string outbuf;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    outbuf.clear();
    submit_line(line, outbuf);
    if (!outbuf.empty()) {
      out.write(outbuf.data(), static_cast<std::streamsize>(outbuf.size()));
      out.flush();
    }
  }
  outbuf.clear();
  flush(outbuf);
  if (!outbuf.empty()) {
    out.write(outbuf.data(), static_cast<std::streamsize>(outbuf.size()));
  }
  out.flush();

  // Configuration-dependent diagnostics go to the log stream, never to
  // stdout: stdout must be byte-identical at any --jobs or --batch (the
  // arena counters scale with the window size, so they live here too).
  log << "{\"diag\":{\"jobs\":" << options_.jobs << ",\"batch\":"
      << options_.batch << ",\"cache\":" << (options_.use_cache ? 1 : 0)
      << ",\"arena\":" << (options_.use_arena ? 1 : 0)
      << ",\"requests\":" << stats_.requests << ",\"hits\":" << stats_.hits
      << ",\"window_dedupe_hits\":" << stats_.window_dedupe_hits
      << ",\"misses\":" << stats_.misses
      << ",\"arena_reserved\":" << arena_.bytes_reserved()
      << ",\"arena_high_water\":" << arena_.high_water()
      << ",\"arena_chunk_allocs\":" << arena_.chunk_allocations()
      << ",\"alloc_counting\":" << (heap_alloc_counting_enabled() ? 1 : 0)
      << ",\"heap_allocs\":" << heap_alloc_count() << "}}" << std::endl;
  return 0;
}

}  // namespace fastsched::serve
