#pragma once

/// \file protocol.hpp
/// The sched_server line protocol: one JSON object per input line, one
/// JSON object per output line (tools/README.md documents the wire
/// format; DESIGN.md §6 the architecture around it).
///
/// Requests name a problem either by built-in workload spec
/// (`{"workload":"rand:200","procs":8}`) or inline
/// (`{"nodes":[1,2,3],"edges":[[0,1,1.5],[1,2,2]],"procs":2}`), plus
/// scheduling options. `{"cmd":"stats"}` asks for server counters.
///
/// The parser is deliberately a hand-rolled subset of JSON — objects of
/// scalar/array fields, no nesting beyond the edge triples, no string
/// escapes — because it sits on the per-request hot path and must not
/// allocate: field strings are `string_view`s into the input line (valid
/// until the next line replaces the buffer), and the variable-size
/// vectors (inline node weights, edge triples) grow in the request
/// arena. A malformed line yields `RequestKind::kInvalid` plus a static
/// error message; it never throws and never kills the server.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"

namespace fastsched::serve {

/// One inline-graph edge, as it appears on the wire: `[src, dst, cost]`.
struct Edge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double cost = 0;
};

enum class RequestKind : std::uint8_t {
  kSchedule,  ///< schedule a workload-spec or inline graph
  kStats,     ///< report server counters
  kInvalid,   ///< malformed; `error` says why
};

/// One parsed request line. Views point into the caller's line buffer;
/// vectors live in the request arena (or the heap when constructed with
/// a null arena) — either way the Request is scratch for one window.
struct Request {
  explicit Request(Arena* arena)
      : node_weights(ArenaAllocator<double>(arena)),
        edges(ArenaAllocator<Edge>(arena)) {}

  RequestKind kind = RequestKind::kInvalid;
  bool has_id = false;
  std::uint64_t id = 0;

  std::string_view workload;   ///< built-in spec, empty for inline graphs
  std::string_view algorithm;  ///< empty = "FAST"
  std::vector<double, ArenaAllocator<double>> node_weights;
  std::vector<Edge, ArenaAllocator<Edge>> edges;
  bool has_inline_nodes = false;

  std::size_t procs = 0;      ///< 0 = one processor per node
  std::uint64_t seed = 1;
  int max_steps = 64;         ///< FAST local-search budget
  bool want_schedule = false; ///< include per-node [proc,start,finish]
  bool no_cache = false;      ///< bypass the result cache for this request

  std::string_view error;     ///< static message when kind == kInvalid
};

/// Parses one line into `req` (which the caller constructed against the
/// right arena). On failure `req.kind == kInvalid` and `req.error` holds
/// a static description. Never throws, never allocates on the heap when
/// the arena is live.
void parse_request(std::string_view line, Request& req);

/// Appends `v` to `out` via std::to_chars (no locale, no allocation
/// beyond `out`'s own growth — callers keep `out`'s capacity warm).
void append_u64(std::string& out, std::uint64_t v);

/// Appends the shortest round-trip decimal form of `v` — the same bytes
/// for the same double everywhere, which the byte-identity tests rely
/// on.
void append_f64(std::string& out, double v);

/// Appends a complete error-response payload:
/// `{"status":"error","error":"<msg>"}` (msg must not need escaping —
/// all protocol error strings are static ASCII).
void append_error_payload(std::string& out, std::string_view msg);

/// The content-addressed cache key for a schedule request: everything
/// that determines the response payload byte-for-byte (fingerprint.hpp
/// documents the derivation). Zero-alloc.
[[nodiscard]] std::uint64_t fingerprint_request(const Request& req);

/// Appends the canonical spelling of a workload spec ("random:200" ->
/// "rand:200"); responses echo this form so alias spellings of one
/// instance produce byte-identical payloads.
void append_normalized_spec(std::string& out, std::string_view spec);

}  // namespace fastsched::serve
