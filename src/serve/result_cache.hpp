#pragma once

/// \file result_cache.hpp
/// Content-addressed LRU cache of serialized responses.
///
/// Maps a request fingerprint (fingerprint.hpp) to the exact response
/// payload bytes the server would produce cold, so repeated requests —
/// the common case under heavy traffic — are answered in O(1) with a
/// byte-identical reply. The cache is bounded two ways (entry count and
/// total payload bytes); eviction is strict LRU.
///
/// Allocation discipline: `find()` is on the steady-state hot path and
/// performs zero heap allocation — the index is an open-addressing table
/// sized at construction, entries live in a fixed slab, and the LRU list
/// is intrusive (prev/next indices in the slab). Only `insert()` (the
/// cold path, once per distinct request) allocates: it takes ownership
/// of the payload string it is given and recycles evicted slots through
/// a free list. Not thread-safe: the serve loop does all cache traffic
/// from the request thread, in request order, which also makes eviction
/// deterministic.

#include <cstdint>
#include <string>
#include <vector>

namespace fastsched::serve {

class ResultCache {
 public:
  /// At most `max_entries` payloads (>= 1) and, when `max_bytes` > 0, at
  /// most `max_bytes` of summed payload bytes.
  explicit ResultCache(std::size_t max_entries, std::size_t max_bytes = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached payload for `key`, or nullptr. A hit moves the entry to
  /// the front of the LRU order. Counts one hit or one miss.
  [[nodiscard]] const std::string* find(std::uint64_t key) noexcept;

  /// Inserts (or replaces) the payload for `key`, evicting
  /// least-recently-used entries while over either bound. The payload is
  /// moved in.
  void insert(std::uint64_t key, std::string&& payload);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;        ///< live entries right now
    std::size_t payload_bytes = 0;  ///< summed payload sizes right now
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;

  struct Entry {
    std::uint64_t key = 0;
    std::string payload;
    std::uint32_t prev = kNil;  ///< LRU list toward most-recent
    std::uint32_t next = kNil;  ///< LRU list toward least-recent
  };

  /// Index of `key`'s table slot (occupied or the insertion point).
  [[nodiscard]] std::size_t probe(std::uint64_t key) const noexcept;
  void unlink(std::uint32_t e) noexcept;
  void push_front(std::uint32_t e) noexcept;
  void evict_lru();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::vector<Entry> slab_;             ///< capacity fixed at construction
  std::vector<std::uint32_t> free_;     ///< recycled slab slots
  std::vector<std::uint32_t> table_;    ///< open addressing: slab index or kNil
  std::size_t table_mask_ = 0;
  std::uint32_t head_ = kNil;  ///< most recently used
  std::uint32_t tail_ = kNil;  ///< least recently used
  Stats stats_;
};

}  // namespace fastsched::serve
