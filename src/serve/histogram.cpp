#include "serve/histogram.hpp"

#include <cmath>

namespace fastsched::serve {

namespace {
// 1 / ln(kRatio), precomputed so record() is one log + one multiply.
const double kInvLogRatio = 1.0 / std::log(1.05);
}  // namespace

void LatencyHistogram::record(double seconds) noexcept {
  if (!(seconds > 0)) seconds = kMin;  // also catches NaN
  if (seconds > max_) max_ = seconds;
  sum_ += seconds;
  ++count_;
  double idx = std::floor(std::log(seconds / kMin) * kInvLogRatio);
  if (idx < 0) idx = 0;
  std::size_t b = static_cast<std::size_t>(idx);
  if (b >= kBuckets) b = kBuckets - 1;
  ++counts_[b];
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= target && counts_[b] > 0) {
      // Upper edge of bucket b; never above the exact max.
      const double edge = kMin * std::pow(kRatio, static_cast<double>(b + 1));
      return edge < max_ ? edge : max_;
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

}  // namespace fastsched::serve
