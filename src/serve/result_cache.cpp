#include "serve/result_cache.hpp"

#include "common/error.hpp"

namespace fastsched::serve {

namespace {

/// Murmur3 finalizer: the table index must not inherit any structure the
/// FNV fold left in the low bits.
std::uint64_t mix(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

ResultCache::ResultCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {
  FASTSCHED_REQUIRE(max_entries >= 1, "result cache needs max_entries >= 1");
  // Power-of-two table at load factor <= 1/4: probe chains stay short for
  // the whole life of the cache, and the table never rehashes.
  std::size_t table = 4;
  while (table < 4 * max_entries_) table *= 2;
  table_.assign(table, kNil);
  table_mask_ = table - 1;
  slab_.resize(max_entries_);
  free_.reserve(max_entries_);
  for (std::size_t i = max_entries_; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
}

std::size_t ResultCache::probe(std::uint64_t key) const noexcept {
  // fastsched: hot
  std::size_t s = mix(key) & table_mask_;
  while (table_[s] != kNil && slab_[table_[s]].key != key) {
    s = (s + 1) & table_mask_;
  }
  return s;
  // fastsched: end-hot
}

void ResultCache::unlink(std::uint32_t e) noexcept {
  Entry& entry = slab_[e];
  if (entry.prev == kNil) {
    head_ = entry.next;
  } else {
    slab_[entry.prev].next = entry.next;
  }
  if (entry.next == kNil) {
    tail_ = entry.prev;
  } else {
    slab_[entry.next].prev = entry.prev;
  }
  entry.prev = entry.next = kNil;
}

void ResultCache::push_front(std::uint32_t e) noexcept {
  Entry& entry = slab_[e];
  entry.prev = kNil;
  entry.next = head_;
  if (head_ != kNil) slab_[head_].prev = e;
  head_ = e;
  if (tail_ == kNil) tail_ = e;
}

const std::string* ResultCache::find(std::uint64_t key) noexcept {
  // fastsched: hot
  const std::size_t s = probe(key);
  if (table_[s] == kNil) {
    ++stats_.misses;
    return nullptr;
  }
  const std::uint32_t e = table_[s];
  if (head_ != e) {
    unlink(e);
    push_front(e);
  }
  ++stats_.hits;
  return &slab_[e].payload;
  // fastsched: end-hot
}

void ResultCache::evict_lru() {
  FASTSCHED_ASSERT(tail_ != kNil);
  const std::uint32_t e = tail_;
  unlink(e);
  stats_.payload_bytes -= slab_[e].payload.size();
  slab_[e].payload.clear();
  slab_[e].payload.shrink_to_fit();
  --stats_.entries;
  ++stats_.evictions;
  free_.push_back(e);

  // Backward-shift deletion keeps linear probing tombstone-free: refill
  // the vacated slot with any later chain member whose home position
  // allows the move, repeating from the new hole.
  std::size_t hole = probe(slab_[e].key);
  FASTSCHED_ASSERT(table_[hole] == e);
  table_[hole] = kNil;
  std::size_t j = hole;
  while (true) {
    j = (j + 1) & table_mask_;
    if (table_[j] == kNil) break;
    const std::size_t home = mix(slab_[table_[j]].key) & table_mask_;
    if (((j - home) & table_mask_) >= ((j - hole) & table_mask_)) {
      table_[hole] = table_[j];
      table_[j] = kNil;
      hole = j;
    }
  }
}

void ResultCache::insert(std::uint64_t key, std::string&& payload) {
  const std::size_t s = probe(key);
  if (table_[s] != kNil) {
    // Replace in place (same key, e.g. re-inserted after a bypassed run).
    Entry& entry = slab_[table_[s]];
    stats_.payload_bytes -= entry.payload.size();
    entry.payload = std::move(payload);
    stats_.payload_bytes += entry.payload.size();
    if (head_ != table_[s]) {
      unlink(table_[s]);
      push_front(table_[s]);
    }
    ++stats_.insertions;
  } else {
    if (free_.empty()) evict_lru();
    const std::uint32_t e = free_.back();
    free_.pop_back();
    Entry& entry = slab_[e];
    entry.key = key;
    entry.payload = std::move(payload);
    stats_.payload_bytes += entry.payload.size();
    ++stats_.entries;
    ++stats_.insertions;
    table_[probe(key)] = e;
    push_front(e);
  }
  if (max_bytes_ > 0) {
    while (stats_.payload_bytes > max_bytes_ && stats_.entries > 1) {
      evict_lru();
    }
  }
}

}  // namespace fastsched::serve
