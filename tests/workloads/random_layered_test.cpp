#include "workloads/random_layered.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/dag_lint.hpp"
#include "graph/io.hpp"

namespace fastsched::workloads {
namespace {

TEST(RandomLayered, ExactNodeCount) {
  for (const std::size_t v : {10u, 57u, 200u, 1000u}) {
    RandomDagParams params;
    params.num_nodes = v;
    params.seed = v;
    EXPECT_EQ(random_layered_dag(params).num_nodes(), v);
  }
}

TEST(RandomLayered, DeterministicPerSeed) {
  RandomDagParams params;
  params.num_nodes = 120;
  params.seed = 77;
  const auto a = random_layered_dag(params);
  const auto b = random_layered_dag(params);
  EXPECT_EQ(graph::to_text(a), graph::to_text(b));
}

TEST(RandomLayered, DifferentSeedsDiffer) {
  RandomDagParams params;
  params.num_nodes = 120;
  params.seed = 1;
  const auto a = random_layered_dag(params);
  params.seed = 2;
  const auto b = random_layered_dag(params);
  EXPECT_NE(graph::to_text(a), graph::to_text(b));
}

TEST(RandomLayered, HitsTargetDensityApproximately) {
  RandomDagParams params;
  params.num_nodes = 1000;
  params.avg_out_degree = 20.0;
  params.seed = 5;
  const auto g = random_layered_dag(params);
  const double avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_GT(avg, 14.0);
  EXPECT_LE(avg, 20.5);
}

TEST(RandomLayered, HitsTargetCcrApproximately) {
  for (const double target : {0.1, 1.0, 10.0}) {
    RandomDagParams params;
    params.num_nodes = 800;
    params.ccr = target;
    params.seed = 11;
    const auto g = random_layered_dag(params);
    EXPECT_NEAR(g.ccr() / target, 1.0, 0.25) << "target CCR " << target;
  }
}

TEST(RandomLayered, EveryMidNodeHasParentAndChild) {
  RandomDagParams params;
  params.num_nodes = 300;
  params.seed = 13;
  const auto g = random_layered_dag(params);
  // Entry nodes have children; exit nodes have parents; everything else
  // has both (the generator repairs dangling nodes).
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_TRUE(g.in_degree(n) > 0 || g.out_degree(n) > 0) << n;
  }
  EXPECT_LT(g.entry_nodes().size(), g.num_nodes() / 2);
}

TEST(RandomLayered, WeightsWithinRange) {
  RandomDagParams params;
  params.num_nodes = 200;
  params.min_weight = 5.0;
  params.max_weight = 9.0;
  params.seed = 17;
  const auto g = random_layered_dag(params);
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_GE(g.weight(n), 5.0);
    EXPECT_LE(g.weight(n), 9.0);
  }
}

TEST(RandomLayered, PaperScaleInstanceIsDense) {
  // §5.2: v = 2000 with ~81k edges. Allow generous slack; the point is
  // "deliberately denser" than the application DAGs.
  RandomDagParams params;
  params.num_nodes = 2000;
  params.avg_out_degree = 36.0;
  params.seed = 1;
  const auto g = random_layered_dag(params);
  EXPECT_GT(g.num_edges(), 40000u);
}

TEST(RandomLayered, DagLintCertifiesGeneratedInstances) {
  // The random suite feeds the determinism tests and the rand:N workload
  // of sched_diff, so generated instances must be certified anomaly-free
  // by the full DAG-lint rule set — across sizes, densities, and CCRs.
  // Edges that skip layers are a deliberate feature of the generator and
  // carry real communication cost, so transitive-edge warnings are
  // whitelisted; every other rule must stay silent.
  struct Case {
    std::size_t num_nodes;
    double avg_out_degree;
    double ccr;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{100, 4.0, 0.5, 1}, Case{340, 8.0, 2.0, 77},
                        Case{300, 8.0, 1.0, 1996}}) {
    RandomDagParams params;
    params.num_nodes = c.num_nodes;
    params.avg_out_degree = c.avg_out_degree;
    params.ccr = c.ccr;
    params.seed = c.seed;
    const auto g = random_layered_dag(params);
    const analysis::DagLintReport report =
        analysis::dag_lint(analysis::to_raw(g));
    EXPECT_EQ(report.num_errors, 0u) << "seed " << c.seed;
    for (const analysis::Diagnostic& d : report.diagnostics) {
      EXPECT_EQ(d.rule_id, "transitive-edge")
          << "seed " << c.seed << ": " << d.message;
    }
  }
}

TEST(RandomLayered, RejectsBadParams) {
  RandomDagParams params;
  params.num_nodes = 1;
  EXPECT_THROW((void)random_layered_dag(params), Error);
  params.num_nodes = 10;
  params.min_weight = -1;
  EXPECT_THROW((void)random_layered_dag(params), Error);
}

}  // namespace
}  // namespace fastsched::workloads
