// Tests for the application-kernel DAG generators: the task counts must
// match the paper's tables exactly, and the structures must be well-formed.

#include <gtest/gtest.h>

#include "analysis/dag_lint.hpp"
#include "graph/levels.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"
#include "workloads/timing_db.hpp"

namespace fastsched::workloads {
namespace {

/// Runs the full DAG-lint rule set and asserts the generator produced an
/// anomaly-free graph: no errors AND no warnings (duplicate or transitive
/// edges, isolated nodes, zero weights, cost outliers...).
void expect_lint_clean(const graph::TaskGraph& g, const std::string& what) {
  const analysis::DagLintReport report = analysis::dag_lint(analysis::to_raw(g));
  EXPECT_TRUE(report.clean()) << what << ": " << report.num_errors
                              << " errors, " << report.num_warnings
                              << " warnings; first: "
                              << (report.diagnostics.empty()
                                      ? std::string("-")
                                      : report.diagnostics.front().message);
}

// ---------------------------------------------------------------- Gaussian

TEST(Gaussian, TaskCountsMatchPaperTable) {
  // Figure 5(c): matrix dimensions 4, 8, 16, 32 -> 20, 54, 170, 594 tasks.
  const std::pair<int, std::size_t> expected[] = {
      {4, 20}, {8, 54}, {16, 170}, {32, 594}};
  for (const auto& [dim, tasks] : expected) {
    EXPECT_EQ(gaussian_task_count(dim), tasks) << "dim " << dim;
    EXPECT_EQ(gaussian_elimination_dag(dim).num_nodes(), tasks);
  }
}

TEST(Gaussian, IsConnectedSingleEntrySingleish) {
  const auto g = gaussian_elimination_dag(8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.entry_nodes().size(), 1u);  // the first pivot task
}

TEST(Gaussian, PivotBroadcastsWithinLayer) {
  const auto g = gaussian_elimination_dag(4);
  // Layer 0 pivot (node 0) must feed every update task of layer 0
  // (nodes 1..5 for N=4: layer size N+2 = 6).
  EXPECT_EQ(g.out_degree(0), 5u + /*row continuation*/ 0u);
}

TEST(Gaussian, WeightsShrinkWithLayer) {
  // Later elimination steps work on shorter rows, so later pivots cost
  // less than the first pivot.
  const auto g = gaussian_elimination_dag(8, TimingDatabase::paragon());
  EXPECT_GT(g.weight(0), g.weight(static_cast<graph::NodeId>(
                             g.num_nodes() - 1)));
}

TEST(Gaussian, RejectsTinyMatrices) {
  EXPECT_THROW((void)gaussian_elimination_dag(1), Error);
}

// ----------------------------------------------------------------- Laplace

TEST(Laplace, TaskCountsMatchPaperTable) {
  // Figure 6(c): dims 4, 8, 16, 32 -> 18, 66, 258, 1026 tasks (N^2 + 2).
  const std::pair<int, std::size_t> expected[] = {
      {4, 18}, {8, 66}, {16, 258}, {32, 1026}};
  for (const auto& [dim, tasks] : expected) {
    EXPECT_EQ(laplace_task_count(dim), tasks) << "dim " << dim;
    EXPECT_EQ(laplace_dag(dim).num_nodes(), tasks);
  }
}

TEST(Laplace, SingleSourceSingleSink) {
  const auto g = laplace_dag(6);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Laplace, WavefrontDepth) {
  // The diagonal wavefront over an N×N grid has 2N-1 fronts plus source
  // and sink: the longest path has 2N+1 nodes.
  const int n = 5;
  const auto g = laplace_dag(n);
  const auto levels = graph::compute_levels(g);
  // count nodes on the canonical critical path
  EXPECT_EQ(levels.critical_path.size(), static_cast<std::size_t>(2 * n + 1));
}

TEST(Laplace, InteriorCellHasTwoParents) {
  const auto g = laplace_dag(4);
  // Cell (2,2) = node 1 + 2*4 + 2 = 11: parents (1,2) and (2,1).
  EXPECT_EQ(g.in_degree(11), 2u);
}

// --------------------------------------------------------------------- FFT

TEST(Fft, TaskCountsMatchPaperTable) {
  // Figure 7(c): points 16, 64, 128, 512 -> 14, 34, 82, 194 tasks.
  const std::pair<int, std::size_t> expected[] = {
      {16, 14}, {64, 34}, {128, 82}, {512, 194}};
  for (const auto& [points, tasks] : expected) {
    EXPECT_EQ(fft_task_count(points), tasks) << points << " points";
    EXPECT_EQ(fft_dag(points).num_nodes(), tasks);
  }
}

TEST(Fft, LaneCountIsNextPow2OfSqrt) {
  EXPECT_EQ(fft_lanes(16), 4);
  EXPECT_EQ(fft_lanes(64), 8);
  EXPECT_EQ(fft_lanes(128), 16);
  EXPECT_EQ(fft_lanes(256), 16);
  EXPECT_EQ(fft_lanes(512), 32);
}

TEST(Fft, ButterflyStructure) {
  const auto g = fft_dag(16);  // 4 lanes, 2 stages
  EXPECT_EQ(g.entry_nodes().size(), 1u);   // scatter
  EXPECT_EQ(g.exit_nodes().size(), 1u);    // gather
  EXPECT_TRUE(g.is_connected());
  // Every butterfly-stage node has exactly two parents.
  std::size_t two_parent_nodes = 0;
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.in_degree(n) == 2) ++two_parent_nodes;
  }
  EXPECT_EQ(two_parent_nodes, 8u);  // 4 lanes * 2 stages
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)fft_dag(12), Error);
  EXPECT_THROW((void)fft_dag(2), Error);
}

// ----------------------------------------------- DAG-lint certification
// Every workload generator must be certified anomaly-free by the full
// DAG-lint rule set at every size the paper's tables use: the evaluation
// matrix (sched_diff, bench tables) builds on these graphs, so a
// generator bug would silently skew every downstream number.

TEST(Gaussian, DagLintCertifiesEveryPaperSize) {
  for (const int dim : {4, 8, 16, 32}) {
    expect_lint_clean(gaussian_elimination_dag(dim),
                      "gauss:" + std::to_string(dim));
  }
}

TEST(Laplace, DagLintCertifiesEveryPaperSize) {
  // The distribute/collect broadcast runs parallel to the wavefront
  // chain, so the boundary edges are transitively implied — intended
  // structure (they carry real communication cost), not an anomaly. The
  // certificate here is: zero errors, and *exactly* the 2N transitive
  // boundary edges as warnings, nothing else.
  for (const int dim : {4, 8, 16, 32}) {
    const analysis::DagLintReport report =
        analysis::dag_lint(analysis::to_raw(laplace_dag(dim)));
    EXPECT_EQ(report.num_errors, 0u) << "laplace:" << dim;
    EXPECT_EQ(report.num_warnings, static_cast<std::size_t>(2 * dim))
        << "laplace:" << dim;
    for (const analysis::Diagnostic& d : report.diagnostics) {
      EXPECT_EQ(d.rule_id, "transitive-edge") << "laplace:" << dim;
    }
  }
}

TEST(Fft, DagLintCertifiesEveryPaperSize) {
  for (const int points : {16, 64, 128, 512}) {
    expect_lint_clean(fft_dag(points), "fft:" + std::to_string(points));
  }
}

// --------------------------------------------------------------- TimingDb

TEST(TimingDb, CommCostIsAffine) {
  const TimingDatabase db{1.0, 10.0, 0.5};
  EXPECT_DOUBLE_EQ(db.comm_cost(0), 10.0);
  EXPECT_DOUBLE_EQ(db.comm_cost(100), 60.0);
  EXPECT_DOUBLE_EQ(db.compute_cost(8), 8.0);
}

TEST(TimingDb, CalibrationsDiffer) {
  // The Paragon calibration must be far more communication-heavy than the
  // low-latency one — that is the whole point of the substitution.
  const auto paragon = TimingDatabase::paragon();
  const auto modern = TimingDatabase::low_latency();
  EXPECT_GT(paragon.alpha, modern.alpha);
}

TEST(TimingDb, HigherLatencyRaisesCcr) {
  const auto cheap = laplace_dag(6, TimingDatabase::low_latency());
  const auto dear = laplace_dag(6, TimingDatabase::paragon());
  EXPECT_GT(dear.ccr(), cheap.ccr());
}

}  // namespace
}  // namespace fastsched::workloads
