#include "workloads/trees.hpp"

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "graph/levels.hpp"
#include "sched/validation.hpp"

namespace fastsched::workloads {
namespace {

TEST(Trees, BinaryOutTreeStructure) {
  const auto g = binary_out_tree(4);  // 15 nodes
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 8u);  // leaves
  EXPECT_TRUE(g.is_connected());
  // Every non-root has exactly one parent; every internal node 2 children.
  for (graph::NodeId n = 1; n < g.num_nodes(); ++n) {
    EXPECT_EQ(g.in_degree(n), 1u);
  }
  for (graph::NodeId n = 0; n < 7; ++n) {
    EXPECT_EQ(g.out_degree(n), 2u);
  }
}

TEST(Trees, RandomTreeIsATree) {
  TreeParams params;
  params.num_nodes = 200;
  params.max_arity = 4;
  params.seed = 9;
  const auto g = random_tree_dag(params);
  EXPECT_EQ(g.num_edges(), g.num_nodes() - 1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Trees, RespectsArityBound) {
  TreeParams params;
  params.num_nodes = 300;
  params.max_arity = 2;
  params.seed = 10;
  const auto g = random_tree_dag(params);
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LE(g.out_degree(n), 2u);
  }
}

TEST(Trees, InTreeHasSingleExit) {
  TreeParams params;
  params.num_nodes = 100;
  params.out_tree = false;
  params.seed = 11;
  const auto g = random_tree_dag(params);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes()[0], 0u);  // the root collects everything
}

TEST(Trees, DeterministicPerSeed) {
  TreeParams params;
  params.num_nodes = 50;
  params.seed = 12;
  const auto a = random_tree_dag(params);
  const auto b = random_tree_dag(params);
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_source(e), b.edge_source(e));
    EXPECT_EQ(a.edge_target(e), b.edge_target(e));
  }
}

TEST(Trees, HuOracleFreeCommBinaryTree) {
  // Hu's case: uniform weights, zero comm, unlimited processors — the
  // optimal makespan of a complete out-tree equals its height. Every
  // scheduler in the registry must achieve exactly that (the greedy
  // choices all coincide with the optimum here).
  const auto g = binary_out_tree(5, 2.0, 0.0);  // height 5, weight 2
  for (const char* algo : {"FAST", "ETF", "DLS", "DSC", "HLFET", "MCP"}) {
    const auto s =
        baselines::make_scheduler(algo)->run(g, sched::SchedulerOptions{});
    EXPECT_TRUE(sched::is_valid(g, s)) << algo;
    EXPECT_NEAR(s.length(), 10.0, 1e-9) << algo;  // 5 levels x 2.0
  }
}

TEST(Trees, RejectsBadParams) {
  TreeParams params;
  params.num_nodes = 0;
  EXPECT_THROW((void)random_tree_dag(params), Error);
  EXPECT_THROW((void)binary_out_tree(0), Error);
}

}  // namespace
}  // namespace fastsched::workloads
