// Property suite: every scheduling algorithm in the registry must satisfy
// the core DAG-scheduling invariants on a grid of workloads
// (generator family × CCR × size). Uses parameterized gtest so each
// (algorithm, workload) cell is its own test case.

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "sched/metrics.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"

namespace fastsched {
namespace {

struct WorkloadSpec {
  std::string name;
  graph::TaskGraph (*make)();
};

graph::TaskGraph make_chain() { return testing::chain(12, 2.0, 3.0); }
graph::TaskGraph make_fork() { return testing::fork_join(9, 2.0, 1.0); }
graph::TaskGraph make_diamond() { return testing::diamond(4.0, 6.0, 2.0); }
graph::TaskGraph make_single() { return testing::single(); }
graph::TaskGraph make_disconnected() { return testing::two_chains(5); }
graph::TaskGraph make_rand_low_ccr() {
  return testing::small_random(7, 80, 0.1, 4.0);
}
graph::TaskGraph make_rand_unit_ccr() {
  return testing::small_random(8, 80, 1.0, 4.0);
}
graph::TaskGraph make_rand_high_ccr() {
  return testing::small_random(9, 80, 10.0, 4.0);
}
graph::TaskGraph make_rand_dense() {
  return testing::small_random(10, 60, 1.0, 12.0);
}
graph::TaskGraph make_gauss() {
  return workloads::gaussian_elimination_dag(6);
}
graph::TaskGraph make_laplace() { return workloads::laplace_dag(5); }
graph::TaskGraph make_fft() { return workloads::fft_dag(64); }

const WorkloadSpec kWorkloads[] = {
    {"chain", make_chain},
    {"fork_join", make_fork},
    {"diamond", make_diamond},
    {"single", make_single},
    {"disconnected", make_disconnected},
    {"random_ccr01", make_rand_low_ccr},
    {"random_ccr1", make_rand_unit_ccr},
    {"random_ccr10", make_rand_high_ccr},
    {"random_dense", make_rand_dense},
    {"gauss6", make_gauss},
    {"laplace5", make_laplace},
    {"fft64", make_fft},
};

using Param = std::tuple<std::string, const WorkloadSpec*>;

class SchedulerProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerProperty, ProducesCompleteValidSchedule) {
  const auto& [algo, workload] = GetParam();
  const graph::TaskGraph g = workload->make();
  const auto scheduler = baselines::make_scheduler(algo);
  const sched::Schedule s = scheduler->run(g, sched::SchedulerOptions{});

  EXPECT_TRUE(s.is_complete());
  const auto violations = sched::validate(g, s);
  EXPECT_TRUE(violations.empty())
      << algo << " on " << workload->name << ": " << violations.size()
      << " violations, first: "
      << (violations.empty() ? "" : violations[0].message);
}

TEST_P(SchedulerProperty, LengthRespectsLowerBounds) {
  const auto& [algo, workload] = GetParam();
  const graph::TaskGraph g = workload->make();
  const auto scheduler = baselines::make_scheduler(algo);
  const sched::Schedule s = scheduler->run(g, sched::SchedulerOptions{});

  // No schedule can beat the computation-only critical path, nor perfect
  // work division over the processors it used.
  const graph::Cost cp = sched::computation_critical_path(g);
  EXPECT_GE(s.length(), cp - 1e-9);
  if (s.procs_used() > 0) {
    EXPECT_GE(s.length(),
              g.total_work() / static_cast<double>(s.procs_used()) - 1e-9);
  }
}

TEST_P(SchedulerProperty, NeverWorseThanSerialByMuchMoreThanComm) {
  // Sanity: the schedule length must not exceed serial execution plus all
  // communication the schedule could possibly pay.
  const auto& [algo, workload] = GetParam();
  const graph::TaskGraph g = workload->make();
  const auto scheduler = baselines::make_scheduler(algo);
  const sched::Schedule s = scheduler->run(g, sched::SchedulerOptions{});
  EXPECT_LE(s.length(), g.total_work() + g.total_comm() + 1e-9);
}

TEST_P(SchedulerProperty, DeterministicAcrossRuns) {
  const auto& [algo, workload] = GetParam();
  const graph::TaskGraph g = workload->make();
  const auto scheduler = baselines::make_scheduler(algo);
  const sched::Schedule a = scheduler->run(g, sched::SchedulerOptions{});
  const sched::Schedule b = scheduler->run(g, sched::SchedulerOptions{});
  EXPECT_EQ(a.length(), b.length());
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(a.proc(n), b.proc(n));
    EXPECT_EQ(a.start(n), b.start(n));
  }
}

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (const auto& algo : baselines::scheduler_names()) {
    for (const auto& w : kWorkloads) params.emplace_back(algo, &w);
  }
  return params;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param)->name;
  // gtest parameter names must be alphanumeric/underscore ("FAST-SA").
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SchedulerProperty,
                         ::testing::ValuesIn(all_params()), param_name);

// Bounded-processor sweep: FAST/ETF/DLS/PFAST must honour small budgets.
class BoundedBudgetProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BoundedBudgetProperty, HonoursProcessorBudget) {
  const auto& [algo, budget] = GetParam();
  const graph::TaskGraph g = testing::small_random(55, 50, 1.0, 4.0);
  const auto scheduler = baselines::make_scheduler(algo);
  sched::SchedulerOptions opts;
  opts.num_procs = static_cast<std::size_t>(budget);
  const sched::Schedule s = scheduler->run(g, opts);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_LE(s.procs_used(), static_cast<std::size_t>(budget));
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LT(s.proc(n), static_cast<sched::ProcId>(budget));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundedAlgorithms, BoundedBudgetProperty,
    ::testing::Combine(::testing::Values("FAST", "ETF", "DLS", "PFAST"),
                       ::testing::Values(1, 2, 3, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fastsched
