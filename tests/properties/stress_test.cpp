// Stress / fuzz-style sweeps: degenerate parameters and many random
// instances, asserting the core invariants never break. These are the
// tests that catch off-by-one edge handling (zero weights, zero comm,
// single-node layers, budget = 1) that the targeted unit tests miss.

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "fast/fast.hpp"
#include "graph/io.hpp"
#include "sched/validation.hpp"
#include "sim/event_sim.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched {
namespace {

// A deliberately nasty random graph family: zero-ish weights, zero comm,
// extreme CCR, width-1 layers.
graph::TaskGraph nasty_graph(std::uint64_t seed) {
  Rng rng(seed);
  graph::TaskGraphBuilder b;
  const int v = 2 + static_cast<int>(rng.uniform(30));
  for (int i = 0; i < v; ++i) {
    // ~25% zero-weight nodes.
    const double w = rng.bernoulli(0.25) ? 0.0 : rng.uniform_real(0.5, 20.0);
    b.add_node(w);
  }
  for (int i = 0; i < v; ++i) {
    for (int j = i + 1; j < v; ++j) {
      if (!rng.bernoulli(0.15)) continue;
      // ~30% zero-cost edges, occasional huge ones.
      double c = 0.0;
      if (!rng.bernoulli(0.3)) {
        c = rng.bernoulli(0.1) ? rng.uniform_real(100.0, 1000.0)
                               : rng.uniform_real(0.1, 10.0);
      }
      b.add_edge(static_cast<graph::NodeId>(i), static_cast<graph::NodeId>(j),
                 c);
    }
  }
  return b.build();
}

class StressSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeed, AllAlgorithmsSurviveNastyGraphs) {
  const graph::TaskGraph g = nasty_graph(GetParam());
  for (const auto& algo : baselines::scheduler_names()) {
    sched::SchedulerOptions opts;
    opts.num_procs = 1 + GetParam() % 7;  // tiny budgets included
    opts.seed = GetParam();
    const sched::Schedule s = baselines::make_scheduler(algo)->run(g, opts);
    const auto violations = sched::validate(g, s);
    EXPECT_TRUE(violations.empty())
        << algo << " seed " << GetParam() << ": "
        << (violations.empty() ? "" : violations[0].message);
  }
}

TEST_P(StressSeed, GraphTextRoundTripSurvivesNastyGraphs) {
  const graph::TaskGraph g = nasty_graph(GetParam());
  const graph::TaskGraph r = graph::from_text(graph::to_text(g));
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(graph::to_text(r), graph::to_text(g));
}

TEST_P(StressSeed, SimulatorAgreesWithEvaluatorOnFast) {
  const graph::TaskGraph g = nasty_graph(GetParam());
  fast::FastOptions opts;
  opts.seed = GetParam();
  const auto result = fast::run_fast(g, opts);
  const auto s = fast::to_schedule(g, result, g.num_nodes());
  const auto sim = sim::simulate(g, s, sim::MachineModel::ideal());
  EXPECT_NEAR(sim.makespan, result.final_length, 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed,
                         ::testing::Range<std::uint64_t>(2000, 2024));

TEST(Stress, FastScalesToVeryWideGraphs) {
  // 500 independent nodes (maximum width, no edges at all).
  graph::TaskGraphBuilder b;
  for (int i = 0; i < 500; ++i) b.add_node(1.0 + i % 7);
  const graph::TaskGraph g = b.build();
  fast::FastOptions opts;
  opts.num_procs = 16;
  const auto result = fast::run_fast(g, opts);
  const auto s = fast::to_schedule(g, result, 16);
  EXPECT_TRUE(sched::is_valid(g, s));
  // Perfect balance is total/16; greedy must stay within 2x.
  EXPECT_LE(s.length(), 2.0 * g.total_work() / 16.0);
}

TEST(Stress, DeepChainDoesNotOverflowRecursion) {
  // 20k-node chain: the CPN-Dominate construction and classification are
  // iterative, so this must not smash the stack.
  const graph::TaskGraph g = testing::chain(20000, 1.0, 1.0);
  const auto result = fast::run_fast(g, {.num_procs = 4});
  EXPECT_EQ(result.final_length, 20000.0);
}

TEST(Stress, DenseRandomGraphEndToEnd) {
  workloads::RandomDagParams params;
  params.num_nodes = 3000;
  params.avg_out_degree = 36.0;
  params.seed = 3;
  const graph::TaskGraph g = workloads::random_layered_dag(params);
  fast::FastOptions opts;
  opts.num_procs = 128;
  const auto result = fast::run_fast(g, opts);
  const auto s = fast::to_schedule(g, result, 128);
  EXPECT_TRUE(sched::is_valid(g, s));
  const auto sim = sim::simulate(g, s, sim::MachineModel::paragon());
  EXPECT_GE(sim.makespan, s.length());
}

}  // namespace
}  // namespace fastsched
