/// \file exact_fuzz_test.cpp
/// Differential fuzz between the exact solver, the certificate layer and
/// every registered scheduler. On seeded layered/Gaussian/FFT instances
/// the invariant chain is:
///
///   static certificates <= solver lower bound <= solver makespan
///   <= FAST's makespan, and every bounded scheduler's makespan >= the
///   solver's lower bound.
///
/// The solver's schedule must also survive the full schedule-lint rule
/// set — the same gate every production scheduler's output goes through.
/// Where the instance is small enough to prove within the budget, the
/// solver optimum becomes a hard floor for every bounded scheduler.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/lint.hpp"
#include "baselines/registry.hpp"
#include "exact/bb_solver.hpp"
#include "graph/task_graph.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"

namespace fastsched {
namespace {

using exact::BBOptions;
using exact::BBResult;
using exact::BBSolver;
using graph::Cost;
using graph::TaskGraph;

/// Runs the full differential check on one instance. `expect_proven`
/// additionally requires exhaustion within the budget and turns the
/// optimum into a floor for every bounded scheduler.
void check_instance(const TaskGraph& g, std::size_t procs,
                    std::uint64_t node_budget, bool expect_proven,
                    const std::string& label) {
  SCOPED_TRACE(label + ", p=" + std::to_string(procs));
  BBOptions options;
  options.num_procs = procs;
  options.node_budget = node_budget;
  options.jobs = 1;
  options.seed = 1;
  const BBSolver solver(g, options);
  const BBResult r = solver.solve();

  // Bound sanity: certificates below the solver's bound, bound below the
  // incumbent, incumbent below (or equal to) the FAST seed.
  const analysis::BoundSet bounds = analysis::compute_bounds(g, procs);
  EXPECT_LE(bounds.best(), r.best_length + 1e-9);
  EXPECT_GE(r.lower_bound + 1e-9, r.static_floor);
  EXPECT_LE(r.lower_bound, r.best_length + 1e-9);
  EXPECT_LE(r.best_length, r.seed_length + 1e-9);
  if (expect_proven) {
    EXPECT_TRUE(r.proven) << "budget too small for " << label;
  }

  // The solver's schedule is a real schedule: valid and lint-clean at
  // its reported makespan.
  const sched::Schedule schedule = BBSolver::materialize(g, r, procs);
  EXPECT_TRUE(sched::is_valid(g, schedule));
  EXPECT_NEAR(schedule.length(), r.best_length, 1e-9);
  analysis::LintInput lint_input;
  lint_input.graph = &g;
  lint_input.schedule = &schedule;
  lint_input.reported_length = schedule.length();
  const analysis::LintReport report = analysis::lint(lint_input);
  EXPECT_TRUE(report.clean()) << label << ": " << report.diagnostics.size()
                              << " lint diagnostics";

  // Every bounded scheduler's makespan sits at or above the certified
  // lower bound — and above the proven optimum when we have one. The
  // unbounded algorithms (MD, DSC, ...) ignore the processor budget, so
  // their makespans are incomparable on a fixed pool.
  for (const sched::SchedulerPtr& s : baselines::all_schedulers()) {
    if (s->unbounded_processors()) continue;
    sched::SchedulerOptions so;
    so.num_procs = procs;
    so.seed = 1;
    const sched::Schedule out = s->run(g, so);
    EXPECT_GE(out.length() + 1e-6, r.lower_bound)
        << s->name() << " beats the certified lower bound on " << label;
    if (expect_proven && r.proven) {
      EXPECT_GE(out.length() + 1e-6, r.best_length)
          << s->name() << " beats the proven optimum on " << label;
    }
  }
}

TEST(ExactFuzz, LayeredSmallProven) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const TaskGraph g = testing::small_random(seed, 12, 1.0, 2.5);
    check_instance(g, 2, 5'000'000, /*expect_proven=*/true,
                   "layered v=12 seed=" + std::to_string(seed));
  }
}

TEST(ExactFuzz, LayeredMedium) {
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    const TaskGraph g = testing::small_random(seed, 25, 1.0, 3.0);
    check_instance(g, 3, 100'000, /*expect_proven=*/false,
                   "layered v=25 seed=" + std::to_string(seed));
  }
}

TEST(ExactFuzz, LayeredWide) {
  const TaskGraph g = testing::small_random(31, 40, 1.0, 3.5);
  check_instance(g, 4, 100'000, /*expect_proven=*/false, "layered v=40");
}

TEST(ExactFuzz, LayeredHighCcr) {
  for (std::uint64_t seed = 41; seed <= 42; ++seed) {
    const TaskGraph g = testing::small_random(seed, 18, 8.0, 2.0);
    check_instance(g, 2, 150'000, /*expect_proven=*/false,
                   "layered ccr=8 seed=" + std::to_string(seed));
  }
}

TEST(ExactFuzz, GaussianElimination) {
  // N=4: the paper's smallest Gaussian instance, v=20.
  const TaskGraph g = workloads::gaussian_elimination_dag(4);
  ASSERT_EQ(g.num_nodes(), 20u);
  check_instance(g, 3, 200'000, /*expect_proven=*/false, "gauss N=4");
}

TEST(ExactFuzz, Fft) {
  // 16 points: the paper's smallest FFT instance, v=14.
  const TaskGraph g = workloads::fft_dag(16);
  ASSERT_EQ(g.num_nodes(), 14u);
  check_instance(g, 3, 300'000, /*expect_proven=*/false, "fft 16");
}

}  // namespace
}  // namespace fastsched
