// Optimality oracle tests, anchored on exact optima. Two independent
// sources of ground truth are cross-checked against each other: a naive
// exhaustive search over (topological order, processor assignment) pairs
// under the ready-time model, and the branch-and-bound solver's proven
// optimum. Every scheduler must respect the optimum as a lower bound,
// and FAST's distance from the optimum is pinned exactly per fixture —
// no tolerance factors.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "baselines/registry.hpp"
#include "exact/bb_solver.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched {
namespace {

using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;

// Replays one (order, assignment) pair under the ready-time model.
Cost replay(const TaskGraph& g, const std::vector<NodeId>& order,
            const std::vector<sched::ProcId>& assignment,
            std::size_t num_procs) {
  std::vector<Cost> finish(g.num_nodes(), 0.0);
  std::vector<Cost> ready(num_procs, 0.0);
  Cost length = 0.0;
  for (const NodeId n : order) {
    const auto p = assignment[n];
    Cost dat = 0.0;
    for (const graph::Adjacency& q : g.predecessors(n)) {
      dat = std::max(dat,
                     finish[q.node] + (assignment[q.node] == p ? 0.0 : q.cost));
    }
    finish[n] = std::max(dat, ready[p]) + g.weight(n);
    ready[p] = finish[n];
    length = std::max(length, finish[n]);
  }
  return length;
}

// Exhaustive optimum over all topological orders x processor assignments.
// Exponential; only for graphs with <= 7 nodes and <= 3 processors. Kept
// deliberately naive and independent of src/exact so the two
// implementations vouch for each other.
Cost brute_force_optimum(const TaskGraph& g, std::size_t num_procs) {
  const std::size_t v = g.num_nodes();
  FASTSCHED_ASSERT(v <= 7);

  // Enumerate topological orders by recursive ready-set expansion.
  std::vector<std::vector<NodeId>> orders;
  std::vector<NodeId> current;
  std::vector<std::size_t> pending(v);
  for (NodeId n = 0; n < v; ++n) pending[n] = g.in_degree(n);
  const auto recurse = [&](auto&& self) -> void {
    if (current.size() == v) {
      orders.push_back(current);
      return;
    }
    for (NodeId n = 0; n < v; ++n) {
      if (pending[n] != 0 ||
          std::find(current.begin(), current.end(), n) != current.end()) {
        continue;
      }
      current.push_back(n);
      for (const graph::Adjacency& s : g.successors(n)) --pending[s.node];
      self(self);
      for (const graph::Adjacency& s : g.successors(n)) ++pending[s.node];
      current.pop_back();
    }
  };
  recurse(recurse);

  Cost best = std::numeric_limits<Cost>::max();
  std::vector<sched::ProcId> assignment(v, 0);
  const std::size_t combos = [&] {
    std::size_t c = 1;
    for (std::size_t i = 0; i < v; ++i) c *= num_procs;
    return c;
  }();
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t x = code;
    for (std::size_t i = 0; i < v; ++i) {
      assignment[i] = static_cast<sched::ProcId>(x % num_procs);
      x /= num_procs;
    }
    for (const auto& order : orders) {
      best = std::min(best, replay(g, order, assignment, num_procs));
    }
  }
  return best;
}

struct Fixture {
  std::string label;
  TaskGraph graph;
};

std::vector<Fixture> tiny_graphs() {
  std::vector<Fixture> graphs;
  graphs.push_back({"diamond comm=1", testing::diamond(2.0, 3.0, 1.0)});
  graphs.push_back({"diamond comm=10", testing::diamond(2.0, 3.0, 10.0)});
  graphs.push_back({"fork-join", testing::fork_join(3, 2.0, 1.0)});
  graphs.push_back({"chain", testing::chain(5, 2.0, 4.0)});
  graphs.push_back({"two chains", testing::two_chains(3)});
  // Two irregular DAGs.
  {
    graph::TaskGraphBuilder b;
    const auto a = b.add_node(3);
    const auto c = b.add_node(1);
    const auto d = b.add_node(4);
    const auto e = b.add_node(2);
    const auto f = b.add_node(5);
    const auto h = b.add_node(1);
    b.add_edge(a, c, 2);
    b.add_edge(a, d, 6);
    b.add_edge(c, e, 1);
    b.add_edge(d, f, 2);
    b.add_edge(e, f, 3);
    b.add_edge(e, h, 1);
    graphs.push_back({"irregular 6-node", b.build()});
  }
  {
    graph::TaskGraphBuilder b;
    const auto a = b.add_node(2);
    const auto c = b.add_node(2);
    const auto d = b.add_node(2);
    const auto e = b.add_node(2);
    const auto f = b.add_node(2);
    b.add_edge(a, d, 5);
    b.add_edge(c, d, 5);
    b.add_edge(c, e, 1);
    b.add_edge(d, f, 1);
    b.add_edge(e, f, 8);
    graphs.push_back({"irregular 5-node", b.build()});
  }
  return graphs;
}

// Proven branch-and-bound optimum for one fixture. Every caller requires
// the proof: an unproven bracket would silently weaken the oracle.
Cost exact_optimum(const TaskGraph& g, std::size_t num_procs) {
  exact::BBOptions options;
  options.num_procs = num_procs;
  const exact::BBResult r = exact::BBSolver(g, options).solve();
  FASTSCHED_ASSERT_MSG(r.proven,
                       "tiny fixture must be provable within the budget");
  return r.best_length;
}

TEST(Optimality, ExactSolverMatchesBruteForce) {
  // The two ground truths are implemented independently (naive
  // enumeration here, pruned search in src/exact); exact agreement on
  // every fixture and pool size certifies both.
  for (const auto& [label, g] : tiny_graphs()) {
    for (const std::size_t procs : {2u, 3u}) {
      SCOPED_TRACE(label + ", p=" + std::to_string(procs));
      EXPECT_NEAR(exact_optimum(g, procs), brute_force_optimum(g, procs),
                  1e-9);
    }
  }
}

TEST(Optimality, NoSchedulerBeatsTheExactOptimum) {
  // A length below the proven ready-time optimum would indicate a
  // validity bug (e.g. a missed communication delay).
  for (const auto& [label, g] : tiny_graphs()) {
    const Cost opt = exact_optimum(g, 3);
    for (const auto& algo : baselines::scheduler_names()) {
      sched::SchedulerOptions opts;
      opts.num_procs = 3;
      const auto s = baselines::make_scheduler(algo)->run(g, opts);
      // MD/DSC/LC/EZ ignore the budget and use insertion/clustering;
      // insertion can legitimately beat the ready-time optimum, so the
      // bound applies to the ready-time algorithms only.
      if (algo == "MD" || algo == "MCP" || algo == "DSC" || algo == "LC" ||
          algo == "EZ") {
        EXPECT_TRUE(sched::is_valid(g, s)) << label << ", " << algo;
        continue;
      }
      EXPECT_GE(s.length(), opt - 1e-9) << label << ", " << algo;
    }
  }
}

TEST(Optimality, FastGapToOptimumIsPinnedExactly) {
  // No tolerance factor: FAST finds the proven optimum on six of the
  // seven fixtures; on the irregular 5-node graph it pays exactly one
  // extra unit (10 vs 9). Any drift — better or worse — is a behavior
  // change that must be looked at, not absorbed by slack.
  for (const auto& [label, g] : tiny_graphs()) {
    const Cost opt = exact_optimum(g, 3);
    sched::SchedulerOptions opts;
    opts.num_procs = 3;
    const auto s = baselines::make_scheduler("FAST")->run(g, opts);
    const Cost expected = label == "irregular 5-node" ? opt + 1.0 : opt;
    EXPECT_NEAR(s.length(), expected, 1e-9) << label;
  }
}

TEST(Optimality, SomeSchedulerHitsTheOptimumOnEasyGraphs) {
  // chains and free-comm diamonds are easy: at least one of the good
  // heuristics must find the exact optimum.
  for (const auto& g :
       {testing::chain(5, 2.0, 4.0), testing::diamond(2.0, 3.0, 0.0)}) {
    const Cost opt = exact_optimum(g, 3);
    Cost best = std::numeric_limits<Cost>::max();
    for (const char* algo : {"FAST", "ETF", "DLS", "DSC"}) {
      sched::SchedulerOptions opts;
      opts.num_procs = 3;
      best = std::min(best,
                      baselines::make_scheduler(algo)->run(g, opts).length());
    }
    EXPECT_NEAR(best, opt, 1e-9);
  }
}

}  // namespace
}  // namespace fastsched
