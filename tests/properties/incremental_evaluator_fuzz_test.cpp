// Differential fuzzing of the suffix-restart evaluator against the
// full-scan oracle: random layered DAGs (the paper's §5.2 family, spanning
// CCRs and pool sizes) x random move sequences, with the oracle consulted
// after *every* evaluate_move / commit / revert / rescore. Lengths must
// agree to the bit, and a bounded probe must return nullopt exactly when
// the true candidate is not definitely_less than the bound — the same
// accept/reject decision the hill climb would make on the full scan.

#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "fast/evaluator.hpp"
#include "fast/incremental_evaluator.hpp"
#include "graph/classification.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched::fast {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t nodes;
  double ccr;
  std::size_t procs;
  std::size_t interval;  // kAutoInterval or explicit K
};

class IncrementalFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(IncrementalFuzz, AgreesWithFullScanOracleUnderRandomMoves) {
  const FuzzCase c = GetParam();
  workloads::RandomDagParams params;
  params.num_nodes = c.nodes;
  params.avg_out_degree = 4.0;
  params.ccr = c.ccr;
  params.seed = c.seed;
  const graph::TaskGraph g = workloads::random_layered_dag(params);

  // The production list: CPN-Dominate order, as the schedulers use it.
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const auto list = build_cpn_dominate_list(g, levels, classes);

  AssignmentEvaluator oracle(g, list, c.procs);
  IncrementalEvaluator inc(g, list, c.procs, c.interval);

  Rng rng(c.seed * 7919 + 13);
  std::vector<ProcId> committed(g.num_nodes());
  for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
  ASSERT_EQ(inc.reset(committed), oracle.evaluate(committed));

  std::vector<ProcId> trial;
  for (int step = 0; step < 300; ++step) {
    const auto op = rng.uniform(100);
    if (op < 88) {
      // Single-node transfer probe: bounded half the time (as in the hill
      // climb), unbounded otherwise (as in annealing / BSA).
      const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
      const ProcId target = static_cast<ProcId>(rng.uniform(c.procs));
      trial = committed;
      trial[n] = target;
      const Cost exact = oracle.evaluate(trial);
      const bool bounded = rng.bernoulli(0.5);
      const Cost bound = inc.length();
      const auto got = bounded ? inc.evaluate_move(n, target, bound)
                               : inc.evaluate_move(n, target);
      if (bounded && !graph::definitely_less(exact, bound)) {
        ASSERT_FALSE(got.has_value())
            << "step " << step << ": bound should have rejected";
        continue;  // rejection clears the pending move
      }
      ASSERT_TRUE(got.has_value()) << "step " << step;
      ASSERT_EQ(*got, exact) << "step " << step << " node " << n;
      if (rng.bernoulli(0.6)) {
        ASSERT_EQ(inc.commit(), exact);
        committed.swap(trial);
      } else {
        inc.revert();
      }
    } else if (op < 96) {
      // Multi-node rescore: perturb a random block of the assignment.
      trial = committed;
      const std::size_t flips = 1 + rng.uniform(8);
      for (std::size_t i = 0; i < flips; ++i) {
        trial[rng.uniform(g.num_nodes())] =
            static_cast<ProcId>(rng.uniform(c.procs));
      }
      ASSERT_EQ(inc.rescore(trial), oracle.evaluate(trial)) << "step " << step;
      committed.swap(trial);
    } else {
      // Hard reset to an unrelated assignment.
      for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
      ASSERT_EQ(inc.reset(committed), oracle.evaluate(committed))
          << "step " << step;
    }
    // Committed invariant: the incremental view always equals the oracle.
    ASSERT_EQ(inc.length(), oracle.evaluate(committed)) << "step " << step;
  }
}

constexpr std::size_t kAuto = IncrementalEvaluator::kAutoInterval;

INSTANTIATE_TEST_SUITE_P(
    LayeredDags, IncrementalFuzz,
    ::testing::Values(
        // Sparse pool, K = 1 (every position checkpointed).
        FuzzCase{1001, 40, 0.1, 2, 1},
        // Tiny K on a mid-size graph, compute-dominated.
        FuzzCase{1002, 80, 0.1, 4, 3},
        // Balanced CCR, auto interval.
        FuzzCase{1003, 120, 1.0, 8, kAuto},
        // Communication-dominated: ties and plateaus stress the
        // definitely_less agreement.
        FuzzCase{1004, 120, 10.0, 8, kAuto},
        // Pool wider than most layers.
        FuzzCase{1005, 60, 1.0, 16, 5},
        // Single processor: every move is a no-op in length.
        FuzzCase{1006, 50, 1.0, 1, kAuto},
        // Larger instance, awkward prime K.
        FuzzCase{1007, 250, 1.0, 8, 17},
        FuzzCase{1008, 250, 10.0, 16, kAuto}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace fastsched::fast
