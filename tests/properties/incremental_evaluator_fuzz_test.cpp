// Differential fuzzing of the suffix-restart evaluator against the
// full-scan oracle: random layered DAGs (the paper's §5.2 family, spanning
// CCRs and pool sizes) x random move sequences, with the oracle consulted
// after *every* evaluate_move / commit / revert / rescore. Lengths must
// agree to the bit, and a bounded probe must return nullopt exactly when
// the true candidate is not definitely_less than the bound — the same
// accept/reject decision the hill climb would make on the full scan.
//
// The second suite pits all three replay engines against each other AND
// the oracle on the structured workload families too (Gauss, Laplace,
// FFT), plus zero-cost edges and front-of-list moves — the event path's
// hardest splice cases.

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "fast/cpn_dominate.hpp"
#include "fast/evaluator.hpp"
#include "fast/incremental_evaluator.hpp"
#include "graph/classification.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched::fast {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t nodes;
  double ccr;
  std::size_t procs;
  std::size_t interval;  // kAutoInterval or explicit K
};

class IncrementalFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(IncrementalFuzz, AgreesWithFullScanOracleUnderRandomMoves) {
  const FuzzCase c = GetParam();
  workloads::RandomDagParams params;
  params.num_nodes = c.nodes;
  params.avg_out_degree = 4.0;
  params.ccr = c.ccr;
  params.seed = c.seed;
  const graph::TaskGraph g = workloads::random_layered_dag(params);

  // The production list: CPN-Dominate order, as the schedulers use it.
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const auto list = build_cpn_dominate_list(g, levels, classes);

  AssignmentEvaluator oracle(g, list, c.procs);
  IncrementalEvaluator inc(g, list, c.procs, c.interval);

  Rng rng(c.seed * 7919 + 13);
  std::vector<ProcId> committed(g.num_nodes());
  for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
  ASSERT_EQ(inc.reset(committed), oracle.evaluate(committed));

  std::vector<ProcId> trial;
  for (int step = 0; step < 300; ++step) {
    const auto op = rng.uniform(100);
    if (op < 88) {
      // Single-node transfer probe: bounded half the time (as in the hill
      // climb), unbounded otherwise (as in annealing / BSA).
      const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
      const ProcId target = static_cast<ProcId>(rng.uniform(c.procs));
      trial = committed;
      trial[n] = target;
      const Cost exact = oracle.evaluate(trial);
      const bool bounded = rng.bernoulli(0.5);
      const Cost bound = inc.length();
      const auto got = bounded ? inc.evaluate_move(n, target, bound)
                               : inc.evaluate_move(n, target);
      if (bounded && !graph::definitely_less(exact, bound)) {
        ASSERT_FALSE(got.has_value())
            << "step " << step << ": bound should have rejected";
        continue;  // rejection clears the pending move
      }
      ASSERT_TRUE(got.has_value()) << "step " << step;
      ASSERT_EQ(*got, exact) << "step " << step << " node " << n;
      if (rng.bernoulli(0.6)) {
        ASSERT_EQ(inc.commit(), exact);
        committed.swap(trial);
      } else {
        inc.revert();
      }
    } else if (op < 96) {
      // Multi-node rescore: perturb a random block of the assignment.
      trial = committed;
      const std::size_t flips = 1 + rng.uniform(8);
      for (std::size_t i = 0; i < flips; ++i) {
        trial[rng.uniform(g.num_nodes())] =
            static_cast<ProcId>(rng.uniform(c.procs));
      }
      ASSERT_EQ(inc.rescore(trial), oracle.evaluate(trial)) << "step " << step;
      committed.swap(trial);
    } else {
      // Hard reset to an unrelated assignment.
      for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
      ASSERT_EQ(inc.reset(committed), oracle.evaluate(committed))
          << "step " << step;
    }
    // Committed invariant: the incremental view always equals the oracle.
    ASSERT_EQ(inc.length(), oracle.evaluate(committed)) << "step " << step;
  }
}

constexpr std::size_t kAuto = IncrementalEvaluator::kAutoInterval;

INSTANTIATE_TEST_SUITE_P(
    LayeredDags, IncrementalFuzz,
    ::testing::Values(
        // Sparse pool, K = 1 (every position checkpointed).
        FuzzCase{1001, 40, 0.1, 2, 1},
        // Tiny K on a mid-size graph, compute-dominated.
        FuzzCase{1002, 80, 0.1, 4, 3},
        // Balanced CCR, auto interval.
        FuzzCase{1003, 120, 1.0, 8, kAuto},
        // Communication-dominated: ties and plateaus stress the
        // definitely_less agreement.
        FuzzCase{1004, 120, 10.0, 8, kAuto},
        // Pool wider than most layers.
        FuzzCase{1005, 60, 1.0, 16, 5},
        // Single processor: every move is a no-op in length.
        FuzzCase{1006, 50, 1.0, 1, kAuto},
        // Larger instance, awkward prime K.
        FuzzCase{1007, 250, 1.0, 8, 17},
        FuzzCase{1008, 250, 10.0, 16, kAuto}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Three-way differential: EventReplay vs the contiguous scan vs the
// full-scan oracle, on the structured workload families as well. Every op
// is applied to all three evaluator policies in lockstep; lengths, moved
// starts, and accept/reject decisions must agree to the bit. Front-of-list
// moves (whole-list suffix, the PR 4 parity caveat) are drawn with extra
// probability, and the zero-cost-edge case exercises comm terms that
// toggle between 0 and 0 across placements.

enum class Family { kLayered, kLayeredZeroCost, kGauss, kLaplace, kFft };

struct TrioCase {
  Family family;
  std::uint64_t seed;
  std::size_t size;  // nodes for layered, generator size otherwise
  double ccr;        // layered only
  std::size_t procs;
  std::size_t interval;
  const char* name;
};

graph::TaskGraph make_trio_graph(const TrioCase& c) {
  switch (c.family) {
    case Family::kGauss:
      return workloads::gaussian_elimination_dag(static_cast<int>(c.size));
    case Family::kLaplace:
      return workloads::laplace_dag(static_cast<int>(c.size));
    case Family::kFft:
      return workloads::fft_dag(static_cast<int>(c.size));
    case Family::kLayered:
    case Family::kLayeredZeroCost:
      break;
  }
  workloads::RandomDagParams params;
  params.num_nodes = c.size;
  params.avg_out_degree = 4.0;
  params.ccr = c.family == Family::kLayeredZeroCost ? 0.0 : c.ccr;
  params.seed = c.seed;
  return workloads::random_layered_dag(params);
}

class ReplayTrioFuzz : public ::testing::TestWithParam<TrioCase> {};

TEST_P(ReplayTrioFuzz, EventContiguousAndOracleAgreeBitForBit) {
  const TrioCase c = GetParam();
  const graph::TaskGraph g = make_trio_graph(c);
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const auto list = build_cpn_dominate_list(g, levels, classes);

  AssignmentEvaluator oracle(g, list, c.procs);
  IncrementalEvaluator contiguous(g, list, c.procs, c.interval);
  contiguous.set_policy(ReplayPolicy::kContiguous);
  IncrementalEvaluator event(g, list, c.procs, c.interval);
  event.set_policy(ReplayPolicy::kEvent);
  IncrementalEvaluator autopick(g, list, c.procs, c.interval);
  autopick.set_policy(ReplayPolicy::kAuto);

  // Backward tails on both deterministic-policy evaluators: sharpened
  // rejection must not change a single decision relative to the oracle.
  const analysis::RejectionTails tails =
      analysis::make_rejection_tails(g, c.procs);
  contiguous.set_reject_tails(tails.tail, tails.floor);
  event.set_reject_tails(tails.tail, tails.floor);

  Rng rng(c.seed * 6271 + 5);
  std::vector<ProcId> committed(g.num_nodes());
  for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
  const Cost initial = oracle.evaluate(committed);
  ASSERT_EQ(contiguous.reset(committed), initial);
  ASSERT_EQ(event.reset(committed), initial);
  ASSERT_EQ(autopick.reset(committed), initial);

  std::vector<ProcId> trial;
  for (int step = 0; step < 260; ++step) {
    const auto op = rng.uniform(100);
    if (op < 88) {
      // Transfer probe; a quarter of picks come from the list front, where
      // the event path replaces a whole-list contiguous rescan.
      const NodeId n =
          rng.bernoulli(0.25)
              ? list[rng.uniform(std::min<std::size_t>(8, list.size()))]
              : static_cast<NodeId>(rng.uniform(g.num_nodes()));
      const ProcId target = static_cast<ProcId>(rng.uniform(c.procs));
      trial = committed;
      trial[n] = target;
      const Cost exact = oracle.evaluate(trial);
      const bool bounded = rng.bernoulli(0.5);
      const Cost bound = contiguous.length();
      const auto probe = [&](IncrementalEvaluator& e) {
        return bounded ? e.evaluate_move(n, target, bound)
                       : e.evaluate_move(n, target);
      };
      const auto got_contiguous = probe(contiguous);
      const auto got_event = probe(event);
      const auto got_auto = probe(autopick);
      ASSERT_EQ(got_contiguous.has_value(), got_event.has_value())
          << "step " << step << " node " << n;
      ASSERT_EQ(got_contiguous.has_value(), got_auto.has_value())
          << "step " << step;
      if (bounded && !graph::definitely_less(exact, bound)) {
        ASSERT_FALSE(got_contiguous.has_value()) << "step " << step;
        continue;
      }
      ASSERT_TRUE(got_contiguous.has_value()) << "step " << step;
      ASSERT_EQ(*got_contiguous, exact) << "step " << step;
      ASSERT_EQ(*got_event, exact) << "step " << step << " node " << n;
      ASSERT_EQ(*got_auto, exact) << "step " << step;
      ASSERT_EQ(event.pending_start(), contiguous.pending_start())
          << "step " << step;
      if (rng.bernoulli(0.6)) {
        ASSERT_EQ(contiguous.commit(), exact);
        ASSERT_EQ(event.commit(), exact);
        ASSERT_EQ(autopick.commit(), exact);
        committed.swap(trial);
      } else {
        contiguous.revert();
        event.revert();
        autopick.revert();
      }
    } else if (op < 96) {
      trial = committed;
      const std::size_t flips = 1 + rng.uniform(8);
      for (std::size_t i = 0; i < flips; ++i) {
        trial[rng.uniform(g.num_nodes())] =
            static_cast<ProcId>(rng.uniform(c.procs));
      }
      const Cost exact = oracle.evaluate(trial);
      ASSERT_EQ(contiguous.rescore(trial), exact) << "step " << step;
      ASSERT_EQ(event.rescore(trial), exact) << "step " << step;
      ASSERT_EQ(autopick.rescore(trial), exact) << "step " << step;
      // The counters fix: rescore starts a fresh telemetry phase.
      ASSERT_EQ(event.counters().early_rejected, 0u);
      ASSERT_EQ(event.counters().converged, 0u);
      committed.swap(trial);
    } else {
      for (auto& p : committed) p = static_cast<ProcId>(rng.uniform(c.procs));
      const Cost exact = oracle.evaluate(committed);
      ASSERT_EQ(contiguous.reset(committed), exact) << "step " << step;
      ASSERT_EQ(event.reset(committed), exact) << "step " << step;
      ASSERT_EQ(autopick.reset(committed), exact) << "step " << step;
    }
    ASSERT_EQ(contiguous.length(), oracle.evaluate(committed))
        << "step " << step;
    ASSERT_EQ(event.length(), contiguous.length()) << "step " << step;
    ASSERT_EQ(autopick.length(), contiguous.length()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ReplayTrioFuzz,
    ::testing::Values(
        TrioCase{Family::kLayered, 2001, 120, 1.0, 8, kAuto, "layered"},
        TrioCase{Family::kLayered, 2002, 250, 10.0, 16, 17, "layeredComm"},
        TrioCase{Family::kLayeredZeroCost, 2003, 120, 0.0, 8, kAuto,
                 "layeredZeroCost"},
        TrioCase{Family::kGauss, 2004, 12, 1.0, 8, kAuto, "gauss12"},
        TrioCase{Family::kGauss, 2005, 16, 1.0, 4, 1, "gauss16"},
        TrioCase{Family::kLaplace, 2006, 8, 1.0, 8, kAuto, "laplace8"},
        TrioCase{Family::kFft, 2007, 16, 1.0, 8, 5, "fft16"},
        TrioCase{Family::kFft, 2008, 32, 1.0, 16, kAuto, "fft32"}),
    [](const ::testing::TestParamInfo<TrioCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace fastsched::fast
