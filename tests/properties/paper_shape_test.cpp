// Integration tests pinning the *shape* of the paper's evaluation
// (EXPERIMENTS.md): miniature versions of the Figure 5-8 experiments whose
// comparative claims must keep holding — DSC's processor explosion, the
// complexity ladder of scheduling times, FAST's competitiveness in
// simulated execution, and the random-DAG relationships of Figure 8.

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "sched/validation.hpp"
#include "sim/event_sim.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched {
namespace {

struct AlgoRun {
  double exec = 0;
  double length = 0;
  std::size_t procs = 0;
  double seconds = 0;
};

AlgoRun run_algo(const graph::TaskGraph& g, const std::string& algo,
             std::size_t procs) {
  const auto scheduler = baselines::make_scheduler(algo);
  sched::SchedulerOptions opts;
  opts.num_procs = procs;
  (void)scheduler->run(g, opts);  // warmup
  Timer timer;
  const auto s = scheduler->run(g, opts);
  AlgoRun r;
  r.seconds = timer.seconds();
  sched::require_valid(g, s);
  r.length = s.length();
  r.procs = s.procs_used();
  r.exec = sim::simulate(g, s, sim::MachineModel::paragon()).makespan;
  return r;
}

TEST(PaperShape, DscUsesFarMoreProcessors) {
  // Figures 5(b)/6(b)/8(b): DSC's cluster count is O(v).
  const auto g = workloads::gaussian_elimination_dag(16);
  const AlgoRun fast = run_algo(g, "FAST", 64);
  const AlgoRun dsc = run_algo(g, "DSC", 0);
  EXPECT_GT(dsc.procs, 3 * fast.procs);
}

TEST(PaperShape, FastCompetitiveOnGaussExecution) {
  // Figure 5(a): FAST's simulated execution time is within a few percent
  // of the best algorithm at every size (it is the best or tied in most
  // cells; we assert the robust envelope).
  for (const int dim : {8, 16}) {
    const auto g = workloads::gaussian_elimination_dag(dim);
    const AlgoRun fast = run_algo(g, "FAST", 64);
    for (const char* other : {"MD", "ETF", "DLS"}) {
      const AlgoRun o = run_algo(g, other, 64);
      EXPECT_LE(fast.exec, 1.10 * o.exec) << other << " dim " << dim;
    }
  }
}

TEST(PaperShape, FastBeatsBaselinesOnLaplaceExecution) {
  // Figure 6(a): FAST wins on the Laplace solver at the mid sizes.
  const auto g = workloads::laplace_dag(12);
  const AlgoRun fast = run_algo(g, "FAST", 64);
  for (const char* other : {"MD", "ETF", "DLS", "DSC"}) {
    const AlgoRun o = run_algo(g, other, 64);
    EXPECT_LE(fast.exec, o.exec * 1.02) << other;
  }
}

TEST(PaperShape, MdIsSlowestScheduler) {
  // Figures 5(c)-7(c): MD's O(v^3)-class running time dominates everyone.
  const auto g = workloads::laplace_dag(20);  // 402 nodes
  const AlgoRun md = run_algo(g, "MD", 0);
  for (const char* other : {"FAST", "DSC", "ETF", "DLS"}) {
    const AlgoRun o = run_algo(g, other, 64);
    EXPECT_GT(md.seconds, o.seconds) << other;
  }
}

TEST(PaperShape, EtfAndDlsMuchSlowerThanFastAtScale) {
  // Figure 8(c): on a dense 1500-node DAG, ETF/DLS scheduling times are
  // several times FAST's.
  workloads::RandomDagParams params;
  params.num_nodes = 1500;
  params.avg_out_degree = 24.0;
  params.seed = 5;
  const auto g = workloads::random_layered_dag(params);
  const AlgoRun fast = run_algo(g, "FAST", 256);
  const AlgoRun etf = run_algo(g, "ETF", 256);
  const AlgoRun dls = run_algo(g, "DLS", 256);
  EXPECT_GT(etf.seconds, 3.0 * fast.seconds);
  EXPECT_GT(dls.seconds, 3.0 * fast.seconds);
}

TEST(PaperShape, RandomDagLengthsWithinFivePercent) {
  // Figure 8(a): FAST, ETF, DLS and DSC all land within a few percent of
  // one another on dense random DAGs (paper: 0.97-1.12 of FAST).
  workloads::RandomDagParams params;
  params.num_nodes = 1200;
  params.avg_out_degree = 24.0;
  params.seed = 8;
  const auto g = workloads::random_layered_dag(params);
  const AlgoRun fast = run_algo(g, "FAST", 256);
  for (const char* other : {"ETF", "DLS", "DSC"}) {
    const AlgoRun o = run_algo(g, other, other == std::string("DSC") ? 0 : 256);
    EXPECT_LT(o.length, 1.15 * fast.length) << other;
    EXPECT_GT(o.length, 0.85 * fast.length) << other;
  }
}

TEST(PaperShape, SimulatedExecutionNeverBeatsScheduleLength) {
  // The machine only adds overheads the schedulers' model cannot see.
  const auto g = workloads::gaussian_elimination_dag(12);
  for (const auto& algo : baselines::scheduler_names()) {
    const AlgoRun r = run_algo(g, algo, 64);
    EXPECT_GE(r.exec, r.length - 1e-9) << algo;
  }
}

}  // namespace
}  // namespace fastsched
