// Determinism regression tests for the parallel evaluation engine: the
// whole point of the work-stealing-free pool is that fanning the
// (graph x scheduler) matrix, bench repetitions, or certificate batches
// out over N workers produces *byte-identical* results to the sequential
// run. These tests serialize both sides and compare the strings, so any
// ordering or data race that sneaks into the evaluation layer fails
// loudly (and deterministically under TSan, which runs this file too).
//
// The CLI-level counterparts — `sched_diff --jobs 1` vs `--jobs 8`,
// `ccr_sweep --jobs 1` vs `--jobs 8` — are pinned by the
// `determinism.*` ctest entries in tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/lint.hpp"
#include "analysis/report_io.hpp"
#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sched/schedule.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched {
namespace {

std::vector<graph::TaskGraph> evaluation_suite() {
  std::vector<graph::TaskGraph> graphs;
  graphs.push_back(workloads::gaussian_elimination_dag(8));
  graphs.push_back(workloads::laplace_dag(8));
  graphs.push_back(workloads::fft_dag(32));
  workloads::RandomDagParams params;
  params.num_nodes = 150;
  params.avg_out_degree = 5.0;
  params.ccr = 1.0;
  params.seed = 77;
  graphs.push_back(workloads::random_layered_dag(params));
  return graphs;
}

/// Runs the full (graph x scheduler) evaluation matrix — schedule, lint,
/// certify — on `jobs` workers and serializes every cell in submission
/// order. This is sched_diff's engine distilled to a string.
std::string evaluate_matrix(const std::vector<graph::TaskGraph>& graphs,
                            const std::vector<std::string>& algorithms,
                            std::size_t jobs) {
  const std::size_t n = graphs.size() * algorithms.size();
  std::vector<std::string> cells(n);
  parallel_for_index(jobs, n, [&](std::size_t i) {
    const graph::TaskGraph& g = graphs[i / algorithms.size()];
    const std::string& algo = algorithms[i % algorithms.size()];
    sched::SchedulerOptions options;
    options.num_procs = 16;
    const sched::Schedule s =
        baselines::make_scheduler(algo)->run(g, options);

    analysis::LintInput input;
    input.graph = &g;
    input.schedule = &s;
    input.reported_length = s.length();
    const analysis::LintReport lint = analysis::lint(input);

    const analysis::BoundSet bounds =
        analysis::compute_bounds(g, s.num_procs());

    std::ostringstream cell;
    cell << algo << '|' << s.length() << '|' << s.procs_used() << '|'
         << lint.num_errors << '|' << lint.num_warnings << '|'
         << bounds.best();
    for (const analysis::BoundCertificate& cert : bounds.certificates) {
      cell << '|' << analysis::to_json(cert);
    }
    cells[i] = cell.str();
  });
  std::string merged;
  for (const std::string& cell : cells) {
    merged += cell;
    merged += '\n';
  }
  return merged;
}

TEST(ParallelDeterminism, SchedulerMatrixIsByteIdenticalAcrossJobCounts) {
  const std::vector<graph::TaskGraph> graphs = evaluation_suite();
  const std::vector<std::string> algorithms = {"FAST", "DSC", "MD", "ETF",
                                               "DLS"};
  const std::string sequential = evaluate_matrix(graphs, algorithms, 1);
  EXPECT_FALSE(sequential.empty());
  for (const std::size_t jobs : {2u, 8u, 16u}) {
    EXPECT_EQ(evaluate_matrix(graphs, algorithms, jobs), sequential)
        << jobs << " jobs";
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
  // Same job count, repeated runs: catches racy accumulation rather than
  // racy merge order.
  const std::vector<graph::TaskGraph> graphs = evaluation_suite();
  const std::vector<std::string> algorithms = {"FAST", "ETF"};
  const std::string first = evaluate_matrix(graphs, algorithms, 8);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(evaluate_matrix(graphs, algorithms, 8), first)
        << "repeat " << repeat;
  }
}

TEST(ParallelDeterminism, BoundsBatchMatchesSequentialCertificates) {
  const std::vector<graph::TaskGraph> graphs = evaluation_suite();
  std::vector<analysis::BoundRequest> requests;
  for (const graph::TaskGraph& g : graphs) requests.push_back({&g, 16});

  const auto serialize = [](const std::vector<analysis::BoundSet>& sets) {
    std::string out;
    for (const analysis::BoundSet& set : sets) {
      for (const analysis::BoundCertificate& cert : set.certificates) {
        out += analysis::to_json(cert);
        out += '\n';
      }
    }
    return out;
  };

  const std::string sequential =
      serialize(analysis::compute_bounds_batch(requests, {}, 1));
  EXPECT_NE(sequential.find("comm-cp"), std::string::npos);
  for (const std::size_t jobs : {2u, 8u}) {
    EXPECT_EQ(serialize(analysis::compute_bounds_batch(requests, {}, jobs)),
              sequential)
        << jobs << " jobs";
  }
}

TEST(ParallelDeterminism, BenchRepetitionsWithSplitStreamsAreOrderFree) {
  // The bench-repetition recipe: trial t's generator seed is
  // Rng(bench_seed).split(t) — a pure function of t — so the schedule
  // lengths of a sweep cannot depend on the worker interleaving.
  const Rng bench_seed(7);
  const std::size_t trials = 12;

  const auto run_trials = [&](std::size_t jobs) {
    std::vector<double> lengths(trials);
    parallel_for_index(jobs, trials, [&](std::size_t t) {
      workloads::RandomDagParams params;
      params.num_nodes = 120;
      params.avg_out_degree = 4.0;
      params.ccr = 2.0;
      params.seed = bench_seed.split(t).next();
      const graph::TaskGraph g = workloads::random_layered_dag(params);
      sched::SchedulerOptions options;
      options.num_procs = 8;
      lengths[t] = baselines::make_scheduler("FAST")->run(g, options).length();
    });
    return lengths;
  };

  const std::vector<double> sequential = run_trials(1);
  EXPECT_EQ(run_trials(8), sequential);
  EXPECT_EQ(run_trials(16), sequential);
}

}  // namespace
}  // namespace fastsched
