#pragma once

/// Shared task-graph fixtures for the test suite.

#include <vector>

#include "common/rng.hpp"
#include "graph/task_graph.hpp"
#include "workloads/random_layered.hpp"

namespace fastsched::testing {

/// Linear chain a -> b -> c -> ... with unit weights and `comm` edge costs.
inline graph::TaskGraph chain(int length, double node_weight = 1.0,
                              double comm = 1.0) {
  graph::TaskGraphBuilder b;
  graph::NodeId prev = b.add_node(node_weight);
  for (int i = 1; i < length; ++i) {
    const graph::NodeId cur = b.add_node(node_weight);
    b.add_edge(prev, cur, comm);
    prev = cur;
  }
  return b.build();
}

/// One root fanning out to `width` children, all joining into one sink.
inline graph::TaskGraph fork_join(int width, double node_weight = 1.0,
                                  double comm = 1.0) {
  graph::TaskGraphBuilder b;
  const graph::NodeId root = b.add_node(node_weight);
  std::vector<graph::NodeId> mids;
  for (int i = 0; i < width; ++i) {
    mids.push_back(b.add_node(node_weight));
    b.add_edge(root, mids.back(), comm);
  }
  const graph::NodeId sink = b.add_node(node_weight);
  for (const graph::NodeId m : mids) b.add_edge(m, sink, comm);
  return b.build();
}

/// Two independent chains (a disconnected DAG).
inline graph::TaskGraph two_chains(int length) {
  graph::TaskGraphBuilder b;
  for (int chain_idx = 0; chain_idx < 2; ++chain_idx) {
    graph::NodeId prev = b.add_node(1.0);
    for (int i = 1; i < length; ++i) {
      const graph::NodeId cur = b.add_node(1.0);
      b.add_edge(prev, cur, 1.0);
      prev = cur;
    }
  }
  return b.build();
}

/// The classic diamond: a -> {b, c} -> d with configurable costs.
inline graph::TaskGraph diamond(double wb = 2.0, double wc = 3.0,
                                double comm = 1.0) {
  graph::TaskGraphBuilder b;
  const auto a = b.add_node(1.0);
  const auto n_b = b.add_node(wb);
  const auto n_c = b.add_node(wc);
  const auto d = b.add_node(1.0);
  b.add_edge(a, n_b, comm);
  b.add_edge(a, n_c, comm);
  b.add_edge(n_b, d, comm);
  b.add_edge(n_c, d, comm);
  return b.build();
}

/// A single node, no edges.
inline graph::TaskGraph single(double weight = 5.0) {
  graph::TaskGraphBuilder b;
  b.add_node(weight);
  return b.build();
}

/// Small random layered DAG for property sweeps.
inline graph::TaskGraph small_random(std::uint64_t seed, std::size_t nodes = 60,
                                     double ccr = 1.0,
                                     double avg_degree = 4.0) {
  workloads::RandomDagParams params;
  params.num_nodes = nodes;
  params.ccr = ccr;
  params.avg_out_degree = avg_degree;
  params.seed = seed;
  return workloads::random_layered_dag(params);
}

}  // namespace fastsched::testing
