# golden_test.cmake — run a tool and require its stdout to be byte-identical
# to a checked-in golden file, with the expected exit status.
#
# Usage (from add_test):
#   cmake -DTOOL=<binary> "-DARGS=<arg string>" -DGOLDEN=<file>
#         [-DEXPECT_RC=<n>] -P golden_test.cmake
#
# Regenerating a golden after an intended report change:
#   <binary> <args> > tests/fixtures/golden/<file>
if(NOT DEFINED EXPECT_RC)
  set(EXPECT_RC 0)
endif()
separate_arguments(tool_args UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${TOOL} ${tool_args}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR
    "${TOOL} ${ARGS}: exit status ${rc}, expected ${EXPECT_RC}")
endif()
file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "${TOOL} ${ARGS}: stdout differs from golden ${GOLDEN}\n"
    "--- expected ---\n${expected}\n--- actual ---\n${actual}")
endif()
