#include "casch/pipeline.hpp"

#include <gtest/gtest.h>

namespace fastsched::casch {
namespace {

TEST(Pipeline, ParsesApplicationNames) {
  EXPECT_EQ(parse_application("gauss"), Application::kGaussian);
  EXPECT_EQ(parse_application("gaussian"), Application::kGaussian);
  EXPECT_EQ(parse_application("laplace"), Application::kLaplace);
  EXPECT_EQ(parse_application("fft"), Application::kFft);
  EXPECT_THROW((void)parse_application("nbody"), Error);
}

TEST(Pipeline, ApplicationNamesRoundTrip) {
  for (const auto app : {Application::kGaussian, Application::kLaplace,
                         Application::kFft}) {
    EXPECT_EQ(parse_application(application_name(app)), app);
  }
}

TEST(Pipeline, BuildsAllApplicationDags) {
  const auto db = workloads::TimingDatabase::paragon();
  EXPECT_EQ(build_application_dag(Application::kGaussian, 8, db).num_nodes(),
            54u);
  EXPECT_EQ(build_application_dag(Application::kLaplace, 8, db).num_nodes(),
            66u);
  EXPECT_EQ(build_application_dag(Application::kFft, 64, db).num_nodes(),
            34u);
}

TEST(Pipeline, RunsEndToEnd) {
  PipelineConfig config;
  config.app = Application::kGaussian;
  config.size = 8;
  config.algorithm = "FAST";
  const PipelineReport report = run_pipeline(config);
  EXPECT_EQ(report.num_tasks, 54u);
  EXPECT_GT(report.schedule_length, 0.0);
  EXPECT_GT(report.execution_time, 0.0);
  EXPECT_GE(report.execution_time, report.schedule_length);  // overheads
  EXPECT_GT(report.procs_used, 0u);
  EXPECT_GT(report.metrics.speedup, 0.0);
}

TEST(Pipeline, WorksForEveryAlgorithm) {
  for (const char* algo : {"FAST", "PFAST", "MD", "ETF", "DLS", "DSC"}) {
    PipelineConfig config;
    config.app = Application::kFft;
    config.size = 16;
    config.algorithm = algo;
    const PipelineReport report = run_pipeline(config);
    EXPECT_GT(report.execution_time, 0.0) << algo;
    EXPECT_EQ(report.algorithm, algo);
  }
}

TEST(Pipeline, ReportFormatsKeyFields) {
  PipelineConfig config;
  config.app = Application::kLaplace;
  config.size = 4;
  const std::string text = format_report(run_pipeline(config));
  EXPECT_NE(text.find("laplace(4)"), std::string::npos);
  EXPECT_NE(text.find("schedule length"), std::string::npos);
  EXPECT_NE(text.find("executed time"), std::string::npos);
}

TEST(Pipeline, ThrowsOnUnknownAlgorithm) {
  PipelineConfig config;
  config.algorithm = "NOPE";
  EXPECT_THROW((void)run_pipeline(config), Error);
}

}  // namespace
}  // namespace fastsched::casch
