#include "casch/codegen.hpp"

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "sim/event_sim.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::casch {
namespace {

using graph::TaskGraph;
using sched::Schedule;

Schedule schedule_with(const TaskGraph& g, const char* algo) {
  return baselines::make_scheduler(algo)->run(g, sched::SchedulerOptions{});
}

TEST(Codegen, EveryTaskExecutedExactlyOnce) {
  const TaskGraph g = testing::small_random(950);
  const Schedule s = schedule_with(g, "FAST");
  const Program program = generate_program(g, s);

  std::vector<int> execs(g.num_nodes(), 0);
  for (const auto& prog : program.per_proc) {
    for (const Instruction& ins : prog) {
      if (ins.op == Instruction::Op::kExec) ++execs[ins.task];
    }
  }
  for (const int count : execs) EXPECT_EQ(count, 1);
}

TEST(Codegen, SendsMatchRecvsOneToOne) {
  const TaskGraph g = testing::small_random(951);
  for (const char* algo : {"FAST", "DSC", "MD"}) {
    const Schedule s = schedule_with(g, algo);
    const Program program = generate_program(g, s);
    // Pair (producer, consumer) must appear exactly once as SEND on the
    // producer's proc and once as RECV on the consumer's proc.
    std::size_t sends = 0;
    std::size_t recvs = 0;
    for (const auto& prog : program.per_proc) {
      for (const Instruction& ins : prog) {
        if (ins.op == Instruction::Op::kSend) ++sends;
        if (ins.op == Instruction::Op::kRecv) ++recvs;
      }
    }
    EXPECT_EQ(sends, recvs) << algo;
    EXPECT_EQ(sends, program.message_count()) << algo;
  }
}

TEST(Codegen, MessageCountMatchesSimulator) {
  const TaskGraph g = testing::small_random(952);
  const Schedule s = schedule_with(g, "ETF");
  const Program program = generate_program(g, s);
  const sim::SimResult r = sim::simulate(g, s, sim::MachineModel::ideal());
  EXPECT_EQ(program.message_count(), r.messages);
}

TEST(Codegen, LocalEdgesProduceNoMessages) {
  // Everything on one processor: zero sends.
  const TaskGraph g = testing::chain(5, 1.0, 10.0);
  const Schedule s = schedule_with(g, "FAST");
  ASSERT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(generate_program(g, s).message_count(), 0u);
}

TEST(Codegen, RecvPrecedesExecPrecedesSend) {
  const TaskGraph g = testing::small_random(953);
  const Schedule s = schedule_with(g, "DLS");
  const Program program = generate_program(g, s);
  for (const auto& prog : program.per_proc) {
    std::vector<bool> executed(g.num_nodes(), false);
    for (const Instruction& ins : prog) {
      if (ins.op == Instruction::Op::kRecv) {
        EXPECT_FALSE(executed[ins.task]) << "recv after exec";
      } else if (ins.op == Instruction::Op::kExec) {
        executed[ins.task] = true;
      } else {
        EXPECT_TRUE(executed[ins.task]) << "send before exec";
      }
    }
  }
}

TEST(Codegen, RenderNamesTasksAndPeers) {
  const TaskGraph g = testing::chain(2, 1.0, 3.0);
  Schedule s(2, 2);
  s.assign(0, 0, 0, 1);
  s.assign(1, 1, 4, 5);
  const std::string text = render_program(g, generate_program(g, s));
  EXPECT_NE(text.find("processor P0"), std::string::npos);
  EXPECT_NE(text.find("exec n1"), std::string::npos);
  EXPECT_NE(text.find("send n1 -> n2 @P1"), std::string::npos);
  EXPECT_NE(text.find("recv n1 -> n2 from P0"), std::string::npos);
}

TEST(Codegen, RejectsIncompleteSchedule) {
  const TaskGraph g = testing::chain(2);
  Schedule s(2, 1);
  s.assign(0, 0, 0, 1);
  EXPECT_THROW((void)generate_program(g, s), Error);
}

}  // namespace
}  // namespace fastsched::casch
