#include "casch/select.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/gaussian.hpp"

namespace fastsched::casch {
namespace {

TEST(Select, RankingIsSortedByExecutionTime) {
  const auto g = workloads::gaussian_elimination_dag(8);
  const SelectionResult r = select_best(g, default_candidates());
  ASSERT_EQ(r.ranking.size(), default_candidates().size());
  for (std::size_t i = 1; i < r.ranking.size(); ++i) {
    EXPECT_LE(r.ranking[i - 1].execution_time,
              r.ranking[i].execution_time + 1e-9);
  }
}

TEST(Select, WinnerScheduleMatchesItsEntry) {
  const auto g = testing::small_random(1200);
  const SelectionResult r = select_best(g, {"FAST", "ETF"});
  EXPECT_TRUE(sched::is_valid(g, r.schedule));
  EXPECT_DOUBLE_EQ(r.schedule.length(), r.best().schedule_length);
  EXPECT_EQ(r.schedule.procs_used(), r.best().procs_used);
}

TEST(Select, SingleCandidateWins) {
  const auto g = testing::chain(4);
  const SelectionResult r = select_best(g, {"DSC"});
  EXPECT_EQ(r.best().algorithm, "DSC");
}

TEST(Select, HonoursSchedulerOptions) {
  const auto g = testing::small_random(1201);
  sched::SchedulerOptions opts;
  opts.num_procs = 2;
  const SelectionResult r = select_best(g, {"FAST", "ETF", "DLS"}, opts);
  EXPECT_LE(r.schedule.procs_used(), 2u);
}

TEST(Select, RejectsEmptyAndUnknown) {
  const auto g = testing::chain(3);
  EXPECT_THROW((void)select_best(g, {}), Error);
  EXPECT_THROW((void)select_best(g, {"NOPE"}), Error);
}

TEST(Select, WinnerNeverWorseThanAnyCandidateRun) {
  const auto g = testing::small_random(1202, 90, 2.0, 4.0);
  const SelectionResult r = select_best(g, default_candidates());
  for (const auto& entry : r.ranking) {
    EXPECT_LE(r.best().execution_time, entry.execution_time + 1e-9);
  }
}

}  // namespace
}  // namespace fastsched::casch
