#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/builtin_rules.hpp"
#include "common/error.hpp"
#include "baselines/registry.hpp"
#include "fast/cpn_dominate.hpp"
#include "graph/classification.hpp"
#include "graph/levels.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/paper_example.hpp"

namespace fastsched::analysis {
namespace {

using graph::NodeId;
using graph::TaskGraph;
using sched::Schedule;

// a(1) -2-> b(1): cross-processor b may start at finish(a) + 2 = 3.
TaskGraph two_node_graph() {
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(1);
  const auto b = builder.add_node(1);
  builder.add_edge(a, b, 2);
  return builder.build();
}

std::vector<std::string> rule_ids(const LintReport& report) {
  std::vector<std::string> ids;
  for (const auto& d : report.diagnostics) ids.push_back(d.rule_id);
  return ids;
}

TEST(LintRegistry, BuiltinRulesHaveUniqueIdsAndSummaries) {
  const auto& rules = RuleRegistry::builtin().rules();
  ASSERT_GE(rules.size(), 10u);
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_EQ(RuleRegistry::builtin().find(rule.id), &rule);
  }
  EXPECT_EQ(RuleRegistry::builtin().find("no-such-rule"), nullptr);
}

TEST(LintRegistry, RejectsDuplicateIds) {
  RuleRegistry registry;
  detail::register_builtin_rules(registry);
  Rule dup;
  dup.id = "precedence";
  dup.check = [](const LintInput&, std::vector<Diagnostic>&) {};
  EXPECT_THROW(registry.add(std::move(dup)), Error);
}

TEST(Lint, CleanScheduleHasNoDiagnostics) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 3.0, 4.0);
  const LintReport report = lint(g, s);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.ok(/*warnings_as_errors=*/true));
  EXPECT_NO_THROW(require_clean(g, s));
}

TEST(Lint, SeededPrecedenceViolationHasCorrectRuleId) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 0.5, 1.5);  // starts before the parent even finishes
  const LintReport report = lint(g, s);
  // The compressed schedule also undercuts the certified critical-path
  // bounds, so the bound-violation cross-check fires alongside the direct
  // precedence finding.
  ASSERT_GE(report.num_errors, 1u);
  const auto it = std::find_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) { return d.rule_id == "precedence"; });
  ASSERT_NE(it, report.diagnostics.end());
  const Diagnostic& d = *it;
  EXPECT_EQ(d.rule_id, "precedence");
  EXPECT_TRUE(std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& v) { return v.rule_id == "bound-violation"; }));
  EXPECT_EQ(d.node, 1u);
  EXPECT_EQ(d.related, 0u);
  EXPECT_EQ(d.proc, 1u);
  EXPECT_DOUBLE_EQ(d.window.begin, 0.5);
  EXPECT_DOUBLE_EQ(d.window.end, 1.0);
  EXPECT_THROW(require_clean(g, s), Error);
}

TEST(Lint, SeededCommDelayViolationHasCorrectRuleId) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 2.0, 3.0);  // after the parent, but before arrival at 3
  const LintReport report = lint(g, s);
  ASSERT_EQ(report.num_errors, 1u);
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.rule_id, "comm-delay");
  EXPECT_EQ(d.node, 1u);
  EXPECT_DOUBLE_EQ(d.window.end, 3.0);
}

TEST(Lint, SameProcessorNeedsNoCommDelay) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.0, 2.0);
  EXPECT_TRUE(lint(g, s).clean());
}

TEST(Lint, SeededSlotOverlapHasCorrectRuleId) {
  graph::TaskGraphBuilder builder;
  builder.add_node(2);
  builder.add_node(2);
  const TaskGraph g = builder.build();
  Schedule s(2, 1);
  s.assign(0, 0, 0.0, 2.0);
  s.assign(1, 0, 1.0, 3.0);
  const LintReport report = lint(g, s);
  ASSERT_GE(report.num_errors, 1u);
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.rule_id, "slot-overlap");
  EXPECT_EQ(d.proc, 0u);
  EXPECT_DOUBLE_EQ(d.window.begin, 1.0);
  EXPECT_DOUBLE_EQ(d.window.end, 2.0);
}

TEST(Lint, TouchingSlotsDoNotOverlap) {
  graph::TaskGraphBuilder builder;
  builder.add_node(2);
  builder.add_node(2);
  const TaskGraph g = builder.build();
  Schedule s(2, 1);
  s.assign(0, 0, 0.0, 2.0);
  s.assign(1, 0, 2.0, 4.0);
  EXPECT_TRUE(lint(g, s).clean());
}

TEST(Lint, StructuralErrorsGateSemanticRules) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);  // node 1 never assigned
  const LintReport report = lint(g, s);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics.front().rule_id, "unassigned-task");
}

TEST(Lint, BadDurationReported) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 2.5);  // weight is 1
  s.assign(1, 1, 5.0, 6.0);
  const LintReport report = lint(g, s);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics.front().rule_id, "bad-duration");
}

TEST(Lint, IdleGapAnomalyIsAWarning) {
  const TaskGraph g = testing::chain(2, 1.0, 1.0);
  Schedule s(2, 1);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 5.0, 6.0);  // could start at 1; idle [1, 5) is unexplained
  const LintReport report = lint(g, s);
  EXPECT_EQ(report.num_errors, 0u);
  ASSERT_EQ(report.num_warnings, 1u);
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.rule_id, "idle-gap");
  EXPECT_DOUBLE_EQ(d.window.begin, 1.0);
  EXPECT_DOUBLE_EQ(d.window.end, 5.0);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.ok(/*warnings_as_errors=*/true));
}

TEST(Lint, WaitingForDataIsNotAnIdleGap) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 3.0, 4.0);  // idle [0, 3) on P1 is the message delay
  EXPECT_TRUE(lint(g, s).clean());
}

TEST(Lint, ReportedMakespanMismatchIsAnError) {
  const TaskGraph g = testing::single(5.0);
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 5.0);
  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  input.reported_length = 7.0;
  const LintReport report = lint(input);
  ASSERT_EQ(report.num_errors, 1u);
  EXPECT_EQ(report.diagnostics.front().rule_id, "makespan-mismatch");

  input.reported_length = 5.0;
  EXPECT_TRUE(lint(input).clean());
}

TEST(Lint, NonTopologicalListIsAnError) {
  const TaskGraph g = testing::chain(3, 1.0, 1.0);
  Schedule s(3, 1);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.0, 2.0);
  s.assign(2, 0, 2.0, 3.0);
  const std::vector<NodeId> reversed = {2, 1, 0};
  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  input.list = &reversed;
  const LintReport report = lint(input);
  EXPECT_GE(report.num_errors, 1u);
  const auto ids = rule_ids(report);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "list-topology"), ids.end());
}

TEST(Lint, CpnOrderViolationIsAnError) {
  // Chain: every node is a CPN, so any t-level inversion among CPNs that
  // still forms a topological order is impossible — use two chains where
  // one chain's CPNs interleave wrongly. Simplest seedable case: a valid
  // topological list over a disconnected graph whose second component is
  // the critical path, listed so a deep CPN precedes a shallow one.
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(1);  // isolated, not a CPN
  const auto b = builder.add_node(5);  // CP: b -> c
  const auto c = builder.add_node(5);
  builder.add_edge(b, c, 1);
  (void)a;
  const TaskGraph g = builder.build();

  Schedule s(3, 2);
  s.assign(0, 1, 0.0, 1.0);
  s.assign(1, 0, 0.0, 5.0);
  s.assign(2, 0, 5.0, 10.0);

  // b and c are the CPNs (t-levels 0 and 5). Listing them in order keeps
  // the lint clean; the interleaved isolated node does not matter.
  const std::vector<NodeId> good = {b, a, c};
  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  input.list = &good;
  EXPECT_TRUE(lint(input).clean());

  // No topological violation is possible for {c, ...} since b -> c forces
  // b first; instead check the rule directly through a registry that only
  // contains cpn-list-order, with the deep CPN listed first.
  const std::vector<NodeId> bad = {c, a, b};
  RuleRegistry only_cpn;
  const Rule* rule = RuleRegistry::builtin().find("cpn-list-order");
  ASSERT_NE(rule, nullptr);
  only_cpn.add(*rule);
  input.list = &bad;
  const LintReport report = lint(input, only_cpn);
  ASSERT_EQ(report.num_errors, 1u);
  EXPECT_EQ(report.diagnostics.front().rule_id, "cpn-list-order");
}

TEST(Lint, CpnDominateListsPassTheListRules) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const TaskGraph g = testing::small_random(seed);
    const auto levels = graph::compute_levels(g);
    const auto classes = graph::classify_nodes(g, levels);
    const auto list = fast::build_cpn_dominate_list(g, levels, classes);
    const auto scheduler = baselines::make_scheduler("FAST");
    sched::SchedulerOptions opts;
    opts.num_procs = 8;
    const Schedule s = scheduler->run(g, opts);
    LintInput input;
    input.graph = &g;
    input.schedule = &s;
    input.list = &list;
    input.reported_length = s.length();
    const LintReport report = lint(input);
    EXPECT_TRUE(report.clean()) << "seed " << seed;
  }
}

TEST(Lint, MismatchedGraphAndScheduleThrow) {
  const TaskGraph g = two_node_graph();
  const Schedule s(5, 2);
  EXPECT_THROW((void)lint(g, s), Error);
  LintInput input;  // missing both pointers
  EXPECT_THROW((void)lint(input), Error);
}

TEST(Lint, FormatNamesRuleNodeProcessorAndWindow) {
  const TaskGraph g = two_node_graph();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 2.0, 3.0);
  const LintReport report = lint(g, s);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string line = format(report.diagnostics.front(), &g);
  EXPECT_NE(line.find("error[comm-delay]"), std::string::npos) << line;
  EXPECT_NE(line.find("P1"), std::string::npos) << line;
  EXPECT_NE(line.find("[2, 3)"), std::string::npos) << line;
}

// The acceptance sweep: every registered scheduler on the paper-example
// and random-layered workloads produces schedules the lint engine finds
// nothing wrong with — warnings included.
TEST(Lint, AllSchedulersLintCleanOnPaperExampleAndRandomLayered) {
  std::vector<TaskGraph> graphs;
  graphs.push_back(workloads::paper_figure1_dag());
  graphs.push_back(testing::small_random(41, 120, 0.5, 4.0));
  graphs.push_back(testing::small_random(42, 120, 5.0, 4.0));
  graphs.push_back(testing::small_random(43, 200, 1.0, 8.0));

  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const TaskGraph& g = graphs[gi];
    for (const auto& name : baselines::scheduler_names()) {
      const auto scheduler = baselines::make_scheduler(name);
      sched::SchedulerOptions opts;
      opts.num_procs = scheduler->unbounded_processors() ? 0 : 8;
      const Schedule s = scheduler->run(g, opts);
      LintInput input;
      input.graph = &g;
      input.schedule = &s;
      input.reported_length = s.length();
      const LintReport report = lint(input);
      EXPECT_TRUE(report.clean())
          << name << " on graph " << gi << ": "
          << (report.diagnostics.empty()
                  ? std::string()
                  : format(report.diagnostics.front(), &g));
    }
  }
}

}  // namespace
}  // namespace fastsched::analysis
