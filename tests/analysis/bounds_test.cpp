// Tests for the makespan lower-bound engine (analysis/bounds.hpp): the
// closed-form values of each bound family on hand-computable graphs, the
// certification of every paper workload against every seed scheduler,
// and the acceptance regression that a schedule with corrupted (halved)
// communication accounting is rejected by the bound-violation lint rule.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/lint.hpp"
#include "baselines/registry.hpp"
#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/fft.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/laplace.hpp"

namespace fastsched::analysis {
namespace {

TEST(Bounds, ChainCriticalPathIsSerialWork) {
  const graph::TaskGraph g = fastsched::testing::chain(4, 2.0, 1.0);
  const BoundSet bounds = compute_bounds(g);
  const BoundCertificate* cp = bounds.find("cp-comp");
  ASSERT_NE(cp, nullptr);
  EXPECT_DOUBLE_EQ(cp->value, 8.0);
  EXPECT_EQ(cp->witness.size(), 4u);  // the whole chain is the path
  // A single-predecessor chain gains nothing from communication: the
  // chain can always be co-located.
  const BoundCertificate* ccp = bounds.find("comm-cp");
  ASSERT_NE(ccp, nullptr);
  EXPECT_DOUBLE_EQ(ccp->value, 8.0);
  // No pool size given: no pool-dependent certificates.
  EXPECT_EQ(bounds.find("work"), nullptr);
  EXPECT_EQ(bounds.find("interval-density"), nullptr);
}

TEST(Bounds, WorkBoundDividesByPool) {
  graph::TaskGraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(2.0);  // independent tasks
  const graph::TaskGraph g = b.build();
  const BoundSet bounds = compute_bounds(g, 2);
  const BoundCertificate* work = bounds.find("work");
  ASSERT_NE(work, nullptr);
  EXPECT_DOUBLE_EQ(work->value, 5.0);  // 10 total work on 2 processors
  EXPECT_EQ(work->num_procs, 2u);
  EXPECT_DOUBLE_EQ(bounds.best(), 5.0);
  ASSERT_NE(bounds.binding(), nullptr);
  EXPECT_EQ(bounds.binding()->id, "work");
}

// The worked example behind the comm-aware bound: two weight-10
// predecessors feeding a join over cost-4 edges. Any schedule either
// co-locates the join with one predecessor (other message arrives at
// 10 + 4 = 14), separates it from both (both messages arrive at 14), or
// co-locates everything (the predecessors serialize: 10 + 10 = 20). The
// earliest conceivable start is therefore 14, not the naive comm-free 10.
graph::TaskGraph join_example() {
  graph::TaskGraphBuilder b;
  const auto q1 = b.add_node(10.0);
  const auto q2 = b.add_node(10.0);
  const auto n = b.add_node(1.0);
  b.add_edge(q1, n, 4.0);
  b.add_edge(q2, n, 4.0);
  return b.build();
}

TEST(Bounds, CommAwareJoinCaseAnalysis) {
  const graph::TaskGraph g = join_example();
  const std::vector<graph::Cost> est = comm_aware_est(g);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_DOUBLE_EQ(est[0], 0.0);
  EXPECT_DOUBLE_EQ(est[1], 0.0);
  EXPECT_DOUBLE_EQ(est[2], 14.0);

  const BoundSet bounds = compute_bounds(g);
  const BoundCertificate* cp = bounds.find("cp-comp");
  ASSERT_NE(cp, nullptr);
  EXPECT_DOUBLE_EQ(cp->value, 11.0);  // 10 + 1, communication-free
  const BoundCertificate* ccp = bounds.find("comm-cp");
  ASSERT_NE(ccp, nullptr);
  EXPECT_DOUBLE_EQ(ccp->value, 15.0);  // est 14 + the join's own work
  EXPECT_DOUBLE_EQ(bounds.best(), 15.0);
}

TEST(Bounds, CommAwareTailChainClosedForm) {
  // On a chain the whole suffix can be co-located with its predecessor,
  // so the tail of node i is exactly the work strictly after it.
  const graph::TaskGraph g = fastsched::testing::chain(4, 2.0, 1.0);
  const std::vector<graph::Cost> tail = comm_aware_tail(g);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_DOUBLE_EQ(tail[0], 6.0);
  EXPECT_DOUBLE_EQ(tail[1], 4.0);
  EXPECT_DOUBLE_EQ(tail[2], 2.0);
  EXPECT_DOUBLE_EQ(tail[3], 0.0);
}

TEST(Bounds, CommAwareTailForkCaseAnalysis) {
  // Mirror of the join example: one weight-1 source fanning out to two
  // weight-10 successors over cost-4 edges. Time-reversal of the join
  // case analysis: at most one successor can be co-located with the
  // source, so at least one copy of (4 + 10) or the serialized (10 + 10)
  // must follow the source's finish — the tail is 14, not the comm-free
  // 10. The forward pass sees nothing (both successors are exits with
  // single predecessors), so comm-cp-tail strictly beats comm-cp here.
  graph::TaskGraphBuilder b;
  const auto n = b.add_node(1.0);
  const auto q1 = b.add_node(10.0);
  const auto q2 = b.add_node(10.0);
  b.add_edge(n, q1, 4.0);
  b.add_edge(n, q2, 4.0);
  const graph::TaskGraph g = b.build();

  const std::vector<graph::Cost> tail = comm_aware_tail(g);
  EXPECT_DOUBLE_EQ(tail[0], 14.0);
  EXPECT_DOUBLE_EQ(tail[1], 0.0);
  EXPECT_DOUBLE_EQ(tail[2], 0.0);

  const BoundSet bounds = compute_bounds(g);
  const BoundCertificate* ccp = bounds.find("comm-cp");
  ASSERT_NE(ccp, nullptr);
  EXPECT_DOUBLE_EQ(ccp->value, 11.0);  // forward pass is comm-blind here
  const BoundCertificate* tail_cert = bounds.find("comm-cp-tail");
  ASSERT_NE(tail_cert, nullptr);
  EXPECT_DOUBLE_EQ(tail_cert->value, 15.0);  // est 0 + work 1 + tail 14
  ASSERT_NE(bounds.binding(), nullptr);
  EXPECT_EQ(bounds.binding()->id, "comm-cp-tail");
}

TEST(Bounds, CommCpTailDominatesCommCp) {
  // Structural properties on random DAGs: the two-sided certificate never
  // falls below the forward-only one, tails are nonnegative and monotone
  // along reversed edges, and the packaged rejection tails agree with the
  // standalone pass while the floor matches a static certificate.
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const double ccr : {0.5, 5.0}) {
      const graph::TaskGraph g = fastsched::testing::small_random(seed, 60, ccr);
      const BoundSet bounds = compute_bounds(g, 4);
      const BoundCertificate* ccp = bounds.find("comm-cp");
      const BoundCertificate* tail_cert = bounds.find("comm-cp-tail");
      ASSERT_NE(ccp, nullptr);
      ASSERT_NE(tail_cert, nullptr);
      EXPECT_GE(tail_cert->value + 1e-9, ccp->value);

      const std::vector<graph::Cost> tail = comm_aware_tail(g);
      for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
        EXPECT_GE(tail[n], 0.0);
        for (const graph::Adjacency& adj : g.successors(n)) {
          EXPECT_GE(tail[n] + 1e-9, tail[adj.node] + g.weight(adj.node))
              << "tail not monotone along " << n << " -> " << adj.node;
        }
      }

      const RejectionTails packaged = make_rejection_tails(g, 4);
      EXPECT_EQ(packaged.tail, tail);
      EXPECT_GE(packaged.floor, tail_cert->value - 1e-9);
    }
  }
}

TEST(Bounds, FernandezCatchesWidthBottleneck) {
  // a -> {b, c, d} -> e with unit weights and free communication on two
  // processors: both path bounds say 3, but the middle layer squeezes
  // three unit tasks into the width-2 window [1, 2), so the true optimum
  // exceeds 3. The linear relaxation certifies 3 + (3 - 2) / 3.
  const graph::TaskGraph g = fastsched::testing::fork_join(3, 1.0, 0.0);
  const BoundSet bounds = compute_bounds(g, 2);
  const BoundCertificate* density = bounds.find("fernandez");
  ASSERT_NE(density, nullptr);
  EXPECT_NEAR(density->value, 3.0 + 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(density->interval.begin, 1.0);
  EXPECT_DOUBLE_EQ(density->interval.end, 2.0);
  EXPECT_FALSE(density->witness.empty());
  ASSERT_NE(bounds.binding(), nullptr);
  EXPECT_EQ(bounds.binding()->id, "fernandez");
}

TEST(Bounds, FernandezWideLayerClosedForm) {
  // Five unit tasks between a unit head and tail on two processors,
  // free communication. Reference makespan t0 = max(path 3, work 7/2)
  // = 3.5; each middle task is released at 1 with deadline t0 - 1 = 2.5,
  // so the window [1, 2.5) must hold 5 units of work but 2 processors
  // fit only 3. The relaxation adds the excess spread over the 5
  // contributors: 3.5 + (5 - 3) / 5.
  const graph::TaskGraph g = fastsched::testing::fork_join(5, 1.0, 0.0);
  const BoundSet bounds = compute_bounds(g, 2);
  const BoundCertificate* density = bounds.find("fernandez");
  ASSERT_NE(density, nullptr);
  EXPECT_NEAR(density->value, 3.5 + 2.0 / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(density->interval.begin, 1.0);
  EXPECT_DOUBLE_EQ(density->interval.end, 2.5);
}

TEST(Bounds, FernandezOnIndependentTasksMatchesWork) {
  // No precedence at all: every window spans the whole horizon, so no
  // interval beats the plain work bound and the certificate reports the
  // reference makespan itself.
  graph::TaskGraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(2.0);
  const graph::TaskGraph g = b.build();
  const BoundSet bounds = compute_bounds(g, 2);
  const BoundCertificate* density = bounds.find("fernandez");
  ASSERT_NE(density, nullptr);
  EXPECT_DOUBLE_EQ(density->value, 5.0);  // == work bound
}

TEST(Bounds, FernandezDominatesSampledOnSeededGraphs) {
  // The exact interval search maximizes over every (release, deadline)
  // endpoint pair; sampling maximizes over a subset, so exact >= sampled
  // on every instance — and strictly better on some, or the exact search
  // would be wasted work. Both stay sound: neither may exceed a real
  // schedule's makespan (FAST's, here). 1000 seeded layered graphs.
  std::size_t strictly_better = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    const double ccr = (seed % 2 == 0) ? 0.5 : 4.0;
    const graph::TaskGraph g = fastsched::testing::small_random(seed, 24, ccr);

    BoundOptions exact_options;
    exact_options.num_procs = 3;
    const BoundSet exact = compute_bounds(g, exact_options);
    const BoundCertificate* fern = exact.find("fernandez");
    ASSERT_NE(fern, nullptr) << "seed " << seed;

    BoundOptions sampled_options;
    sampled_options.num_procs = 3;
    sampled_options.density_endpoints = 8;
    const BoundSet sampled = compute_bounds(g, sampled_options);
    const BoundCertificate* legacy = sampled.find("interval-density");
    ASSERT_NE(legacy, nullptr) << "seed " << seed;

    EXPECT_GE(fern->value + 1e-9, legacy->value)
        << "sampling beat the exact interval search on seed " << seed;
    if (graph::definitely_less(legacy->value, fern->value)) ++strictly_better;

    const sched::Schedule s = baselines::make_scheduler("FAST")->run(
        g, sched::SchedulerOptions{.num_procs = 3});
    EXPECT_FALSE(graph::definitely_less(s.length(), fern->value))
        << "unsound fernandez bound on seed " << seed;
  }
  EXPECT_GT(strictly_better, 0u)
      << "the exact search never beat 8-point sampling on 1000 graphs";
}

TEST(Bounds, EmptySetHelpers) {
  const BoundSet empty;
  EXPECT_DOUBLE_EQ(empty.best(), 0.0);
  EXPECT_EQ(empty.binding(), nullptr);
  EXPECT_EQ(empty.find("cp-comp"), nullptr);
  EXPECT_DOUBLE_EQ(optimality_gap(empty, 10.0), 0.0);
}

TEST(Bounds, GapIsRelativeAndSigned) {
  const graph::TaskGraph g = fastsched::testing::chain(4, 2.0, 1.0);
  const BoundSet bounds = compute_bounds(g);  // best = 8
  EXPECT_DOUBLE_EQ(optimality_gap(bounds, 10.0), 0.25);
  EXPECT_DOUBLE_EQ(optimality_gap(bounds, 8.0), 0.0);
  EXPECT_LT(optimality_gap(bounds, 7.0), 0.0);  // beating a bound: a bug
}

// Every seed scheduler's makespan on every paper workload must respect
// every certificate — with the schedule additionally lint-clean, this is
// the library-level statement of the sched_diff acceptance criterion.
void expect_certified(const graph::TaskGraph& g, const std::string& label) {
  for (const sched::SchedulerPtr& scheduler : baselines::paper_schedulers()) {
    const sched::Schedule s = scheduler->run(g, {});
    LintInput input;
    input.graph = &g;
    input.schedule = &s;
    input.reported_length = s.length();
    const LintReport report = lint(input);
    EXPECT_TRUE(report.clean())
        << label << ", " << scheduler->name() << ": "
        << report.num_errors << " errors";
    BoundOptions options;
    options.num_procs = s.num_procs();
    const BoundSet bounds = compute_bounds(g, options);
    EXPECT_FALSE(bounds.certificates.empty()) << label;
    for (const BoundCertificate& cert : bounds.certificates) {
      EXPECT_FALSE(graph::definitely_less(s.length(), cert.value))
          << label << ", " << scheduler->name() << ": makespan "
          << s.length() << " beats '" << cert.id << "' bound " << cert.value;
    }
    EXPECT_GE(optimality_gap(bounds, s.length()), -1e-9)
        << label << ", " << scheduler->name();
  }
}

TEST(Bounds, GaussianWorkloadsAreCertified) {
  expect_certified(workloads::gaussian_elimination_dag(4), "gauss:4");
  expect_certified(workloads::gaussian_elimination_dag(8), "gauss:8");
}

TEST(Bounds, LaplaceWorkloadsAreCertified) {
  expect_certified(workloads::laplace_dag(4), "laplace:4");
  expect_certified(workloads::laplace_dag(8), "laplace:8");
}

TEST(Bounds, FftWorkloadsAreCertified) {
  expect_certified(workloads::fft_dag(16), "fft:16");
  expect_certified(workloads::fft_dag(64), "fft:64");
}

// Property sweep: random layered DAGs across seeds and CCRs. The bounds
// must hold for every scheduler (they are lower bounds on *any* valid
// schedule), and the comm-aware earliest starts must dominate zero and
// be monotone along edges.
TEST(Bounds, RandomLayeredDagsAreCertified) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const double ccr : {0.1, 1.0, 10.0}) {
      const graph::TaskGraph g = fastsched::testing::small_random(seed, 60, ccr);
      expect_certified(g, "random seed " + std::to_string(seed) + " ccr " +
                              std::to_string(ccr));
      const std::vector<graph::Cost> est = comm_aware_est(g);
      for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
        EXPECT_GE(est[n], 0.0);
        for (const graph::Adjacency& adj : g.successors(n)) {
          EXPECT_GE(est[adj.node] + 1e-9, est[n] + g.weight(n))
              << "est not monotone along " << n << " -> " << adj.node;
        }
      }
    }
  }
}

// Acceptance regression: corrupt a schedule by halving the communication
// delay it accounts for. On the join example the honest optimum is 15
// (certified by comm-cp); the corrupted schedule claims 13, so the
// bound-violation rule must reject it even though its precedence
// structure looks locally plausible.
TEST(Bounds, CorruptedCommAccountingIsRejected) {
  const graph::TaskGraph g = join_example();
  sched::Schedule s(g.num_nodes(), 2);
  s.assign(0, 0, 0.0, 10.0);   // q1 on P0
  s.assign(1, 1, 0.0, 10.0);   // q2 on P1
  // Honest arrival of q2's message at P0 is 10 + 4 = 14; the corrupted
  // accounting charges half the edge cost and starts the join at 12.
  s.assign(2, 0, 12.0, 13.0);

  LintInput input;
  input.graph = &g;
  input.schedule = &s;
  input.reported_length = s.length();
  const LintReport report = lint(input);
  EXPECT_FALSE(report.clean());
  bool bound_violation = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule_id == "bound-violation") bound_violation = true;
  }
  EXPECT_TRUE(bound_violation)
      << "makespan 13 beats the certified comm-cp bound 15 but no "
         "bound-violation diagnostic was emitted";
}

}  // namespace
}  // namespace fastsched::analysis
