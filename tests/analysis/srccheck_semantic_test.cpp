// Unit tests for the fastsched_check semantic layer (semantic.hpp): the
// heuristic declaration parser, call resolution (overloads by arity,
// cycles, function-pointer degradation), the transitive hot-path and
// task-reachability inferences, the T rule family, and the self-hosted
// parallel evaluation's byte-identity. Fixture code lives in raw strings
// so the self-run over src/ never sees the deliberate violations.

#include <sstream>
#include <string_view>

#include <gtest/gtest.h>

#include "analysis/srccheck/semantic.hpp"
#include "analysis/srccheck/srccheck.hpp"

namespace srccheck = fastsched::analysis::srccheck;
using fastsched::analysis::Diagnostic;

namespace {

srccheck::SrcCheckReport run_on(std::string_view text,
                                std::string path = "test.cpp") {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(std::move(path), text));
  return srccheck::src_check(files);
}

bool has_rule(const srccheck::SrcCheckReport& report, std::string_view rule,
              std::uint32_t line = 0) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule_id == rule && (line == 0 || d.line == line)) return true;
  }
  return false;
}

/// Flat id of the function named `name` (optionally with `max_arity`) in
/// `files`, or kNoFunction.
std::uint32_t flat_fn(const srccheck::SemanticModel& m,
                      const std::vector<srccheck::CheckedFile>& files,
                      std::string_view name,
                      std::uint32_t max_arity = srccheck::kVariadicArity) {
  for (std::size_t f = 0; f < files.size(); ++f) {
    const auto& fns = files[f].semantics.functions;
    for (std::size_t k = 0; k < fns.size(); ++k) {
      if (fns[k].name == name &&
          (max_arity == srccheck::kVariadicArity ||
           fns[k].max_arity == max_arity)) {
        return m.fn_base[f] + static_cast<std::uint32_t>(k);
      }
    }
  }
  return srccheck::kNoFunction;
}

// --- lexer regressions (raw strings, block comments in directives) --------

TEST(SourceLexer, PrefixedRawStringsAreBlankedNotRetokenized) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "const char* a = u8R\"(rand(); assert(1);)\";\n"
      "const wchar_t* b = LR\"x(std::random_device rd;)x\";\n"
      "const char* c = UR\"(time(nullptr))\";\n");
  for (const srccheck::Token& t : f.source.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
    EXPECT_NE(t.text, "random_device");
    EXPECT_NE(t.text, "time");
  }
  // And the identifier-looking prefixes must not survive as identifiers.
  for (const srccheck::Token& t : f.source.tokens) {
    EXPECT_NE(t.text, "u8R");
    EXPECT_NE(t.text, "LR");
    EXPECT_NE(t.text, "UR");
  }
}

TEST(SourceLexer, MultilineRawStringKeepsLineNumbers) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "const char* s = R\"(\nassert(1);\nclock();\n)\";\nint after = 1;\n");
  // Nothing from the payload leaks into the token stream...
  for (const srccheck::Token& t : f.source.tokens) {
    EXPECT_NE(t.text, "assert");
    EXPECT_NE(t.text, "clock");
  }
  // ...and the declaration after the literal sits on the right line.
  bool found = false;
  for (const srccheck::Token& t : f.source.tokens) {
    if (t.text == "after") {
      EXPECT_EQ(t.line, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(run_on("const char* s = R\"(\nassert(1);\nclock();\n)\";\n")
                  .clean());
}

TEST(SourceLexer, BlockCommentInsideDirectiveKeepsPreprocessorState) {
  // Comments are removed in translation phase 3, so a block comment
  // spanning lines does not end the directive: the `assert` stays a
  // preprocessor token (and must not fire bare-assert), while code after
  // the directive is ordinary again.
  const std::string_view text =
      "#define CHECK(x) /* explanation\n"
      "   spanning lines */ assert(x)\n"
      "int f() { return 1; }\n";
  const auto f = srccheck::check_file_from_text("t.cpp", text);
  bool saw_assert = false;
  bool saw_f = false;
  for (const srccheck::Token& t : f.source.tokens) {
    if (t.text == "assert") {
      EXPECT_TRUE(t.preprocessor);
      saw_assert = true;
    }
    if (t.text == "f") {
      EXPECT_FALSE(t.preprocessor);
      saw_f = true;
    }
  }
  EXPECT_TRUE(saw_assert);
  EXPECT_TRUE(saw_f);
  EXPECT_TRUE(run_on(text).clean());
}

// --- declaration parser ---------------------------------------------------

TEST(SemanticParser, FunctionDefsWithQualifiersBodiesAndParams) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "int add(int a, int b) { return a + b; }\n"
      "struct S { int x; };\n"
      "S::S(int v) : x(v) {}\n"
      "auto make() -> int { return 1; }\n"
      "int declared(int);\n");
  const auto& fns = f.semantics.functions;
  ASSERT_EQ(fns.size(), 3u);
  // Sorted by body start: add, S::S, make.
  EXPECT_EQ(fns[0].name, "add");
  EXPECT_EQ(fns[0].min_arity, 2u);
  EXPECT_EQ(fns[0].max_arity, 2u);
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[0], "a");
  EXPECT_EQ(fns[0].params[1], "b");
  EXPECT_EQ(fns[1].name, "S");
  EXPECT_EQ(fns[1].qualifier, "S");
  EXPECT_EQ(fns[2].name, "make");
  EXPECT_EQ(fns[2].max_arity, 0u);
}

TEST(SemanticParser, DeclarationsAndControlFlowAreNotDefs) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "int declared(int x);\n"
      "void g() {\n"
      "  if (declared(1)) { declared(2); }\n"
      "  while (declared(3)) {}\n"
      "  switch (declared(4)) { default: break; }\n"
      "}\n");
  ASSERT_EQ(f.semantics.functions.size(), 1u);
  EXPECT_EQ(f.semantics.functions[0].name, "g");
  // The four uses inside g are calls attributed to g. The file-scope
  // prototype also records as a call — a documented over-approximation;
  // its caller is kNoFunction, so nothing propagates through it.
  std::size_t inside_g = 0;
  std::size_t at_file_scope = 0;
  for (const srccheck::CallSite& c : f.semantics.calls) {
    EXPECT_NE(c.name, "if");
    EXPECT_NE(c.name, "while");
    EXPECT_NE(c.name, "switch");
    if (c.name == "declared") {
      EXPECT_EQ(c.arity, 1u);
      if (c.caller == srccheck::kNoFunction) {
        ++at_file_scope;
      } else {
        EXPECT_EQ(c.caller, 0u);
        ++inside_g;
      }
    }
  }
  EXPECT_EQ(inside_g, 4u);
  EXPECT_EQ(at_file_scope, 1u);
}

TEST(SemanticParser, LambdaCapturesParamsAndDefaults) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "void h() {\n"
      "  int a = 0;\n"
      "  int b = 0;\n"
      "  auto l1 = [&a, b](int p) { a += p + b; };\n"
      "  auto l2 = [&]() mutable { a = 1; };\n"
      "  auto l3 = [=] { return b; };\n"
      "}\n");
  const auto& lams = f.semantics.lambdas;
  ASSERT_EQ(lams.size(), 3u);
  ASSERT_EQ(lams[0].ref_captures.size(), 1u);
  EXPECT_EQ(lams[0].ref_captures[0], "a");
  ASSERT_EQ(lams[0].value_captures.size(), 1u);
  EXPECT_EQ(lams[0].value_captures[0], "b");
  ASSERT_EQ(lams[0].params.size(), 1u);
  EXPECT_EQ(lams[0].params[0], "p");
  EXPECT_FALSE(lams[0].ref_default);
  EXPECT_TRUE(lams[1].ref_default);
  EXPECT_TRUE(lams[2].value_default);
  for (const auto& lam : lams) EXPECT_EQ(lam.caller, 0u);
}

TEST(SemanticParser, QuotedIncludesAreHarvestedVerbatim) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "#include <vector>\n"
      "#include \"analysis/srccheck/semantic.hpp\"\n"
      "#  include   \"common/rng.hpp\"\n");
  ASSERT_EQ(f.semantics.includes.size(), 2u);
  EXPECT_EQ(f.semantics.includes[0], "analysis/srccheck/semantic.hpp");
  EXPECT_EQ(f.semantics.includes[1], "common/rng.hpp");
}

// --- call resolution ------------------------------------------------------

TEST(SemanticModel, OverloadsResolveByArity) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "t.cpp",
      "void sink(int x) {}\n"
      "void sink(int x, int y) {}\n"
      "void caller() {\n"
      "  // fastsched: hot\n"
      "  sink(1);\n"
      "  // fastsched: end-hot\n"
      "}\n"));
  const srccheck::SemanticModel m = srccheck::build_semantic_model(files);
  const std::uint32_t sink1 = flat_fn(m, files, "sink", 1);
  const std::uint32_t sink2 = flat_fn(m, files, "sink", 2);
  ASSERT_NE(sink1, srccheck::kNoFunction);
  ASSERT_NE(sink2, srccheck::kNoFunction);
  // The unary call on the hot line reaches only the unary overload.
  EXPECT_FALSE(m.hot_reason[sink1].empty());
  EXPECT_TRUE(m.hot_reason[sink2].empty());
}

TEST(SemanticModel, MutualRecursionTerminatesAndMarksBoth) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "t.cpp",
      "int even_step(int n);\n"
      "int odd_step(int n) { return n == 0 ? 0 : even_step(n - 1); }\n"
      "int even_step(int n) { return n == 0 ? 1 : odd_step(n - 1); }\n"
      "void probe() {\n"
      "  // fastsched: hot\n"
      "  odd_step(3);\n"
      "  // fastsched: end-hot\n"
      "}\n"));
  const srccheck::SemanticModel m = srccheck::build_semantic_model(files);
  const std::uint32_t odd = flat_fn(m, files, "odd_step");
  const std::uint32_t even = flat_fn(m, files, "even_step");
  ASSERT_NE(odd, srccheck::kNoFunction);
  ASSERT_NE(even, srccheck::kNoFunction);
  EXPECT_FALSE(m.hot_reason[odd].empty());
  EXPECT_FALSE(m.hot_reason[even].empty());
}

TEST(SemanticModel, FunctionPointerCallsDegradeToUnknownCallee) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "t.cpp",
      "int apply(int (*fp)(int), int x) {\n"
      "  return (*fp)(x) + fp(x);\n"
      "}\n"
      "void probe() {\n"
      "  // fastsched: hot\n"
      "  apply(nullptr, 1);\n"
      "  // fastsched: end-hot\n"
      "}\n"));
  const srccheck::SemanticModel m = srccheck::build_semantic_model(files);
  // The fp(x) call resolves to nothing: no def named fp exists, so the
  // callee list stays empty and nothing propagates through it.
  for (std::size_t c = 0; c < files[0].semantics.calls.size(); ++c) {
    if (files[0].semantics.calls[c].name == "fp") {
      EXPECT_TRUE(m.callees[c].empty());
    }
  }
  // And no false findings surface from the indirection.
  EXPECT_TRUE(run_on("int apply(int (*fp)(int), int x) {\n"
                     "  return (*fp)(x) + fp(x);\n"
                     "}\n")
                  .clean());
}

// --- transitive inference -------------------------------------------------

TEST(SemanticModel, HotPathReachesTwoCallsBelowTheRegion) {
  const srccheck::SrcCheckReport report = run_on(
      "#include <vector>\n"
      "void leaf_grow(std::vector<int>& out) { out.push_back(1); }\n"
      "void mid_step(std::vector<int>& out) { leaf_grow(out); }\n"
      "void probe(std::vector<int>& out) {\n"
      "  // fastsched: hot\n"
      "  mid_step(out);\n"
      "  // fastsched: end-hot\n"
      "}\n");
  ASSERT_TRUE(has_rule(report, "hot-alloc", 2));
  // The finding carries the provenance chain back to the region.
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule_id == "hot-alloc") {
      EXPECT_NE(d.message.find("inferred hot"), std::string::npos);
      EXPECT_NE(d.message.find("hot region"), std::string::npos);
    }
  }
}

TEST(SemanticModel, TaskReachabilityMarksCalleesNotTheSubmitter) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "t.cpp",
      "struct Pool { template <typename F> void submit(F f); };\n"
      "int helper(int x) { return x; }\n"
      "void fan_out(Pool& pool) {\n"
      "  pool.submit([] { helper(1); });\n"
      "}\n"));
  const srccheck::SemanticModel m = srccheck::build_semantic_model(files);
  const std::uint32_t helper = flat_fn(m, files, "helper");
  const std::uint32_t fan_out = flat_fn(m, files, "fan_out");
  ASSERT_NE(helper, srccheck::kNoFunction);
  ASSERT_NE(fan_out, srccheck::kNoFunction);
  EXPECT_FALSE(m.task_reason[helper].empty());
  // The function *containing* the submit runs on the caller's thread.
  EXPECT_TRUE(m.task_reason[fan_out].empty());
  ASSERT_EQ(m.task_lambdas.at(0).size(), 1u);
  EXPECT_EQ(m.task_lambdas[0][0].entry, "submit");
}

TEST(SemanticModel, UnorderedArgumentPropagatesToParameter) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "t.cpp",
      "#include <unordered_map>\n"
      "template <typename Map> int fold(const Map& table) { return 0; }\n"
      "int use() {\n"
      "  std::unordered_map<int, int> scores;\n"
      "  return fold(scores);\n"
      "}\n"));
  const srccheck::SemanticModel m = srccheck::build_semantic_model(files);
  const std::uint32_t fold = flat_fn(m, files, "fold");
  ASSERT_NE(fold, srccheck::kNoFunction);
  ASSERT_EQ(m.param_unordered[fold].size(), 1u);
  EXPECT_TRUE(m.param_unordered[fold][0]);
}

// --- the T rule family ----------------------------------------------------

TEST(RuleParRefMutation, FlagsSharedWriteAndAllowsSlotPattern) {
  const std::string_view racy =
      "struct Pool { template <typename F> void submit(F f); };\n"
      "void fan_out(Pool& pool, int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    pool.submit([&total, i] { total += i; });\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(has_rule(run_on(racy), "par-ref-mutation", 5));

  const std::string_view slot =
      "struct Pool { template <typename F> void submit(F f); };\n"
      "void fan_out(Pool& pool, int* results, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    pool.submit([results, i] { results[i] = i; });\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(run_on(slot).clean());

  // `x.member = ...` writes to x (task-local here), not to a capture
  // named `member`.
  const std::string_view member =
      "struct Pool { template <typename F> void submit(F f); };\n"
      "struct Input { int graph; };\n"
      "void fan_out(Pool& pool) {\n"
      "  pool.submit([] {\n"
      "    Input input;\n"
      "    input.graph = 1;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(run_on(member).clean());
}

TEST(RuleParUnorderedMerge, FlagsPropagatedParameterIteration) {
  const srccheck::SrcCheckReport report = run_on(
      "#include <unordered_map>\n"
      "struct Pool { template <typename F> void submit(F f); };\n"
      "template <typename Map> int fold(const Map& table) {\n"
      "  int sum = 0;\n"
      "  for (const auto& kv : table) { sum += kv.second; }\n"
      "  return sum;\n"
      "}\n"
      "void merge(Pool& pool, int* out) {\n"
      "  std::unordered_map<int, int> scores;\n"
      "  pool.submit([&scores, out] { out[0] = fold(scores); });\n"
      "}\n");
  EXPECT_TRUE(has_rule(report, "par-unordered-merge", 5));
  // D2 cannot see this: `table` is never declared unordered here.
  EXPECT_FALSE(has_rule(report, "det-unordered-iter"));
}

TEST(RuleParHotLock, FlagsLocksInHotCodeOnly) {
  const std::string_view hot =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "void probe(int n) {\n"
      "  // fastsched: hot\n"
      "  std::lock_guard<std::mutex> guard(mu);\n"
      "  // fastsched: end-hot\n"
      "}\n";
  EXPECT_TRUE(has_rule(run_on(hot), "par-hot-lock", 5));

  const std::string_view cold =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "void setup() { std::lock_guard<std::mutex> guard(mu); }\n";
  EXPECT_TRUE(run_on(cold).clean());
}

TEST(RuleParUnsplitRng, FlagsUnsplitAndAcceptsSplit) {
  const std::string_view unsplit =
      "struct Rng { explicit Rng(unsigned s); Rng split(int i) const; };\n"
      "struct Pool { template <typename F> void submit(F f); };\n"
      "void fan_out(Pool& pool) {\n"
      "  pool.submit([] { Rng local(42); });\n"
      "}\n";
  EXPECT_TRUE(has_rule(run_on(unsplit), "par-unsplit-rng", 4));

  const std::string_view split =
      "struct Rng { explicit Rng(unsigned s); Rng split(int i) const; };\n"
      "struct Pool { template <typename F> void submit(F f); };\n"
      "void fan_out(Pool& pool, const Rng& base) {\n"
      "  pool.submit([&base] { Rng derived = base.split(0); });\n"
      "}\n";
  EXPECT_TRUE(run_on(split).clean());
}

// --- self-hosted parallel evaluation --------------------------------------

TEST(SrcCheck, ParallelRuleEvaluationIsByteIdentical) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "a.cpp",
      "unsigned seed() { return static_cast<unsigned>(time(nullptr)); }\n"));
  files.push_back(srccheck::check_file_from_text(
      "b.cpp",
      "#include <vector>\n"
      "void leaf(std::vector<int>& out) { out.push_back(1); }\n"
      "void probe(std::vector<int>& out) {\n"
      "  // fastsched: hot\n"
      "  leaf(out);\n"
      "  // fastsched: end-hot\n"
      "}\n"));
  files.push_back(srccheck::check_file_from_text(
      "c.cpp", "void fine() { int x = 1; (void)x; }\n"));
  const auto& registry = srccheck::SrcRuleRegistry::builtin();
  const srccheck::SrcCheckReport serial =
      srccheck::src_check(files, registry, 1);
  const srccheck::SrcCheckReport parallel =
      srccheck::src_check(files, registry, 8);
  std::ostringstream a;
  std::ostringstream b;
  srccheck::write_json(a, serial);
  srccheck::write_json(b, parallel);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_GT(serial.num_errors, 0u);  // the comparison is not vacuous
}

}  // namespace
