// Unit tests for the fastsched_check engine (analysis/srccheck/): the
// lexer's stripping/line accounting, every built-in rule's true-positive,
// suppressed, and clean fixture, annotation parsing, baseline matching,
// and source collection. Fixture code lives in raw strings so the
// self-run over src/ never sees the deliberate violations.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/srccheck/baseline.hpp"
#include "analysis/srccheck/srccheck.hpp"

namespace srccheck = fastsched::analysis::srccheck;
using fastsched::analysis::Diagnostic;
using fastsched::analysis::Severity;

namespace {

srccheck::SrcCheckReport run_on(std::string_view text,
                                std::string path = "test.cpp") {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(std::move(path), text));
  return srccheck::src_check(files);
}

bool has_rule(const srccheck::SrcCheckReport& report, std::string_view rule,
              std::uint32_t line = 0) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule_id == rule && (line == 0 || d.line == line)) return true;
  }
  return false;
}

// --- lexer ----------------------------------------------------------------

TEST(SourceLexer, StripsCommentsAndKeepsThemOnTheSide) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp", "int a; // trailing note\n// own line\nint b;\n");
  for (const srccheck::Token& t : f.source.tokens) {
    EXPECT_NE(t.text, "trailing");
    EXPECT_NE(t.text, "own");
  }
  ASSERT_EQ(f.source.comments.size(), 2u);
  EXPECT_EQ(f.source.comments[0].text, "trailing note");
  EXPECT_EQ(f.source.comments[0].line, 1u);
  EXPECT_FALSE(f.source.comments[0].own_line);
  EXPECT_EQ(f.source.comments[1].text, "own line");
  EXPECT_TRUE(f.source.comments[1].own_line);
}

TEST(SourceLexer, StringContentsAreNeverTokenized) {
  // Rule trigger text inside string/char/raw-string literals must not
  // produce identifier tokens — otherwise every logging line would trip
  // the det rules.
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "const char* s = \"rand( assert( std::random_device\";\n"
      "const char* r = R\"x(time( rand()x\";\n"
      "char c = ':';\n");
  for (const srccheck::Token& t : f.source.tokens) {
    if (t.kind == srccheck::TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "assert");
      EXPECT_NE(t.text, "random_device");
      EXPECT_NE(t.text, "time");
    }
  }
  EXPECT_TRUE(run_on("void f() { const char* s = \"rand(1)\"; }\n").clean());
}

TEST(SourceLexer, LineNumbersSurviveBlockComments) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp", "int a;\n/* two\nline comment */\nint b;\n");
  ASSERT_GE(f.source.tokens.size(), 6u);
  EXPECT_EQ(f.source.tokens[0].line, 1u);  // int (a)
  EXPECT_EQ(f.source.tokens[3].line, 4u);  // int (b)
}

TEST(SourceLexer, PreprocessorTokensAreFlagged) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp", "#define TIME time(nullptr)\nint x = 1;\n");
  bool saw_pp_time = false;
  for (const srccheck::Token& t : f.source.tokens) {
    if (t.text == "time") {
      EXPECT_TRUE(t.preprocessor);
      saw_pp_time = true;
    }
    if (t.text == "x") EXPECT_FALSE(t.preprocessor);
  }
  EXPECT_TRUE(saw_pp_time);
  // Macro definitions are out of scope for the call-site rules.
  EXPECT_TRUE(run_on("#define TIME time(nullptr)\n").clean());
}

// --- annotations ----------------------------------------------------------

TEST(Annotations, SuppressionParsesRulesAndReason) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "// NOLINT-fastsched(rule-a, rule-b): the fold is order-free\n"
      "int x;\n");
  ASSERT_EQ(f.annotations.suppressions.size(), 1u);
  const srccheck::Suppression& s = f.annotations.suppressions[0];
  EXPECT_EQ(s.rules, (std::vector<std::string>{"rule-a", "rule-b"}));
  EXPECT_EQ(s.reason, "the fold is order-free");
  EXPECT_TRUE(s.next_line);
  EXPECT_NE(f.annotations.suppressing("rule-a", 2), nullptr);
  EXPECT_EQ(f.annotations.suppressing("rule-c", 2), nullptr);
}

TEST(Annotations, ProseMentioningMarkersIsNotAnAnnotation) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp",
      "// regions are marked // fastsched: hot in the docs\n"
      "// suppress with NOLINT-fastsched(rule) where justified\n"
      "int x;\n");
  EXPECT_TRUE(f.annotations.hot_regions.empty());
  EXPECT_TRUE(f.annotations.suppressions.empty());
  EXPECT_EQ(f.annotations.unbalanced_hot_line, 0u);
}

TEST(Annotations, HotRegionSpansMarkedLines) {
  const auto f = srccheck::check_file_from_text(
      "t.cpp", "int a;\n// fastsched: hot\nint b;\n// fastsched: end-hot\n");
  ASSERT_EQ(f.annotations.hot_regions.size(), 1u);
  EXPECT_FALSE(f.annotations.in_hot_region(1));
  EXPECT_TRUE(f.annotations.in_hot_region(3));
  EXPECT_EQ(f.annotations.unbalanced_hot_line, 0u);
}

// --- D1 det-random-source -------------------------------------------------

TEST(RuleRandomSource, FlagsEntropyClocksAndThreadIds) {
  EXPECT_TRUE(has_rule(run_on("std::random_device rd;\n"),
                       "det-random-source", 1));
  EXPECT_TRUE(has_rule(run_on("void f() { int r = rand(); }\n"),
                       "det-random-source", 1));
  EXPECT_TRUE(has_rule(run_on("void f() { auto t = time(nullptr); }\n"),
                       "det-random-source", 1));
  EXPECT_TRUE(has_rule(
      run_on("auto n = std::chrono::steady_clock::now();\n"),
      "det-random-source", 1));
  EXPECT_TRUE(has_rule(run_on("auto id = std::this_thread::get_id();\n"),
                       "det-random-source", 1));
}

TEST(RuleRandomSource, MemberCallsAndTimerHppAreExempt) {
  EXPECT_TRUE(run_on("void f(Clock c) { c.time(); }\n").clean());
  EXPECT_TRUE(run_on("auto n = std::chrono::steady_clock::now();\n",
                     "src/common/timer.hpp")
                  .clean());
}

TEST(RuleRandomSource, SuppressedWithReason) {
  const auto report = run_on(
      "// NOLINT-fastsched(det-random-source): seeding the golden fixture\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.num_suppressed, 1u);
}

// --- D2 det-unordered-iter ------------------------------------------------

TEST(RuleUnorderedIter, FlagsRangeForOverUnorderedContainer) {
  const auto report = run_on(
      "#include <unordered_set>\n"
      "void f(std::unordered_set<int> seen) {\n"
      "  for (const int k : seen) { use(k); }\n"
      "}\n");
  EXPECT_TRUE(has_rule(report, "det-unordered-iter", 3));
}

TEST(RuleUnorderedIter, InsertOnlyUseAndOrderedContainersAreClean) {
  EXPECT_TRUE(run_on("void f(std::unordered_set<int> seen) {\n"
                     "  seen.insert(3);\n"
                     "}\n")
                  .clean());
  EXPECT_TRUE(run_on("void f(std::set<int> seen) {\n"
                     "  for (const int k : seen) { use(k); }\n"
                     "}\n")
                  .clean());
}

TEST(RuleUnorderedIter, SuppressedWithReason) {
  const auto report = run_on(
      "void f(std::unordered_set<int> seen) {\n"
      "  // NOLINT-fastsched(det-unordered-iter): max fold, order-free\n"
      "  for (const int k : seen) { m = std::max(m, k); }\n"
      "}\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.num_suppressed, 1u);
}

// --- D3 det-float-merge ---------------------------------------------------

TEST(RuleFloatMerge, FlagsUnannotatedReductionInPoolUser) {
  const auto report = run_on(
      "#include \"common/thread_pool.hpp\"\n"
      "void f() {\n"
      "  double sum = 0.0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    sum += part[i];\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(has_rule(report, "det-float-merge", 5));
}

TEST(RuleFloatMerge, DetOkAnnotationAndPoolFreeFilesAreClean) {
  EXPECT_TRUE(run_on("#include \"common/thread_pool.hpp\"\n"
                     "void f() {\n"
                     "  double sum = 0.0;\n"
                     "  for (int i = 0; i < n; ++i) {\n"
                     "    // det-ok: fixed-order — submission-order merge\n"
                     "    sum += part[i];\n"
                     "  }\n"
                     "}\n")
                  .clean());
  EXPECT_TRUE(run_on("void f() {\n"
                     "  double sum = 0.0;\n"
                     "  for (int i = 0; i < n; ++i) { sum += part[i]; }\n"
                     "}\n")
                  .clean());
}

// --- H1 hot-alloc / H2 hot-region-balance ---------------------------------

TEST(RuleHotAlloc, FlagsAllocationInsideHotRegion) {
  const auto report = run_on(
      "void f() {\n"
      "  // fastsched: hot\n"
      "  auto* p = new int[8];\n"
      "  buf.push_back(1);\n"
      "  // fastsched: end-hot\n"
      "}\n");
  EXPECT_TRUE(has_rule(report, "hot-alloc", 3));  // new
  EXPECT_TRUE(has_rule(report, "hot-alloc", 4));  // unreserved push_back
}

TEST(RuleHotAlloc, ReservedContainersAndColdCodeAreClean) {
  EXPECT_TRUE(run_on("void f() {\n"
                     "  buf.reserve(64);\n"
                     "  // fastsched: hot\n"
                     "  buf.push_back(1);\n"
                     "  // fastsched: end-hot\n"
                     "}\n")
                  .clean());
  EXPECT_TRUE(run_on("void f() { auto* p = new int[8]; }\n").clean());
}

TEST(RuleHotAlloc, SuppressedWithReason) {
  const auto report = run_on(
      "void f() {\n"
      "  // fastsched: hot\n"
      "  // NOLINT-fastsched(hot-alloc): reserved by the caller\n"
      "  buf.push_back(1);\n"
      "  // fastsched: end-hot\n"
      "}\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.num_suppressed, 1u);
}

TEST(RuleHotBalance, FlagsDanglingMarker) {
  const auto report = run_on("void f() {\n  // fastsched: hot\n}\n");
  EXPECT_TRUE(has_rule(report, "hot-region-balance", 2));
  EXPECT_TRUE(run_on("// fastsched: hot\nint x;\n// fastsched: end-hot\n")
                  .clean());
}

// --- P1 probe-pairing -----------------------------------------------------

TEST(RuleProbePairing, FlagsUnresolvedProbe) {
  const auto report = run_on(
      "void search(Eval& ev) {\n"
      "  const Cost c = ev.evaluate_move(n, p);\n"
      "  if (c < best) best = c;\n"
      "}\n");
  EXPECT_TRUE(has_rule(report, "probe-pairing", 2));
}

TEST(RuleProbePairing, RevertCommitOrRescoreResolve) {
  EXPECT_TRUE(run_on("void search(Eval& ev) {\n"
                     "  const Cost c = ev.evaluate_move(n, p);\n"
                     "  if (c < best) { ev.commit(); } else { ev.revert(); }\n"
                     "}\n")
                  .clean());
  EXPECT_TRUE(run_on("void search(Eval& ev) {\n"
                     "  ev.evaluate_move(n, p);\n"
                     "  ev.rescore(assignment);\n"
                     "}\n")
                  .clean());
}

TEST(RuleProbePairing, LambdaAttributesToEnclosingFunction) {
  // The probe sits in a lambda, the revert outside it: one function-level
  // account, no finding.
  EXPECT_TRUE(run_on("void search(Eval& ev) {\n"
                     "  const auto probe = [&] { ev.evaluate_move(n, p); };\n"
                     "  probe();\n"
                     "  ev.revert();\n"
                     "}\n")
                  .clean());
}

// --- A1 bare-assert / A2 raw-runtime-error --------------------------------

TEST(RuleBareAssert, FlagsBareAssertOnly) {
  EXPECT_TRUE(has_rule(run_on("void f() { assert(x > 0); }\n"),
                       "bare-assert", 1));
  EXPECT_TRUE(run_on("void f() { FASTSCHED_ASSERT(x > 0); }\n").clean());
}

TEST(RuleRawRuntimeError, FlagsRawThrow) {
  EXPECT_TRUE(has_rule(run_on("void f() { throw std::runtime_error(\"x\"); }\n"),
                       "raw-runtime-error", 1));
  EXPECT_TRUE(run_on("void f() { throw fastsched::Error(\"x\"); }\n").clean());
}

// --- S1 suppression-needs-reason ------------------------------------------

TEST(RuleSuppressionReason, FlagsReasonlessWaiver) {
  const auto report = run_on(
      "// NOLINT-fastsched(det-random-source)\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(report, "suppression-needs-reason", 1));
  // The reasonless waiver still suppresses — the gate is the S1 finding.
  EXPECT_FALSE(has_rule(report, "det-random-source"));
}

// --- report ---------------------------------------------------------------

TEST(Report, DiagnosticsAreSortedAndCounted) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(srccheck::check_file_from_text(
      "b.cpp", "void f() { assert(x); }\nstd::random_device rd;\n"));
  files.push_back(srccheck::check_file_from_text(
      "a.cpp", "void g() { throw std::runtime_error(\"x\"); }\n"));
  const auto report = srccheck::src_check(files);
  ASSERT_EQ(report.diagnostics.size(), 3u);
  EXPECT_EQ(report.diagnostics[0].file, "a.cpp");
  EXPECT_EQ(report.diagnostics[1].file, "b.cpp");
  EXPECT_LT(report.diagnostics[1].line, report.diagnostics[2].line);
  EXPECT_EQ(report.num_errors, 2u);    // bare-assert, det-random-source
  EXPECT_EQ(report.num_warnings, 1u);  // raw-runtime-error
  EXPECT_FALSE(report.ok());
}

TEST(Report, JsonIsByteStableAcrossRuns) {
  const auto once = run_on("std::random_device rd;\n");
  const auto twice = run_on("std::random_device rd;\n");
  std::ostringstream a;
  std::ostringstream b;
  srccheck::write_json(a, once);
  srccheck::write_json(b, twice);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"tool\": \"fastsched_check\""), std::string::npos);
  EXPECT_NE(a.str().find("\"rule\": \"det-random-source\""),
            std::string::npos);
}

// --- baseline -------------------------------------------------------------

TEST(Baseline, RoundTripsThroughJson) {
  srccheck::Baseline baseline;
  baseline.entries.push_back({"bare-assert", "b.cpp", "assert(x);"});
  baseline.entries.push_back(
      {"det-random-source", "a.cpp", "std::random_device rd;"});
  std::ostringstream os;
  srccheck::write_baseline(os, baseline);
  std::istringstream is(os.str());
  const srccheck::Baseline back = srccheck::read_baseline(is);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].file, "a.cpp");  // sorted on write
  EXPECT_EQ(back.entries[0].rule, "det-random-source");
  EXPECT_EQ(back.entries[1].context, "assert(x);");
}

TEST(Baseline, AcceptedFindingsDoNotGateAndStaleOnesAreCounted) {
  std::vector<srccheck::CheckedFile> files;
  files.push_back(
      srccheck::check_file_from_text("a.cpp", "std::random_device rd;\n"));
  auto report = srccheck::src_check(files);
  ASSERT_EQ(report.num_errors, 1u);

  srccheck::Baseline baseline = srccheck::baseline_from_report(report, files);
  baseline.entries.push_back({"bare-assert", "gone.cpp", "assert(y);"});
  srccheck::apply_baseline(report, baseline, files);
  EXPECT_EQ(report.num_baselined, 1u);
  EXPECT_EQ(report.num_errors, 0u);
  EXPECT_EQ(report.num_stale_baseline, 1u);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Baseline, ContextIsLineAnchoredNotLineNumbered) {
  // The same offending source line moved two lines down still matches its
  // baseline entry: the fingerprint is (rule, file, line text).
  std::vector<srccheck::CheckedFile> before;
  before.push_back(
      srccheck::check_file_from_text("a.cpp", "std::random_device rd;\n"));
  auto first = srccheck::src_check(before);
  const srccheck::Baseline baseline =
      srccheck::baseline_from_report(first, before);

  std::vector<srccheck::CheckedFile> after;
  after.push_back(srccheck::check_file_from_text(
      "a.cpp", "int pad;\nint more;\nstd::random_device rd;\n"));
  auto second = srccheck::src_check(after);
  srccheck::apply_baseline(second, baseline, after);
  EXPECT_EQ(second.num_baselined, 1u);
  EXPECT_EQ(second.num_stale_baseline, 0u);
  EXPECT_TRUE(second.ok());
}

// --- collect_sources ------------------------------------------------------

TEST(CollectSources, SkipsBuildTreesAndHiddenDirs) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "fastsched_srccheck_collect";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "build_info");
  fs::create_directories(root / "build");
  fs::create_directories(root / "src" / ".cache");
  const auto touch = [](const fs::path& p) {
    std::ofstream(p) << "int x;\n";
  };
  touch(root / "src" / "a.cpp");
  touch(root / "src" / "z.hpp");
  touch(root / "src" / "notes.md");
  touch(root / "build" / "gen.cpp");
  touch(root / "src" / "build_info" / "skipped.cpp");
  touch(root / "src" / ".cache" / "skipped.cpp");

  const auto found = srccheck::collect_sources(root.string(), {"src"});
  EXPECT_EQ(found,
            (std::vector<std::string>{"src/a.cpp", "src/z.hpp"}));
  fs::remove_all(root);
}

}  // namespace
