// Tests for the DAG-lint engine (analysis/dag_lint.hpp): the lenient
// raw parser, every built-in rule on a graph seeded with exactly that
// defect, the structural-gates-semantic staging, and the shape summary.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/dag_lint.hpp"
#include "common/error.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::analysis {
namespace {

bool has_rule(const DagLintReport& report, const std::string& rule_id) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule_id; });
}

const Diagnostic* find_rule(const DagLintReport& report,
                            const std::string& rule_id) {
  const auto it =
      std::find_if(report.diagnostics.begin(), report.diagnostics.end(),
                   [&](const Diagnostic& d) { return d.rule_id == rule_id; });
  return it == report.diagnostics.end() ? nullptr : &*it;
}

TEST(DagLint, CleanGraphReportsNothing) {
  const RawDag dag = to_raw(fastsched::testing::diamond());
  const DagLintReport report = dag_lint(dag);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.summary.acyclic);
  EXPECT_EQ(report.summary.components, 1u);
}

TEST(DagLint, RawParserKeepsMalformedEdges) {
  const RawDag dag = raw_from_text(
      "node 0 1\n"
      "node 1 2 named\n"
      "edge 0 1 3\n"
      "edge 1 0 1\n"   // back edge: a cycle the strict loader would reject
      "edge 0 7 2\n"); // out-of-range endpoint
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.num_edges(), 3u);
  EXPECT_EQ(dag.name(1), "named");
  EXPECT_EQ(dag.name(0), "node0");
  EXPECT_THROW((void)raw_from_text("node 5 1\n"), Error);  // non-dense ids
}

TEST(DagLint, CycleReportsWitnessPath) {
  const RawDag dag = raw_from_text(
      "node 0 1\nnode 1 1\nnode 2 1\n"
      "edge 0 1 1\nedge 1 2 1\nedge 2 0 1\n");
  const DagLintReport report = dag_lint(dag);
  EXPECT_FALSE(report.summary.acyclic);
  const Diagnostic* d = find_rule(report, "cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The witness names the loop with explicit edge arrows and mentions how
  // many nodes can never be scheduled.
  EXPECT_NE(d->message.find("->"), std::string::npos);
  EXPECT_NE(d->message.find("3 nodes"), std::string::npos);
}

TEST(DagLint, StructuralErrorsSuppressSemanticRules) {
  // The cyclic graph also has a duplicate edge; the semantic stage must
  // not run on a graph whose structure is already broken.
  const RawDag dag = raw_from_text(
      "node 0 1\nnode 1 1\n"
      "edge 0 1 1\nedge 0 1 1\nedge 1 0 1\n");
  const DagLintReport report = dag_lint(dag);
  EXPECT_TRUE(has_rule(report, "cycle"));
  EXPECT_FALSE(has_rule(report, "duplicate-edge"));
}

TEST(DagLint, SelfLoopAndEndpointAreStructural) {
  RawDag dag;
  dag.weights = {1.0, 1.0};
  dag.edges.push_back({0, 0, 1.0});  // self-loop
  dag.edges.push_back({1, 9, 1.0});  // out of range
  const DagLintReport report = dag_lint(dag);
  EXPECT_TRUE(has_rule(report, "self-loop"));
  EXPECT_TRUE(has_rule(report, "edge-endpoint"));
  EXPECT_GE(report.num_errors, 2u);
}

TEST(DagLint, DuplicateEdgeIsReported) {
  const RawDag dag = raw_from_text(
      "node 0 1\nnode 1 1\n"
      "edge 0 1 2\nedge 0 1 2\n");
  const DagLintReport report = dag_lint(dag);
  const Diagnostic* d = find_rule(report, "duplicate-edge");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DagLint, TransitiveEdgeNamesTheViaNode) {
  // a -> b -> c plus the redundant shortcut a -> c.
  const RawDag dag = raw_from_text(
      "node 0 1 a\nnode 1 1 b\nnode 2 1 c\n"
      "edge 0 1 1\nedge 1 2 1\nedge 0 2 1\n");
  const DagLintReport report = dag_lint(dag);
  const Diagnostic* d = find_rule(report, "transitive-edge");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find('b'), std::string::npos);  // the via node
}

TEST(DagLint, WeightAnomaliesAreReported) {
  const RawDag dag = raw_from_text(
      "node 0 0\n"        // zero weight
      "node 1 -3\n"       // negative weight
      "node 2 1\n"
      "edge 0 2 1\nedge 1 2 1\n");
  const DagLintReport report = dag_lint(dag);
  EXPECT_TRUE(has_rule(report, "bad-cost"));     // the negative weight
  EXPECT_TRUE(has_rule(report, "zero-weight"));  // the zero weight
  const Diagnostic* bad = find_rule(report, "bad-cost");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->severity, Severity::kError);
}

TEST(DagLint, IsolatedAndDisconnectedAreWarnings) {
  // Two genuine edge-bearing components plus one isolated node. The
  // isolated node is its own rule and does NOT count towards the
  // disconnected rule (which only looks at edge-bearing components), but
  // the summary counts all three.
  const RawDag dag = raw_from_text(
      "node 0 1\nnode 1 1\nnode 2 1\nnode 3 1\nnode 4 1\n"
      "edge 0 1 1\nedge 2 3 1\n");
  const DagLintReport report = dag_lint(dag);
  EXPECT_TRUE(has_rule(report, "isolated-node"));
  EXPECT_TRUE(has_rule(report, "disconnected"));
  EXPECT_EQ(report.num_errors, 0u);
  EXPECT_EQ(report.summary.components, 3u);

  // An isolated node alone does not trip the disconnected rule.
  const DagLintReport isolated_only = dag_lint(raw_from_text(
      "node 0 1\nnode 1 1\nnode 2 1\nedge 0 1 1\n"));
  EXPECT_TRUE(has_rule(isolated_only, "isolated-node"));
  EXPECT_FALSE(has_rule(isolated_only, "disconnected"));
}

TEST(DagLint, CostOutlierNeedsEnoughSamples) {
  // Nine unit-cost edges plus one 1000x outlier: flagged. With only a
  // handful of samples the rule stays silent (the median is meaningless).
  std::string text;
  for (int i = 0; i < 11; ++i) {
    text += "node " + std::to_string(i) + " 1\n";
  }
  for (int i = 1; i < 10; ++i) {
    text += "edge 0 " + std::to_string(i) + " 1\n";
  }
  text += "edge 0 10 1000\n";
  const DagLintReport flagged = dag_lint(raw_from_text(text));
  EXPECT_TRUE(has_rule(flagged, "cost-outlier"));

  const DagLintReport silent = dag_lint(raw_from_text(
      "node 0 1\nnode 1 1\nedge 0 1 1000\n"));
  EXPECT_FALSE(has_rule(silent, "cost-outlier"));
}

TEST(DagLint, SummaryCountsShape) {
  // Two sources joining into one sink, CCR = avg comm / avg comp.
  const RawDag dag = raw_from_text(
      "node 0 2\nnode 1 2\nnode 2 2\n"
      "edge 0 2 4\nedge 1 2 4\n");
  const DagSummary s = summarize(dag);
  EXPECT_EQ(s.num_nodes, 3u);
  EXPECT_EQ(s.num_edges, 2u);
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0], 0u);
  EXPECT_EQ(s.sources[1], 1u);
  ASSERT_EQ(s.sinks.size(), 1u);
  EXPECT_EQ(s.sinks[0], 2u);
  EXPECT_EQ(s.components, 1u);
  EXPECT_TRUE(s.acyclic);
  EXPECT_DOUBLE_EQ(s.total_work, 6.0);
  EXPECT_DOUBLE_EQ(s.total_comm, 8.0);
  EXPECT_DOUBLE_EQ(s.ccr, 2.0);
}

TEST(DagLint, ToRawRoundTripsBuiltGraphs) {
  const graph::TaskGraph g = fastsched::testing::small_random(7, 40);
  const RawDag dag = to_raw(g);
  EXPECT_EQ(dag.num_nodes(), g.num_nodes());
  EXPECT_EQ(dag.num_edges(), g.num_edges());
  const DagLintReport report = dag_lint(dag);
  EXPECT_EQ(report.num_errors, 0u)
      << "a validated TaskGraph must never lint with errors";
  const DagSummary s = report.summary;
  EXPECT_DOUBLE_EQ(s.total_work, g.total_work());
  EXPECT_DOUBLE_EQ(s.total_comm, g.total_comm());
  EXPECT_DOUBLE_EQ(s.ccr, g.ccr());
}

TEST(DagLint, BuiltinRegistryHasUniqueIds) {
  const DagRuleRegistry& registry = DagRuleRegistry::builtin();
  EXPECT_GE(registry.rules().size(), 10u);
  for (const DagRule& rule : registry.rules()) {
    EXPECT_EQ(registry.find(rule.id), &rule);
  }
}

}  // namespace
}  // namespace fastsched::analysis
