#include "baselines/md.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Md, ChainIsPackedOnOneProcessor) {
  const TaskGraph g = testing::chain(5, 2.0, 3.0);
  const Schedule s = MdScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(s.length(), 10.0);
}

TEST(Md, UsesFewProcessorsViaFirstFit) {
  // MD's hallmark (paper Figure 5(b)): it packs into gaps on low-index
  // processors, using far fewer processors than list schedulers.
  const TaskGraph g = testing::small_random(410, 60, 1.0, 4.0);
  const Schedule s = MdScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_LT(s.procs_used(), 20u);
}

TEST(Md, FillsIdleGapsByInsertion) {
  // root -> heavy + light, then light2 depends on light. With insertion,
  // light tasks fit into P0's idle time rather than new processors.
  const TaskGraph g = testing::diamond(6.0, 1.0, 0.0);
  const Schedule s = MdScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  // CP = a, b(6), d; node c (1) fits inside b's window on another proc or
  // in a gap; either way the length is the CP: 8.
  EXPECT_EQ(s.length(), 8.0);
}

TEST(Md, HandlesZeroWeightNodes) {
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(0.0);
  const auto b = builder.add_node(2.0);
  builder.add_edge(a, b, 1.0);
  const TaskGraph g = builder.build();
  const Schedule s = MdScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
}

TEST(Md, ValidOnDisconnectedGraphs) {
  const TaskGraph g = testing::two_chains(4);
  const Schedule s = MdScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
}

TEST(Md, NameAndUnboundedness) {
  MdScheduler s;
  EXPECT_EQ(s.name(), "MD");
  EXPECT_TRUE(s.unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
