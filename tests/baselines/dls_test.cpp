#include "baselines/dls.hpp"

#include <gtest/gtest.h>

#include "graph/levels.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Dls, PrefersHighStaticLevelNodes) {
  // Two independent chains, single processor: DL = SL - EST, so the head
  // of the longer chain (higher SL) is scheduled first.
  graph::TaskGraphBuilder builder;
  const auto short_head = builder.add_node(1);
  const auto long_head = builder.add_node(1);
  const auto long_tail = builder.add_node(10);
  builder.add_edge(long_head, long_tail, 0.0);
  const TaskGraph g = builder.build();
  sched::SchedulerOptions opts;
  opts.num_procs = 1;
  const Schedule s = DlsScheduler{}.run(g, opts);
  EXPECT_LT(s.start(long_head), s.start(short_head));
}

TEST(Dls, ParallelizesFreeCommDiamond) {
  const TaskGraph g = testing::diamond(2.0, 3.0, 0.0);
  const Schedule s = DlsScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
}

TEST(Dls, KeepsExpensiveCommLocal) {
  const TaskGraph g = testing::chain(5, 1.0, 100.0);
  const Schedule s = DlsScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(Dls, MatchesEtfOnSimpleGraphs) {
  // On graphs where priorities agree, DLS and ETF coincide (the paper's
  // Figure 2 shows them producing the same schedule on the example DAG).
  const TaskGraph g = testing::fork_join(3, 2.0, 1.0);
  const Schedule dls = DlsScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, dls));
}

TEST(Dls, NameAndBoundedness) {
  DlsScheduler s;
  EXPECT_EQ(s.name(), "DLS");
  EXPECT_FALSE(s.unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
