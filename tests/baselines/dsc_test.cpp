#include "baselines/dsc.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Dsc, ZeroesChainEdges) {
  // A chain is one dominant sequence; DSC merges it into one cluster and
  // the length is the pure computation time.
  const TaskGraph g = testing::chain(6, 2.0, 10.0);
  const Schedule s = DscScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(s.length(), 12.0);
}

TEST(Dsc, LeavesParallelWorkInSeparateClusters) {
  // Independent nodes never merge (merging would delay them).
  graph::TaskGraphBuilder builder;
  builder.add_node(5);
  builder.add_node(5);
  builder.add_node(5);
  const TaskGraph g = builder.build();
  const Schedule s = DscScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
  EXPECT_EQ(s.procs_used(), 3u);
}

TEST(Dsc, ForkJoinMergesOnlyProfitableEdges) {
  // fork-join with comm 10, weights 1: serial (4) beats spreading; DSC
  // should zero the heavy edges along one path and reach length <= serial.
  const TaskGraph g = testing::fork_join(2, 1.0, 10.0);
  const Schedule s = DscScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_LE(s.length(), 4.0 + 1e-9);
}

TEST(Dsc, TendsToManyClustersOnWideGraphs) {
  // The paper's Figure 5(b)/8(b): DSC uses O(v) processors.
  const TaskGraph g = testing::small_random(420, 100, 0.5, 4.0);
  const Schedule s = DscScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_GT(s.procs_used(), 10u);
}

TEST(Dsc, NeverBeatsComputationCriticalPath) {
  for (std::uint64_t seed = 430; seed < 440; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const Schedule s = DscScheduler{}.run(g, SchedulerOptions{});
    EXPECT_TRUE(sched::is_valid(g, s)) << "seed " << seed;
  }
}

TEST(Dsc, NameAndUnboundedness) {
  DscScheduler s;
  EXPECT_EQ(s.name(), "DSC");
  EXPECT_TRUE(s.unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
