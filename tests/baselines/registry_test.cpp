#include "baselines/registry.hpp"

#include <gtest/gtest.h>

namespace fastsched::baselines {
namespace {

TEST(Registry, MakesEveryRegisteredScheduler) {
  for (const auto& name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), name);
  }
}

TEST(Registry, ThrowsOnUnknownName) {
  EXPECT_THROW((void)make_scheduler("HEFT"), Error);
  EXPECT_THROW((void)make_scheduler(""), Error);
  EXPECT_THROW((void)make_scheduler("fast"), Error);  // case-sensitive
}

TEST(Registry, AllSchedulersMatchesNames) {
  const auto names = scheduler_names();
  const auto schedulers = all_schedulers();
  ASSERT_EQ(schedulers.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(schedulers[i]->name(), names[i]);
  }
}

TEST(Registry, PaperSetExcludesPfast) {
  const auto schedulers = paper_schedulers();
  ASSERT_EQ(schedulers.size(), 5u);
  for (const auto& s : schedulers) EXPECT_NE(s->name(), "PFAST");
}

TEST(Registry, UnboundedFlagsMatchPaper) {
  EXPECT_TRUE(make_scheduler("MD")->unbounded_processors());
  EXPECT_TRUE(make_scheduler("DSC")->unbounded_processors());
  EXPECT_FALSE(make_scheduler("FAST")->unbounded_processors());
  EXPECT_FALSE(make_scheduler("ETF")->unbounded_processors());
  EXPECT_FALSE(make_scheduler("DLS")->unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
