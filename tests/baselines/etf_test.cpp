#include "baselines/etf.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Etf, SchedulesIndependentNodesInParallel) {
  graph::TaskGraphBuilder builder;
  builder.add_node(5);
  builder.add_node(5);
  builder.add_node(5);
  const TaskGraph g = builder.build();
  const Schedule s = EtfScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
  EXPECT_EQ(s.procs_used(), 3u);
}

TEST(Etf, KeepsChainLocalWhenCommIsExpensive) {
  const TaskGraph g = testing::chain(4, 1.0, 50.0);
  const Schedule s = EtfScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 4.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(Etf, GreedyEarliestStartTimes) {
  // ETF picks, among ready nodes, the globally earliest-startable one: on
  // the diamond, both branches become ready at once and run in parallel
  // when comm is free.
  const TaskGraph g = testing::diamond(2.0, 3.0, 0.0);
  const Schedule s = EtfScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);  // 1 + max(2,3) + 1
  EXPECT_NE(s.proc(1), s.proc(2));
}

TEST(Etf, StaticLevelBreaksEstTies) {
  // Two entry tasks, one processor: both have EST 0; the one with the
  // higher static level (the heavier chain head) must go first.
  graph::TaskGraphBuilder builder;
  const auto light = builder.add_node(1);
  const auto heavy_head = builder.add_node(1);
  const auto heavy_tail = builder.add_node(10);
  builder.add_edge(heavy_head, heavy_tail, 0.0);
  const TaskGraph g = builder.build();
  sched::SchedulerOptions opts;
  opts.num_procs = 1;
  const Schedule s = EtfScheduler{}.run(g, opts);
  EXPECT_LT(s.start(heavy_head), s.start(light));
  (void)light;
}

TEST(Etf, RespectsSingleProcessor) {
  const TaskGraph g = testing::small_random(401);
  sched::SchedulerOptions opts;
  opts.num_procs = 1;
  const Schedule s = EtfScheduler{}.run(g, opts);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_NEAR(s.length(), g.total_work(), 1e-9);
}

TEST(Etf, NameAndBoundedness) {
  EtfScheduler s;
  EXPECT_EQ(s.name(), "ETF");
  EXPECT_FALSE(s.unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
