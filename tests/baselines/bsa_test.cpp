#include "baselines/bsa.hpp"

#include <gtest/gtest.h>

#include "fast/fast.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Bsa, ChainStaysOnPivot) {
  const TaskGraph g = testing::chain(5, 2.0, 6.0);
  const Schedule s = BsaScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(s.length(), 10.0);
  // Everything remained on the pivot processor 0.
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(s.proc(n), 0u);
  }
}

TEST(Bsa, BubblesParallelWorkOffThePivot) {
  // Free communication: the serialized injection must spread.
  const TaskGraph g = testing::fork_join(4, 3.0, 0.0);
  const Schedule s = BsaScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_GT(s.procs_used(), 1u);
  EXPECT_LT(s.length(), g.total_work());  // strictly better than serial
}

TEST(Bsa, NeverWorseThanSerial) {
  for (std::uint64_t seed = 1300; seed < 1308; ++seed) {
    const TaskGraph g = testing::small_random(seed, 50, 2.0, 4.0);
    const Schedule s = BsaScheduler{}.run(g, SchedulerOptions{});
    EXPECT_TRUE(sched::is_valid(g, s)) << seed;
    EXPECT_LE(s.length(), g.total_work() + 1e-9) << seed;
  }
}

TEST(Bsa, MigratesOnlyToAdjacentMeshProcessors) {
  // On a 1xN mesh, a single bubbling sweep from the pivot can only reach
  // processors whose index is small; with a 1x2 mesh at most procs {0,1}.
  sim::MeshConfig mesh;
  mesh.width = 2;
  mesh.height = 1;
  BsaScheduler scheduler(mesh);
  const TaskGraph g = testing::fork_join(6, 2.0, 0.0);
  const Schedule s = scheduler.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LT(s.proc(n), 2u);
  }
}

TEST(Bsa, RespectsExplicitBudgetBelowMeshSize) {
  const TaskGraph g = testing::small_random(1310);
  SchedulerOptions opts;
  opts.num_procs = 3;
  const Schedule s = BsaScheduler{}.run(g, opts);
  EXPECT_TRUE(sched::is_valid(g, s));
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LT(s.proc(n), 3u);
  }
}

TEST(Bsa, CompetitiveWithFastOnModerateGraphs) {
  // BSA spends far more work per decision than FAST; it should land in
  // the same quality neighbourhood (within 25% either way).
  const TaskGraph g = testing::small_random(1311, 100, 1.0, 4.0);
  const Schedule bsa = BsaScheduler{}.run(g, SchedulerOptions{});
  fast::FastOptions fo;
  fo.num_procs = 64;
  const auto fast_result = fast::run_fast(g, fo);
  EXPECT_LE(bsa.length(), 1.25 * fast_result.final_length);
}

}  // namespace
}  // namespace fastsched::baselines
