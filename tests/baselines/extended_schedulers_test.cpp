// Targeted tests for the extended comparison set (HLFET, MCP, LC, EZ) —
// algorithms from the paper's research context beyond its own four
// baselines.

#include <gtest/gtest.h>

#include "baselines/clustering_common.hpp"
#include "baselines/ez.hpp"
#include "baselines/hlfet.hpp"
#include "baselines/lc.hpp"
#include "baselines/mcp.hpp"
#include "sched/metrics.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

// ------------------------------------------------------------------ HLFET

TEST(Hlfet, PicksHighestStaticLevelFirst) {
  // Two independent chains on one processor: the longer chain's head has
  // the higher static level and must run first.
  graph::TaskGraphBuilder builder;
  const auto short_head = builder.add_node(1);
  const auto long_head = builder.add_node(1);
  const auto long_tail = builder.add_node(10);
  builder.add_edge(long_head, long_tail, 0.0);
  const TaskGraph g = builder.build();
  SchedulerOptions opts;
  opts.num_procs = 1;
  const Schedule s = HlfetScheduler{}.run(g, opts);
  EXPECT_LT(s.start(long_head), s.start(short_head));
}

TEST(Hlfet, StaticPriorityIgnoresCommUnlikeEtf) {
  // HLFET commits to SL order even when another ready node could start
  // earlier; the schedule is still valid and uses earliest-start placement
  // per node.
  const TaskGraph g = testing::small_random(901);
  const Schedule s = HlfetScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
}

TEST(Hlfet, ParallelizesFreeCommDiamond) {
  const TaskGraph g = testing::diamond(2.0, 3.0, 0.0);
  const Schedule s = HlfetScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
}

// -------------------------------------------------------------------- MCP

TEST(Mcp, ChainStaysLocal) {
  const TaskGraph g = testing::chain(5, 2.0, 7.0);
  const Schedule s = McpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 10.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(Mcp, InsertsIntoIdleGaps) {
  // diamond with a heavy branch: the light branch fits beside it; the
  // overall length equals the critical path with free communication.
  const TaskGraph g = testing::diamond(6.0, 1.0, 0.0);
  const Schedule s = McpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(s.length(), 8.0);
}

TEST(Mcp, AlapOrderSchedulesUrgentNodesFirst) {
  // On the diamond, the heavy branch (smaller ALAP) must be placed before
  // the light one.
  const TaskGraph g = testing::diamond(6.0, 1.0, 1.0);
  const Schedule s = McpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_LE(s.start(1), s.start(2));
}

TEST(Mcp, RespectsProcessorBudget) {
  const TaskGraph g = testing::small_random(902);
  SchedulerOptions opts;
  opts.num_procs = 2;
  const Schedule s = McpScheduler{}.run(g, opts);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_LE(s.procs_used(), 2u);
}

// --------------------------------------------------------------------- LC

TEST(Lc, ChainIsOneCluster) {
  const TaskGraph g = testing::chain(6, 2.0, 5.0);
  const Schedule s = LcScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(s.length(), 12.0);
}

TEST(Lc, EachLinearClusterIsAPath) {
  // Clusters produced by LC are linear: within a cluster, tasks must be
  // totally ordered by precedence (no two independent tasks share one).
  const TaskGraph g = testing::small_random(903, 50, 2.0, 4.0);
  const Schedule s = LcScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  // Validity plus zero idle-overlap already implies sequential clusters;
  // here we only sanity-check the cluster count is between 1 and v.
  EXPECT_GE(s.procs_used(), 1u);
  EXPECT_LE(s.procs_used(), g.num_nodes());
}

TEST(Lc, ForkJoinSeparatesBranches) {
  const TaskGraph g = testing::fork_join(3, 2.0, 1.0);
  const Schedule s = LcScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  // First cluster takes the whole CP (root, one middle, sink); the other
  // two middles form their own clusters.
  EXPECT_EQ(s.procs_used(), 3u);
}

// --------------------------------------------------------------------- EZ

TEST(Ez, ZeroesExpensiveEdgesFirst) {
  // chain with one huge edge: EZ must merge across it.
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(1);
  const auto b = builder.add_node(1);
  const auto c = builder.add_node(1);
  builder.add_edge(a, b, 100.0);
  builder.add_edge(b, c, 0.5);
  const TaskGraph g = builder.build();
  const Schedule s = EzScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.proc(a), s.proc(b));
  EXPECT_LE(s.length(), 3.5 + 1e-9);
}

TEST(Ez, KeepsParallelWorkSeparate) {
  graph::TaskGraphBuilder builder;
  builder.add_node(5);
  builder.add_node(5);
  const TaskGraph g = builder.build();
  const Schedule s = EzScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 5.0);
  EXPECT_EQ(s.procs_used(), 2u);
}

TEST(Ez, NeverWorseThanNoClustering) {
  // EZ only accepts merges that do not increase the replayed makespan, so
  // its result can never exceed the fully-spread replay.
  for (std::uint64_t seed = 910; seed < 915; ++seed) {
    const TaskGraph g = testing::small_random(seed, 40, 3.0, 3.0);
    const Schedule s = EzScheduler{}.run(g, SchedulerOptions{});
    EXPECT_TRUE(sched::is_valid(g, s)) << seed;
    // Fully-spread baseline: every node its own cluster.
    const auto bl = graph::compute_b_levels(g);
    std::vector<std::uint32_t> singleton(g.num_nodes());
    for (std::uint32_t i = 0; i < g.num_nodes(); ++i) singleton[i] = i;
    const auto spread = detail::replay_clusters(g, singleton, g.num_nodes(), bl);
    EXPECT_LE(s.length(), spread.makespan + 1e-9) << seed;
  }
}

}  // namespace
}  // namespace fastsched::baselines
