#include "baselines/dcp.hpp"

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "sched/metrics.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/gaussian.hpp"

namespace fastsched::baselines {
namespace {

using graph::TaskGraph;
using sched::Schedule;
using sched::SchedulerOptions;

TEST(Dcp, ChainStaysLocal) {
  const TaskGraph g = testing::chain(5, 2.0, 7.0);
  const Schedule s = DcpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.length(), 10.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(Dcp, LookAheadKeepsCriticalChildClose) {
  // a -> b (huge message) -> c: the look-ahead puts b with a, and then c
  // with b, collapsing all communication.
  const TaskGraph g = testing::chain(3, 2.0, 50.0);
  const Schedule s = DcpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_EQ(s.procs_used(), 1u);
  EXPECT_EQ(s.length(), 6.0);
}

TEST(Dcp, ParallelizesFreeCommDiamond) {
  const TaskGraph g = testing::diamond(2.0, 3.0, 0.0);
  const Schedule s = DcpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(s.length(), 5.0);
}

TEST(Dcp, HighQualityOnTheWorkloads) {
  // DCP is the quality benchmark of its era: on the Gaussian kernel it
  // should be no more than a few percent behind the best of our set.
  const TaskGraph g = workloads::gaussian_elimination_dag(8);
  const Schedule dcp = DcpScheduler{}.run(g, SchedulerOptions{});
  EXPECT_TRUE(sched::is_valid(g, dcp));
  double best = dcp.length();
  for (const char* algo : {"FAST", "ETF", "DLS", "MD", "DSC"}) {
    sched::SchedulerOptions opts;
    const auto s = make_scheduler(algo)->run(g, opts);
    best = std::min(best, s.length());
  }
  EXPECT_LE(dcp.length(), 1.15 * best);
}

TEST(Dcp, ValidAcrossRandomGraphs) {
  for (std::uint64_t seed = 1000; seed < 1008; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const Schedule s = DcpScheduler{}.run(g, SchedulerOptions{});
    EXPECT_TRUE(sched::is_valid(g, s)) << seed;
    EXPECT_TRUE(s.is_complete());
  }
}

TEST(Dcp, NameAndUnboundedness) {
  DcpScheduler s;
  EXPECT_EQ(s.name(), "DCP");
  EXPECT_TRUE(s.unbounded_processors());
}

}  // namespace
}  // namespace fastsched::baselines
