#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "fast/fast.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::sim {
namespace {

using graph::TaskGraph;
using sched::Schedule;

TEST(EventSim, IdealMachineMatchesScheduleLengthForListSchedules) {
  // With zero overheads, the simulator's semantics coincide with the
  // evaluator's ready-time model for every append-style schedule.
  for (std::uint64_t seed = 500; seed < 510; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const Schedule s =
        baselines::make_scheduler("FAST")->run(g, sched::SchedulerOptions{});
    const SimResult r = simulate(g, s, MachineModel::ideal());
    EXPECT_NEAR(r.makespan, s.length(), 1e-9) << "seed " << seed;
  }
}

TEST(EventSim, IdealMachineNeverExceedsScheduleLength) {
  // Insertion-based schedules (MD) may have slack the simulator closes up,
  // but the simulated run can never exceed a valid schedule's length on an
  // ideal machine.
  for (const char* algo : {"MD", "DSC", "ETF", "DLS"}) {
    const TaskGraph g = testing::small_random(511);
    const Schedule s =
        baselines::make_scheduler(algo)->run(g, sched::SchedulerOptions{});
    const SimResult r = simulate(g, s, MachineModel::ideal());
    EXPECT_LE(r.makespan, s.length() + 1e-9) << algo;
  }
}

TEST(EventSim, OverheadsOnlyIncreaseMakespan) {
  const TaskGraph g = testing::small_random(512);
  const Schedule s =
      baselines::make_scheduler("FAST")->run(g, sched::SchedulerOptions{});
  const SimResult ideal = simulate(g, s, MachineModel::ideal());
  const SimResult paragon = simulate(g, s, MachineModel::paragon());
  EXPECT_GE(paragon.makespan, ideal.makespan);
}

TEST(EventSim, CountsCrossProcessorMessagesOnly) {
  const TaskGraph g = testing::chain(3, 1.0, 2.0);
  // All on one proc: zero messages.
  Schedule local(3, 2);
  local.assign(0, 0, 0, 1);
  local.assign(1, 0, 1, 2);
  local.assign(2, 0, 2, 3);
  EXPECT_EQ(simulate(g, local, MachineModel::ideal()).messages, 0u);

  // Split: two messages.
  Schedule split(3, 2);
  split.assign(0, 0, 0, 1);
  split.assign(1, 1, 3, 4);
  split.assign(2, 0, 7, 8);
  const SimResult r = simulate(g, split, MachineModel::ideal());
  EXPECT_EQ(r.messages, 2u);
  EXPECT_DOUBLE_EQ(r.comm_wire_time, 4.0);
}

TEST(EventSim, SendOverheadSerializesSender) {
  // One root with two remote children: the second message leaves one
  // send_overhead later.
  const TaskGraph g = testing::fork_join(2, 1.0, 0.0);
  Schedule s(4, 3);
  s.assign(0, 0, 0, 1);
  s.assign(1, 1, 1, 2);
  s.assign(2, 2, 1, 2);
  s.assign(3, 1, 3, 4);
  MachineModel m;
  m.send_overhead = 10.0;
  const SimResult r = simulate(g, s, m);
  // Child on P1 receives after 1 + 10; child on P2 after 1 + 20.
  EXPECT_DOUBLE_EQ(r.start[1], 11.0);
  EXPECT_DOUBLE_EQ(r.start[2], 21.0);
}

TEST(EventSim, LatencyAndWireFactorCharged) {
  const TaskGraph g = testing::chain(2, 1.0, 4.0);
  Schedule s(2, 2);
  s.assign(0, 0, 0, 1);
  s.assign(1, 1, 5, 6);
  MachineModel m;
  m.latency = 7.0;
  m.wire_factor = 2.0;
  m.recv_overhead = 3.0;
  const SimResult r = simulate(g, s, m);
  // arrival = finish(1) + latency(7) + wire(8) + recv(3) = 19.
  EXPECT_DOUBLE_EQ(r.start[1], 19.0);
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
}

TEST(EventSim, LocalOrderIsRespectedEvenWithSlack) {
  // Second task on the processor cannot jump ahead of the first even if
  // its data is ready earlier.
  graph::TaskGraphBuilder builder;
  builder.add_node(5);  // a: long
  builder.add_node(1);  // b: independent, scheduled after a on same proc
  const TaskGraph g = builder.build();
  Schedule s(2, 1);
  s.assign(0, 0, 0, 5);
  s.assign(1, 0, 5, 6);
  const SimResult r = simulate(g, s, MachineModel::ideal());
  EXPECT_DOUBLE_EQ(r.start[1], 5.0);
}

TEST(EventSim, RejectsIncompleteSchedules) {
  const TaskGraph g = testing::chain(2);
  Schedule s(2, 1);
  s.assign(0, 0, 0, 1);
  EXPECT_THROW((void)simulate(g, s, MachineModel::ideal()), Error);
}

TEST(EventSim, EmptyGraph) {
  const TaskGraph g = graph::TaskGraphBuilder{}.build();
  const Schedule s(0, 1);
  const SimResult r = simulate(g, s, MachineModel::ideal());
  EXPECT_EQ(r.makespan, 0.0);
}

TEST(EventSim, CommHeavyScheduleLosesOnParagonMachine) {
  // Two schedules of a comm-heavy chain: local vs maximally spread. On the
  // ideal machine the spread one already pays wire time; on the Paragon
  // model it pays per-message overhead on top. The local schedule must win
  // by more under the Paragon model — the effect the paper measures.
  const TaskGraph g = testing::chain(6, 1.0, 3.0);
  Schedule local(6, 6);
  for (graph::NodeId n = 0; n < 6; ++n) {
    local.assign(n, 0, n, n + 1.0);
  }
  Schedule spread(6, 6);
  double t = 0;
  for (graph::NodeId n = 0; n < 6; ++n) {
    spread.assign(n, n, t, t + 1.0);
    t += 4.0;  // 1 compute + 3 comm
  }
  const MachineModel paragon = MachineModel::paragon();
  const double local_time = simulate(g, local, paragon).makespan;
  const double spread_time = simulate(g, spread, paragon).makespan;
  EXPECT_LT(local_time, spread_time);
}

}  // namespace
}  // namespace fastsched::sim
