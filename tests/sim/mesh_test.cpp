#include "sim/mesh.hpp"

#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::sim {
namespace {

using graph::TaskGraph;
using sched::Schedule;

TEST(Mesh, HopCountsAreManhattanDistance) {
  MeshConfig config;
  config.width = 4;
  config.height = 4;
  EXPECT_EQ(mesh_hops(config, 0, 0), 0);
  EXPECT_EQ(mesh_hops(config, 0, 1), 1);    // (0,0) -> (1,0)
  EXPECT_EQ(mesh_hops(config, 0, 4), 1);    // (0,0) -> (0,1)
  EXPECT_EQ(mesh_hops(config, 0, 5), 2);    // (0,0) -> (1,1)
  EXPECT_EQ(mesh_hops(config, 0, 15), 6);   // (0,0) -> (3,3)
  EXPECT_EQ(mesh_hops(config, 15, 0), 6);   // symmetric
}

TEST(Mesh, LocalScheduleHasNoNetworkActivity) {
  const TaskGraph g = testing::chain(4, 2.0, 5.0);
  Schedule s(4, 1);
  for (graph::NodeId n = 0; n < 4; ++n) s.assign(n, 0, 2.0 * n, 2.0 * n + 2);
  const MeshSimResult r = simulate_mesh(g, s, MeshConfig::paragon64());
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.total_hops, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
}

TEST(Mesh, SingleMessageTimingIsHopsPlusOccupancy) {
  // a on P0 (0,0), b on P3 (3,0): 3 hops. With hop_latency 1 and the full
  // wire time split across the 3 links, arrival = injection + 3*(1 + c/3).
  const TaskGraph g = testing::chain(2, 1.0, 6.0);
  Schedule s(2, 4);
  s.assign(0, 0, 0, 1);
  s.assign(1, 3, 100, 101);  // generous scheduled start; sim runs earlier
  MeshConfig config;
  config.width = 4;
  config.height = 1;
  config.hop_latency = 1.0;
  config.nic_overhead = 2.0;
  config.link_occupancy_factor = 1.0;
  const MeshSimResult r = simulate_mesh(g, s, config);
  // injection at 1 + 2 = 3; three links, each +1 latency +2 occupancy.
  EXPECT_DOUBLE_EQ(r.start[1], 3.0 + 3.0 * (1.0 + 2.0));
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.total_hops, 3.0);
}

TEST(Mesh, ContentionDelaysSecondMessageOnSharedLink) {
  // Two producers on P0 send to P1 and P2 along the same +x link out of
  // P0; the second message queues behind the first.
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(1);
  const auto b = builder.add_node(1);
  const auto c1 = builder.add_node(1);
  const auto c2 = builder.add_node(1);
  builder.add_edge(a, c1, 8.0);
  builder.add_edge(b, c2, 8.0);
  const TaskGraph g = builder.build();
  Schedule s(4, 3);
  s.assign(a, 0, 0, 1);
  s.assign(b, 0, 1, 2);
  s.assign(c1, 1, 50, 51);
  s.assign(c2, 2, 50, 51);
  MeshConfig config;
  config.width = 3;
  config.height = 1;
  config.nic_overhead = 0.0;
  config.hop_latency = 0.0;
  const MeshSimResult r = simulate_mesh(g, s, config);
  EXPECT_GT(r.total_link_wait, 0.0);
  // c2's message shares P0's +x link; it cannot arrive before c1's frees it.
  EXPECT_GT(r.start[c2], r.start[c1] - 1e-9);
}

TEST(Mesh, RejectsSchedulesWiderThanTheMesh) {
  graph::TaskGraphBuilder builder;
  for (int i = 0; i < 5; ++i) builder.add_node(1);
  const TaskGraph g = builder.build();
  Schedule s(5, 5);
  for (graph::NodeId n = 0; n < 5; ++n) s.assign(n, n, 0, 1);
  MeshConfig config;
  config.width = 2;
  config.height = 2;
  EXPECT_THROW((void)simulate_mesh(g, s, config), Error);
}

TEST(Mesh, RealSchedulesRunToCompletion) {
  const TaskGraph g = testing::small_random(990, 80, 1.0, 4.0);
  for (const char* algo : {"FAST", "ETF", "MD"}) {
    sched::SchedulerOptions opts;
    opts.num_procs = 32;
    const Schedule s = baselines::make_scheduler(algo)->run(g, opts);
    const MeshSimResult r = simulate_mesh(g, s, MeshConfig::paragon64());
    EXPECT_GT(r.makespan, 0.0) << algo;
    // Mesh adds contention and latency on top of the contention-free
    // model, never removes time from a serial lower bound.
    EXPECT_GE(r.makespan, g.total_work() / 32.0 - 1e-9) << algo;
  }
}

TEST(Mesh, MoreContentionThanContentionFreeModel) {
  // The same schedule must take at least as long on the mesh (with hop
  // latency and link queueing) as on the ideal machine.
  const TaskGraph g = testing::small_random(991, 80, 2.0, 4.0);
  sched::SchedulerOptions opts;
  opts.num_procs = 16;
  const Schedule s = baselines::make_scheduler("DLS")->run(g, opts);
  const double ideal = simulate(g, s, MachineModel::ideal()).makespan;
  const MeshSimResult mesh = simulate_mesh(g, s, MeshConfig::paragon64());
  EXPECT_GE(mesh.makespan, ideal - 1e-9);
}

}  // namespace
}  // namespace fastsched::sim
