/// \file bb_oracle_test.cpp
/// Exhaustive oracle for the branch-and-bound solver: enumerate EVERY
/// feasible left-shifted schedule of a tiny instance — all topological
/// placement orders crossed with all processor assignments — with no
/// bounds and no pruning, and assert the solver's proven optimum equals
/// the true minimum. This is the ground-truth layer the rest of the
/// exact suite (fuzz comparisons, optimality properties) stands on.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "exact/bb_solver.hpp"
#include "graph/task_graph.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/paper_example.hpp"

namespace fastsched {
namespace {

using exact::BBOptions;
using exact::BBResult;
using exact::BBSolver;
using graph::Cost;
using graph::NodeId;
using graph::TaskGraph;
using sched::ProcId;

/// Plain exhaustive enumerator, written independently of the solver:
/// depth-first over every (ready node, processor) extension under the
/// ready-time replay recurrence, no bounds, no incumbent pruning. The
/// one reduction is processor-renaming symmetry — a task may only open
/// the lowest-indexed empty processor — which relabels schedules without
/// changing the attainable makespans (processors are identical).
class Enumerator {
 public:
  Enumerator(const TaskGraph& g, std::size_t procs)
      : g_(g),
        procs_(procs),
        assign_(g.num_nodes(), sched::kUnassignedProc),
        finish_(g.num_nodes(), 0),
        pending_(g.num_nodes(), 0),
        ready_(procs, 0),
        load_(procs, 0) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      pending_[n] = g.in_degree(n);
    }
  }

  /// Minimum makespan over the full enumeration.
  Cost optimum() {
    best_ = std::numeric_limits<Cost>::infinity();
    leaves_ = 0;
    recurse(0, 0);
    return best_;
  }

  [[nodiscard]] std::uint64_t leaves() const { return leaves_; }

 private:
  void recurse(std::size_t placed, Cost len) {
    if (placed == g_.num_nodes()) {
      ++leaves_;
      if (len < best_) best_ = len;
      return;
    }
    for (NodeId n = 0; n < g_.num_nodes(); ++n) {
      if (pending_[n] != 0 || assign_[n] != sched::kUnassignedProc) continue;
      bool opened_empty = false;
      for (ProcId q = 0; q < procs_; ++q) {
        if (load_[q] == 0) {
          if (opened_empty) continue;
          opened_empty = true;
        }
        Cost start = ready_[q];
        for (const graph::Adjacency& pred : g_.predecessors(n)) {
          const Cost arrival =
              finish_[pred.node] +
              (assign_[pred.node] == q ? Cost(0) : pred.cost);
          if (arrival > start) start = arrival;
        }
        const Cost fin = start + g_.weight(n);
        const Cost old_ready = ready_[q];
        assign_[n] = q;
        finish_[n] = fin;
        ready_[q] = fin;
        ++load_[q];
        for (const graph::Adjacency& succ : g_.successors(n)) {
          --pending_[succ.node];
        }
        recurse(placed + 1, fin > len ? fin : len);
        for (const graph::Adjacency& succ : g_.successors(n)) {
          ++pending_[succ.node];
        }
        --load_[q];
        ready_[q] = old_ready;
        finish_[n] = 0;
        assign_[n] = sched::kUnassignedProc;
      }
    }
  }

  const TaskGraph& g_;
  std::size_t procs_;
  std::vector<ProcId> assign_;
  std::vector<Cost> finish_;
  std::vector<std::size_t> pending_;
  std::vector<Cost> ready_;
  std::vector<std::size_t> load_;
  Cost best_ = 0;
  std::uint64_t leaves_ = 0;
};

/// Runs both the oracle and the solver on (g, procs) and cross-checks:
/// proven optimum, matching makespans, and a valid materialized schedule
/// that replays to exactly the reported length.
void expect_matches_oracle(const TaskGraph& g, std::size_t procs,
                           const std::string& label) {
  SCOPED_TRACE(label + ", p=" + std::to_string(procs));
  Enumerator oracle(g, procs);
  const Cost truth = oracle.optimum();
  ASSERT_GT(oracle.leaves(), 0u);

  BBOptions options;
  options.num_procs = procs;
  options.jobs = 1;
  const BBSolver solver(g, options);
  const BBResult result = solver.solve();

  EXPECT_TRUE(result.proven);
  // The solver's bound-vs-incumbent comparisons use the library's
  // relative tolerance, so allow the same slack here.
  EXPECT_NEAR(result.best_length, truth, 1e-6);
  EXPECT_NEAR(result.lower_bound, result.best_length, 1e-9);
  EXPECT_LE(result.static_floor, result.best_length + 1e-9);
  EXPECT_GE(result.seed_length + 1e-9, result.best_length);

  const sched::Schedule schedule = BBSolver::materialize(g, result, procs);
  EXPECT_TRUE(sched::is_valid(g, schedule));
  EXPECT_NEAR(schedule.length(), result.best_length, 1e-9);
}

TEST(BBOracle, Diamond) {
  const TaskGraph g = testing::diamond();
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "diamond");
  }
}

TEST(BBOracle, DiamondHeavyComm) {
  const TaskGraph g = testing::diamond(2.0, 3.0, 10.0);
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "diamond comm=10");
  }
}

TEST(BBOracle, Chain) {
  const TaskGraph g = testing::chain(5);
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "chain(5)");
  }
}

TEST(BBOracle, ForkJoin) {
  const TaskGraph g = testing::fork_join(3);
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "fork_join(3)");
  }
}

TEST(BBOracle, ForkJoinCheapComm) {
  // Zero communication makes spreading free: the optimum needs width.
  const TaskGraph g = testing::fork_join(4, 1.0, 0.0);
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "fork_join(4, comm=0)");
  }
}

TEST(BBOracle, TwoChains) {
  const TaskGraph g = testing::two_chains(3);
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "two_chains(3)");
  }
}

TEST(BBOracle, SingleNode) {
  const TaskGraph g = testing::single();
  for (std::size_t p = 1; p <= 3; ++p) {
    expect_matches_oracle(g, p, "single");
  }
}

TEST(BBOracle, LayeredRandom) {
  // Every v=8 seeded layered DAG at p in {2, 3}: the full enumeration is
  // a few hundred thousand leaves per instance at most.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = testing::small_random(seed, 8, 1.0, 2.5);
    for (std::size_t p = 2; p <= 3; ++p) {
      expect_matches_oracle(g, p, "layered seed=" + std::to_string(seed));
    }
  }
}

TEST(BBOracle, LayeredRandomHighCcr) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const TaskGraph g = testing::small_random(seed, 7, 5.0, 2.0);
    for (std::size_t p = 2; p <= 3; ++p) {
      expect_matches_oracle(g, p, "ccr5 seed=" + std::to_string(seed));
    }
  }
}

TEST(BBOracle, PaperExampleTwoProcs) {
  // The paper's 9-node Figure 1 graph, one node past the oracle's v<=8
  // floor but still enumerable at p=2.
  const TaskGraph g = workloads::paper_figure1_dag();
  expect_matches_oracle(g, 2, "paper figure 1");
}

}  // namespace
}  // namespace fastsched
