/// \file bb_solver_test.cpp
/// Unit tests for the branch-and-bound solver itself: proven optima on
/// the paper example, worker-count independence of every output field,
/// budget-exhaustion semantics, and the degenerate pools.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exact/bb_solver.hpp"
#include "graph/task_graph.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"
#include "workloads/paper_example.hpp"

namespace fastsched {
namespace {

using exact::BBOptions;
using exact::BBResult;
using exact::BBSolver;
using graph::Cost;
using graph::TaskGraph;

void expect_identical(const BBResult& a, const BBResult& b) {
  EXPECT_EQ(a.best_length, b.best_length);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.proven, b.proven);
  EXPECT_EQ(a.bound_id, b.bound_id);
  EXPECT_EQ(a.static_floor, b.static_floor);
  EXPECT_EQ(a.seed_length, b.seed_length);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.counters.expanded, b.counters.expanded);
  EXPECT_EQ(a.counters.generated, b.counters.generated);
  EXPECT_EQ(a.counters.pruned_bound, b.counters.pruned_bound);
  EXPECT_EQ(a.counters.pruned_symmetry, b.counters.pruned_symmetry);
  EXPECT_EQ(a.counters.incumbent_updates, b.counters.incumbent_updates);
  EXPECT_EQ(a.counters.capped_subtrees, b.counters.capped_subtrees);
}

TEST(BBSolver, ProvenOnPaperExample) {
  const TaskGraph g = workloads::paper_figure1_dag();
  for (std::size_t p = 2; p <= 4; ++p) {
    SCOPED_TRACE("p=" + std::to_string(p));
    BBOptions options;
    options.num_procs = p;
    const BBSolver solver(g, options);
    const BBResult r = solver.solve();
    EXPECT_TRUE(r.proven);
    EXPECT_EQ(r.lower_bound, r.best_length);
    // FAST reaches 23 on this graph (paper Figure 4(b)); the optimum can
    // only be at or below the incumbent it seeds.
    EXPECT_LE(r.best_length, r.seed_length);
    const sched::Schedule s = BBSolver::materialize(g, r, p);
    EXPECT_TRUE(sched::is_valid(g, s));
    EXPECT_EQ(s.length(), r.best_length);
  }
}

TEST(BBSolver, ByteIdenticalAcrossJobs) {
  // The whole result — schedule, bounds, and every counter — must be a
  // pure function of the instance, never of the worker count. Exercised
  // on graphs big enough to actually populate the parallel frontier.
  const std::uint64_t seeds[] = {3, 17, 29};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const TaskGraph g = testing::small_random(seed, 14, 1.0, 3.0);
    BBOptions options;
    options.num_procs = 3;
    options.node_budget = 200'000;
    options.frontier_target = 32;
    options.wave_size = 8;
    options.jobs = 1;
    const BBResult serial = BBSolver(g, options).solve();
    options.jobs = 8;
    const BBResult parallel = BBSolver(g, options).solve();
    expect_identical(serial, parallel);
  }
}

TEST(BBSolver, BudgetExhaustionReportsHonestBound) {
  const TaskGraph g = testing::small_random(7, 20, 1.0, 3.0);
  BBOptions options;
  options.num_procs = 3;
  options.node_budget = 50;  // far too small to exhaust a v=20 tree
  const BBSolver solver(g, options);
  const BBResult r = solver.solve();
  // The incumbent is still a real schedule (the FAST seed or better)...
  EXPECT_LE(r.best_length, r.seed_length);
  const sched::Schedule s = BBSolver::materialize(g, r, 3);
  EXPECT_TRUE(sched::is_valid(g, s));
  // ...and the bound never overclaims: unproven results keep the bound
  // strictly below the incumbent, proven ones pin them equal.
  EXPECT_LE(r.lower_bound, r.best_length);
  EXPECT_GE(r.lower_bound, r.static_floor);
  if (r.proven) {
    EXPECT_EQ(r.lower_bound, r.best_length);
  } else {
    EXPECT_GT(r.counters.capped_subtrees, 0u);
  }
}

TEST(BBSolver, SingleProcessorIsSerialWork) {
  // p=1 forbids overlap entirely: the optimum is the serial work, and a
  // static certificate (work or path) proves it without any search.
  const TaskGraph g = testing::chain(6);
  BBOptions options;
  options.num_procs = 1;
  const BBResult r = BBSolver(g, options).solve();
  EXPECT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best_length, g.total_work());
}

TEST(BBSolver, SingleNode) {
  const TaskGraph g = testing::single(5.0);
  BBOptions options;
  options.num_procs = 3;
  const BBResult r = BBSolver(g, options).solve();
  EXPECT_TRUE(r.proven);
  EXPECT_DOUBLE_EQ(r.best_length, 5.0);
  EXPECT_EQ(BBSolver(g, options).effective_procs(), 1u);
}

TEST(BBSolver, ZeroProcsMeansOnePerNode) {
  const TaskGraph g = testing::fork_join(3, 1.0, 0.0);
  BBOptions options;
  options.num_procs = 0;
  const BBSolver solver(g, options);
  EXPECT_EQ(solver.effective_procs(), g.num_nodes());
  const BBResult r = solver.solve();
  EXPECT_TRUE(r.proven);
  // Free communication and unlimited processors: the critical path.
  EXPECT_DOUBLE_EQ(r.best_length, 3.0);
}

TEST(BBSolver, ExternalSeedIsRespected) {
  const TaskGraph g = testing::diamond();
  BBOptions options;
  options.num_procs = 2;
  const BBSolver solver(g, options);
  // Serial placement of the diamond on one processor, as a weak seed.
  exact::BBSeed seed;
  seed.order = {0, 1, 2, 3};
  seed.assignment = {0, 0, 0, 0};
  const BBResult r = solver.solve(seed);
  EXPECT_DOUBLE_EQ(r.seed_length, g.total_work());
  EXPECT_TRUE(r.proven);
  EXPECT_LE(r.best_length, r.seed_length);
  const BBResult fast_seeded = solver.solve();
  EXPECT_DOUBLE_EQ(fast_seeded.best_length, r.best_length);
}

TEST(BBSolver, ReplayRejectsNonTopologicalOrder) {
  const TaskGraph g = testing::chain(3);
  const std::vector<graph::NodeId> order = {2, 1, 0};
  const std::vector<sched::ProcId> assignment = {0, 0, 0};
  EXPECT_THROW(
      { (void)BBSolver::replay_length(g, order, assignment, 1); }, Error);
}

TEST(BBSolver, CertificateShortcutSkipsSearch) {
  // A chain on one processor is proven by the path certificate alone:
  // the solver must return without expanding a single state.
  const TaskGraph g = testing::chain(4);
  BBOptions options;
  options.num_procs = 1;
  const BBResult r = BBSolver(g, options).solve();
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.counters.expanded, 0u);
  EXPECT_NE(r.bound_id, "search-exhausted");
}

}  // namespace
}  // namespace fastsched
