// Cache-key correctness for the serving layer: the fingerprint must
// collapse exactly the request variations that produce identical
// response bytes (alias spellings, omitted-vs-explicit defaults) and
// separate everything else (permuted node ids, every option knob).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/fingerprint.hpp"
#include "serve/protocol.hpp"

namespace fastsched::serve {
namespace {

std::uint64_t key_of(std::string_view line) {
  Request req(nullptr);
  parse_request(line, req);
  EXPECT_EQ(req.kind, RequestKind::kSchedule) << line;
  return fingerprint_request(req);
}

TEST(Fingerprint, AliasSpellingsOfOneWorkloadCollide) {
  EXPECT_EQ(key_of(R"({"workload":"rand:200"})"),
            key_of(R"({"workload":"random:200"})"));
  EXPECT_EQ(key_of(R"({"workload":"gauss:64"})"),
            key_of(R"({"workload":"gaussian:64"})"));
}

TEST(Fingerprint, OmittedFieldsEqualExplicitDefaults) {
  EXPECT_EQ(key_of(R"({"workload":"rand:200"})"),
            key_of(R"({"workload":"rand:200","algorithm":"FAST","procs":0,)"
                   R"("seed":1,"max_steps":64,"schedule":false})"));
}

TEST(Fingerprint, CacheDirectiveDoesNotEnterTheKey) {
  // cache:false changes handling, not the response bytes.
  EXPECT_EQ(key_of(R"({"workload":"rand:200"})"),
            key_of(R"({"workload":"rand:200","cache":false})"));
}

TEST(Fingerprint, EveryOptionKnobMovesTheKey) {
  const std::uint64_t base = key_of(R"({"workload":"rand:200"})");
  EXPECT_NE(base, key_of(R"({"workload":"rand:201"})"));
  EXPECT_NE(base, key_of(R"({"workload":"gauss:200"})"));
  EXPECT_NE(base, key_of(R"({"workload":"rand:200","procs":8})"));
  EXPECT_NE(base, key_of(R"({"workload":"rand:200","seed":2})"));
  EXPECT_NE(base, key_of(R"({"workload":"rand:200","max_steps":128})"));
  EXPECT_NE(base, key_of(R"({"workload":"rand:200","schedule":true})"));
  EXPECT_NE(base, key_of(R"({"workload":"rand:200","algorithm":"ETF"})"));
}

TEST(Fingerprint, PermutedNodeIdsAreDistinctInstances) {
  // The same abstract graph under two node labelings: weights [1,2,3]
  // with edge 0->1 vs weights [2,1,3] with edge 1->0. Adjacency order
  // feeds scheduler tie-breaking, so these must NOT share a key.
  const std::uint64_t a =
      key_of(R"({"nodes":[1,2,3],"edges":[[0,1,1.5]]})");
  const std::uint64_t b =
      key_of(R"({"nodes":[2,1,3],"edges":[[1,0,1.5]]})");
  EXPECT_NE(a, b);
}

TEST(Fingerprint, EdgeOrderWeightsAndCostsAllMoveTheKey) {
  const std::uint64_t base =
      key_of(R"({"nodes":[1,2,3],"edges":[[0,1,1],[0,2,2]]})");
  EXPECT_NE(base, key_of(R"({"nodes":[1,2,3],"edges":[[0,2,2],[0,1,1]]})"));
  EXPECT_NE(base, key_of(R"({"nodes":[1,2,4],"edges":[[0,1,1],[0,2,2]]})"));
  EXPECT_NE(base, key_of(R"({"nodes":[1,2,3],"edges":[[0,1,1],[0,2,3]]})"));
  EXPECT_NE(base, key_of(R"({"nodes":[1,2,3],"edges":[[0,1,1]]})"));
}

TEST(Fingerprint, WorkloadAndInlineDomainsNeverCollideTrivially) {
  // A workload spec and an inline graph are tagged into disjoint key
  // domains, whatever their contents.
  EXPECT_NE(key_of(R"({"workload":"rand:200"})"),
            key_of(R"({"nodes":[1],"edges":[]})"));
}

TEST(Fingerprint, NegativeZeroWeightCollapsesToZero) {
  EXPECT_EQ(key_of(R"({"nodes":[0],"edges":[]})"),
            key_of(R"({"nodes":[-0.0],"edges":[]})"));
}

TEST(Fingerprint, StringHashingIsLengthPrefixed) {
  Fingerprint a;
  a.str("ab");
  a.str("c");
  Fingerprint b;
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(NormalizeWorkloadName, CollapsesAliasesOnly) {
  EXPECT_EQ(normalize_workload_name("random"), "rand");
  EXPECT_EQ(normalize_workload_name("gaussian"), "gauss");
  EXPECT_EQ(normalize_workload_name("rand"), "rand");
  EXPECT_EQ(normalize_workload_name("fft"), "fft");
  EXPECT_EQ(normalize_workload_name("laplace"), "laplace");
}

TEST(NormalizeSpec, AppendsCanonicalSpelling) {
  std::string out;
  append_normalized_spec(out, "random:200");
  EXPECT_EQ(out, "rand:200");
  out.clear();
  append_normalized_spec(out, "paper");
  EXPECT_EQ(out, "paper");
}

}  // namespace
}  // namespace fastsched::serve
