// Unit tests for the monotonic request arena (common/arena.hpp): bump
// allocation, alignment, and the reset-retains-chunks contract the
// zero-malloc serving path is built on.

#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace fastsched {
namespace {

TEST(Arena, HandsOutDistinctWritableAlignedBlocks) {
  Arena arena;
  void* a = arena.allocate(16, 8);
  void* b = arena.allocate(32, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  std::memset(a, 0xAB, 16);
  std::memset(b, 0xCD, 32);
  EXPECT_EQ(static_cast<unsigned char*>(a)[15], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xCD);
}

TEST(Arena, RespectsLargeAlignment) {
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the cursor
  void* p = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, TracksUsageAndHighWater) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.allocate(100, 8);
  EXPECT_EQ(arena.bytes_used(), 100u);
  (void)arena.allocate(50, 1);
  EXPECT_EQ(arena.bytes_used(), 150u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GE(arena.high_water(), 150u);
}

TEST(Arena, ResetRetainsChunksSoSteadyStateNeverGrows) {
  Arena arena(1024);
  // Warm up: force several chunk allocations.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) (void)arena.allocate(256, 8);
    arena.reset();
  }
  const std::size_t warm_chunks = arena.chunk_allocations();
  const std::size_t warm_reserved = arena.bytes_reserved();
  // Steady state: the same allocation pattern must reuse the retained
  // chunks — zero new chunk mallocs across many windows.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) (void)arena.allocate(256, 8);
    arena.reset();
  }
  EXPECT_EQ(arena.chunk_allocations(), warm_chunks);
  EXPECT_EQ(arena.bytes_reserved(), warm_reserved);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(1024);
  void* big = arena.allocate(1 << 20, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(ArenaAllocator, VectorGrowsInArenaAndSurvivesUntilReset) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GE(arena.bytes_used(), 1000 * sizeof(int));
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(nullptr)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.back(), 99);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a;
  Arena b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&a));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<int>(&b));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<double>(&b));
}

}  // namespace
}  // namespace fastsched
