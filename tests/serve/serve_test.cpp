// End-to-end tests for the in-process serve loop: response correctness,
// cold-vs-hit byte identity, determinism across worker counts, window
// dedupe, cache bypass, and error handling.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "fast/fast.hpp"
#include "graph/task_graph.hpp"

namespace fastsched::serve {
namespace {

struct RunResult {
  std::string out;
  std::string log;
  ServerStats stats;
  ResultCache::Stats cache;
  int rc = -1;
};

RunResult run_server(const ServerOptions& options, const std::string& input) {
  Server server(options);
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream log;
  RunResult r;
  r.rc = server.serve(in, out, log);
  r.out = out.str();
  r.log = log.str();
  r.stats = server.stats();
  r.cache = server.cache_stats();
  return r;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t nl = text.find('\n', begin);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// The number after `"key":`, as text (empty when absent).
std::string field_of(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t end = at + needle.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(at + needle.size(), end - (at + needle.size()));
}

TEST(Serve, WorkloadResponseCarriesScheduleAndCertificateLine) {
  const RunResult r = run_server(
      {}, "{\"id\":1,\"workload\":\"fft:16\",\"procs\":4}\n");
  EXPECT_EQ(r.rc, 0);
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& resp = lines[0];
  EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(field_of(resp, "id"), "1");
  EXPECT_GT(std::atoi(field_of(resp, "nodes").c_str()), 0);
  EXPECT_EQ(field_of(resp, "procs"), "4");
  EXPECT_FALSE(field_of(resp, "makespan").empty());
  EXPECT_FALSE(field_of(resp, "best_bound").empty());
  EXPECT_NE(resp.find("\"bound_id\":\""), std::string::npos);
  EXPECT_FALSE(field_of(resp, "gap").empty());
  // makespan must respect the certificate.
  EXPECT_GE(std::atof(field_of(resp, "makespan").c_str()),
            std::atof(field_of(resp, "best_bound").c_str()));
}

TEST(Serve, CacheHitBytesAreIdenticalToColdBytes) {
  ServerOptions options;
  options.batch = 1;
  const std::string req = "{\"workload\":\"rand:100\",\"procs\":4}\n";
  const RunResult r = run_server(options, req + req + req);
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[0], lines[2]);
  EXPECT_EQ(r.stats.misses, 1u);
  EXPECT_EQ(r.stats.hits, 2u);
}

TEST(Serve, IdIsPrefixedOutsideTheCachedPayload) {
  ServerOptions options;
  options.batch = 1;
  const RunResult r = run_server(
      options,
      "{\"id\":7,\"workload\":\"rand:100\",\"procs\":4}\n"
      "{\"id\":8,\"workload\":\"rand:100\",\"procs\":4}\n");
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(r.stats.hits, 1u);
  // Strip the id prefix; the remainder (the cached payload) is identical.
  EXPECT_EQ(lines[0].substr(lines[0].find(',')),
            lines[1].substr(lines[1].find(',')));
  EXPECT_EQ(field_of(lines[0], "id"), "7");
  EXPECT_EQ(field_of(lines[1], "id"), "8");
}

TEST(Serve, AliasSpellingsHitTheSameEntryWithIdenticalBytes) {
  ServerOptions options;
  options.batch = 1;
  const RunResult r = run_server(
      options,
      "{\"workload\":\"rand:100\",\"procs\":4}\n"
      "{\"workload\":\"random:100\",\"procs\":4}\n"
      "{\"workload\":\"gaussian:32\",\"procs\":2}\n"
      "{\"workload\":\"gauss:32\",\"procs\":2}\n");
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[2], lines[3]);
  EXPECT_EQ(r.stats.hits, 2u);
  EXPECT_EQ(r.stats.misses, 2u);
  // Responses echo the canonical spelling either way.
  EXPECT_NE(lines[1].find("\"workload\":\"rand:100\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"workload\":\"gauss:32\""), std::string::npos);
}

TEST(Serve, StdoutAndCountersAreIdenticalAcrossJobs) {
  const std::string input =
      "{\"id\":1,\"workload\":\"rand:100\",\"procs\":4}\n"
      "{\"id\":2,\"workload\":\"gauss:32\",\"procs\":2}\n"
      "{\"id\":3,\"nodes\":[1,2,3,4],\"edges\":[[0,1,1],[1,2,2],[0,3,1]],"
      "\"procs\":2,\"schedule\":true}\n"
      "{\"id\":4,\"workload\":\"fft:16\",\"procs\":4,\"algorithm\":\"ETF\"}\n"
      "{\"not\":\"valid\"}\n"
      "{\"id\":6,\"workload\":\"rand:100\",\"procs\":4}\n"
      "{\"id\":7,\"workload\":\"laplace:8\"}\n"
      "{\"id\":8,\"cmd\":\"stats\"}\n";
  ServerOptions a;
  a.jobs = 1;
  a.batch = 4;
  ServerOptions b;
  b.jobs = 8;
  b.batch = 4;
  const RunResult ra = run_server(a, input);
  const RunResult rb = run_server(b, input);
  EXPECT_EQ(ra.out, rb.out);
  EXPECT_EQ(ra.rc, 0);
  EXPECT_EQ(rb.rc, 0);
  EXPECT_EQ(ra.stats.hits, rb.stats.hits);
  EXPECT_EQ(ra.stats.misses, rb.stats.misses);
  EXPECT_EQ(ra.cache.insertions, rb.cache.insertions);
  EXPECT_EQ(ra.cache.evictions, rb.cache.evictions);
}

TEST(Serve, WindowDuplicateCountsAsHitWithOneComputation) {
  ServerOptions options;
  options.batch = 8;  // both copies land in one window
  const RunResult r = run_server(
      options,
      "{\"workload\":\"rand:100\",\"procs\":4}\n"
      "{\"workload\":\"rand:100\",\"procs\":4}\n");
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(r.stats.misses, 1u);
  EXPECT_EQ(r.stats.hits, 1u);
  EXPECT_EQ(r.stats.window_dedupe_hits, 1u);
  EXPECT_EQ(r.cache.insertions, 1u);
}

TEST(Serve, DisabledCacheRecomputesButBytesStayIdentical) {
  ServerOptions options;
  options.batch = 1;
  options.use_cache = false;
  const std::string req = "{\"workload\":\"rand:100\",\"procs\":4}\n";
  const RunResult r = run_server(options, req + req);
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 2u);
  EXPECT_EQ(r.cache.insertions, 0u);
}

TEST(Serve, PerRequestCacheBypassForcesRecomputation) {
  ServerOptions options;
  options.batch = 1;
  const std::string req =
      "{\"workload\":\"rand:100\",\"procs\":4,\"cache\":false}\n";
  const RunResult r = run_server(options, req + req);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 2u);
  EXPECT_EQ(r.cache.insertions, 0u);
}

TEST(Serve, MalformedLinesGetErrorResponsesAndServingContinues) {
  const RunResult r = run_server(
      {},
      "this is not json\n"
      "{\"workload\":\"rand:100\",\"procs\":4,\"unknown_field\":1}\n"
      "{\"nodes\":[1],\"workload\":\"rand:100\"}\n"
      "{\"id\":4,\"workload\":\"fft:16\"}\n");
  EXPECT_EQ(r.rc, 0);
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[1].find("unknown request field"), std::string::npos);
  EXPECT_NE(lines[2].find("both workload and inline"), std::string::npos);
  EXPECT_NE(lines[3].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(r.stats.errors, 3u);
  EXPECT_EQ(r.stats.requests, 1u);
}

TEST(Serve, UnknownWorkloadIsAnErrorResponseNotACrash) {
  const RunResult r = run_server(
      {},
      "{\"id\":1,\"workload\":\"bogus:9\"}\n"
      "{\"id\":2,\"workload\":\"fft:16\"}\n");
  EXPECT_EQ(r.rc, 0);
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"ok\""), std::string::npos);
  // The failed run is not cached.
  EXPECT_EQ(r.cache.insertions, 1u);
}

TEST(Serve, InlineGraphMakespanMatchesADirectSchedulerRun) {
  graph::TaskGraphBuilder b;
  b.add_node(2.0);
  b.add_node(3.0);
  b.add_node(4.0);
  b.add_node(1.0);
  b.add_edge(0, 1, 1.5);
  b.add_edge(0, 2, 2.0);
  b.add_edge(1, 3, 1.0);
  b.add_edge(2, 3, 0.5);
  const graph::TaskGraph g = b.build();
  fast::FastOptions fo;
  fo.num_procs = 2;
  fo.seed = 5;
  const sched::Schedule direct =
      fast::FastScheduler(fo).run(g, sched::SchedulerOptions{2, 5});

  const RunResult r = run_server(
      {},
      "{\"nodes\":[2,3,4,1],\"edges\":[[0,1,1.5],[0,2,2],[1,3,1],[2,3,0.5]],"
      "\"procs\":2,\"seed\":5}\n");
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_DOUBLE_EQ(std::atof(field_of(lines[0], "makespan").c_str()),
                   direct.length());
}

TEST(Serve, StatsRequestFlushesThePendingWindowFirst) {
  ServerOptions options;
  options.batch = 32;  // far larger than the request count
  const RunResult r = run_server(
      options,
      "{\"id\":1,\"workload\":\"fft:16\"}\n"
      "{\"id\":2,\"workload\":\"fft:16\"}\n"
      "{\"id\":3,\"workload\":\"gauss:8\"}\n"
      "{\"id\":9,\"cmd\":\"stats\"}\n");
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 4u);
  // Responses precede the stats line, and the stats cover all three.
  EXPECT_NE(lines[3].find("\"stats\":{"), std::string::npos);
  EXPECT_EQ(field_of(lines[3], "id"), "9");
  EXPECT_EQ(field_of(lines[3], "requests"), "3");
  EXPECT_EQ(field_of(lines[3], "hits"), "1");
  EXPECT_EQ(field_of(lines[3], "misses"), "2");
}

TEST(Serve, EofFlushesAPartialWindow) {
  ServerOptions options;
  options.batch = 32;
  const RunResult r = run_server(options,
                                 "{\"id\":1,\"workload\":\"fft:16\"}\n"
                                 "{\"id\":2,\"workload\":\"gauss:8\"}\n");
  EXPECT_EQ(lines_of(r.out).size(), 2u);
  EXPECT_EQ(r.rc, 0);
}

TEST(Serve, BlankLinesAreIgnored) {
  const RunResult r = run_server({}, "\n\n{\"workload\":\"fft:16\"}\n\n");
  EXPECT_EQ(lines_of(r.out).size(), 1u);
  EXPECT_EQ(r.stats.errors, 0u);
}

TEST(Serve, DiagnosticLineGoesToTheLogStreamOnly) {
  const RunResult r = run_server({}, "{\"workload\":\"fft:16\"}\n");
  EXPECT_EQ(r.out.find("\"diag\""), std::string::npos);
  EXPECT_NE(r.log.find("\"diag\""), std::string::npos);
  EXPECT_NE(r.log.find("\"heap_allocs\""), std::string::npos);
}

}  // namespace
}  // namespace fastsched::serve
