// The zero-malloc serving contract, measured: this binary compiles the
// counting operator-new hook into its own TU and asserts that a
// steady-state cached request — warm arena, warm retained buffers,
// cache hit — performs exactly zero heap allocations end to end.
//
// This is a separate test binary (not part of fastsched_tests): the
// hook replaces the global allocation functions program-wide, which
// would skew every other test's behavior.

#include <cstdlib>
#include <new>

#include "common/alloc_counter.hpp"

FASTSCHED_DEFINE_COUNTING_NEW()

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "serve/server.hpp"

// Under ASan the counting hook is compiled out (see alloc_counter.hpp) —
// the allocation-delta assertions would be vacuous or false, so they skip.
#define FASTSCHED_REQUIRE_ALLOC_COUNTING()          \
  if (!::fastsched::heap_alloc_counting_enabled())  \
  GTEST_SKIP() << "allocation counting is compiled out under sanitizers"

namespace fastsched::serve {
namespace {

constexpr const char* kWorkloadReq =
    "{\"workload\":\"rand:200\",\"procs\":4}";
constexpr const char* kInlineReq =
    "{\"nodes\":[1,2,3,4,5],\"edges\":[[0,1,1],[0,2,2],[1,3,1],[2,3,1],"
    "[3,4,2]],\"procs\":2}";

/// Drives `reps` submissions of `line` and returns the heap-allocation
/// delta across the final one (the steady-state request).
std::uint64_t steady_state_allocs(Server& server, const char* line,
                                  int reps, std::string& out) {
  for (int i = 0; i < reps - 1; ++i) {
    out.clear();  // keep capacity — clear() never deallocates
    server.submit_line(line, out);
  }
  out.clear();
  const std::uint64_t before = heap_alloc_count();
  server.submit_line(line, out);
  return heap_alloc_count() - before;
}

TEST(ServeAlloc, CountingHookIsCompiledIn) {
  FASTSCHED_REQUIRE_ALLOC_COUNTING();
  ASSERT_TRUE(heap_alloc_counting_enabled());
  const std::uint64_t before = heap_alloc_count();
  auto* p = new int(7);
  EXPECT_GE(heap_alloc_count() - before, 1u);
  delete p;
}

TEST(ServeAlloc, SteadyStateCachedWorkloadRequestIsZeroAlloc) {
  FASTSCHED_REQUIRE_ALLOC_COUNTING();
  ServerOptions options;
  options.batch = 1;
  Server server(options);
  std::string out;
  const std::uint64_t allocs =
      steady_state_allocs(server, kWorkloadReq, 8, out);
  EXPECT_EQ(allocs, 0u) << "cached workload request touched the heap";
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(server.stats().hits, 7u);
}

TEST(ServeAlloc, SteadyStateCachedInlineGraphRequestIsZeroAlloc) {
  FASTSCHED_REQUIRE_ALLOC_COUNTING();
  ServerOptions options;
  options.batch = 1;
  Server server(options);
  std::string out;
  const std::uint64_t allocs = steady_state_allocs(server, kInlineReq, 8, out);
  EXPECT_EQ(allocs, 0u) << "cached inline-graph request touched the heap";
  EXPECT_EQ(server.stats().hits, 7u);
}

TEST(ServeAlloc, SteadyStateMixedWindowIsZeroAlloc) {
  // A full window of alternating cached requests, measured across the
  // whole window flush (parse + fingerprint + lookup + emit + reset).
  FASTSCHED_REQUIRE_ALLOC_COUNTING();
  ServerOptions options;
  options.batch = 4;
  Server server(options);
  std::string out;
  auto push_window = [&] {
    out.clear();
    server.submit_line(kWorkloadReq, out);
    server.submit_line(kInlineReq, out);
    server.submit_line(kWorkloadReq, out);
    server.submit_line(kInlineReq, out);
  };
  for (int i = 0; i < 6; ++i) push_window();  // warm arena + buffers + cache
  const std::uint64_t before = heap_alloc_count();
  push_window();
  const std::uint64_t allocs = heap_alloc_count() - before;
  EXPECT_EQ(allocs, 0u) << "steady-state window touched the heap";
  EXPECT_FALSE(out.empty());
}

TEST(ServeAlloc, ArenaOffBaselineDoesAllocatePerRequest) {
  // The control: with the arena disabled, request scratch lives on the
  // heap, so even a fully cached request allocates. This pins down that
  // the zero above is the arena's doing, not a vacuous measurement.
  FASTSCHED_REQUIRE_ALLOC_COUNTING();
  ServerOptions options;
  options.batch = 1;
  options.use_arena = false;
  Server server(options);
  std::string out;
  const std::uint64_t allocs = steady_state_allocs(server, kInlineReq, 8, out);
  EXPECT_GT(allocs, 0u);
  EXPECT_EQ(server.stats().hits, 7u);
}

TEST(ServeAlloc, ArenaStopsGrowingAfterWarmup) {
  ServerOptions options;
  options.batch = 2;
  Server server(options);
  std::string out;
  for (int i = 0; i < 10; ++i) {
    out.clear();
    server.submit_line(kWorkloadReq, out);
    server.submit_line(kInlineReq, out);
  }
  const std::size_t warm_chunks = server.arena().chunk_allocations();
  for (int i = 0; i < 50; ++i) {
    out.clear();
    server.submit_line(kWorkloadReq, out);
    server.submit_line(kInlineReq, out);
  }
  EXPECT_EQ(server.arena().chunk_allocations(), warm_chunks);
}

}  // namespace
}  // namespace fastsched::serve
