// Unit tests for the content-addressed LRU result cache: hit/miss
// accounting, strict LRU eviction, both capacity bounds, and index
// integrity across heavy insert/evict churn (the open-addressing table
// uses backward-shift deletion, which these tests exercise hard).

#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace fastsched::serve {
namespace {

TEST(ResultCache, FindMissThenInsertThenHit) {
  ResultCache cache(4);
  EXPECT_EQ(cache.find(42), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.insert(42, "payload-42");
  const std::string* hit = cache.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "payload-42");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().payload_bytes, std::string("payload-42").size());
}

TEST(ResultCache, EvictsStrictlyLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(1, "one");
  cache.insert(2, "two");
  ASSERT_NE(cache.find(1), nullptr);  // 1 is now most recent
  cache.insert(3, "three");           // evicts 2, not 1
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, ReplacingAKeyUpdatesPayloadAndBytes) {
  ResultCache cache(2);
  cache.insert(7, "short");
  cache.insert(7, "a-much-longer-payload");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().payload_bytes,
            std::string("a-much-longer-payload").size());
  EXPECT_EQ(*cache.find(7), "a-much-longer-payload");
}

TEST(ResultCache, ByteBoundEvictsUntilUnder) {
  ResultCache cache(100, 25);
  cache.insert(1, std::string(10, 'a'));
  cache.insert(2, std::string(10, 'b'));
  cache.insert(3, std::string(10, 'c'));  // 30 bytes > 25: evicts key 1
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_LE(cache.stats().payload_bytes, 25u);
}

TEST(ResultCache, ChurnKeepsIndexConsistent) {
  // 8 slots, 500 inserts: every probe chain gets built, shifted and
  // rebuilt many times. The 8 most recent keys must all be present and
  // correct; everything older must miss.
  ResultCache cache(8);
  for (std::uint64_t k = 1; k <= 500; ++k) {
    cache.insert(k * 0x9E3779B97F4A7C15ULL, "p" + std::to_string(k));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  EXPECT_EQ(cache.stats().evictions, 492u);
  for (std::uint64_t k = 493; k <= 500; ++k) {
    const std::string* hit = cache.find(k * 0x9E3779B97F4A7C15ULL);
    ASSERT_NE(hit, nullptr) << "key " << k;
    EXPECT_EQ(*hit, "p" + std::to_string(k));
  }
  for (std::uint64_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(cache.find(k * 0x9E3779B97F4A7C15ULL), nullptr);
  }
}

TEST(ResultCache, AdjacentKeysProbeCorrectlyAfterEviction) {
  // Sequential keys stress linear-probe adjacency: after evictions the
  // backward-shift must keep every surviving chain reachable.
  ResultCache cache(4);
  for (std::uint64_t k = 0; k < 64; ++k) {
    cache.insert(k, std::to_string(k));
    // Touch an older survivor every step to churn the LRU order too.
    if (k >= 2) (void)cache.find(k - 2);
  }
  std::size_t present = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::string* hit = cache.find(k);
    if (hit != nullptr) {
      ++present;
      EXPECT_EQ(*hit, std::to_string(k));
    }
  }
  EXPECT_EQ(present, 4u);
}

}  // namespace
}  // namespace fastsched::serve
