// Unit tests for the log-bucketed latency histogram: bounded relative
// error on quantiles, exact max, merge.

#include "serve/histogram.hpp"

#include <gtest/gtest.h>

namespace fastsched::serve {
namespace {

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LatencyHistogram, SingleSampleWithinBucketError) {
  LatencyHistogram h;
  h.record(0.010);  // 10 ms
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
  EXPECT_NEAR(h.quantile(0.5), 0.010, 0.010 * 0.06);
  EXPECT_NEAR(h.quantile(0.99), 0.010, 0.010 * 0.06);
}

TEST(LatencyHistogram, QuantilesOfAUniformRamp) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);  // 1ms .. 1000ms
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.50), 0.500, 0.500 * 0.06);
  EXPECT_NEAR(h.quantile(0.90), 0.900, 0.900 * 0.06);
  EXPECT_NEAR(h.quantile(0.99), 0.990, 0.990 * 0.06);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);  // capped at the exact max
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(LatencyHistogram, QuantileNeverExceedsExactMax) {
  LatencyHistogram h;
  h.record(0.001);
  h.record(0.001);
  EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(LatencyHistogram, OutOfRangeSamplesAreClamped) {
  LatencyHistogram h;
  h.record(0.0);    // clamps to the bottom bucket
  h.record(-5.0);   // ditto (and no crash)
  h.record(1e6);    // clamps to the top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
}

TEST(LatencyHistogram, MergeCombinesCountsAndMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.record(0.001);
  for (int i = 0; i < 10; ++i) b.record(0.100);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_DOUBLE_EQ(a.max(), 0.100);
  EXPECT_NEAR(a.quantile(0.25), 0.001, 0.001 * 0.06);
  EXPECT_NEAR(a.quantile(0.95), 0.100, 0.100 * 0.06);
  EXPECT_NEAR(a.total(), 10 * 0.001 + 10 * 0.100, 1e-9);
}

}  // namespace
}  // namespace fastsched::serve
