#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace fastsched {
namespace {

// ------------------------------------------------------------------ Table

TEST(Table, RendersHeaderSeparatorAndRows) {
  Table t("My Title");
  t.add_row({"Algorithm", "Length"});
  t.add_row({"FAST", "23"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("FAST"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.add_row({"a", "bb"});
  t.add_row({"cccc", "d"});
  // Split into lines; the header and the data row (after the separator)
  // must place column 2 at the same offset.
  std::vector<std::string> lines;
  std::istringstream is(t.to_string());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header, separator, data
  EXPECT_EQ(lines[0].find("bb"), lines[2].find("d"));
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(Table, PadsShortRows) {
  Table t;
  t.add_row({"h1", "h2", "h3"});
  t.add_row({"x"});
  EXPECT_NO_THROW((void)t.to_string());
}

// -------------------------------------------------------------------- Cli

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.add_option("size", "8", "problem size");
  cli.add_option("name", "abc", "a name");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--size", "32", "--verbose", "--name=xyz"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("size"), 32);
  EXPECT_EQ(cli.get("name"), "xyz");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.add_option("ccr", "1.5", "ratio");
  cli.add_flag("quiet", "hush");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("ccr"), 1.5);
  EXPECT_FALSE(cli.get_flag("quiet"));
}

TEST(Cli, CollectsPositionalArguments) {
  CliParser cli("test");
  const char* argv[] = {"prog", "alpha", "beta"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), Error);
}

TEST(Cli, RejectsBadNumericValues) {
  CliParser cli("test");
  cli.add_option("n", "1", "count");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("n"), Error);
  EXPECT_THROW((void)cli.get_double("n"), Error);
}

TEST(Cli, RejectsMissingValue) {
  CliParser cli("test");
  cli.add_option("n", "1", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW((void)cli.parse(2, argv), Error);
}

TEST(Cli, RejectsValueOnFlag) {
  CliParser cli("test");
  cli.add_flag("v", "verbose");
  const char* argv[] = {"prog", "--v=1"};
  EXPECT_THROW((void)cli.parse(2, argv), Error);
}

TEST(Cli, UsageListsOptions) {
  CliParser cli("my tool");
  cli.add_option("alpha", "1", "the alpha value");
  cli.add_flag("beta", "the beta flag");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
  EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}

}  // namespace
}  // namespace fastsched
