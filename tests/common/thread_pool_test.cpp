// Unit tests for the deterministic task pool: every task runs exactly
// once, results merge in submission order, exceptions propagate with the
// earliest-submitted failure winning, the bounded queue makes progress,
// and per-task RNG streams are pure functions of the task index.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fastsched {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    pool.submit([&hits, i] { ++hits[i]; });
  }
  pool.wait();
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReportsConfiguredWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, ParallelForIndexMatchesSequentialResults) {
  const std::size_t n = 400;
  std::vector<std::uint64_t> sequential(n);
  parallel_for_index(1, n, [&](std::size_t i) {
    sequential[i] = i * i + 17;
  });
  std::vector<std::uint64_t> parallel(n);
  parallel_for_index(8, n, [&](std::size_t i) {
    parallel[i] = i * i + 17;
  });
  EXPECT_EQ(parallel, sequential);
}

TEST(ThreadPool, RethrowsEarliestSubmittedFailure) {
  // Index 7 fails fast, index 3 fails slow: the wall-clock order of the
  // failures is 7 then 3, but wait() must still report index 3 — the
  // earliest submission — so the error a run prints is deterministic.
  ThreadPool pool(4);
  for (std::size_t i = 0; i < 16; ++i) {
    pool.submit([i] {
      if (i == 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throw std::runtime_error("task 3");
      }
      if (i == 7) throw std::runtime_error("task 7");
    });
  }
  try {
    pool.wait();
    FAIL() << "wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
}

TEST(ThreadPool, ReusableAfterAFailureIsReported) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error state is cleared; the next batch succeeds.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran, 8);
}

TEST(ThreadPool, BoundedQueueStillCompletesLargeBatches) {
  // Queue bound of 2 with 2 workers and 500 tasks: submit must block and
  // resume rather than deadlock or drop tasks.
  ThreadPool pool(2, 2);
  std::atomic<std::size_t> sum{0};
  for (std::size_t i = 0; i < 500; ++i) {
    pool.submit([&sum, i] { sum += i; });
  }
  pool.wait();
  EXPECT_EQ(sum, 500u * 499u / 2);
}

TEST(ThreadPool, ParallelForIndexEarliestFailureWinsUnderOversubscription) {
  try {
    parallel_for_index(8, 64, [](std::size_t i) {
      if (i % 5 == 4) {  // 4, 9, 14, ... all fail
        throw Error("cell " + std::to_string(i));
      }
    });
    FAIL() << "parallel_for_index should have rethrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "cell 4");
  }
}

TEST(ThreadPool, DefaultJobsHonorsEnvironment) {
  ASSERT_EQ(setenv("FASTSCHED_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 3u);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ASSERT_EQ(setenv("FASTSCHED_JOBS", "garbage", 1), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 0u);
  ASSERT_EQ(unsetenv("FASTSCHED_JOBS"), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 0u);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, ResolveJobsContract) {
  ASSERT_EQ(unsetenv("FASTSCHED_JOBS"), 0);
  EXPECT_EQ(resolve_jobs("", 1), 1u);        // absent, sequential fallback
  EXPECT_EQ(resolve_jobs("5", 1), 5u);       // explicit count
  EXPECT_GE(resolve_jobs("0", 1), 1u);       // 0 = all cores
  EXPECT_GE(resolve_jobs("", 0), 1u);        // fallback 0 = default_jobs()
  ASSERT_EQ(setenv("FASTSCHED_JOBS", "2", 1), 0);
  EXPECT_EQ(resolve_jobs("", 1), 2u);        // env beats the fallback
  EXPECT_EQ(resolve_jobs("7", 1), 7u);       // explicit beats the env
  ASSERT_EQ(unsetenv("FASTSCHED_JOBS"), 0);
  EXPECT_THROW((void)resolve_jobs("-1", 1), Error);
  EXPECT_THROW((void)resolve_jobs("abc", 1), Error);
  EXPECT_THROW((void)resolve_jobs("4x", 1), Error);
}

TEST(ThreadPool, PerTaskSplitStreamsAreExecutionOrderIndependent) {
  // The determinism recipe the evaluation layer relies on: task i derives
  // its randomness as Rng(seed).split(i), so the values it draws cannot
  // depend on which worker ran it or when.
  const Rng master(2024);
  const std::size_t n = 64;
  std::vector<std::uint64_t> sequential(n);
  for (std::size_t i = 0; i < n; ++i) sequential[i] = master.split(i).next();

  std::vector<std::uint64_t> pooled(n);
  parallel_for_index(8, n, [&](std::size_t i) {
    pooled[i] = master.split(i).next();
  });
  EXPECT_EQ(pooled, sequential);
}

}  // namespace
}  // namespace fastsched
