#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace fastsched {
namespace {

TEST(ErrorMacros, RequireThrowsFastschedError) {
  EXPECT_NO_THROW(FASTSCHED_REQUIRE(true, "fine"));
  try {
    FASTSCHED_REQUIRE(false, "broken precondition");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken precondition");
  }
}

TEST(ErrorMacros, AssertThrowsLogicErrorWithLocation) {
  EXPECT_NO_THROW(FASTSCHED_ASSERT(1 + 1 == 2));
  try {
    FASTSCHED_ASSERT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_timer_test.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, AssertMsgCarriesMessage) {
  try {
    FASTSCHED_ASSERT_MSG(false, "the invariant story");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("the invariant story"),
              std::string::npos);
  }
}

TEST(ErrorMacros, ErrorIsARuntimeError) {
  // Callers can catch the whole library with std::runtime_error.
  try {
    throw Error("x");
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.millis(), timer.seconds() * 1e3, 25.0);
}

TEST(Timer, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.010);
}

}  // namespace
}  // namespace fastsched
