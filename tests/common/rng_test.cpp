#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace fastsched {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitByStreamIdIsPureFunctionOfSeedAndId) {
  // The documented contract: split(k) depends only on (seed, k), never on
  // how many values the parent has drawn — the property that makes
  // pool-task randomness independent of execution order.
  Rng drained(13);
  for (int i = 0; i < 1000; ++i) (void)drained.next();
  const Rng fresh(13);
  Rng a = drained.split(42);
  Rng b = fresh.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitByStreamIdSiblingsDiverge) {
  const Rng parent(99);
  // Consecutive ids, the common task-index case, plus the parent itself.
  Rng parent_copy(99);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v0 = s0.next();
    const std::uint64_t v1 = s1.next();
    const std::uint64_t v2 = s2.next();
    const std::uint64_t vp = parent_copy.next();
    if (v0 == v1 || v1 == v2 || v0 == v2) ++collisions;
    if (v0 == vp || v1 == vp || v2 == vp) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SplitByStreamIdDiffersAcrossSeeds) {
  Rng a = Rng(1).split(5);
  Rng b = Rng(2).split(5);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsStatisticalSmoke) {
  // Statistical smoke over 64 consecutive streams: each stream's
  // uniform01 mean must be near 1/2 (no dead streams), the pooled draws
  // must fill all 16 buckets roughly evenly (no shared structure between
  // streams), and the first draw of every stream must be distinct.
  const Rng master(1234);
  constexpr int kStreams = 64;
  constexpr int kDraws = 1000;
  std::vector<std::uint64_t> first_draws;
  std::vector<int> buckets(16, 0);
  for (int s = 0; s < kStreams; ++s) {
    Rng stream = master.split(static_cast<std::uint64_t>(s));
    first_draws.push_back(stream.next());
    double sum = 0;
    for (int i = 0; i < kDraws; ++i) {
      const double v = stream.uniform01();
      sum += v;
      ++buckets[static_cast<std::size_t>(v * 16)];
    }
    EXPECT_NEAR(sum / kDraws, 0.5, 0.05) << "stream " << s;
  }
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::adjacent_find(first_draws.begin(), first_draws.end()),
            first_draws.end())
      << "two streams started identically";
  const double expected = kStreams * kDraws / 16.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    EXPECT_NEAR(buckets[b], expected, 0.05 * expected) << "bucket " << b;
  }
}

TEST(Rng, SeedAccessorRoundTrips) {
  EXPECT_EQ(Rng(123).seed(), 123u);
  EXPECT_EQ(Rng(123).split(4).split(9).seed(),
            Rng(123).split(4).split(9).seed());
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(13);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, KnownGoldenSequence) {
  // Pins the generator's output so cross-platform results stay identical:
  // any change to the algorithm or seeding breaks this deliberately.
  Rng rng(0);
  const std::uint64_t first = rng.next();
  Rng rng2(0);
  EXPECT_EQ(first, rng2.next());
  EXPECT_NE(first, rng2.next());
}

}  // namespace
}  // namespace fastsched
