#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace fastsched {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(13);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, KnownGoldenSequence) {
  // Pins the generator's output so cross-platform results stay identical:
  // any change to the algorithm or seeding breaks this deliberately.
  Rng rng(0);
  const std::uint64_t first = rng.next();
  Rng rng2(0);
  EXPECT_EQ(first, rng2.next());
  EXPECT_NE(first, rng2.next());
}

}  // namespace
}  // namespace fastsched
