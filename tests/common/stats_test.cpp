#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace fastsched {
namespace {

TEST(Stats, SummarizeBasics) {
  const double data[] = {2.0, 4.0, 6.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleValueHasZeroStddev) {
  const double data[] = {5.0};
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, Mean) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(data), 2.5);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, GeometricMean) {
  const double data[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(data), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const double data[] = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(data), Error);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

}  // namespace
}  // namespace fastsched
