// Fixture: raw-string-literal lexing — every payload below contains text
// that would trip D1/A1 if the lexer retokenized it as code (the
// multi-line and encoding-prefixed forms are the regression cases).
// Expected findings: none. Never compiled — lexed only.

const char* plain = R"(assert(1); std::random_device rd;)";

const char* delimited = R"x(time(nullptr) and rand() inside )" too)x";

const char* multiline = R"(
  std::this_thread::get_id();
  clock();
)";

const char* prefixed = u8R"(srand(42);)";
const wchar_t* wide = LR"y(std::chrono::system_clock::now())y";
