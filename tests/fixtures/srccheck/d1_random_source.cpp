// Fixture: D1 det-random-source true positives (entropy, libc clock,
// std::chrono wall clock, thread id). Never compiled — lexed only.
#include <chrono>
#include <random>

unsigned seed_from_host() {
  std::random_device rd;
  return rd() + static_cast<unsigned>(time(nullptr));
}

double wall_now() {
  const auto t = std::chrono::system_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
