// Fixture: A1 bare-assert and A2 raw-runtime-error true positives.
// Never compiled — lexed only.
#include <cassert>
#include <stdexcept>

void check(int x) {
  assert(x > 0);
  if (x > 100) {
    throw std::runtime_error("x out of range");
  }
}
