// Fixture: T3 par-hot-lock — a lock guard inside an explicit hot region,
// an atomic RMW in a function *inferred* hot (called from the region),
// a suppressed stats counter, and a lock on a cold path left alone.
// Never compiled — lexed only.
#include <atomic>
#include <mutex>

std::mutex mu;
std::atomic<int> visits;
std::atomic<int> stats;

void bump_visits() {
  visits.fetch_add(1);
}

void bump_stats() {
  // NOLINT-fastsched(par-hot-lock): relaxed stats counter, value never feeds a scheduling decision
  stats.fetch_add(1);
}

void probe_loop(int n) {
  // fastsched: hot
  for (int i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> guard(mu);
    bump_visits();
    bump_stats();
  }
  // fastsched: end-hot
}

void cold_setup() {
  std::lock_guard<std::mutex> guard(mu);
  visits.fetch_add(1);
}
