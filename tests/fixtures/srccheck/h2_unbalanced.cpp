// Fixture: H2 hot-region-balance true positive — a hot marker that is
// never closed. Never compiled — lexed only.

void inner() {
  // fastsched: hot
  int x = 0;
}
