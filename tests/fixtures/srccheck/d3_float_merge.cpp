// Fixture: D3 det-float-merge true positive — unannotated float
// reduction in a thread-pool-using file. Never compiled — lexed only.
#include "common/thread_pool.hpp"

double merge(const double* part, int workers) {
  double sum = 0.0;
  for (int w = 0; w < workers; ++w) {
    sum += part[w];
  }
  return sum;
}
