// Fixture: P1 probe-pairing true positive — an evaluate_move probe that
// is neither committed nor reverted. Never compiled — lexed only.

double peek_move(Evaluator& ev, int n, int p) {
  const double candidate = ev.evaluate_move(n, p);
  return candidate;
}
