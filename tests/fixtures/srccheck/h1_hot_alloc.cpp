// Fixture: H1 hot-alloc true positives — operator new and unreserved
// push_back inside a hot region. Never compiled — lexed only.
#include <vector>

void probe_loop(std::vector<int>& touched) {
  // fastsched: hot
  auto* scratch = new int[64];
  touched.push_back(1);
  // fastsched: end-hot
  delete[] scratch;
}
