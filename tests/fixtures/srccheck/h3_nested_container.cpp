// Fixture: H3 hot-nested-container — nested dynamic containers stored
// as data members in a file with hot code. One true positive, one
// justified suppression, and two shapes the rule must ignore: a member
// whose inner type is not a tracked container (std::string), and an
// inline member function *returning* a nested container. Never
// compiled — lexed only.
#include <string>
#include <utility>
#include <vector>

struct ProbeState {
  std::vector<std::vector<double>> per_proc_rows;
  // NOLINT-fastsched(hot-nested-container): built once at setup, never walked per probe
  std::vector<std::vector<int>> cold_histogram;
  std::vector<std::pair<int, std::string>> named_rows;
  std::vector<std::vector<int>> copy_rows() { return cold_histogram; }
};

void probe_loop(ProbeState& state) {
  // fastsched: hot
  state.per_proc_rows.back().pop_back();
  // fastsched: end-hot
}
