// Fixture: T1 par-ref-mutation — a pool task mutating state captured by
// reference (explicit capture and [&] default), one suppressed case, and
// the sanctioned slot-per-task pattern. Never compiled — lexed only.
#include <vector>

struct Pool {
  template <typename F>
  void submit(F f);
};

int cost_of(int i);

void racy_sum(Pool& pool, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    pool.submit([&total, i] { total += cost_of(i); });
  }
}

void racy_default_capture(Pool& pool, std::vector<int>& log) {
  pool.submit([&] {
    int local = 0;      // task-local: writes to it are fine
    local += 1;
    log.push_back(local);
  });
}

void locked_merge(Pool& pool, int n) {
  int merged = 0;
  for (int i = 0; i < n; ++i) {
    pool.submit([&merged, i] {
      // NOLINT-fastsched(par-ref-mutation): single-task pool in this test harness, no concurrency by construction
      merged += cost_of(i);
    });
  }
}

void slot_per_task(Pool& pool, std::vector<int>& results, int n) {
  for (int i = 0; i < n; ++i) {
    pool.submit([&results, i] { results[i] = cost_of(i); });
  }
}
