// Fixture: H1 coverage of the serving request loop — a steady-state
// window pre-pass with an allocation smuggled into the hot region. The
// shape mirrors src/serve/server.cpp's flush_window: parse, fingerprint,
// cache lookup, emit. Never compiled — lexed only.
#include <string>
#include <vector>

struct ServeRequest {
  unsigned long long fingerprint;
  std::string line;
};

void serve_window(std::vector<ServeRequest>& window,
                  std::vector<std::string>& responses) {
  responses.reserve(window.size());
  // fastsched: hot
  for (const ServeRequest& req : window) {
    // The smuggled allocation: a per-request heap string on the
    // zero-malloc path. H1 must flag this even though everything
    // around it is reserve()-backed.
    std::string* payload = new std::string(req.line);
    responses.push_back(*payload);
    delete payload;
  }
  // fastsched: end-hot
}
