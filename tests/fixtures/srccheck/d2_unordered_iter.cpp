// Fixture: D2 det-unordered-iter true positive — range-for over an
// unordered container. Never compiled — lexed only.
#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}
