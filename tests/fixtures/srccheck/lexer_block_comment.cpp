// Fixture: a block comment spanning lines *inside* a preprocessor
// directive — comments are removed in translation phase 3, so the
// directive continues after the comment and its tokens stay flagged as
// preprocessor (the `assert` below must not fire A1).
// Expected findings: none. Never compiled — lexed only.

#define CHECK_FIXTURE(x) /* explanatory comment
   spanning two lines */ assert(x)

int use_check(int v) {
  CHECK_FIXTURE(v > 0);
  return v;
}
