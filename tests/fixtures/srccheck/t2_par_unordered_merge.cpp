// Fixture: T2 par-unordered-merge — task-reachable functions iterating a
// parameter bound to an unordered container: one declared as unordered
// (where D2 also fires — T2 generalizes it), one reached only through
// argument propagation (invisible to D2), a suppressed fold and an
// ordered-parameter clean case. Never compiled — lexed only.
#include <unordered_map>
#include <vector>

struct Pool {
  template <typename F>
  void submit(F f);
};

int fold_declared(const std::unordered_map<int, int>& items) {
  int sum = 0;
  for (const auto& kv : items) {
    sum += kv.second;
  }
  return sum;
}

template <typename Map>
int fold_generic(const Map& table) {
  int sum = 0;
  for (const auto& kv : table) {
    sum += kv.second;
  }
  return sum;
}

int fold_waived(const std::unordered_map<int, int>& counts) {
  int sum = 0;
  // NOLINT-fastsched(par-unordered-merge, det-unordered-iter): integer addition is commutative and associative, the fold is order-independent
  for (const auto& kv : counts) {
    sum += kv.second;
  }
  return sum;
}

int fold_ordered(const std::vector<int>& ranked) {
  int sum = 0;
  for (const int v : ranked) {
    sum += v;
  }
  return sum;
}

void merge_results(Pool& pool, std::vector<int>& out) {
  std::unordered_map<int, int> scores;
  pool.submit([&out, &scores] {
    out[0] = fold_declared(scores);
    out[1] = fold_generic(scores);
    out[2] = fold_waived(scores);
  });
}
