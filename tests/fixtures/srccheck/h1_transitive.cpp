// Fixture: H1 hot-alloc through the call graph — the allocation sits two
// calls below the annotated region, so only the semantic layer's
// transitive hot-path inference can see it. Never compiled — lexed only.
#include <vector>

void leaf_grow(std::vector<int>& out) {
  out.push_back(1);
}

void mid_step(std::vector<int>& out) {
  leaf_grow(out);
}

void probe(std::vector<int>& out) {
  // fastsched: hot
  mid_step(out);
  // fastsched: end-hot
}
