// Fixture: a justified suppression — counted as suppressed, reported
// nowhere, and the file is otherwise clean. Never compiled — lexed only.
#include <unordered_set>

bool any_even(const std::unordered_set<int>& seen) {
  // NOLINT-fastsched(det-unordered-iter): existence check, order-free
  for (const int k : seen) {
    if (k % 2 == 0) return true;
  }
  return false;
}
