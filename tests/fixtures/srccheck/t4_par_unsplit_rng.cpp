// Fixture: T4 par-unsplit-rng — Rng constructed inside a submitted task,
// and in a helper reached from one; the split-derived construction and a
// suppressed fixed-seed case stay clean. Never compiled — lexed only.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed);
  Rng split(std::size_t index) const;
  double uniform();
};

struct Pool {
  template <typename F>
  void submit(F f);
};

double jitter(std::uint64_t seed) {
  Rng local(seed);
  return local.uniform();
}

void fan_out(Pool& pool, const Rng& base, double* results) {
  for (std::size_t i = 0; i < 4; ++i) {
    pool.submit([&base, results, i] {
      Rng task_rng(12345);
      Rng derived = base.split(i);
      // NOLINT-fastsched(par-unsplit-rng): fixture-pinned seed, stream equality across tasks is the point of this test
      Rng pinned(99);
      results[i] = task_rng.uniform() + derived.uniform() + pinned.uniform() +
                   jitter(7);
    });
  }
}
