// Fixture: S1 suppression-needs-reason true positive — a waiver with no
// recorded justification. Never compiled — lexed only.
#include <random>

unsigned reasonless() {
  // NOLINT-fastsched(det-random-source)
  std::random_device rd;
  return rd();
}
