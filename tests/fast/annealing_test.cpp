#include "fast/annealing.hpp"

#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "fast/local_search.hpp"
#include "fast/initial_schedule.hpp"
#include "graph/classification.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

struct Prepared {
  std::vector<NodeId> list;
  std::vector<NodeId> blocking;
  std::vector<ProcId> assignment;
  Cost length = 0;
};

Prepared prepare(const TaskGraph& g, std::size_t procs) {
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  Prepared p;
  p.list = build_cpn_dominate_list(g, levels, classes);
  for (const NodeId n : p.list) {
    if (classes[n] != graph::NodeClass::kCpn) p.blocking.push_back(n);
  }
  auto initial = initial_schedule(g, p.list, procs);
  p.assignment = std::move(initial.assignment);
  p.length = initial.length;
  return p;
}

TEST(Annealing, NeverReturnsWorseThanInitial) {
  for (std::uint64_t seed = 700; seed < 712; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    Prepared p = prepare(g, 8);
    IncrementalEvaluator eval(g, p.list, 8);
    Rng rng(seed);
    const auto stats = anneal(eval, p.blocking, p.assignment, p.length,
                              AnnealingOptions{}, rng);
    EXPECT_LE(stats.best_length, stats.initial_length) << "seed " << seed;
    EXPECT_NEAR(eval.reset(p.assignment), p.length, 1e-9);
    EXPECT_TRUE(sched::is_valid(g, eval.materialize(p.assignment)));
  }
}

TEST(Annealing, AcceptsUphillMovesAtHighTemperature) {
  const TaskGraph g = testing::small_random(720, 120, 2.0, 5.0);
  Prepared p = prepare(g, 8);
  IncrementalEvaluator eval(g, p.list, 8);
  Rng rng(2);
  AnnealingOptions opts;
  opts.max_steps = 1024;
  opts.initial_temperature_fraction = 0.5;  // very hot
  const auto stats =
      anneal(eval, p.blocking, p.assignment, p.length, opts, rng);
  EXPECT_GT(stats.uphill_accepted, 0);
  // ... yet the returned solution is still the best visited.
  EXPECT_LE(stats.best_length, stats.initial_length);
}

TEST(Annealing, ZeroTemperatureIsPureHillClimb) {
  const TaskGraph g = testing::small_random(721);
  Prepared p = prepare(g, 8);
  IncrementalEvaluator eval(g, p.list, 8);
  Rng rng(3);
  AnnealingOptions opts;
  opts.initial_temperature_fraction = 0.0;
  const auto stats =
      anneal(eval, p.blocking, p.assignment, p.length, opts, rng);
  EXPECT_EQ(stats.uphill_accepted, 0);
}

TEST(Annealing, DeterministicPerSeed) {
  const TaskGraph g = testing::small_random(722);
  const Prepared base = prepare(g, 8);
  const auto run = [&] {
    Prepared p = base;
    IncrementalEvaluator eval(g, p.list, 8);
    Rng rng(5);
    anneal(eval, p.blocking, p.assignment, p.length, AnnealingOptions{}, rng);
    return p;
  };
  const Prepared a = run();
  const Prepared b = run();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.length, b.length);
}

TEST(Annealing, EmptyBlockingIsNoOp) {
  const TaskGraph g = testing::chain(4);
  Prepared p = prepare(g, 4);
  ASSERT_TRUE(p.blocking.empty());
  IncrementalEvaluator eval(g, p.list, 4);
  Rng rng(1);
  const auto stats = anneal(eval, p.blocking, p.assignment, p.length,
                            AnnealingOptions{}, rng);
  EXPECT_EQ(stats.steps, 0);
}

TEST(Annealing, SchedulerAdapterIsValidAndAtLeastAsGoodAsInitial) {
  const TaskGraph g = testing::small_random(723, 150, 3.0, 5.0);
  AnnealingFastScheduler scheduler;
  sched::SchedulerOptions so;
  so.num_procs = 16;
  so.seed = 9;
  const Schedule s = scheduler.run(g, so);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(scheduler.name(), "FAST-SA");

  const Prepared p = prepare(g, 16);
  EXPECT_LE(s.length(), p.length + 1e-9);
}

TEST(Annealing, CompetitiveWithHillClimbOnAverage) {
  // Annealing is not dominant move-for-move (random walks waste budget on
  // uphill detours), but across instances its best-ever result must stay
  // within a few percent of the 64-step hill climb while often beating it.
  double sa_total = 0;
  double hc_total = 0;
  for (std::uint64_t seed = 730; seed < 736; ++seed) {
    const TaskGraph g = testing::small_random(seed, 120, 2.0, 5.0);
    Prepared p = prepare(g, 8);

    auto hc_assignment = p.assignment;
    Cost hc_len = p.length;
    {
      IncrementalEvaluator eval(g, p.list, 8);
      Rng rng(seed);
      LocalSearchOptions opts;
      local_search(eval, p.blocking, hc_assignment, hc_len, opts, rng);
    }

    auto sa_assignment = p.assignment;
    Cost sa_len = p.length;
    {
      IncrementalEvaluator eval(g, p.list, 8);
      Rng rng(seed);
      anneal(eval, p.blocking, sa_assignment, sa_len, AnnealingOptions{}, rng);
    }
    sa_total += sa_len;
    hc_total += hc_len;
  }
  EXPECT_LE(sa_total, 1.03 * hc_total);
}

}  // namespace
}  // namespace fastsched::fast
