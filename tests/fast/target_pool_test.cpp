#include "fast/target_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fastsched::fast {
namespace {

using sched::ProcId;

std::vector<ProcId> pool_of(const TransferTargets& t) {
  return {t.procs().begin(), t.procs().end()};
}

TEST(TransferTargets, RebuildListsUsedProcsThenFresh) {
  TransferTargets t(5);
  const std::vector<ProcId> assignment = {3, 0, 3, 0};
  t.rebuild(assignment);
  EXPECT_EQ(pool_of(t), (std::vector<ProcId>{0, 3, 1}));
}

TEST(TransferTargets, NoFreshWhenAllUsed) {
  TransferTargets t(2);
  const std::vector<ProcId> assignment = {1, 0};
  t.rebuild(assignment);
  EXPECT_EQ(pool_of(t), (std::vector<ProcId>{0, 1}));
}

// The pin promised in target_pool.hpp: the pool contents are a pure
// function of the used-processor set, so folding committed transfers
// one at a time (apply_transfer) must stay value-identical to a
// from-scratch rebuild() after every single move — including the
// interesting transitions (a processor emptying, the fresh processor
// gaining its first node, the fresh pointer advancing past a run of
// used ids, and transfers onto the current fresh target).
TEST(TransferTargets, IncrementalMatchesRebuildUnderRandomMoves) {
  Rng rng(97);
  for (int round = 0; round < 30; ++round) {
    const std::size_t num_procs = 2 + rng.uniform(10);
    const std::size_t num_nodes = 1 + rng.uniform(40);
    std::vector<ProcId> assignment(num_nodes);
    for (auto& p : assignment) {
      p = static_cast<ProcId>(rng.uniform(num_procs));
    }
    TransferTargets incremental(num_procs);
    incremental.rebuild(assignment);
    TransferTargets fresh(num_procs);

    for (int move = 0; move < 200; ++move) {
      const auto n = static_cast<std::size_t>(rng.uniform(num_nodes));
      // Bias targets toward the current pool so empty->used and
      // used->empty transitions actually happen; occasionally pick an
      // arbitrary processor to exercise fresh-pointer jumps.
      const ProcId to =
          rng.uniform(4) != 0 && incremental.size() > 0
              ? incremental[static_cast<std::size_t>(
                    rng.uniform(incremental.size()))]
              : static_cast<ProcId>(rng.uniform(num_procs));
      const ProcId from = assignment[n];
      assignment[n] = to;
      incremental.apply_transfer(from, to);
      fresh.rebuild(assignment);
      ASSERT_EQ(pool_of(incremental), pool_of(fresh))
          << "round " << round << " move " << move;
    }
  }
}

}  // namespace
}  // namespace fastsched::fast
