// Golden tests against the paper's worked example (Figures 1–4): the
// reconstructed 9-node DAG must reproduce every fact the text states.

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "fast/fast.hpp"
#include "graph/classification.hpp"
#include "sched/validation.hpp"
#include "workloads/paper_example.hpp"

namespace fastsched {
namespace {

using graph::NodeId;

constexpr NodeId n(int i) { return static_cast<NodeId>(i - 1); }

class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = workloads::paper_figure1_dag();
    levels_ = graph::compute_levels(g_);
    classes_ = graph::classify_nodes(g_, levels_);
  }

  graph::TaskGraph g_ = graph::TaskGraphBuilder{}.build();
  graph::LevelInfo levels_;
  std::vector<graph::NodeClass> classes_;
};

TEST_F(PaperExample, HasNineNodesAndIsConnected) {
  EXPECT_EQ(g_.num_nodes(), 9u);
  EXPECT_EQ(g_.num_edges(), 13u);
  EXPECT_TRUE(g_.is_connected());
}

TEST_F(PaperExample, CpnsAreN1N7N9) {
  for (int i = 1; i <= 9; ++i) {
    const bool expect_cpn = (i == 1 || i == 7 || i == 9);
    EXPECT_EQ(levels_.is_cpn[n(i)], expect_cpn) << "n" << i;
  }
  EXPECT_EQ(levels_.critical_path,
            (std::vector<NodeId>{n(1), n(7), n(9)}));
}

TEST_F(PaperExample, AllNonCpnsAreIbns) {
  // "There is no OBN in this DAG" (§4.1).
  for (int i = 1; i <= 9; ++i) {
    EXPECT_NE(classes_[n(i)], graph::NodeClass::kObn) << "n" << i;
  }
}

TEST_F(PaperExample, AsapEqualsTlevelAndAlapDerivedFromBlevel) {
  // Figure 1(b) defines ALAP = CP length − b-level; ASAP = t-level.
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_NEAR(levels_.alap[i], levels_.cp_length - levels_.b_level[i],
                1e-9);
  }
  // CPNs have equal ASAP and ALAP.
  for (const int i : {1, 7, 9}) {
    EXPECT_NEAR(levels_.t_level[n(i)], levels_.alap[n(i)], 1e-9);
  }
}

TEST_F(PaperExample, CpnDominateListMatchesPaper) {
  const auto list = fast::build_cpn_dominate_list(g_, levels_, classes_);
  EXPECT_EQ(list, workloads::paper_cpn_dominate_list());
}

TEST_F(PaperExample, StaticLevelMisleadsEtfAndDls) {
  // §5: "they schedule the node n5 early because it has a higher value of
  // static level (SL). But n5 is in fact not as important as n2."
  EXPECT_GT(levels_.static_level[n(5)], levels_.static_level[n(2)]);
}

TEST_F(PaperExample, InitialScheduleLengthIs24) {
  const auto list = fast::build_cpn_dominate_list(g_, levels_, classes_);
  const auto initial = fast::initial_schedule(g_, list, 9);
  EXPECT_EQ(initial.length, 24.0);
}

TEST_F(PaperExample, TransferringN6Yields23AndDelaysN5N8) {
  const auto list = fast::build_cpn_dominate_list(g_, levels_, classes_);
  const auto initial = fast::initial_schedule(g_, list, 9);
  fast::AssignmentEvaluator eval(g_, list, 9);
  const sched::Schedule before = eval.materialize(initial.assignment);

  bool found = false;
  for (sched::ProcId p = 0; p < 9 && !found; ++p) {
    if (p == initial.assignment[n(6)]) continue;
    auto moved = initial.assignment;
    moved[n(6)] = p;
    if (eval.evaluate(moved) != 23.0) continue;
    const sched::Schedule after = eval.materialize(moved);
    EXPECT_TRUE(sched::is_valid(g_, after));
    if (after.start(n(5)) > before.start(n(5)) &&
        after.start(n(8)) > before.start(n(8))) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "no n6 transfer reproduces Figure 4(b): length 23 with n5 and n8 "
         "delayed";
}

TEST_F(PaperExample, FastLocalSearchFindsThe23Schedule) {
  // The paper's narrative: with the blocking-node neighbourhood, the
  // search discovers the n6 transfer. MAXSTEP = 64 random moves on a
  // 6-node × 9-proc neighbourhood finds it with near-certainty; we assert
  // it for a fixed seed set to keep the test deterministic.
  bool reached_23 = false;
  for (std::uint64_t seed = 1; seed <= 5 && !reached_23; ++seed) {
    fast::FastOptions opts;
    opts.seed = seed;
    const auto result = fast::run_fast(g_, opts);
    EXPECT_LE(result.final_length, 24.0);
    if (result.final_length == 23.0) reached_23 = true;
  }
  EXPECT_TRUE(reached_23);
}

TEST_F(PaperExample, BaselineOrderingMatchesFigures2And3) {
  // Figures 2–3: MD produces the worst schedule; ETF and DLS produce the
  // same (intermediate) schedule; DSC is slightly better than ETF/DLS;
  // FAST's initial schedule (24) is the shortest.
  const sched::SchedulerOptions opts;
  const auto md = baselines::make_scheduler("MD")->run(g_, opts);
  const auto etf = baselines::make_scheduler("ETF")->run(g_, opts);
  const auto dls = baselines::make_scheduler("DLS")->run(g_, opts);
  const auto dsc = baselines::make_scheduler("DSC")->run(g_, opts);
  for (const auto* s : {&md, &etf, &dls, &dsc}) {
    EXPECT_TRUE(sched::is_valid(g_, *s));
  }
  EXPECT_EQ(etf.length(), dls.length());
  EXPECT_GT(md.length(), etf.length());
  EXPECT_GT(etf.length(), dsc.length());
  EXPECT_GT(dsc.length(), 24.0);
}

TEST_F(PaperExample, BlockingNodeListIsAllIbns) {
  // §4.3: the blocking-node list of the DAG is {n2, n3, n4, n5, n6, n8}.
  const auto result = fast::run_fast(g_);
  std::vector<NodeId> sorted = result.blocking_list;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted,
            (std::vector<NodeId>{n(2), n(3), n(4), n(5), n(6), n(8)}));
}

}  // namespace
}  // namespace fastsched
