#include "fast/parallel_fast.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

TEST(ParallelFast, EmptyGraph) {
  const TaskGraph g = graph::TaskGraphBuilder{}.build();
  const ParallelFastResult r = run_parallel_fast(g);
  EXPECT_EQ(r.final_length, 0.0);
}

TEST(ParallelFast, NeverWorseThanInitial) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    ParallelFastOptions opts;
    opts.seed = seed;
    opts.num_threads = 4;
    const ParallelFastResult r = run_parallel_fast(g, opts);
    EXPECT_LE(r.final_length, r.initial_length) << "seed " << seed;
  }
}

TEST(ParallelFast, DeterministicPerSeedAndThreadCount) {
  const TaskGraph g = testing::small_random(311);
  ParallelFastOptions opts;
  opts.seed = 13;
  opts.num_threads = 4;
  const ParallelFastResult a = run_parallel_fast(g, opts);
  const ParallelFastResult b = run_parallel_fast(g, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.final_length, b.final_length);
  EXPECT_EQ(a.winning_thread, b.winning_thread);
}

TEST(ParallelFast, NeverWorseThanSerialSameBudgetPerThread) {
  // Multi-start with T threads of MAXSTEP each explores a superset of what
  // any single walk would; the winner can't be worse than the shared
  // initial schedule, and in expectation beats serial FAST. We assert the
  // weaker deterministic property against the initial schedule plus
  // validity of the result.
  const TaskGraph g = testing::small_random(312);
  ParallelFastOptions opts;
  opts.seed = 13;
  opts.num_threads = 8;
  opts.max_steps_per_thread = 64;
  const ParallelFastResult r = run_parallel_fast(g, opts);
  AssignmentEvaluator eval(g, r.list, g.num_nodes());
  EXPECT_NEAR(eval.evaluate(r.assignment), r.final_length, 1e-9);
  EXPECT_TRUE(sched::is_valid(g, eval.materialize(r.assignment)));
}

TEST(ParallelFast, SingleThreadWorks) {
  const TaskGraph g = testing::small_random(313);
  ParallelFastOptions opts;
  opts.num_threads = 1;
  const ParallelFastResult r = run_parallel_fast(g, opts);
  EXPECT_EQ(r.winning_thread, 0u);
  EXPECT_LE(r.final_length, r.initial_length);
}

TEST(ParallelFast, SchedulerAdapterProducesValidSchedule) {
  const TaskGraph g = testing::small_random(314);
  ParallelFastScheduler scheduler;
  sched::SchedulerOptions so;
  const Schedule s = scheduler.run(g, so);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(scheduler.name(), "PFAST");
}

TEST(ParallelFast, RespectsProcessorBudget) {
  const TaskGraph g = testing::small_random(315);
  ParallelFastOptions opts;
  opts.num_procs = 4;
  const ParallelFastResult r = run_parallel_fast(g, opts);
  for (const ProcId p : r.assignment) EXPECT_LT(p, 4u);
}

}  // namespace
}  // namespace fastsched::fast
