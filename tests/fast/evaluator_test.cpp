#include "fast/evaluator.hpp"

#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

std::vector<NodeId> topo_list(const TaskGraph& g) {
  const auto topo = g.topological_order();
  return {topo.begin(), topo.end()};
}

TEST(Evaluator, SingleProcIsSerial) {
  const TaskGraph g = testing::chain(4, 2.0, 5.0);
  AssignmentEvaluator eval(g, topo_list(g), 1);
  const std::vector<ProcId> assignment(4, 0);
  EXPECT_EQ(eval.evaluate(assignment), 8.0);  // 4 * 2, comm zeroed
}

TEST(Evaluator, CrossProcChainPaysComm) {
  const TaskGraph g = testing::chain(2, 2.0, 5.0);
  AssignmentEvaluator eval(g, topo_list(g), 2);
  EXPECT_EQ(eval.evaluate(std::vector<ProcId>{0, 1}), 9.0);  // 2 + 5 + 2
  EXPECT_EQ(eval.evaluate(std::vector<ProcId>{0, 0}), 4.0);
}

TEST(Evaluator, ForkJoinBalancesAcrossProcs) {
  // root(1) -> 2 mids(1) -> sink(1), comm 0: two procs run mids in parallel.
  const TaskGraph g = testing::fork_join(2, 1.0, 0.0);
  AssignmentEvaluator eval(g, topo_list(g), 2);
  EXPECT_EQ(eval.evaluate(std::vector<ProcId>{0, 0, 1, 0}), 3.0);
  // All on one proc: serial = 4.
  EXPECT_EQ(eval.evaluate(std::vector<ProcId>{0, 0, 0, 0}), 4.0);
}

TEST(Evaluator, RepeatedEvaluationsAreIndependent) {
  const TaskGraph g = testing::small_random(51);
  AssignmentEvaluator eval(g, topo_list(g), 4);
  std::vector<ProcId> a(g.num_nodes(), 0);
  std::vector<ProcId> b(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) b[n] = n % 4;
  const Cost la1 = eval.evaluate(a);
  const Cost lb = eval.evaluate(b);
  const Cost la2 = eval.evaluate(a);
  EXPECT_EQ(la1, la2);  // scratch state fully reset between calls
  EXPECT_NE(la1, lb);   // (holds for this seed)
}

TEST(Evaluator, MaterializeMatchesEvaluate) {
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    AssignmentEvaluator eval(g, topo_list(g), 5);
    std::vector<ProcId> assignment(g.num_nodes());
    Rng rng(seed);
    for (auto& p : assignment) p = static_cast<ProcId>(rng.uniform(5));
    const Cost len = eval.evaluate(assignment);
    const Schedule s = eval.materialize(assignment);
    EXPECT_EQ(s.length(), len);
    EXPECT_TRUE(sched::is_valid(g, s)) << "seed " << seed;
  }
}

TEST(Evaluator, MaterializedScheduleUsesAssignedProcs) {
  const TaskGraph g = testing::chain(3, 1.0, 1.0);
  AssignmentEvaluator eval(g, topo_list(g), 3);
  const std::vector<ProcId> assignment{2, 0, 1};
  const Schedule s = eval.materialize(assignment);
  EXPECT_EQ(s.proc(0), 2u);
  EXPECT_EQ(s.proc(1), 0u);
  EXPECT_EQ(s.proc(2), 1u);
}

TEST(Evaluator, RejectsNonTopologicalList) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(AssignmentEvaluator(g, {2, 1, 0}, 2), Error);
}

TEST(Evaluator, RejectsZeroProcs) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(AssignmentEvaluator(g, topo_list(g), 0), Error);
}

TEST(Evaluator, ListOrderAffectsScheduleNotValidity) {
  // Both the plain topo order and the CPN-Dominate order must yield valid
  // schedules; lengths may differ.
  const TaskGraph g = testing::small_random(71);
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const auto cpn_list = build_cpn_dominate_list(g, levels, classes);

  std::vector<ProcId> assignment(g.num_nodes());
  Rng rng(71);
  for (auto& p : assignment) p = static_cast<ProcId>(rng.uniform(3));

  AssignmentEvaluator eval_a(g, topo_list(g), 3);
  AssignmentEvaluator eval_b(g, cpn_list, 3);
  EXPECT_TRUE(sched::is_valid(g, eval_a.materialize(assignment)));
  EXPECT_TRUE(sched::is_valid(g, eval_b.materialize(assignment)));
}

}  // namespace
}  // namespace fastsched::fast
