#include "fast/fast.hpp"

#include <gtest/gtest.h>

#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

TEST(Fast, EmptyGraph) {
  const TaskGraph g = graph::TaskGraphBuilder{}.build();
  const FastResult r = run_fast(g);
  EXPECT_TRUE(r.list.empty());
  EXPECT_EQ(r.final_length, 0.0);
}

TEST(Fast, SingleNode) {
  const TaskGraph g = testing::single(4.0);
  const FastResult r = run_fast(g);
  EXPECT_EQ(r.final_length, 4.0);
  EXPECT_TRUE(r.blocking_list.empty());  // the single node is the CP
}

TEST(Fast, SearchNeverWorsensInitial) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    FastOptions opts;
    opts.seed = seed;
    const FastResult r = run_fast(g, opts);
    EXPECT_LE(r.final_length, r.initial_length) << "seed " << seed;
  }
}

TEST(Fast, ProducesValidSchedules) {
  for (std::uint64_t seed = 220; seed < 235; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    FastOptions opts;
    opts.seed = seed;
    const FastResult r = run_fast(g, opts);
    const Schedule s = to_schedule(g, r, g.num_nodes());
    EXPECT_TRUE(sched::is_valid(g, s)) << "seed " << seed;
    EXPECT_EQ(s.length(), r.final_length);
  }
}

TEST(Fast, BlockingListIsIbnsAndObns) {
  const TaskGraph g = testing::small_random(240);
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const FastResult r = run_fast(g);
  std::size_t non_cpn = 0;
  for (const auto c : classes) {
    if (c != graph::NodeClass::kCpn) ++non_cpn;
  }
  EXPECT_EQ(r.blocking_list.size(), non_cpn);
  for (const NodeId n : r.blocking_list) {
    EXPECT_NE(classes[n], graph::NodeClass::kCpn);
  }
}

TEST(Fast, DeterministicPerSeed) {
  const TaskGraph g = testing::small_random(241);
  FastOptions opts;
  opts.seed = 99;
  const FastResult a = run_fast(g, opts);
  const FastResult b = run_fast(g, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.final_length, b.final_length);
}

TEST(Fast, MoreStepsNeverHurt) {
  const TaskGraph g = testing::small_random(242);
  FastOptions few;
  few.max_steps = 8;
  few.seed = 5;
  FastOptions many = few;
  many.max_steps = 512;
  // Same seed: the first 8 steps coincide, so more steps can only help.
  EXPECT_GE(run_fast(g, few).final_length, run_fast(g, many).final_length);
}

TEST(Fast, RespectsProcessorBudget) {
  const TaskGraph g = testing::small_random(243);
  FastOptions opts;
  opts.num_procs = 3;
  const FastResult r = run_fast(g, opts);
  for (const ProcId p : r.assignment) EXPECT_LT(p, 3u);
}

TEST(Fast, SchedulerAdapterMatchesRunFast) {
  const TaskGraph g = testing::small_random(244);
  FastOptions opts;
  opts.seed = 17;
  const FastResult r = run_fast(g, opts);

  FastScheduler scheduler;
  sched::SchedulerOptions so;
  so.seed = 17;
  const Schedule s = scheduler.run(g, so);
  EXPECT_EQ(s.length(), r.final_length);
  EXPECT_EQ(scheduler.name(), "FAST");
  EXPECT_FALSE(scheduler.unbounded_processors());
}

TEST(Fast, AlternativeListPoliciesStillValid) {
  const TaskGraph g = testing::small_random(245);
  for (const ListPolicy policy :
       {ListPolicy::kBLevel, ListPolicy::kTLevel, ListPolicy::kStaticLevel}) {
    FastOptions opts;
    opts.list_policy = policy;
    const FastResult r = run_fast(g, opts);
    const Schedule s = to_schedule(g, r, g.num_nodes());
    EXPECT_TRUE(sched::is_valid(g, s));
  }
}

}  // namespace
}  // namespace fastsched::fast
