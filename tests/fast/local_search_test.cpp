#include "fast/local_search.hpp"

#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "fast/initial_schedule.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

struct SearchState {
  std::vector<NodeId> list;
  std::vector<NodeId> blocking;
  std::vector<ProcId> assignment;
  Cost length = 0;
};

SearchState make_state(const TaskGraph& g, std::size_t procs) {
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  SearchState s;
  s.list = build_cpn_dominate_list(g, levels, classes);
  for (const NodeId n : s.list) {
    if (classes[n] != graph::NodeClass::kCpn) s.blocking.push_back(n);
  }
  auto initial = initial_schedule(g, s.list, procs);
  s.assignment = std::move(initial.assignment);
  s.length = initial.length;
  return s;
}

TEST(LocalSearch, NeverWorsens) {
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    SearchState s = make_state(g, 6);
    IncrementalEvaluator eval(g, s.list, 6);
    Rng rng(seed);
    LocalSearchOptions opts;
    opts.max_steps = 64;
    const auto stats =
        local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
    EXPECT_LE(stats.final_length, stats.initial_length) << "seed " << seed;
    EXPECT_NEAR(eval.reset(s.assignment), s.length, 1e-9);
    EXPECT_TRUE(sched::is_valid(g, eval.materialize(s.assignment)));
  }
}

TEST(LocalSearch, IsDeterministicPerSeed) {
  const TaskGraph g = testing::small_random(120);
  const SearchState base = make_state(g, 6);
  LocalSearchOptions opts;
  opts.max_steps = 128;

  const auto run = [&](std::uint64_t seed) {
    SearchState s = base;
    IncrementalEvaluator eval(g, s.list, 6);
    Rng rng(seed);
    local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
    return s;
  };
  const SearchState a = run(7);
  const SearchState b = run(7);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.length, b.length);
}

TEST(LocalSearch, ZeroStepsIsNoOp) {
  const TaskGraph g = testing::small_random(121);
  SearchState s = make_state(g, 6);
  const auto before = s.assignment;
  IncrementalEvaluator eval(g, s.list, 6);
  Rng rng(1);
  LocalSearchOptions opts;
  opts.max_steps = 0;
  const auto stats =
      local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
  EXPECT_EQ(stats.steps, 0);
  EXPECT_EQ(s.assignment, before);
}

TEST(LocalSearch, EmptyBlockingListIsNoOp) {
  const TaskGraph g = testing::chain(4);  // chain: all nodes are CPNs
  SearchState s = make_state(g, 4);
  EXPECT_TRUE(s.blocking.empty());
  const auto before = s.assignment;
  IncrementalEvaluator eval(g, s.list, 4);
  Rng rng(1);
  const auto stats = local_search(eval, s.blocking, s.assignment, s.length,
                                  LocalSearchOptions{}, rng);
  EXPECT_EQ(stats.steps, 0);
  EXPECT_EQ(s.assignment, before);
}

TEST(LocalSearch, SingleProcessorIsNoOp) {
  const TaskGraph g = testing::small_random(122);
  SearchState s = make_state(g, 1);
  IncrementalEvaluator eval(g, s.list, 1);
  Rng rng(1);
  const auto stats = local_search(eval, s.blocking, s.assignment, s.length,
                                  LocalSearchOptions{}, rng);
  EXPECT_EQ(stats.steps, 0);
}

TEST(LocalSearch, FindsAnObviousImprovement) {
  // Asymmetric fork-join with free comm (one heavy branch is the unique
  // CP; the light branches are IBNs), everything forced onto one
  // processor: the search must discover that spreading the IBNs helps.
  graph::TaskGraphBuilder builder;
  const auto root = builder.add_node(3);
  const auto heavy = builder.add_node(3);
  const auto l1 = builder.add_node(2);
  const auto l2 = builder.add_node(2);
  const auto l3 = builder.add_node(2);
  const auto sink = builder.add_node(3);
  for (const auto mid : {heavy, l1, l2, l3}) {
    builder.add_edge(root, mid, 0.0);
    builder.add_edge(mid, sink, 0.0);
  }
  const TaskGraph g = builder.build();
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  const auto list = build_cpn_dominate_list(g, levels, classes);
  std::vector<NodeId> blocking;
  for (const NodeId n : list) {
    if (classes[n] != graph::NodeClass::kCpn) blocking.push_back(n);
  }
  ASSERT_FALSE(blocking.empty());

  IncrementalEvaluator eval(g, list, 4);
  std::vector<ProcId> assignment(g.num_nodes(), 0);  // all serial
  Cost length = eval.reset(assignment);
  ASSERT_EQ(length, 15.0);  // 3+3+2+2+2+3 serial

  Rng rng(3);
  LocalSearchOptions opts;
  opts.max_steps = 500;
  const auto stats =
      local_search(eval, blocking, assignment, length, opts, rng);
  EXPECT_LT(stats.final_length, 15.0);
  EXPECT_GT(stats.improvements, 0);
}

TEST(LocalSearch, StatsAreConsistent) {
  const TaskGraph g = testing::small_random(123);
  SearchState s = make_state(g, 6);
  const Cost initial = s.length;
  IncrementalEvaluator eval(g, s.list, 6);
  Rng rng(5);
  LocalSearchOptions opts;
  opts.max_steps = 200;
  const auto stats =
      local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
  EXPECT_EQ(stats.steps, 200);
  EXPECT_EQ(stats.initial_length, initial);
  EXPECT_EQ(stats.final_length, s.length);
  EXPECT_GE(stats.improvements, 0);
}

TEST(LocalSearch, BestProcPolicyAtLeastAsGoodPerStep) {
  // Steepest-descent over processors with the same step count cannot end
  // worse than where it started and must track `length` correctly.
  const TaskGraph g = testing::small_random(124);
  SearchState s = make_state(g, 6);
  IncrementalEvaluator eval(g, s.list, 6);
  Rng rng(9);
  LocalSearchOptions opts;
  opts.max_steps = 32;
  opts.policy = NeighborhoodPolicy::kBestProcForRandomBlocking;
  const auto stats =
      local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
  EXPECT_LE(stats.final_length, stats.initial_length);
  EXPECT_NEAR(eval.reset(s.assignment), s.length, 1e-9);
}

TEST(LocalSearch, RandomNodePolicyMayMoveCpns) {
  const TaskGraph g = testing::small_random(125);
  SearchState s = make_state(g, 6);
  IncrementalEvaluator eval(g, s.list, 6);
  Rng rng(11);
  LocalSearchOptions opts;
  opts.max_steps = 200;
  opts.policy = NeighborhoodPolicy::kRandomNodeRandomProc;
  const auto stats =
      local_search(eval, s.blocking, s.assignment, s.length, opts, rng);
  EXPECT_LE(stats.final_length, stats.initial_length);
  EXPECT_TRUE(sched::is_valid(g, eval.materialize(s.assignment)));
}

}  // namespace
}  // namespace fastsched::fast
