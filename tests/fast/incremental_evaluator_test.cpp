#include "fast/incremental_evaluator.hpp"

#include <gtest/gtest.h>

#include "fast/evaluator.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

std::vector<NodeId> topo_list(const TaskGraph& g) {
  const auto topo = g.topological_order();
  return {topo.begin(), topo.end()};
}

std::vector<ProcId> random_assignment(const TaskGraph& g, std::size_t procs,
                                      Rng& rng) {
  std::vector<ProcId> a(g.num_nodes());
  for (auto& p : a) p = static_cast<ProcId>(rng.uniform(procs));
  return a;
}

TEST(IncrementalEvaluator, ResetMatchesFullScanBitwise) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              IncrementalEvaluator::kAutoInterval}) {
    for (std::uint64_t seed = 300; seed < 306; ++seed) {
      const TaskGraph g = testing::small_random(seed);
      AssignmentEvaluator oracle(g, topo_list(g), 5);
      IncrementalEvaluator inc(g, topo_list(g), 5, k);
      Rng rng(seed);
      const auto a = random_assignment(g, 5, rng);
      EXPECT_EQ(inc.reset(a), oracle.evaluate(a)) << "seed " << seed;
      EXPECT_EQ(inc.length(), oracle.evaluate(a));
    }
  }
}

TEST(IncrementalEvaluator, UnboundedMoveMatchesOracleBitwise) {
  const TaskGraph g = testing::small_random(310);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 3);
  Rng rng(310);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 100; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    const auto got = inc.evaluate_move(n, target);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, oracle.evaluate(trial)) << "step " << step;
    inc.revert();
  }
}

TEST(IncrementalEvaluator, BoundedMoveAgreesWithDefinitelyLess) {
  const TaskGraph g = testing::small_random(311);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 5);
  Rng rng(311);
  auto a = random_assignment(g, 4, rng);
  const Cost incumbent = inc.reset(a);
  int rejected = 0;
  for (int step = 0; step < 200; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    const Cost exact = oracle.evaluate(trial);
    const auto got = inc.evaluate_move(n, target, incumbent);
    if (graph::definitely_less(exact, incumbent)) {
      ASSERT_TRUE(got.has_value()) << "step " << step;
      EXPECT_EQ(*got, exact);
    } else {
      EXPECT_FALSE(got.has_value()) << "step " << step;
      ++rejected;
    }
    inc.revert();
  }
  EXPECT_GT(rejected, 0);  // the bound actually fired for this seed
  EXPECT_EQ(inc.counters().early_rejected, static_cast<std::uint64_t>(rejected));
}

TEST(IncrementalEvaluator, CommitAdvancesCommittedStateExactly) {
  const TaskGraph g = testing::small_random(312);
  AssignmentEvaluator oracle(g, topo_list(g), 6);
  IncrementalEvaluator inc(g, topo_list(g), 6, 4);
  Rng rng(312);
  auto a = random_assignment(g, 6, rng);
  inc.reset(a);
  for (int step = 0; step < 60; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(6));
    const auto got = inc.evaluate_move(n, target);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(inc.commit(), *got);
    a[n] = target;
    // Committed state must now be indistinguishable from a fresh scan.
    EXPECT_EQ(inc.length(), oracle.evaluate(a)) << "step " << step;
    ASSERT_EQ(inc.assignment().size(), a.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), inc.assignment().begin()));
  }
}

TEST(IncrementalEvaluator, RevertIsANoOpOnCommittedState) {
  const TaskGraph g = testing::small_random(313);
  IncrementalEvaluator inc(g, topo_list(g), 4, 2);
  Rng rng(313);
  const auto a = random_assignment(g, 4, rng);
  const Cost len = inc.reset(a);
  for (int step = 0; step < 40; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    (void)inc.evaluate_move(n, target);
    inc.revert();
    EXPECT_EQ(inc.length(), len);
  }
  // A later accepted move still sees pristine committed state.
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  const NodeId n = 0;
  auto trial = a;
  trial[n] = 3;
  const auto got = inc.evaluate_move(n, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, oracle.evaluate(trial));
}

TEST(IncrementalEvaluator, PendingStartMatchesMaterializedSchedule) {
  const TaskGraph g = testing::small_random(314);
  IncrementalEvaluator inc(g, topo_list(g), 4, 3);
  Rng rng(314);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 40; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    ASSERT_TRUE(inc.evaluate_move(n, target).has_value());
    const Schedule s = inc.materialize(trial);
    EXPECT_EQ(inc.pending_start(), s.start(n)) << "step " << step;
    inc.revert();
  }
}

TEST(IncrementalEvaluator, RescoreMatchesResetBitwise) {
  const TaskGraph g = testing::small_random(315);
  AssignmentEvaluator oracle(g, topo_list(g), 5);
  IncrementalEvaluator inc(g, topo_list(g), 5, 4);
  Rng rng(315);
  auto a = random_assignment(g, 5, rng);
  inc.reset(a);
  for (int step = 0; step < 30; ++step) {
    // Mutate a random subset (sometimes nothing, sometimes a lot).
    auto b = a;
    const std::size_t flips = rng.uniform(g.num_nodes() / 2);
    for (std::size_t i = 0; i < flips; ++i) {
      b[rng.uniform(g.num_nodes())] = static_cast<ProcId>(rng.uniform(5));
    }
    EXPECT_EQ(inc.rescore(b), oracle.evaluate(b)) << "step " << step;
    a = std::move(b);
  }
}

TEST(IncrementalEvaluator, InterleavedLifecycleStaysConsistent) {
  // evaluate / commit / revert / rescore / reset in one stream, checked
  // against the oracle after every committed transition.
  const TaskGraph g = testing::small_random(316);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 2);
  Rng rng(316);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 120; ++step) {
    const auto op = rng.uniform(10);
    if (op < 6) {
      const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
      const ProcId target = static_cast<ProcId>(rng.uniform(4));
      const auto got = inc.evaluate_move(n, target);
      ASSERT_TRUE(got.has_value());
      if (rng.bernoulli(0.5)) {
        inc.commit();
        a[n] = target;
      } else {
        inc.revert();
      }
    } else if (op < 8) {
      auto b = random_assignment(g, 4, rng);
      inc.rescore(b);
      a = std::move(b);
    } else {
      a = random_assignment(g, 4, rng);
      inc.reset(a);
    }
    EXPECT_EQ(inc.length(), oracle.evaluate(a)) << "step " << step;
  }
}

TEST(IncrementalEvaluator, MaterializeMatchesAssignmentEvaluator) {
  const TaskGraph g = testing::small_random(317);
  AssignmentEvaluator oracle(g, topo_list(g), 5);
  IncrementalEvaluator inc(g, topo_list(g), 5);
  Rng rng(317);
  const auto a = random_assignment(g, 5, rng);
  const Schedule expect = oracle.materialize(a);
  const Schedule got = inc.materialize(a);
  ASSERT_EQ(got.num_procs(), expect.num_procs());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(got.proc(n), expect.proc(n));
    EXPECT_EQ(got.start(n), expect.start(n));
    EXPECT_EQ(got.finish(n), expect.finish(n));
  }
  EXPECT_TRUE(sched::is_valid(g, got));
}

TEST(IncrementalEvaluator, EarlyRejectionScansFewerPositions) {
  // With the incumbent as the bound, a move near the end of the list of a
  // long chain gets rejected after a handful of positions.
  const TaskGraph g = testing::chain(256, 1.0, 5.0);
  IncrementalEvaluator inc(g, topo_list(g), 2, 32);
  const std::vector<ProcId> serial(g.num_nodes(), 0);
  const Cost len = inc.reset(serial);
  // Moving a late chain node cross-proc adds comm: certain rejection.
  EXPECT_FALSE(inc.evaluate_move(250, 1, len).has_value());
  EXPECT_EQ(inc.counters().early_rejected, 1u);
  // The scan started at the checkpoint below pos 250 and aborted well
  // before the end of the 256-node list.
  EXPECT_LT(inc.counters().positions_scanned, 30u);
}

TEST(IncrementalEvaluator, CountersTrackWork) {
  const TaskGraph g = testing::small_random(318);
  IncrementalEvaluator inc(g, topo_list(g), 4);
  Rng rng(318);
  inc.reset(random_assignment(g, 4, rng));
  ASSERT_TRUE(inc.evaluate_move(0, 1).has_value());
  inc.commit();
  ASSERT_TRUE(inc.evaluate_move(1, 2).has_value());
  inc.revert();
  EXPECT_EQ(inc.counters().moves, 2u);
  EXPECT_EQ(inc.counters().commits, 1u);
  EXPECT_GT(inc.counters().positions_scanned, 0u);
}

TEST(IncrementalEvaluator, RejectsNonTopologicalList) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(IncrementalEvaluator(g, {2, 1, 0}, 2), Error);
}

TEST(IncrementalEvaluator, RejectsZeroProcs) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(IncrementalEvaluator(g, topo_list(g), 0), Error);
}

TEST(IncrementalEvaluator, AutoIntervalBoundsCheckpointMemory) {
  const TaskGraph g = testing::small_random(319);
  IncrementalEvaluator small_pool(g, topo_list(g), 4);
  EXPECT_EQ(small_pool.checkpoint_interval(), 32u);
  IncrementalEvaluator big_pool(g, topo_list(g), 4096);
  EXPECT_EQ(big_pool.checkpoint_interval(), 512u);  // p / 8
}

}  // namespace
}  // namespace fastsched::fast
