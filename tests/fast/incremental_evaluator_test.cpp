#include "fast/incremental_evaluator.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/bounds.hpp"
#include "fast/evaluator.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

std::vector<NodeId> topo_list(const TaskGraph& g) {
  const auto topo = g.topological_order();
  return {topo.begin(), topo.end()};
}

std::vector<ProcId> random_assignment(const TaskGraph& g, std::size_t procs,
                                      Rng& rng) {
  std::vector<ProcId> a(g.num_nodes());
  for (auto& p : a) p = static_cast<ProcId>(rng.uniform(procs));
  return a;
}

TEST(IncrementalEvaluator, ResetMatchesFullScanBitwise) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              IncrementalEvaluator::kAutoInterval}) {
    for (std::uint64_t seed = 300; seed < 306; ++seed) {
      const TaskGraph g = testing::small_random(seed);
      AssignmentEvaluator oracle(g, topo_list(g), 5);
      IncrementalEvaluator inc(g, topo_list(g), 5, k);
      Rng rng(seed);
      const auto a = random_assignment(g, 5, rng);
      EXPECT_EQ(inc.reset(a), oracle.evaluate(a)) << "seed " << seed;
      EXPECT_EQ(inc.length(), oracle.evaluate(a));
    }
  }
}

TEST(IncrementalEvaluator, UnboundedMoveMatchesOracleBitwise) {
  const TaskGraph g = testing::small_random(310);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 3);
  Rng rng(310);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 100; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    const auto got = inc.evaluate_move(n, target);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, oracle.evaluate(trial)) << "step " << step;
    inc.revert();
  }
}

TEST(IncrementalEvaluator, BoundedMoveAgreesWithDefinitelyLess) {
  const TaskGraph g = testing::small_random(311);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 5);
  Rng rng(311);
  auto a = random_assignment(g, 4, rng);
  const Cost incumbent = inc.reset(a);
  int rejected = 0;
  for (int step = 0; step < 200; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    const Cost exact = oracle.evaluate(trial);
    const auto got = inc.evaluate_move(n, target, incumbent);
    if (graph::definitely_less(exact, incumbent)) {
      ASSERT_TRUE(got.has_value()) << "step " << step;
      EXPECT_EQ(*got, exact);
    } else {
      EXPECT_FALSE(got.has_value()) << "step " << step;
      ++rejected;
    }
    inc.revert();
  }
  EXPECT_GT(rejected, 0);  // the bound actually fired for this seed
  EXPECT_EQ(inc.counters().early_rejected, static_cast<std::uint64_t>(rejected));
}

TEST(IncrementalEvaluator, CommitAdvancesCommittedStateExactly) {
  const TaskGraph g = testing::small_random(312);
  AssignmentEvaluator oracle(g, topo_list(g), 6);
  IncrementalEvaluator inc(g, topo_list(g), 6, 4);
  Rng rng(312);
  auto a = random_assignment(g, 6, rng);
  inc.reset(a);
  for (int step = 0; step < 60; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(6));
    const auto got = inc.evaluate_move(n, target);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(inc.commit(), *got);
    a[n] = target;
    // Committed state must now be indistinguishable from a fresh scan.
    EXPECT_EQ(inc.length(), oracle.evaluate(a)) << "step " << step;
    ASSERT_EQ(inc.assignment().size(), a.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), inc.assignment().begin()));
  }
}

TEST(IncrementalEvaluator, RevertIsANoOpOnCommittedState) {
  const TaskGraph g = testing::small_random(313);
  IncrementalEvaluator inc(g, topo_list(g), 4, 2);
  Rng rng(313);
  const auto a = random_assignment(g, 4, rng);
  const Cost len = inc.reset(a);
  for (int step = 0; step < 40; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    (void)inc.evaluate_move(n, target);
    inc.revert();
    EXPECT_EQ(inc.length(), len);
  }
  // A later accepted move still sees pristine committed state.
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  const NodeId n = 0;
  auto trial = a;
  trial[n] = 3;
  const auto got = inc.evaluate_move(n, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, oracle.evaluate(trial));
}

TEST(IncrementalEvaluator, PendingStartMatchesMaterializedSchedule) {
  const TaskGraph g = testing::small_random(314);
  IncrementalEvaluator inc(g, topo_list(g), 4, 3);
  Rng rng(314);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 40; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    ASSERT_TRUE(inc.evaluate_move(n, target).has_value());
    const Schedule s = inc.materialize(trial);
    EXPECT_EQ(inc.pending_start(), s.start(n)) << "step " << step;
    inc.revert();
  }
}

TEST(IncrementalEvaluator, RescoreMatchesResetBitwise) {
  const TaskGraph g = testing::small_random(315);
  AssignmentEvaluator oracle(g, topo_list(g), 5);
  IncrementalEvaluator inc(g, topo_list(g), 5, 4);
  Rng rng(315);
  auto a = random_assignment(g, 5, rng);
  inc.reset(a);
  for (int step = 0; step < 30; ++step) {
    // Mutate a random subset (sometimes nothing, sometimes a lot).
    auto b = a;
    const std::size_t flips = rng.uniform(g.num_nodes() / 2);
    for (std::size_t i = 0; i < flips; ++i) {
      b[rng.uniform(g.num_nodes())] = static_cast<ProcId>(rng.uniform(5));
    }
    EXPECT_EQ(inc.rescore(b), oracle.evaluate(b)) << "step " << step;
    a = std::move(b);
  }
}

TEST(IncrementalEvaluator, InterleavedLifecycleStaysConsistent) {
  // evaluate / commit / revert / rescore / reset in one stream, checked
  // against the oracle after every committed transition.
  const TaskGraph g = testing::small_random(316);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 2);
  Rng rng(316);
  auto a = random_assignment(g, 4, rng);
  inc.reset(a);
  for (int step = 0; step < 120; ++step) {
    const auto op = rng.uniform(10);
    if (op < 6) {
      const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
      const ProcId target = static_cast<ProcId>(rng.uniform(4));
      const auto got = inc.evaluate_move(n, target);
      ASSERT_TRUE(got.has_value());
      if (rng.bernoulli(0.5)) {
        inc.commit();
        a[n] = target;
      } else {
        inc.revert();
      }
    } else if (op < 8) {
      auto b = random_assignment(g, 4, rng);
      inc.rescore(b);
      a = std::move(b);
    } else {
      a = random_assignment(g, 4, rng);
      inc.reset(a);
    }
    EXPECT_EQ(inc.length(), oracle.evaluate(a)) << "step " << step;
  }
}

TEST(IncrementalEvaluator, MaterializeMatchesAssignmentEvaluator) {
  const TaskGraph g = testing::small_random(317);
  AssignmentEvaluator oracle(g, topo_list(g), 5);
  IncrementalEvaluator inc(g, topo_list(g), 5);
  Rng rng(317);
  const auto a = random_assignment(g, 5, rng);
  const Schedule expect = oracle.materialize(a);
  const Schedule got = inc.materialize(a);
  ASSERT_EQ(got.num_procs(), expect.num_procs());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(got.proc(n), expect.proc(n));
    EXPECT_EQ(got.start(n), expect.start(n));
    EXPECT_EQ(got.finish(n), expect.finish(n));
  }
  EXPECT_TRUE(sched::is_valid(g, got));
}

TEST(IncrementalEvaluator, EarlyRejectionScansFewerPositions) {
  // With the incumbent as the bound, a move near the end of the list of a
  // long chain gets rejected after a handful of positions.
  const TaskGraph g = testing::chain(256, 1.0, 5.0);
  IncrementalEvaluator inc(g, topo_list(g), 2, 32);
  const std::vector<ProcId> serial(g.num_nodes(), 0);
  const Cost len = inc.reset(serial);
  // Moving a late chain node cross-proc adds comm: certain rejection.
  EXPECT_FALSE(inc.evaluate_move(250, 1, len).has_value());
  EXPECT_EQ(inc.counters().early_rejected, 1u);
  // The scan started at the checkpoint below pos 250 and aborted well
  // before the end of the 256-node list.
  EXPECT_LT(inc.counters().positions_scanned, 30u);
}

TEST(IncrementalEvaluator, CountersTrackWork) {
  const TaskGraph g = testing::small_random(318);
  IncrementalEvaluator inc(g, topo_list(g), 4);
  Rng rng(318);
  inc.reset(random_assignment(g, 4, rng));
  ASSERT_TRUE(inc.evaluate_move(0, 1).has_value());
  inc.commit();
  ASSERT_TRUE(inc.evaluate_move(1, 2).has_value());
  inc.revert();
  EXPECT_EQ(inc.counters().moves, 2u);
  EXPECT_EQ(inc.counters().commits, 1u);
  EXPECT_GT(inc.counters().positions_scanned, 0u);
}

TEST(IncrementalEvaluator, RejectsNonTopologicalList) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(IncrementalEvaluator(g, {2, 1, 0}, 2), Error);
}

TEST(IncrementalEvaluator, RejectsZeroProcs) {
  const TaskGraph g = testing::chain(3);
  EXPECT_THROW(IncrementalEvaluator(g, topo_list(g), 0), Error);
}

TEST(IncrementalEvaluator, AutoIntervalBoundsCheckpointMemory) {
  const TaskGraph g = testing::small_random(319);
  IncrementalEvaluator small_pool(g, topo_list(g), 4);
  EXPECT_EQ(small_pool.checkpoint_interval(), 32u);
  IncrementalEvaluator big_pool(g, topo_list(g), 4096);
  EXPECT_EQ(big_pool.checkpoint_interval(), 512u);  // p / 8
}

TEST(IncrementalEvaluator, RescoreResetsOutcomeCounters) {
  const TaskGraph g = testing::small_random(320);
  IncrementalEvaluator inc(g, topo_list(g), 4);
  Rng rng(320);
  auto a = random_assignment(g, 4, rng);
  const Cost length = inc.reset(a);
  // An unbeatable bound forces an early rejection; an unbounded probe
  // that reaches stability may also record a convergence.
  EXPECT_FALSE(inc.evaluate_move(0, (a[0] + 1) % 4, length * 0.5).has_value());
  inc.revert();
  ASSERT_TRUE(inc.evaluate_move(0, (a[0] + 1) % 4).has_value());
  inc.commit();
  a[0] = (a[0] + 1) % 4;
  EXPECT_GE(inc.counters().early_rejected, 1u);
  const std::uint64_t moves_before = inc.counters().moves;

  // rescore() with a changed assignment: outcome tallies zeroed, lifetime
  // counters preserved, so phase telemetry reflects only the new phase.
  a[1] = (a[1] + 1) % 4;
  inc.rescore(a);
  EXPECT_EQ(inc.counters().early_rejected, 0u);
  EXPECT_EQ(inc.counters().converged, 0u);
  EXPECT_EQ(inc.counters().moves, moves_before);
  EXPECT_EQ(inc.counters().rescores, 1u);

  // The no-change fast path must reset the tallies too.
  EXPECT_FALSE(inc.evaluate_move(2, (a[2] + 1) % 4, length * 0.5).has_value());
  inc.revert();
  EXPECT_GE(inc.counters().early_rejected, 1u);
  inc.rescore(a);
  EXPECT_EQ(inc.counters().early_rejected, 0u);
  EXPECT_EQ(inc.counters().converged, 0u);
  EXPECT_EQ(inc.counters().rescores, 2u);
}

TEST(IncrementalEvaluator, EnvOverrideSelectsPolicy) {
  const TaskGraph g = testing::small_random(321);
  ASSERT_EQ(setenv("FASTSCHED_REPLAY", "event", 1), 0);
  IncrementalEvaluator forced(g, topo_list(g), 4, 3,
                              ReplayPolicy::kContiguous);
  EXPECT_EQ(forced.policy(), ReplayPolicy::kEvent);
  ASSERT_EQ(setenv("FASTSCHED_REPLAY", "contiguous", 1), 0);
  IncrementalEvaluator back(g, topo_list(g), 4, 3, ReplayPolicy::kAuto);
  EXPECT_EQ(back.policy(), ReplayPolicy::kContiguous);
  ASSERT_EQ(setenv("FASTSCHED_REPLAY", "auto", 1), 0);
  IncrementalEvaluator open(g, topo_list(g), 4, 3,
                            ReplayPolicy::kContiguous);
  EXPECT_EQ(open.policy(), ReplayPolicy::kAuto);
  // A typo'd value must fail loudly, not fall back silently.
  ASSERT_EQ(setenv("FASTSCHED_REPLAY", "evnet", 1), 0);
  EXPECT_THROW(IncrementalEvaluator(g, topo_list(g), 4, 3), Error);
  ASSERT_EQ(unsetenv("FASTSCHED_REPLAY"), 0);
  IncrementalEvaluator plain(g, topo_list(g), 4, 3,
                             ReplayPolicy::kEvent);
  EXPECT_EQ(plain.policy(), ReplayPolicy::kEvent);
  // set_policy wins over both the constructor and the environment.
  plain.set_policy(ReplayPolicy::kContiguous);
  EXPECT_EQ(plain.policy(), ReplayPolicy::kContiguous);
}

TEST(IncrementalEvaluator, EventPolicyLifecycleMatchesOracle) {
  const TaskGraph g = testing::small_random(322, 120, 2.0);
  AssignmentEvaluator oracle(g, topo_list(g), 4);
  IncrementalEvaluator inc(g, topo_list(g), 4, 5, ReplayPolicy::kEvent);
  Rng rng(322);
  auto a = random_assignment(g, 4, rng);
  Cost length = inc.reset(a);
  EXPECT_EQ(length, oracle.evaluate(a));
  for (int step = 0; step < 120; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    auto trial = a;
    trial[n] = target;
    const auto got = inc.evaluate_move(n, target);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, oracle.evaluate(trial)) << "step " << step;
    if (graph::definitely_less(*got, length)) {
      length = inc.commit();
      a = trial;
    } else {
      inc.revert();
    }
    if (step % 40 == 39) {
      a[step % a.size()] = static_cast<ProcId>(rng.uniform(4));
      length = inc.rescore(a);
      EXPECT_EQ(length, oracle.evaluate(a));
    }
  }
  EXPECT_EQ(inc.counters().event_moves, inc.counters().moves);
  EXPECT_GT(inc.counters().event_processed, 0u);
}

TEST(IncrementalEvaluator, ConeSizesMatchBruteForceReachability) {
  const TaskGraph g = testing::small_random(329, 120, 1.0, 3.0);
  IncrementalEvaluator inc(g, topo_list(g), 4);
  const auto cones = inc.cone_sizes();
  ASSERT_EQ(cones.size(), g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    // |proper descendants| by a plain DFS.
    std::vector<char> seen(g.num_nodes(), 0);
    std::vector<NodeId> stack{n};
    std::size_t reached = 0;
    while (!stack.empty()) {
      const NodeId m = stack.back();
      stack.pop_back();
      for (const graph::Adjacency& s : g.successors(m)) {
        if (seen[s.node] != 0) continue;
        seen[s.node] = 1;
        ++reached;
        stack.push_back(s.node);
      }
    }
    EXPECT_EQ(cones[n], reached) << "node " << n;
  }
}

TEST(IncrementalEvaluator, AutoPicksEventOnSparseGraphs) {
  // Sparse, wide graph: a front-of-list move leaves a long suffix but
  // touches few nodes, exactly the regime the auto heuristic targets.
  const TaskGraph g = testing::small_random(323, 2000, 1.0, 2.0);
  IncrementalEvaluator inc(g, topo_list(g), 8);
  ASSERT_EQ(inc.policy(), ReplayPolicy::kAuto);
  Rng rng(323);
  auto a = random_assignment(g, 8, rng);
  inc.reset(a);
  for (int step = 0; step < 60; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(32));
    ASSERT_TRUE(inc.evaluate_move(n, static_cast<ProcId>(rng.uniform(8)))
                    .has_value());
    inc.revert();
  }
  EXPECT_GT(inc.counters().event_moves, 0u);
  // The point of the event path: far fewer worklist pops than the
  // suffix positions a contiguous restart would rescan.
  EXPECT_LT(inc.counters().event_processed / inc.counters().event_moves,
            g.num_nodes() / 4);
}

TEST(IncrementalEvaluator, RejectTailsPreserveDecisions) {
  const TaskGraph g = testing::small_random(324, 150, 5.0);
  IncrementalEvaluator bare(g, topo_list(g), 4, 5);
  IncrementalEvaluator sharpened(g, topo_list(g), 4, 5);
  auto tails = analysis::make_rejection_tails(g, 4);
  sharpened.set_reject_tails(std::move(tails.tail), tails.floor);
  Rng rng(324);
  auto a = random_assignment(g, 4, rng);
  const Cost incumbent = bare.reset(a);
  EXPECT_EQ(sharpened.reset(a), incumbent);
  for (int step = 0; step < 200; ++step) {
    const NodeId n = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const ProcId target = static_cast<ProcId>(rng.uniform(4));
    const Cost bound = (step % 2 == 0) ? incumbent : incumbent * 0.9;
    const auto plain = bare.evaluate_move(n, target, bound);
    const auto sharp = sharpened.evaluate_move(n, target, bound);
    ASSERT_EQ(plain.has_value(), sharp.has_value()) << "step " << step;
    if (plain.has_value()) EXPECT_EQ(*plain, *sharp);
    bare.revert();
    sharpened.revert();
  }
  // The backward bounds may only cut scans shorter, never longer.
  EXPECT_LE(sharpened.counters().positions_scanned,
            bare.counters().positions_scanned);
}

}  // namespace
}  // namespace fastsched::fast
