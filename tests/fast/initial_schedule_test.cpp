#include "fast/initial_schedule.hpp"

#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

std::vector<NodeId> cpn_list(const TaskGraph& g) {
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  return build_cpn_dominate_list(g, levels, classes);
}

TEST(InitialSchedule, SingleNodeOnFirstProc) {
  const TaskGraph g = testing::single(3.0);
  const auto result = initial_schedule(g, cpn_list(g), 4);
  EXPECT_EQ(result.length, 3.0);
  EXPECT_EQ(result.assignment[0], 0u);
}

TEST(InitialSchedule, ChainStaysOnOneProcessor) {
  // Keeping a chain local always beats paying communication.
  const TaskGraph g = testing::chain(5, 2.0, 3.0);
  const auto result = initial_schedule(g, cpn_list(g), 5);
  for (const ProcId p : result.assignment) EXPECT_EQ(p, 0u);
  EXPECT_EQ(result.length, 10.0);
}

TEST(InitialSchedule, ZeroCommForkJoinSpreadsOut) {
  // With free communication, the two middle nodes run in parallel.
  const TaskGraph g = testing::fork_join(2, 1.0, 0.0);
  const auto result = initial_schedule(g, cpn_list(g), 4);
  EXPECT_EQ(result.length, 3.0);
  EXPECT_NE(result.assignment[1], result.assignment[2]);
}

TEST(InitialSchedule, ExpensiveCommForkJoinStaysLocal) {
  // Communication (100) dwarfs computation (1): everything serializes on
  // one processor for length 4 instead of paying 100 twice.
  const TaskGraph g = testing::fork_join(2, 1.0, 100.0);
  const auto result = initial_schedule(g, cpn_list(g), 4);
  EXPECT_EQ(result.length, 4.0);
  for (const ProcId p : result.assignment) EXPECT_EQ(p, result.assignment[0]);
}

TEST(InitialSchedule, RespectsProcessorBudget) {
  const TaskGraph g = testing::fork_join(8, 1.0, 0.0);
  const auto result = initial_schedule(g, cpn_list(g), 2);
  for (const ProcId p : result.assignment) EXPECT_LT(p, 2u);
}

TEST(InitialSchedule, SingleProcessorIsSerial) {
  const TaskGraph g = testing::small_random(81);
  const auto result = initial_schedule(g, cpn_list(g), 1);
  EXPECT_NEAR(result.length, g.total_work(), 1e-9);
}

TEST(InitialSchedule, MatchesEvaluatorLength) {
  for (std::uint64_t seed = 90; seed < 100; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const auto list = cpn_list(g);
    const auto result = initial_schedule(g, list, 8);
    AssignmentEvaluator eval(g, list, 8);
    EXPECT_NEAR(eval.evaluate(result.assignment), result.length, 1e-9)
        << "seed " << seed;
    EXPECT_TRUE(sched::is_valid(g, eval.materialize(result.assignment)));
  }
}

TEST(InitialSchedule, DisconnectedChainsUseSeparateProcs) {
  // Two independent chains: the second chain's entry has no parents, so it
  // must grab a fresh processor instead of queueing behind chain one.
  const TaskGraph g = testing::two_chains(3);
  const auto list = cpn_list(g);
  const auto result = initial_schedule(g, list, 4);
  EXPECT_EQ(result.length, 3.0);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(InitialSchedule, ParentlessNodesFallBackWhenPoolExhausted) {
  // 3 independent nodes, 2 processors: the third must reuse a processor
  // via the min-ready fallback rather than crash.
  graph::TaskGraphBuilder builder;
  builder.add_node(2);
  builder.add_node(4);
  builder.add_node(8);
  const TaskGraph g = builder.build();
  const auto result = initial_schedule(g, cpn_list(g), 2);
  EXPECT_LE(result.length, 10.0);
  for (const ProcId p : result.assignment) EXPECT_LT(p, 2u);
}

TEST(InitialSchedule, RejectsZeroProcessors) {
  const TaskGraph g = testing::chain(2);
  EXPECT_THROW((void)initial_schedule(g, cpn_list(g), 0), Error);
}

}  // namespace
}  // namespace fastsched::fast
