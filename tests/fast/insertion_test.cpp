#include <gtest/gtest.h>

#include "fast/cpn_dominate.hpp"
#include "fast/initial_schedule.hpp"
#include "graph/classification.hpp"
#include "sched/validation.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

std::vector<NodeId> cpn_list(const TaskGraph& g) {
  const auto levels = graph::compute_levels(g);
  const auto classes = graph::classify_nodes(g, levels);
  return build_cpn_dominate_list(g, levels, classes);
}

TEST(InitialScheduleInsertion, ProducesValidSchedules) {
  for (std::uint64_t seed = 960; seed < 970; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const auto s = initial_schedule_insertion(g, cpn_list(g), 8);
    EXPECT_TRUE(sched::is_valid(g, s)) << seed;
    EXPECT_TRUE(s.is_complete());
  }
}

TEST(InitialScheduleInsertion, NeverLongerThanReadyTimeVariant) {
  // Insertion explores a superset of the ready-time placements on each
  // candidate processor, so per-node starts (and hence the greedy result)
  // can only improve or tie for the same list.
  for (std::uint64_t seed = 970; seed < 980; ++seed) {
    const TaskGraph g = testing::small_random(seed, 80, 5.0, 4.0);
    const auto list = cpn_list(g);
    const auto ready = initial_schedule(g, list, 8);
    const auto ins = initial_schedule_insertion(g, list, 8);
    EXPECT_LE(ins.length(), ready.length * 1.05 + 1e-9) << seed;
  }
}

TEST(InitialScheduleInsertion, FillsGapsAChainCannotUse) {
  // A long task on P0 followed by a short independent task: insertion
  // tucks the short one into P0's idle prefix; ready-time cannot.
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(1);
  const auto b = builder.add_node(10);   // a -> b on the CP
  const auto c = builder.add_node(2);    // independent, listed last
  builder.add_edge(a, b, 0.0);
  (void)c;
  const TaskGraph g = builder.build();
  const auto list = cpn_list(g);
  const auto s = initial_schedule_insertion(g, list, 2);
  EXPECT_TRUE(sched::is_valid(g, s));
  EXPECT_EQ(s.length(), 11.0);
}

TEST(InitialScheduleInsertion, RespectsBudgetAndRejectsZero) {
  const TaskGraph g = testing::small_random(981);
  const auto list = cpn_list(g);
  const auto s = initial_schedule_insertion(g, list, 2);
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LT(s.proc(n), 2u);
  }
  EXPECT_THROW((void)initial_schedule_insertion(g, list, 0), Error);
}

}  // namespace
}  // namespace fastsched::fast
