// Race audit for the PFAST reduction (tentpole 3 of the correctness-tooling
// layer). Built as its own executable so the ThreadSanitizer job can build
// and run just this target; it also runs in the normal suite, where the
// assertions double as determinism regression tests.
//
// The properties stressed here are exactly the ones a data race would
// break first:
//   * bit-identical results across repeated runs with the same
//     (seed, thread-count) pair, at thread counts well above the core
//     count so preemption reorders the workers aggressively;
//   * monotone improvement in the thread count: streams are split from
//     the master RNG in thread-index order *before* spawning, so T
//     threads explore a strict superset of the walks of T' < T threads
//     and the reduced length can never get worse.

#include "fast/parallel_fast.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "analysis/lint.hpp"
#include "fast/evaluator.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

// At least 8 ways even on small CI boxes; oversubscribe real cores so the
// OS interleaves the workers as chaotically as possible.
std::size_t stress_threads() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(8, 2 * hw);
}

TEST(ParallelFastStress, DeterministicAcrossRepeatsAtMaximalThreadCount) {
  const std::size_t threads = stress_threads();
  for (const std::uint64_t graph_seed : {901u, 902u, 903u}) {
    const TaskGraph g = testing::small_random(graph_seed, 120, 1.0, 4.0);
    ParallelFastOptions opts;
    opts.seed = graph_seed;
    opts.num_threads = threads;
    opts.max_steps_per_thread = 32;

    const ParallelFastResult first = run_parallel_fast(g, opts);
    for (int repeat = 0; repeat < 4; ++repeat) {
      const ParallelFastResult again = run_parallel_fast(g, opts);
      ASSERT_EQ(again.assignment, first.assignment)
          << "graph seed " << graph_seed << ", repeat " << repeat << ", "
          << threads << " threads";
      ASSERT_EQ(again.final_length, first.final_length);
      ASSERT_EQ(again.winning_thread, first.winning_thread);
    }
  }
}

TEST(ParallelFastStress, MoreThreadsNeverLengthenTheSchedule) {
  // Thread t's RNG stream is split from the master before spawning and
  // depends only on t, so the walks of the first T' threads are identical
  // for every T >= T'. The reduction over a superset cannot be worse.
  const TaskGraph g = testing::small_random(910, 120, 1.0, 4.0);
  ParallelFastOptions opts;
  opts.seed = 7;
  opts.max_steps_per_thread = 32;

  double prev = 0.0;
  bool have_prev = false;
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    opts.num_threads = threads;
    const ParallelFastResult r = run_parallel_fast(g, opts);
    EXPECT_LE(r.final_length, r.initial_length) << threads << " threads";
    if (have_prev) {
      EXPECT_LE(r.final_length, prev + 1e-9)
          << "length got worse going to " << threads << " threads";
    }
    prev = r.final_length;
    have_prev = true;
  }
}

TEST(ParallelFastStress, WinnerMaterializesToALintCleanSchedule) {
  const std::size_t threads = stress_threads();
  for (const std::uint64_t graph_seed : {920u, 921u}) {
    const TaskGraph g = testing::small_random(graph_seed, 150, 2.0, 5.0);
    ParallelFastOptions opts;
    opts.seed = graph_seed;
    opts.num_threads = threads;
    opts.num_procs = 16;
    const ParallelFastResult r = run_parallel_fast(g, opts);

    AssignmentEvaluator eval(g, r.list, 16);
    const Schedule s = eval.materialize(r.assignment);
    EXPECT_NEAR(eval.evaluate(r.assignment), r.final_length, 1e-9);

    analysis::LintInput input;
    input.graph = &g;
    input.schedule = &s;
    input.list = &r.list;
    input.reported_length = r.final_length;
    const analysis::LintReport report = analysis::lint(input);
    EXPECT_TRUE(report.clean())
        << "graph seed " << graph_seed << ": "
        << (report.diagnostics.empty()
                ? std::string()
                : analysis::format(report.diagnostics.front(), &g));
  }
}

TEST(ParallelFastStress, ManyConcurrentReductionsStayIndependent) {
  // Several run_parallel_fast calls racing against each other from outer
  // threads: catches any hidden global state shared between runs.
  const TaskGraph g = testing::small_random(930, 100, 1.0, 4.0);
  ParallelFastOptions opts;
  opts.seed = 5;
  opts.num_threads = 8;
  opts.max_steps_per_thread = 16;
  const ParallelFastResult expected = run_parallel_fast(g, opts);

  constexpr int kOuter = 4;
  std::vector<ParallelFastResult> results(kOuter);
  std::vector<std::thread> outer;
  outer.reserve(kOuter);
  for (int i = 0; i < kOuter; ++i) {
    outer.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i)] = run_parallel_fast(g, opts); });
  }
  for (auto& th : outer) th.join();

  for (const ParallelFastResult& r : results) {
    EXPECT_EQ(r.assignment, expected.assignment);
    EXPECT_EQ(r.final_length, expected.final_length);
    EXPECT_EQ(r.winning_thread, expected.winning_thread);
  }
}

}  // namespace
}  // namespace fastsched::fast
