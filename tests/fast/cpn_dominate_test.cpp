#include "fast/cpn_dominate.hpp"

#include <gtest/gtest.h>

#include "testing/test_graphs.hpp"

namespace fastsched::fast {
namespace {

using graph::LevelInfo;
using graph::NodeClass;
using graph::TaskGraph;

struct Prepared {
  LevelInfo levels;
  std::vector<NodeClass> classes;
};

Prepared prepare(const TaskGraph& g) {
  Prepared p;
  p.levels = graph::compute_levels(g);
  p.classes = graph::classify_nodes(g, p.levels);
  return p;
}

TEST(CpnDominate, ChainIsListedInOrder) {
  const TaskGraph g = testing::chain(5);
  const Prepared p = prepare(g);
  const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
  EXPECT_EQ(list, (std::vector<graph::NodeId>{0, 1, 2, 3, 4}));
}

TEST(CpnDominate, IsAlwaysTopological) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const Prepared p = prepare(g);
    const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
    EXPECT_TRUE(is_topological_list(g, list)) << "seed " << seed;
  }
}

TEST(CpnDominate, CoversEveryNodeExactlyOnce) {
  const TaskGraph g = testing::small_random(7);
  const Prepared p = prepare(g);
  const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
  std::vector<bool> seen(g.num_nodes(), false);
  for (const auto n : list) {
    EXPECT_FALSE(seen[n]);
    seen[n] = true;
  }
  EXPECT_EQ(list.size(), g.num_nodes());
}

TEST(CpnDominate, IbnFeedingCpnPrecedesIt) {
  // diamond: the IBN side branch (b) must appear before the join CPN (d).
  const TaskGraph g = testing::diamond(2.0, 3.0, 1.0);
  const Prepared p = prepare(g);
  const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
  const auto pos = [&](graph::NodeId n) {
    return std::find(list.begin(), list.end(), n) - list.begin();
  };
  EXPECT_LT(pos(1), pos(3));  // IBN b before CPN d
  EXPECT_EQ(list.front(), 0u);
}

TEST(CpnDominate, ObnsComeLastInDecreasingBLevel) {
  // a -> b -> c is the CP; a -> x -> y is a dangling OBN chain.
  graph::TaskGraphBuilder builder;
  const auto a = builder.add_node(10);
  const auto b = builder.add_node(10);
  const auto c = builder.add_node(10);
  const auto x = builder.add_node(1);
  const auto y = builder.add_node(1);
  builder.add_edge(a, b, 1);
  builder.add_edge(b, c, 1);
  builder.add_edge(a, x, 1);
  builder.add_edge(x, y, 1);
  const TaskGraph g = builder.build();
  const Prepared p = prepare(g);
  ASSERT_EQ(p.classes[x], NodeClass::kObn);
  ASSERT_EQ(p.classes[y], NodeClass::kObn);
  const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
  // CPNs first, then OBNs in decreasing b-level (x before y).
  EXPECT_EQ(list, (std::vector<graph::NodeId>{a, b, c, x, y}));
}

TEST(CpnDominate, EntryCpnIsFirst) {
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const TaskGraph g = testing::small_random(seed);
    const Prepared p = prepare(g);
    const auto list = build_cpn_dominate_list(g, p.levels, p.classes);
    ASSERT_FALSE(list.empty());
    EXPECT_TRUE(p.levels.is_cpn[list.front()]);
    EXPECT_EQ(g.in_degree(list.front()), 0u);
  }
}

TEST(CpnDominate, RejectsMismatchedInputs) {
  const TaskGraph g = testing::chain(3);
  const Prepared other = prepare(testing::chain(6));
  EXPECT_THROW(
      (void)build_cpn_dominate_list(g, other.levels, other.classes), Error);
}

TEST(BuildList, AllPoliciesProduceTopologicalOrders) {
  const TaskGraph g = testing::small_random(41);
  const Prepared p = prepare(g);
  for (const ListPolicy policy :
       {ListPolicy::kCpnDominate, ListPolicy::kBLevel, ListPolicy::kTLevel,
        ListPolicy::kStaticLevel}) {
    const auto list = build_list(g, p.levels, p.classes, policy);
    EXPECT_TRUE(is_topological_list(g, list));
  }
}

TEST(BuildList, BLevelPolicyOrdersByDecreasingBLevelWithinReady) {
  // With independent nodes (no edges), the b-level list is simply sorted
  // by decreasing b-level.
  graph::TaskGraphBuilder builder;
  builder.add_node(1);
  builder.add_node(5);
  builder.add_node(3);
  const TaskGraph g = builder.build();
  const Prepared p = prepare(g);
  const auto list = build_list(g, p.levels, p.classes, ListPolicy::kBLevel);
  EXPECT_EQ(list, (std::vector<graph::NodeId>{1, 2, 0}));
}

TEST(IsTopologicalList, DetectsBadLists) {
  const TaskGraph g = testing::chain(3);
  EXPECT_TRUE(is_topological_list(g, {0, 1, 2}));
  EXPECT_FALSE(is_topological_list(g, {1, 0, 2}));   // order violated
  EXPECT_FALSE(is_topological_list(g, {0, 1}));      // missing node
  EXPECT_FALSE(is_topological_list(g, {0, 1, 1}));   // duplicate
  EXPECT_FALSE(is_topological_list(g, {0, 1, 7}));   // out of range
}

}  // namespace
}  // namespace fastsched::fast
