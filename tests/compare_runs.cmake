# compare_runs.cmake — run the same tool with two argument lists and require
# byte-identical stdout (and equal, zero exit status). This is how the CLI
# determinism guarantee is pinned: `--jobs 1` vs `--jobs 8` may differ only
# in wall-clock, never in output.
#
# Usage (from add_test):
#   cmake -DTOOL=<binary> "-DARGS_A=<arg string>" "-DARGS_B=<arg string>"
#         [-DENV_A=<var=value;...>] [-DENV_B=<var=value;...>]
#         -P compare_runs.cmake
#
# ENV_A / ENV_B inject per-run environment variables (semicolon-separated
# VAR=VALUE pairs), so the two runs can also differ in configuration that
# only flows through the environment — e.g. FASTSCHED_REPLAY=contiguous vs
# FASTSCHED_REPLAY=event must be output-equivalent, not just jobs counts.
separate_arguments(args_a UNIX_COMMAND "${ARGS_A}")
separate_arguments(args_b UNIX_COMMAND "${ARGS_B}")
set(launch_a "")
set(launch_b "")
if(ENV_A)
  set(launch_a ${CMAKE_COMMAND} -E env ${ENV_A})
endif()
if(ENV_B)
  set(launch_b ${CMAKE_COMMAND} -E env ${ENV_B})
endif()
execute_process(COMMAND ${launch_a} ${TOOL} ${args_a}
  OUTPUT_VARIABLE out_a RESULT_VARIABLE rc_a)
execute_process(COMMAND ${launch_b} ${TOOL} ${args_b}
  OUTPUT_VARIABLE out_b RESULT_VARIABLE rc_b)
if(NOT rc_a EQUAL 0)
  message(FATAL_ERROR "${TOOL} ${ARGS_A}: exit status ${rc_a}")
endif()
if(NOT rc_b EQUAL 0)
  message(FATAL_ERROR "${TOOL} ${ARGS_B}: exit status ${rc_b}")
endif()
if(NOT out_a STREQUAL out_b)
  message(FATAL_ERROR
    "${TOOL}: '${ARGS_A}' and '${ARGS_B}' produced different stdout\n"
    "--- A ---\n${out_a}\n--- B ---\n${out_b}")
endif()
