# compare_runs.cmake — run the same tool with two argument lists and require
# byte-identical stdout (and equal, zero exit status). This is how the CLI
# determinism guarantee is pinned: `--jobs 1` vs `--jobs 8` may differ only
# in wall-clock, never in output.
#
# Usage (from add_test):
#   cmake -DTOOL=<binary> "-DARGS_A=<arg string>" "-DARGS_B=<arg string>"
#         -P compare_runs.cmake
separate_arguments(args_a UNIX_COMMAND "${ARGS_A}")
separate_arguments(args_b UNIX_COMMAND "${ARGS_B}")
execute_process(COMMAND ${TOOL} ${args_a}
  OUTPUT_VARIABLE out_a RESULT_VARIABLE rc_a)
execute_process(COMMAND ${TOOL} ${args_b}
  OUTPUT_VARIABLE out_b RESULT_VARIABLE rc_b)
if(NOT rc_a EQUAL 0)
  message(FATAL_ERROR "${TOOL} ${ARGS_A}: exit status ${rc_a}")
endif()
if(NOT rc_b EQUAL 0)
  message(FATAL_ERROR "${TOOL} ${ARGS_B}: exit status ${rc_b}")
endif()
if(NOT out_a STREQUAL out_b)
  message(FATAL_ERROR
    "${TOOL}: '${ARGS_A}' and '${ARGS_B}' produced different stdout\n"
    "--- A ---\n${out_a}\n--- B ---\n${out_b}")
endif()
