#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "sched/gantt.hpp"
#include "sched/io.hpp"
#include "testing/test_graphs.hpp"

namespace fastsched::sched {
namespace {

// ------------------------------------------------------------ Schedule IO

Schedule sample_schedule() {
  Schedule s(3, 2);
  s.assign(0, 0, 0.0, 1.5);
  s.assign(1, 1, 2.25, 4.0);
  s.assign(2, 0, 1.5, 3.0);
  return s;
}

TEST(ScheduleIo, RoundTrip) {
  const Schedule s = sample_schedule();
  const Schedule r = from_text(to_text(s));
  ASSERT_EQ(r.num_nodes(), s.num_nodes());
  ASSERT_EQ(r.num_procs(), s.num_procs());
  for (graph::NodeId n = 0; n < s.num_nodes(); ++n) {
    EXPECT_EQ(r.proc(n), s.proc(n));
    EXPECT_EQ(r.start(n), s.start(n));
    EXPECT_EQ(r.finish(n), s.finish(n));
  }
}

TEST(ScheduleIo, RoundTripRealSchedule) {
  const graph::TaskGraph g = testing::small_random(801);
  const Schedule s =
      baselines::make_scheduler("FAST")->run(g, SchedulerOptions{});
  const Schedule r = from_text(to_text(s));
  EXPECT_EQ(r.length(), s.length());
  EXPECT_EQ(r.procs_used(), s.procs_used());
}

TEST(ScheduleIo, PartialSchedulesOmitUnassigned) {
  Schedule s(3, 2);
  s.assign(1, 0, 0.0, 1.0);
  const Schedule r = from_text(to_text(s));
  EXPECT_FALSE(r.is_assigned(0));
  EXPECT_TRUE(r.is_assigned(1));
  EXPECT_FALSE(r.is_assigned(2));
}

TEST(ScheduleIo, RejectsMissingHeader) {
  EXPECT_THROW((void)from_text("task 0 0 0 1\n"), Error);
  EXPECT_THROW((void)from_text(""), Error);
}

TEST(ScheduleIo, RejectsOutOfRangeTask) {
  EXPECT_THROW((void)from_text("schedule 2 1\ntask 5 0 0 1\n"), Error);
  EXPECT_THROW((void)from_text("schedule 2 1\ntask 0 3 0 1\n"), Error);
}

TEST(ScheduleIo, RejectsMalformedTaskLine) {
  EXPECT_THROW((void)from_text("schedule 2 1\ntask 0 0\n"), Error);
  EXPECT_THROW((void)from_text("schedule 2 1\njob 0 0 0 1\n"), Error);
}

TEST(ScheduleIo, IgnoresComments) {
  const Schedule r = from_text("schedule 1 1\n# comment\ntask 0 0 0 2\n");
  EXPECT_EQ(r.finish(0), 2.0);
}

// ----------------------------------------------------------------- Gantt

TEST(Gantt, ShowsLengthAndProcs) {
  const graph::TaskGraph g = testing::chain(3, 2.0, 1.0);
  Schedule s(3, 2);
  s.assign(0, 0, 0, 2);
  s.assign(1, 0, 2, 4);
  s.assign(2, 1, 5, 7);
  const std::string out = render_gantt(g, s);
  EXPECT_NE(out.find("schedule length = 7"), std::string::npos);
  EXPECT_NE(out.find("processors used = 2"), std::string::npos);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
}

TEST(Gantt, OmitsEmptyProcessors) {
  const graph::TaskGraph g = testing::single();
  Schedule s(1, 5);
  s.assign(0, 2, 0, 5);
  const std::string out = render_gantt(g, s);
  EXPECT_EQ(out.find("P0 "), std::string::npos);
  EXPECT_NE(out.find("P2"), std::string::npos);
}

TEST(Gantt, TableListsEveryTask) {
  const graph::TaskGraph g = testing::chain(3, 1.0, 0.0);
  Schedule s(3, 1);
  s.assign(0, 0, 0, 1);
  s.assign(1, 0, 1, 2);
  s.assign(2, 0, 2, 3);
  const std::string out = render_gantt(g, s, 40, /*with_table=*/true);
  EXPECT_NE(out.find("task"), std::string::npos);
  for (const char* name : {"n1", "n2", "n3"}) {
    EXPECT_NE(out.find(name), std::string::npos);
  }
}

TEST(Gantt, EmptyScheduleIsJustHeader) {
  const graph::TaskGraph g = graph::TaskGraphBuilder{}.build();
  const Schedule s(0, 2);
  const std::string out = render_gantt(g, s);
  EXPECT_NE(out.find("schedule length = 0"), std::string::npos);
}

}  // namespace
}  // namespace fastsched::sched
